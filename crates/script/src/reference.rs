//! The original tree-walking interpreter, kept as the executable
//! specification of the language.
//!
//! The production path is the bytecode VM behind
//! [`crate::Interpreter`]; this module preserves the seed
//! implementation byte-for-byte in observable behaviour (values,
//! printed output, error line/phase/message, and step accounting) so
//! differential tests can pin the VM against it. It follows the repo's
//! `rules::reference` / `statistics::reference` pattern: slow, obvious,
//! and the arbiter when the two disagree.

use crate::ast::*;
use crate::builtins::{self, Builtin};
use crate::interp::HostFn;
use crate::parser::parse;
use crate::value::Value;
use crate::{Result, ScriptError};
use std::collections::{BTreeMap, HashMap};

type Scope = BTreeMap<String, Value>;

enum Flow {
    Normal(Value),
    Return(Value),
    Break,
    Continue,
}

/// The tree-walking interpreter (reference semantics).
///
/// Same public surface as [`crate::Interpreter`], minus compilation
/// caching: every [`Interpreter::run`] re-parses and walks the AST.
pub struct Interpreter {
    host_fns: HashMap<String, HostFn>,
    user_fns: HashMap<String, FnDef>,
    /// Call frames; each frame is a stack of block scopes. Frame 0 /
    /// scope 0 is the global scope.
    frames: Vec<Vec<Scope>>,
    output: Vec<String>,
    steps: u64,
    step_limit: u64,
    call_depth_limit: usize,
    /// Frame index at which call depth counts from zero; sweep bodies
    /// reset it so each body gets a full, independent depth budget
    /// (mirroring the fresh frame stack a parallel worker would use).
    depth_base: usize,
    /// Positive while executing inside a `par_foreach_trial` body, where
    /// writes to globals (and function definitions) are rejected.
    par_depth: usize,
}

impl Default for Interpreter {
    fn default() -> Self {
        Interpreter::new()
    }
}

impl Interpreter {
    /// Creates an interpreter with the default step budget.
    pub fn new() -> Self {
        Interpreter {
            host_fns: HashMap::new(),
            user_fns: HashMap::new(),
            frames: vec![vec![Scope::new()]],
            output: Vec::new(),
            steps: 0,
            step_limit: 50_000_000,
            call_depth_limit: 1000,
            depth_base: 0,
            par_depth: 0,
        }
    }

    /// Overrides the execution step budget (each statement and expression
    /// node costs one step). Guards runaway `while` loops.
    pub fn with_step_limit(mut self, limit: u64) -> Self {
        self.step_limit = limit;
        self
    }

    /// Overrides the user-function call depth limit (default 1000).
    pub fn with_call_depth_limit(mut self, limit: usize) -> Self {
        self.call_depth_limit = limit;
        self
    }

    /// Registers a host function callable from scripts.
    pub fn register(
        &mut self,
        name: &str,
        f: impl FnMut(&mut Vec<Value>) -> std::result::Result<Value, String> + 'static,
    ) {
        self.host_fns.insert(name.to_string(), Box::new(f));
    }

    /// Defines a global variable visible to scripts.
    pub fn set_global(&mut self, name: &str, value: Value) {
        self.frames[0][0].insert(name.to_string(), value);
    }

    /// Reads a global variable after a run.
    pub fn get_global(&self, name: &str) -> Option<&Value> {
        self.frames[0][0].get(name)
    }

    /// Takes the accumulated `print` output.
    pub fn take_output(&mut self) -> Vec<String> {
        std::mem::take(&mut self.output)
    }

    /// Steps consumed by the most recent [`Interpreter::run`].
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Parses and executes a script, returning the value of its final
    /// expression statement (or [`Value::Null`]).
    pub fn run(&mut self, src: &str) -> Result<Value> {
        let program = parse(src)?;
        // A previous run that aborted with an error may have left
        // call frames / block scopes pushed (error propagation skips
        // the pops). Only the global scope survives across runs.
        self.frames.truncate(1);
        self.frames[0].truncate(1);
        self.steps = 0;
        self.depth_base = 0;
        self.par_depth = 0;
        let mut last = Value::Null;
        for stmt in &program.statements {
            match self.exec(stmt)? {
                Flow::Normal(v) => last = v,
                Flow::Return(v) => return Ok(v),
                Flow::Break | Flow::Continue => {
                    return Err(ScriptError::runtime(
                        stmt.line,
                        "break/continue outside loop",
                    ))
                }
            }
        }
        Ok(last)
    }

    fn bump(&mut self, line: usize) -> Result<()> {
        self.steps += 1;
        if self.steps > self.step_limit {
            return Err(ScriptError::runtime(line, "step limit exceeded"));
        }
        Ok(())
    }

    fn lookup(&self, name: &str) -> Option<&Value> {
        let frame = self.frames.last().expect("at least global frame");
        for scope in frame.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Some(v);
            }
        }
        // Fall back to globals (frame 0, scope 0) from inside functions.
        self.frames[0][0].get(name)
    }

    fn assign(&mut self, name: &str, value: Value, line: usize) -> Result<()> {
        let frame = self.frames.last_mut().expect("at least global frame");
        for scope in frame.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                *slot = value;
                return Ok(());
            }
        }
        if self.frames[0][0].contains_key(name) {
            if self.par_depth > 0 {
                return Err(ScriptError::runtime(
                    line,
                    format!("cannot assign to global {name:?} inside par_foreach_trial"),
                ));
            }
            *self.frames[0][0].get_mut(name).expect("checked") = value;
            return Ok(());
        }
        Err(ScriptError::runtime(
            line,
            format!("assignment to undefined variable {name:?}"),
        ))
    }

    /// True when `name` resolves within the current frame's block
    /// scopes (i.e. without falling back to the global scope).
    fn in_current_frame(&self, name: &str) -> bool {
        let frame = self.frames.last().expect("at least global frame");
        frame.iter().rev().any(|scope| scope.contains_key(name))
    }

    fn exec_block(&mut self, body: &[Stmt]) -> Result<Flow> {
        self.frames.last_mut().expect("frame").push(Scope::new());
        let mut flow = Flow::Normal(Value::Null);
        for stmt in body {
            match self.exec(stmt)? {
                Flow::Normal(v) => flow = Flow::Normal(v),
                other => {
                    flow = other;
                    break;
                }
            }
        }
        self.frames.last_mut().expect("frame").pop();
        Ok(flow)
    }

    fn exec(&mut self, stmt: &Stmt) -> Result<Flow> {
        self.bump(stmt.line)?;
        match &stmt.kind {
            StmtKind::Let(name, e) => {
                let v = self.eval(e)?;
                self.frames
                    .last_mut()
                    .expect("frame")
                    .last_mut()
                    .expect("scope")
                    .insert(name.clone(), v);
                Ok(Flow::Normal(Value::Null))
            }
            StmtKind::Assign(name, e) => {
                let v = self.eval(e)?;
                self.assign(name, v, stmt.line)?;
                Ok(Flow::Normal(Value::Null))
            }
            StmtKind::IndexAssign(base, index, e) => {
                let value = self.eval(e)?;
                let idx = self.eval(index)?;
                // Only direct variables support index assignment; nested
                // containers are updated by rebuilding in script code.
                let ExprKind::Var(name) = &base.kind else {
                    return Err(ScriptError::runtime(
                        stmt.line,
                        "index assignment requires a variable base",
                    ));
                };
                let mut container = self.lookup(name).cloned().ok_or_else(|| {
                    ScriptError::runtime(stmt.line, format!("undefined variable {name:?}"))
                })?;
                if self.par_depth > 0 && !self.in_current_frame(name) {
                    return Err(ScriptError::runtime(
                        stmt.line,
                        format!("cannot mutate global {name:?} inside par_foreach_trial"),
                    ));
                }
                match (&mut container, &idx) {
                    (Value::List(items), Value::Num(n)) => {
                        let i = *n as usize;
                        if n.fract() != 0.0 || i >= items.len() {
                            return Err(ScriptError::runtime(
                                stmt.line,
                                format!("list index {n} out of range (len {})", items.len()),
                            ));
                        }
                        items[i] = value;
                    }
                    (Value::Map(m), Value::Str(k)) => {
                        m.insert(k.clone(), value);
                    }
                    (c, i) => {
                        return Err(ScriptError::runtime(
                            stmt.line,
                            format!("cannot index {} with {}", c.type_name(), i.type_name()),
                        ))
                    }
                }
                self.assign(name, container, stmt.line)?;
                Ok(Flow::Normal(Value::Null))
            }
            StmtKind::Expr(e) => Ok(Flow::Normal(self.eval(e)?)),
            StmtKind::If(cond, then_block, else_block) => {
                if self.eval(cond)?.truthy() {
                    self.exec_block(then_block)
                } else if let Some(eb) = else_block {
                    self.exec_block(eb)
                } else {
                    Ok(Flow::Normal(Value::Null))
                }
            }
            StmtKind::While(cond, body) => {
                while self.eval(cond)?.truthy() {
                    self.bump(stmt.line)?;
                    match self.exec_block(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal(_) | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal(Value::Null))
            }
            StmtKind::For(var, iter, body) => {
                let iterable = self.eval(iter)?;
                let items: Vec<Value> = match iterable {
                    Value::List(v) => v,
                    Value::Map(m) => m.keys().map(|k| Value::Str(k.clone())).collect(),
                    other => {
                        return Err(ScriptError::runtime(
                            stmt.line,
                            format!("cannot iterate a {}", other.type_name()),
                        ))
                    }
                };
                for item in items {
                    self.bump(stmt.line)?;
                    self.frames.last_mut().expect("frame").push(Scope::new());
                    self.frames
                        .last_mut()
                        .expect("frame")
                        .last_mut()
                        .expect("scope")
                        .insert(var.clone(), item);
                    let mut result = Flow::Normal(Value::Null);
                    for s in body {
                        match self.exec(s)? {
                            Flow::Normal(_) => {}
                            other => {
                                result = other;
                                break;
                            }
                        }
                    }
                    self.frames.last_mut().expect("frame").pop();
                    match result {
                        Flow::Break => return Ok(Flow::Normal(Value::Null)),
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal(_) | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal(Value::Null))
            }
            StmtKind::FnDef(def) => {
                if self.par_depth > 0 {
                    return Err(ScriptError::runtime(
                        stmt.line,
                        format!(
                            "cannot define function {:?} inside par_foreach_trial",
                            def.name
                        ),
                    ));
                }
                self.user_fns.insert(def.name.clone(), def.clone());
                Ok(Flow::Normal(Value::Null))
            }
            StmtKind::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e)?,
                    None => Value::Null,
                };
                Ok(Flow::Return(v))
            }
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
        }
    }

    fn eval(&mut self, e: &Expr) -> Result<Value> {
        self.bump(e.line)?;
        match &e.kind {
            ExprKind::Null => Ok(Value::Null),
            ExprKind::Bool(b) => Ok(Value::Bool(*b)),
            ExprKind::Num(n) => Ok(Value::Num(*n)),
            ExprKind::Str(s) => Ok(Value::Str(s.clone())),
            ExprKind::Var(name) => self.lookup(name).cloned().ok_or_else(|| {
                ScriptError::runtime(e.line, format!("undefined variable {name:?}"))
            }),
            ExprKind::List(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(self.eval(item)?);
                }
                Ok(Value::List(out))
            }
            ExprKind::Map(pairs) => {
                let mut m = BTreeMap::new();
                for (k, v) in pairs {
                    m.insert(k.clone(), self.eval(v)?);
                }
                Ok(Value::Map(m))
            }
            ExprKind::Unary(op, inner) => {
                let v = self.eval(inner)?;
                match op {
                    UnOp::Neg => v.as_num().map(|n| Value::Num(-n)).ok_or_else(|| {
                        ScriptError::runtime(e.line, format!("cannot negate a {}", v.type_name()))
                    }),
                    UnOp::Not => Ok(Value::Bool(!v.truthy())),
                }
            }
            ExprKind::Binary(op, lhs, rhs) => self.eval_binary(e.line, *op, lhs, rhs),
            ExprKind::Index(base, index) => {
                let b = self.eval(base)?;
                let i = self.eval(index)?;
                match (&b, &i) {
                    (Value::List(items), Value::Num(n)) => {
                        let idx = *n as usize;
                        if n.fract() != 0.0 || *n < 0.0 || idx >= items.len() {
                            Err(ScriptError::runtime(
                                e.line,
                                format!("list index {n} out of range (len {})", items.len()),
                            ))
                        } else {
                            Ok(items[idx].clone())
                        }
                    }
                    (Value::Map(m), Value::Str(k)) => m.get(k).cloned().ok_or_else(|| {
                        ScriptError::runtime(e.line, format!("missing map key {k:?}"))
                    }),
                    (Value::Str(s), Value::Num(n)) => {
                        let idx = *n as usize;
                        s.chars()
                            .nth(idx)
                            .map(|c| Value::Str(c.to_string()))
                            .ok_or_else(|| {
                                ScriptError::runtime(
                                    e.line,
                                    format!("string index {n} out of range"),
                                )
                            })
                    }
                    (b, i) => Err(ScriptError::runtime(
                        e.line,
                        format!("cannot index {} with {}", b.type_name(), i.type_name()),
                    )),
                }
            }
            ExprKind::Call(name, args) => {
                // Short-circuit-free argument evaluation.
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(self.eval(a)?);
                }
                self.call(name, values, e.line)
            }
            ExprKind::ParForEach(var, iter, body) => {
                let iterable = self.eval(iter)?;
                let Value::List(items) = iterable else {
                    return Err(ScriptError::runtime(
                        e.line,
                        format!(
                            "par_foreach_trial expects a list, got a {}",
                            iterable.type_name()
                        ),
                    ));
                };
                // Each body runs with an independent step counter
                // bounded by what remains of the sweep's budget; the
                // totals are folded back in afterwards so the sweep as
                // a whole cannot exceed `limit + bodies` steps whether
                // the bodies ran sequentially or in parallel.
                let entry = self.steps;
                let budget = self.step_limit - entry;
                let mut results = Vec::with_capacity(items.len());
                let mut total: u64 = 0;
                for item in items {
                    let (result, body_steps, mut body_out) =
                        self.run_par_body(var, item, body, budget);
                    total = total.saturating_add(body_steps);
                    self.output.append(&mut body_out);
                    results.push(crate::interp::sweep_outcome_value(result));
                }
                self.steps = entry.saturating_add(total);
                Ok(Value::List(results))
            }
        }
    }

    /// Runs one `par_foreach_trial` body in isolation: a fresh frame
    /// with only the loop variable bound, steps counted from zero
    /// against `budget`, output captured separately, and call depth
    /// restarting at zero. Returns the body result (fall-off value of
    /// the last statement, or an early `return`), the steps it
    /// consumed, and the lines it printed.
    fn run_par_body(
        &mut self,
        var: &str,
        item: Value,
        body: &[Stmt],
        budget: u64,
    ) -> (Result<Value>, u64, Vec<String>) {
        let saved_steps = self.steps;
        let saved_limit = self.step_limit;
        let saved_output = std::mem::take(&mut self.output);
        let saved_depth_base = self.depth_base;
        let frames_mark = self.frames.len();
        self.steps = 0;
        self.step_limit = budget;
        self.par_depth += 1;
        let mut scope = Scope::new();
        scope.insert(var.to_string(), item);
        self.frames.push(vec![scope]);
        self.depth_base = self.frames.len() - 1;
        let mut result = Ok(Value::Null);
        for stmt in body {
            match self.exec(stmt) {
                Ok(Flow::Normal(v)) => result = Ok(v),
                Ok(Flow::Return(v)) => {
                    result = Ok(v);
                    break;
                }
                Ok(Flow::Break) | Ok(Flow::Continue) => {
                    result = Err(ScriptError::runtime(
                        stmt.line,
                        "break/continue outside loop",
                    ));
                    break;
                }
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        self.frames.truncate(frames_mark);
        self.par_depth -= 1;
        self.depth_base = saved_depth_base;
        let body_steps = self.steps;
        let body_out = std::mem::take(&mut self.output);
        self.steps = saved_steps;
        self.step_limit = saved_limit;
        self.output = saved_output;
        (result, body_steps, body_out)
    }

    fn eval_binary(&mut self, line: usize, op: BinOp, lhs: &Expr, rhs: &Expr) -> Result<Value> {
        // Short-circuit logic first.
        if matches!(op, BinOp::And | BinOp::Or) {
            let l = self.eval(lhs)?;
            return match (op, l.truthy()) {
                (BinOp::And, false) => Ok(Value::Bool(false)),
                (BinOp::Or, true) => Ok(Value::Bool(true)),
                _ => Ok(Value::Bool(self.eval(rhs)?.truthy())),
            };
        }
        let l = self.eval(lhs)?;
        let r = self.eval(rhs)?;
        let type_err = |op: &str| {
            ScriptError::runtime(
                line,
                format!(
                    "cannot apply {op} to {} and {}",
                    l.type_name(),
                    r.type_name()
                ),
            )
        };
        match op {
            BinOp::Add => match (&l, &r) {
                (Value::Num(a), Value::Num(b)) => Ok(Value::Num(a + b)),
                (Value::List(a), Value::List(b)) => {
                    let mut out = a.clone();
                    out.extend(b.iter().cloned());
                    Ok(Value::List(out))
                }
                (Value::Str(_), _) | (_, Value::Str(_)) => Ok(Value::Str(format!("{l}{r}"))),
                _ => Err(type_err("+")),
            },
            BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => {
                let (Some(a), Some(b)) = (l.as_num(), r.as_num()) else {
                    return Err(type_err(match op {
                        BinOp::Sub => "-",
                        BinOp::Mul => "*",
                        BinOp::Div => "/",
                        _ => "%",
                    }));
                };
                match op {
                    BinOp::Sub => Ok(Value::Num(a - b)),
                    BinOp::Mul => Ok(Value::Num(a * b)),
                    BinOp::Div => {
                        if b == 0.0 {
                            Err(ScriptError::runtime(line, "division by zero"))
                        } else {
                            Ok(Value::Num(a / b))
                        }
                    }
                    _ => {
                        if b == 0.0 {
                            Err(ScriptError::runtime(line, "modulo by zero"))
                        } else {
                            Ok(Value::Num(a % b))
                        }
                    }
                }
            }
            BinOp::Eq => Ok(Value::Bool(l == r)),
            BinOp::Ne => Ok(Value::Bool(l != r)),
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let ord = match (&l, &r) {
                    (Value::Num(a), Value::Num(b)) => a.partial_cmp(b),
                    (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
                    _ => None,
                }
                .ok_or_else(|| type_err("comparison"))?;
                use std::cmp::Ordering::*;
                Ok(Value::Bool(match op {
                    BinOp::Lt => ord == Less,
                    BinOp::Le => ord != Greater,
                    BinOp::Gt => ord == Greater,
                    _ => ord != Less,
                }))
            }
            BinOp::And | BinOp::Or => unreachable!("handled above"),
        }
    }

    fn call(&mut self, name: &str, mut args: Vec<Value>, line: usize) -> Result<Value> {
        // 1. builtins, 2. user functions, 3. host functions.
        if let Some(b) = Builtin::from_name(name) {
            return builtins::call(b, &args, &mut self.output, line);
        }
        if let Some(def) = self.user_fns.get(name).cloned() {
            if def.params.len() != args.len() {
                return Err(ScriptError::runtime(
                    line,
                    format!(
                        "{name}() expects {} arguments, got {}",
                        def.params.len(),
                        args.len()
                    ),
                ));
            }
            if self.frames.len() - 1 - self.depth_base >= self.call_depth_limit {
                return Err(ScriptError::runtime(line, "call depth limit exceeded"));
            }
            let mut scope = Scope::new();
            for (p, a) in def.params.iter().zip(args) {
                scope.insert(p.clone(), a);
            }
            self.frames.push(vec![scope]);
            let mut result = Value::Null;
            let mut flow_err = None;
            for stmt in &def.body {
                match self.exec(stmt) {
                    Ok(Flow::Normal(v)) => result = v,
                    Ok(Flow::Return(v)) => {
                        result = v;
                        break;
                    }
                    Ok(Flow::Break) | Ok(Flow::Continue) => {
                        flow_err = Some(ScriptError::runtime(
                            stmt.line,
                            "break/continue outside loop",
                        ));
                        break;
                    }
                    Err(e) => {
                        flow_err = Some(e);
                        break;
                    }
                }
            }
            self.frames.pop();
            return match flow_err {
                Some(e) => Err(e),
                None => Ok(result),
            };
        }
        if let Some(f) = self.host_fns.get_mut(name) {
            return f(&mut args)
                .map_err(|msg| ScriptError::runtime(line, format!("{name}(): {msg}")));
        }
        Err(ScriptError::runtime(
            line,
            format!("unknown function {name:?}"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The reference interpreter's behaviour is pinned in depth by the
    // VM test suite in `interp.rs` and the differential proptests in
    // `tests/differential.rs`; these are smoke tests that it stays a
    // working standalone engine.

    #[test]
    fn reference_runs_programs() {
        let mut interp = Interpreter::new();
        let v = interp
            .run("fn fib(n) { if n < 2 { return n; } return fib(n-1) + fib(n-2); } fib(12)")
            .unwrap();
        assert_eq!(v, Value::Num(144.0));
        assert!(interp.steps() > 0);
    }

    #[test]
    fn reference_host_functions_use_shared_buffer_signature() {
        let mut interp = Interpreter::new();
        interp.register("pair_sum", |args: &mut Vec<Value>| {
            let a = args.first().and_then(Value::as_num).ok_or("num expected")?;
            let b = args.get(1).and_then(Value::as_num).ok_or("num expected")?;
            Ok(Value::Num(a + b))
        });
        assert_eq!(interp.run("pair_sum(2, 3)").unwrap(), Value::Num(5.0));
    }

    #[test]
    fn reference_reports_step_exhaustion() {
        let mut interp = Interpreter::new().with_step_limit(100);
        let err = interp.run("while true { }").unwrap_err();
        assert!(err.message.contains("step limit"));
        assert_eq!(interp.steps(), 101);
    }
}
