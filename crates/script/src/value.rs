//! Runtime values and identifier interning.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// An interned identifier: a dense index into an [`Interner`].
///
/// The compiler interns every variable and function name once, so the
/// VM compares and hashes 4-byte symbols instead of strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// The symbol's dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds a symbol from its dense index (used when replaying a
    /// compiled script's name tables into another interpreter).
    pub(crate) fn from_index(index: usize) -> Symbol {
        Symbol(index as u32)
    }
}

/// A string interner mapping identifiers to dense [`Symbol`]s.
///
/// Interning is append-only: a name keeps its symbol for the lifetime
/// of the interner, which is what lets compiled programs (which bake in
/// symbol-derived slot ids) stay valid across runs of one interpreter.
#[derive(Debug, Default)]
pub struct Interner {
    map: HashMap<Box<str>, Symbol>,
    names: Vec<Box<str>>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Interns `name`, returning its (possibly pre-existing) symbol.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.map.get(name) {
            return sym;
        }
        let sym = Symbol(self.names.len() as u32);
        self.names.push(name.into());
        self.map.insert(name.into(), sym);
        sym
    }

    /// Looks a name up without interning it.
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.map.get(name).copied()
    }

    /// The name behind a symbol.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// How many names are interned (symbols are `0..len()`).
    pub(crate) fn len(&self) -> usize {
        self.names.len()
    }
}

/// A script runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absence of a value (`null`, and the result of value-less calls).
    Null,
    /// Boolean.
    Bool(bool),
    /// Number (f64, like the profile data it manipulates).
    Num(f64),
    /// String.
    Str(String),
    /// List.
    List(Vec<Value>),
    /// String-keyed map.
    Map(BTreeMap<String, Value>),
    /// Opaque host object: a tag describing its kind plus a host-side id.
    /// The script can pass handles around and back into host functions
    /// but cannot inspect them.
    Handle {
        /// Host-defined kind tag, e.g. `"trial"`.
        tag: String,
        /// Host-side identifier.
        id: u64,
    },
}

impl Value {
    /// Truthiness: `null`, `false`, `0`, `""`, `[]` and `{}` are false.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Bool(b) => *b,
            Value::Num(n) => *n != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::List(v) => !v.is_empty(),
            Value::Map(m) => !m.is_empty(),
            Value::Handle { .. } => true,
        }
    }

    /// Numeric view.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// List view.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(v) => Some(v),
            _ => None,
        }
    }

    /// Map view.
    pub fn as_map(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Handle view: `(tag, id)`.
    pub fn as_handle(&self) -> Option<(&str, u64)> {
        match self {
            Value::Handle { tag, id } => Some((tag, *id)),
            _ => None,
        }
    }

    /// Structural equality that compares numbers by bit pattern, so
    /// `NaN == NaN` here (and `0.0 != -0.0`).
    ///
    /// Language-level `==` uses [`PartialEq`], where `NaN != NaN` per
    /// IEEE 754. Differential tests use this method instead: two
    /// engines that both produce `NaN` from the same script agree, and
    /// `assert!(a.bitwise_eq(&b))` cannot spuriously fail the way
    /// `assert_eq!(a, b)` does.
    pub fn bitwise_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Num(a), Value::Num(b)) => a.to_bits() == b.to_bits(),
            (Value::List(a), Value::List(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.bitwise_eq(y))
            }
            (Value::Map(a), Value::Map(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .zip(b)
                        .all(|((ka, va), (kb, vb))| ka == kb && va.bitwise_eq(vb))
            }
            _ => self == other,
        }
    }

    /// Short type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "num",
            Value::Str(_) => "str",
            Value::List(_) => "list",
            Value::Map(_) => "map",
            Value::Handle { .. } => "handle",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Map(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
            Value::Handle { tag, id } => write!(f, "<{tag}#{id}>"),
        }
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Num(n)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Num(n as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::List(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::Null.truthy());
        assert!(!Value::Bool(false).truthy());
        assert!(!Value::Num(0.0).truthy());
        assert!(!Value::Str(String::new()).truthy());
        assert!(!Value::List(vec![]).truthy());
        assert!(Value::Num(1.0).truthy());
        assert!(Value::from("x").truthy());
        assert!(Value::Handle {
            tag: "t".into(),
            id: 0
        }
        .truthy());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Num(3.0).to_string(), "3");
        assert_eq!(Value::Num(3.5).to_string(), "3.5");
        assert_eq!(Value::from(vec![1.0, 2.0]).to_string(), "[1, 2]");
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), Value::Num(1.0));
        assert_eq!(Value::Map(m).to_string(), "{a: 1}");
        assert_eq!(
            Value::Handle {
                tag: "trial".into(),
                id: 3
            }
            .to_string(),
            "<trial#3>"
        );
    }

    #[test]
    fn typed_views() {
        assert_eq!(Value::Num(2.0).as_num(), Some(2.0));
        assert_eq!(Value::from("s").as_str(), Some("s"));
        assert!(Value::from(vec![1.0]).as_list().is_some());
        assert_eq!(
            Value::Handle {
                tag: "t".into(),
                id: 9
            }
            .as_handle(),
            Some(("t", 9))
        );
        assert_eq!(Value::Null.as_num(), None);
        assert_eq!(Value::Num(1.0).type_name(), "num");
    }

    #[test]
    fn interner_round_trips_and_deduplicates() {
        let mut interner = Interner::new();
        let a = interner.intern("alpha");
        let b = interner.intern("beta");
        assert_ne!(a, b);
        assert_eq!(interner.intern("alpha"), a);
        assert_eq!(interner.resolve(a), "alpha");
        assert_eq!(interner.resolve(b), "beta");
        assert_eq!(interner.lookup("beta"), Some(b));
        assert_eq!(interner.lookup("gamma"), None);
    }
}
