//! Built-in functions, shared by the bytecode VM and the reference
//! tree-walker.
//!
//! Builtins are resolved *by name* ahead of user and host functions in
//! both engines, so the name set here is effectively reserved. The
//! compiler maps each name to a dense [`Builtin`] id at compile time;
//! the reference interpreter looks the id up per call. Both then funnel
//! into the single [`call`] implementation, so builtin semantics cannot
//! drift between the two engines.

use crate::value::Value;
use crate::{Result, ScriptError};

/// Dense identifier of a built-in function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // names mirror the script-visible functions 1:1
pub enum Builtin {
    Print,
    Len,
    Str,
    Num,
    Push,
    Range,
    Keys,
    Has,
    Get,
    Abs,
    Sqrt,
    Floor,
    Ceil,
    Pow,
    Min,
    Max,
    Sum,
    Sort,
    Join,
    Split,
    Contains,
    Type,
}

impl Builtin {
    /// Resolves a script-level name to a builtin id. Returns `None` for
    /// non-builtin names so resolution can continue with user and host
    /// functions.
    pub fn from_name(name: &str) -> Option<Builtin> {
        Some(match name {
            "print" => Builtin::Print,
            "len" => Builtin::Len,
            "str" => Builtin::Str,
            "num" => Builtin::Num,
            "push" => Builtin::Push,
            "range" => Builtin::Range,
            "keys" => Builtin::Keys,
            "has" => Builtin::Has,
            "get" => Builtin::Get,
            "abs" => Builtin::Abs,
            "sqrt" => Builtin::Sqrt,
            "floor" => Builtin::Floor,
            "ceil" => Builtin::Ceil,
            "pow" => Builtin::Pow,
            "min" => Builtin::Min,
            "max" => Builtin::Max,
            "sum" => Builtin::Sum,
            "sort" => Builtin::Sort,
            "join" => Builtin::Join,
            "split" => Builtin::Split,
            "contains" => Builtin::Contains,
            "type" => Builtin::Type,
            _ => return None,
        })
    }

    /// The script-level name (used in error messages).
    pub fn name(self) -> &'static str {
        match self {
            Builtin::Print => "print",
            Builtin::Len => "len",
            Builtin::Str => "str",
            Builtin::Num => "num",
            Builtin::Push => "push",
            Builtin::Range => "range",
            Builtin::Keys => "keys",
            Builtin::Has => "has",
            Builtin::Get => "get",
            Builtin::Abs => "abs",
            Builtin::Sqrt => "sqrt",
            Builtin::Floor => "floor",
            Builtin::Ceil => "ceil",
            Builtin::Pow => "pow",
            Builtin::Min => "min",
            Builtin::Max => "max",
            Builtin::Sum => "sum",
            Builtin::Sort => "sort",
            Builtin::Join => "join",
            Builtin::Split => "split",
            Builtin::Contains => "contains",
            Builtin::Type => "type",
        }
    }
}

/// Executes a builtin over positional arguments. `print` appends to
/// `output`; everything else is pure. Error messages carry the call
/// site's `line`.
pub fn call(b: Builtin, args: &[Value], output: &mut Vec<String>, line: usize) -> Result<Value> {
    let name = b.name();
    let argc_err = |expected: &str| {
        ScriptError::runtime(line, format!("{name}() expects {expected} arguments"))
    };
    let num_arg = |i: usize| -> Result<f64> {
        args.get(i).and_then(Value::as_num).ok_or_else(|| {
            ScriptError::runtime(line, format!("{name}(): argument {i} must be a number"))
        })
    };
    let v =
        match b {
            Builtin::Print => {
                let text = args
                    .iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
                    .join(" ");
                output.push(text);
                Value::Null
            }
            Builtin::Len => match args {
                [Value::Str(s)] => Value::Num(s.chars().count() as f64),
                [Value::List(v)] => Value::Num(v.len() as f64),
                [Value::Map(m)] => Value::Num(m.len() as f64),
                _ => return Err(argc_err("one str/list/map")),
            },
            Builtin::Str => match args {
                [v] => Value::Str(v.to_string()),
                _ => return Err(argc_err("one")),
            },
            Builtin::Num => match args {
                [Value::Num(n)] => Value::Num(*n),
                [Value::Str(s)] => s.trim().parse::<f64>().map(Value::Num).map_err(|_| {
                    ScriptError::runtime(line, format!("num(): cannot parse {s:?}"))
                })?,
                _ => return Err(argc_err("one num/str")),
            },
            Builtin::Push => match args {
                [Value::List(items), v] => {
                    let mut out = items.clone();
                    out.push(v.clone());
                    Value::List(out)
                }
                _ => return Err(argc_err("a list and a value")),
            },
            Builtin::Range => match args.len() {
                1 => {
                    let n = num_arg(0)? as i64;
                    Value::List((0..n).map(|i| Value::Num(i as f64)).collect())
                }
                2 => {
                    let a = num_arg(0)? as i64;
                    let b = num_arg(1)? as i64;
                    Value::List((a..b).map(|i| Value::Num(i as f64)).collect())
                }
                _ => return Err(argc_err("one or two")),
            },
            Builtin::Keys => match args {
                [Value::Map(m)] => Value::List(m.keys().map(|k| Value::Str(k.clone())).collect()),
                _ => return Err(argc_err("one map")),
            },
            Builtin::Has => match args {
                [Value::Map(m), Value::Str(k)] => Value::Bool(m.contains_key(k)),
                [Value::List(v), item] => Value::Bool(v.contains(item)),
                _ => return Err(argc_err("a map/list and a key")),
            },
            Builtin::Get => match args {
                [Value::Map(m), Value::Str(k), default] => {
                    m.get(k).cloned().unwrap_or_else(|| default.clone())
                }
                _ => return Err(argc_err("a map, key, and default")),
            },
            Builtin::Abs => Value::Num(num_arg(0)?.abs()),
            Builtin::Sqrt => {
                let n = num_arg(0)?;
                if n < 0.0 {
                    return Err(ScriptError::runtime(line, "sqrt of negative number"));
                }
                Value::Num(n.sqrt())
            }
            Builtin::Floor => Value::Num(num_arg(0)?.floor()),
            Builtin::Ceil => Value::Num(num_arg(0)?.ceil()),
            Builtin::Pow => Value::Num(num_arg(0)?.powf(num_arg(1)?)),
            Builtin::Min => match args {
                [Value::List(items)] if !items.is_empty() => {
                    let mut best = f64::INFINITY;
                    for v in items {
                        best = best.min(v.as_num().ok_or_else(|| argc_err("numeric list"))?);
                    }
                    Value::Num(best)
                }
                [Value::Num(a), Value::Num(b)] => Value::Num(a.min(*b)),
                _ => return Err(argc_err("two numbers or a non-empty numeric list")),
            },
            Builtin::Max => match args {
                [Value::List(items)] if !items.is_empty() => {
                    let mut best = f64::NEG_INFINITY;
                    for v in items {
                        best = best.max(v.as_num().ok_or_else(|| argc_err("numeric list"))?);
                    }
                    Value::Num(best)
                }
                [Value::Num(a), Value::Num(b)] => Value::Num(a.max(*b)),
                _ => return Err(argc_err("two numbers or a non-empty numeric list")),
            },
            Builtin::Sum => match args {
                [Value::List(items)] => {
                    let mut total = 0.0;
                    for v in items {
                        total += v.as_num().ok_or_else(|| argc_err("numeric list"))?;
                    }
                    Value::Num(total)
                }
                _ => return Err(argc_err("one numeric list")),
            },
            Builtin::Sort => match args {
                [Value::List(items)] => {
                    let mut out = items.clone();
                    out.sort_by(|a, b| match (a, b) {
                        (Value::Num(x), Value::Num(y)) => {
                            x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal)
                        }
                        (Value::Str(x), Value::Str(y)) => x.cmp(y),
                        _ => std::cmp::Ordering::Equal,
                    });
                    Value::List(out)
                }
                _ => return Err(argc_err("one list")),
            },
            Builtin::Join => match args {
                [Value::List(items), Value::Str(sep)] => Value::Str(
                    items
                        .iter()
                        .map(|v| v.to_string())
                        .collect::<Vec<_>>()
                        .join(sep),
                ),
                _ => return Err(argc_err("a list and a separator")),
            },
            Builtin::Split => match args {
                [Value::Str(s), Value::Str(sep)] => Value::List(
                    s.split(sep.as_str())
                        .map(|p| Value::Str(p.to_string()))
                        .collect(),
                ),
                _ => return Err(argc_err("a string and a separator")),
            },
            Builtin::Contains => match args {
                [Value::Str(s), Value::Str(sub)] => Value::Bool(s.contains(sub.as_str())),
                _ => return Err(argc_err("two strings")),
            },
            Builtin::Type => match args {
                [v] => Value::Str(v.type_name().to_string()),
                _ => return Err(argc_err("one")),
            },
        };
    Ok(v)
}
