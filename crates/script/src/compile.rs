//! AST → bytecode compiler.
//!
//! A single pass over the AST that (a) interns every identifier, (b)
//! resolves each variable reference to either a frame-relative local
//! slot or a persistent global slot, (c) resolves each call to a dense
//! builtin/function id, (d) dedups literals (and folds constant
//! arithmetic) into a per-function constant pool, and (e) emits flat
//! [`Op`] sequences for the stack VM in `vm.rs`.
//!
//! # Step accounting
//!
//! The reference tree-walker charges one step per statement and per
//! expression node, in pre-order, and one extra step per loop
//! iteration. The VM must exhaust a step budget after the *same* number
//! of steps with the *same* error line, so the compiler records every
//! would-be bump as a pending line and flushes consecutive runs into a
//! single `Step { n, meta }` op, where `meta` indexes a side table
//! (`Proto::step_lines`) holding the line of each individual bump. The
//! VM can then charge `n` steps in one add and still recover the exact
//! line of the bump that crossed the limit. Merging is sound because no
//! observable effect (value, output, error) occurs between the bumps of
//! one run. Constant folding keeps parity for the same reason: folding
//! `1 + 2 * 3` to a pooled `7` still emits the five bumps the
//! tree-walker would have charged.
//!
//! Runs merge across *pure* ops too: an op that cannot fail and touches
//! only transient state (the value stack, locals, the statement-value
//! register — all discarded when a run errors) may execute before the
//! `Step` op charging the bumps the tree-walker would have charged
//! first. A step-limit abort between the two orders is
//! indistinguishable: same error, same line, same step count, and no
//! persistent state (globals, output, function bindings) has diverged,
//! because every fallible or persistent-effect op flushes pending bumps
//! before it executes.
//!
//! # Scope rules
//!
//! The tree-walker's scoping is dynamic in mechanism but lexical in
//! effect: a name resolves through the enclosing block scopes of the
//! current frame and then falls back to the global scope, and function
//! bodies execute in a fresh frame seeing only their parameters (plus
//! body-level `let`s, which share the parameter scope) and globals. The
//! compiler mirrors this with a compile-time scope stack: names bound
//! by `let` (in a block), parameters, and `for` variables become local
//! slots with block-bounded lifetimes (slots are reused after block
//! exit); everything else — including `let` at the top level of the
//! program — resolves to a named global slot that persists across runs
//! of one interpreter, which is what keeps cached [`Proto`]s valid.

use crate::ast::*;
use crate::builtins::Builtin;
use crate::value::{Interner, Symbol, Value};
use crate::vm::{FnTable, Globals};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Comparison selector for the fused [`Op::CmpJumpFalse`].
#[derive(Debug, Clone, Copy)]
pub(crate) enum Cmp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Arithmetic selector for the fused [`Op::FusedBin`].
#[derive(Debug, Clone, Copy)]
pub(crate) enum Arith {
    /// `+` (numeric add, list concat, or string concat)
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (errors on zero divisor)
    Div,
    /// `%` (errors on zero divisor)
    Rem,
}

/// Packed operand of a fused op: tag in the top two bits
/// ([`OPERAND_LOCAL`], [`OPERAND_GLOBAL`] — always compiler-proven
/// defined — or [`OPERAND_CONST`]), index in the low 30.
pub(crate) const OPERAND_LOCAL: u32 = 0;
/// Tag: proven-defined global slot.
pub(crate) const OPERAND_GLOBAL: u32 = 1;
/// Tag: constant-pool index.
pub(crate) const OPERAND_CONST: u32 = 2;

/// Splits a packed operand into (tag, index).
#[inline]
pub(crate) fn operand_parts(packed: u32) -> (u32, u32) {
    (packed >> 30, packed & 0x3FFF_FFFF)
}

/// Packs an operand tag and index into one `u32`.
pub(crate) fn pack_operand(tag: u32, idx: u32) -> u32 {
    debug_assert!(idx < (1 << 30));
    (tag << 30) | idx
}

/// One VM instruction. Jump targets are absolute instruction indices.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Op {
    /// Charge `n` execution steps; `meta` indexes `Proto::step_lines`
    /// at the line of the first of the `n` merged bumps.
    Step { n: u32, meta: u32 },
    /// Push `consts[i]`.
    Const(u32),
    /// Push a copy of local slot `i` (frame-relative).
    LoadLocal(u32),
    /// Pop into local slot `i` and null the statement-value register
    /// (stores only occur in statements whose value is `null`).
    StoreLocal(u32),
    /// Push a copy of global slot `i`; error if still undefined.
    LoadGlobal(u32),
    /// [`Op::LoadGlobal`] for a slot the compiler proved is already
    /// defined (an earlier top-level `let` of this program dominates
    /// it), so the op is pure and step bumps may be delayed across it.
    LoadGlobalFast(u32),
    /// Pop into global slot `i` (error if still undefined) and null the
    /// statement-value register.
    StoreGlobal(u32),
    /// [`Op::StoreGlobal`] for a compiler-proven-defined slot; the
    /// undefined check is vestigial. Still a flush point: the write is
    /// observable across runs, so pending bumps must precede it.
    StoreGlobalFast(u32),
    /// Pop into global slot `i`, defining it (`let` at the top level),
    /// and null the statement-value register.
    DefineGlobal(u32),
    /// Pop `n` values into a list.
    MakeList(u32),
    /// Pop `n` (key, value) pairs into a map.
    MakeMap(u32),
    /// Unconditional jump.
    Jump(u32),
    /// Pop; jump if the value is falsy.
    JumpIfFalse(u32),
    /// Fused comparison + branch: pop rhs and lhs, evaluate `cmp` with
    /// the comparison ops' exact type rules, jump to `target` when the
    /// result is false. Emitted when a condition ends in a comparison,
    /// replacing the `Cmp`/`JumpIfFalse` pair.
    CmpJumpFalse {
        /// Which comparison.
        cmp: Cmp,
        /// Branch target when the comparison is false.
        target: u32,
    },
    /// Fully fused condition: read two packed operands (no stack
    /// traffic), compare, jump to `target` when false. Emitted when
    /// both sides of an `if`/`while` comparison are simple (local,
    /// proven-defined global, or constant).
    CmpOperandsJumpFalse {
        /// Which comparison.
        cmp: Cmp,
        /// Packed left operand.
        lhs: u32,
        /// Packed right operand.
        rhs: u32,
        /// Branch target when the comparison is false.
        target: u32,
    },
    /// Fused `dst = lhs op rhs` over packed operands: the whole
    /// assignment statement in one op (operands and destination are
    /// simple, so reads are pure and the only fallible part is the
    /// arithmetic itself). Nulls the statement-value register.
    FusedBin {
        /// Which arithmetic.
        op: Arith,
        /// Packed destination (local or proven-defined global).
        dst: u32,
        /// Packed left operand.
        lhs: u32,
        /// Packed right operand.
        rhs: u32,
    },
    /// `&&` left operand: pop; if falsy push `false` and jump over the
    /// right operand, else continue into it.
    AndJump(u32),
    /// `||` left operand: pop; if truthy push `true` and jump over the
    /// right operand, else continue into it.
    OrJump(u32),
    /// Pop; push the value's truthiness as a bool.
    ToBool,
    /// Binary `+` (numeric add, list concat, or string concat).
    Add,
    /// Binary `-`.
    Sub,
    /// Binary `*`.
    Mul,
    /// Binary `/` (errors on zero divisor).
    Div,
    /// Binary `%` (errors on zero divisor).
    Rem,
    /// Binary `==`.
    Eq,
    /// Binary `!=`.
    Ne,
    /// Binary `<`.
    Lt,
    /// Binary `<=`.
    Le,
    /// Binary `>`.
    Gt,
    /// Binary `>=`.
    Ge,
    /// Unary numeric negation.
    Neg,
    /// Unary logical not.
    Not,
    /// Pop index and base; push `base[index]`.
    Index,
    /// Pop index and value; `locals[slot][index] = value` in place;
    /// null the statement-value register.
    IndexSetLocal(u32),
    /// Pop index and value; `globals[slot][index] = value` in place;
    /// null the statement-value register.
    IndexSetGlobal(u32),
    /// Call a builtin over the top `argc` stack values.
    CallBuiltin {
        /// Which builtin.
        builtin: Builtin,
        /// Argument count.
        argc: u32,
    },
    /// Call user/host function `fn_id` over the top `argc` values.
    CallFn {
        /// Dense function id in the interpreter's function table.
        fn_id: u32,
        /// Argument count.
        argc: u32,
    },
    /// Bind `defs[def]` as the body of function `fn_id` (executed when
    /// the `fn` statement runs, so definitions stay dynamic) and null
    /// the statement-value register.
    DefineFn {
        /// Dense function id to (re)bind.
        fn_id: u32,
        /// Index into `Proto::defs`.
        def: u32,
    },
    /// Pop an iterable and open an iterator over it.
    ForPrep,
    /// Advance the innermost iterator into local `slot`, or pop the
    /// iterator and jump to `exit` when exhausted.
    ForNext {
        /// Loop-variable slot.
        slot: u32,
        /// Jump target once exhausted.
        exit: u32,
    },
    /// Discard the innermost iterator (`break` out of a `for`).
    PopIter,
    /// Pop into the statement-value register.
    SetLast,
    /// Null the statement-value register.
    ClearLast,
    /// Pop the return value and unwind one frame (or finish the run).
    Return,
    /// Return the statement-value register (function fall-off-the-end
    /// and end-of-program).
    ReturnLast,
    /// `break`/`continue` reached outside any loop: raise the
    /// tree-walker's error at the enclosing top-level statement's line.
    FailLoopFlow,
    /// Index assignment whose base is not a plain variable.
    FailIndexBase,
    /// Pop a trial list and run `defs[def]` once per item (the sweep
    /// body, compiled like a one-parameter function) with an
    /// independent step budget and captured output per body; push the
    /// list of per-body outcome maps. The stack engine always runs the
    /// bodies sequentially inline.
    ParForEach {
        /// Index into `Proto::defs` of the compiled body.
        def: u32,
    },
}

/// A compiled function (or the program's top level).
#[derive(Debug)]
pub(crate) struct Proto {
    /// Number of parameters (local slots `0..params`).
    pub params: u32,
    /// Total local slots the frame needs.
    pub locals: u32,
    /// Instructions; always terminated by [`Op::ReturnLast`].
    pub code: Box<[Op]>,
    /// Source line of each instruction (for error reporting).
    pub lines: Box<[u32]>,
    /// Per-bump lines for merged [`Op::Step`] ops.
    pub step_lines: Box<[u32]>,
    /// Constant pool (deduplicated).
    pub consts: Box<[Value]>,
    /// Nested function bodies, referenced by [`Op::DefineFn`].
    pub defs: Box<[Arc<Proto>]>,
}

/// Compiles a parsed program against an interpreter's persistent
/// interner / global-slot / function tables. Infallible: all language
/// errors are runtime errors by the reference semantics, so the
/// compiler lowers even statically-doomed code (e.g. `break` outside a
/// loop) to ops that raise the identical error when reached.
pub(crate) fn compile(
    program: &Program,
    interner: &mut Interner,
    globals: &mut Globals,
    fns: &mut FnTable,
) -> Arc<Proto> {
    let mut shared = Shared {
        interner,
        globals,
        fns,
    };
    compile_proto(&mut shared, &[], &program.statements, true)
}

/// Interpreter-wide tables the compiler interns into.
struct Shared<'a> {
    interner: &'a mut Interner,
    globals: &'a mut Globals,
    fns: &'a mut FnTable,
}

/// Constant-pool dedup key (`f64` by bit pattern so NaN/−0.0 are kept
/// distinct exactly as written).
#[derive(PartialEq, Eq, Hash)]
enum ConstKey {
    Null,
    Bool(bool),
    Num(u64),
    Str(String),
}

struct ScopeVar {
    sym: Symbol,
    slot: u32,
}

struct ScopeFrame {
    vars: Vec<ScopeVar>,
    /// `next_slot` watermark to rewind to on block exit (slot reuse).
    base_slot: u32,
}

struct LoopCtx {
    /// `continue` target (loop head).
    cont_target: usize,
    /// `break` jump sites to patch once the exit label is known.
    breaks: Vec<usize>,
}

enum Resolved {
    Local(u32),
    Global(u32),
}

/// A fused-op operand before packing.
enum Simple {
    Local(u32),
    Global(u32),
    Const(Value),
}

/// Placeholder jump target, patched once the label is bound.
const PATCH: u32 = u32::MAX;

struct ProtoCompiler<'a, 'b> {
    sh: &'a mut Shared<'b>,
    code: Vec<Op>,
    lines: Vec<u32>,
    step_lines: Vec<u32>,
    /// Lines of bumps not yet flushed into a `Step` op.
    pending: Vec<u32>,
    consts: Vec<Value>,
    const_map: HashMap<ConstKey, u32>,
    defs: Vec<Arc<Proto>>,
    scopes: Vec<ScopeFrame>,
    next_slot: u32,
    max_slots: u32,
    is_main: bool,
    loops: Vec<LoopCtx>,
    /// Line of the top-level statement currently being compiled; the
    /// tree-walker reports `break`/`continue`-outside-loop there.
    toplevel_line: u32,
    /// Global slots proven defined at this point: targets of earlier
    /// top-level `DefineGlobal`s of *this* program. Top-level
    /// statements run in order and globals are never undefined, so any
    /// later access in the program (including inside loops, `if`s and
    /// later statements — but not function bodies, which compile as
    /// separate protos) can skip the defined check.
    defined: HashSet<u32>,
}

fn compile_proto(sh: &mut Shared, params: &[String], body: &[Stmt], is_main: bool) -> Arc<Proto> {
    let mut c = ProtoCompiler {
        sh,
        code: Vec::new(),
        lines: Vec::new(),
        step_lines: Vec::new(),
        pending: Vec::new(),
        consts: Vec::new(),
        const_map: HashMap::new(),
        defs: Vec::new(),
        scopes: vec![ScopeFrame {
            vars: Vec::new(),
            base_slot: 0,
        }],
        next_slot: 0,
        max_slots: 0,
        is_main,
        loops: Vec::new(),
        toplevel_line: 0,
        defined: HashSet::new(),
    };
    for p in params {
        c.define_local(p);
    }
    for s in body {
        c.stmt(s);
    }
    c.flush();
    c.code.push(Op::ReturnLast);
    c.lines.push(0);
    Arc::new(Proto {
        params: params.len() as u32,
        locals: c.max_slots,
        code: c.code.into_boxed_slice(),
        lines: c.lines.into_boxed_slice(),
        step_lines: c.step_lines.into_boxed_slice(),
        consts: c.consts.into_boxed_slice(),
        defs: c.defs.into_boxed_slice(),
    })
}

/// Folds a constant-only expression to its value, or `None` when the
/// expression could have effects, errors, or non-constant inputs.
/// Division/modulo fold only with a nonzero divisor so `1 / 0` still
/// raises its runtime error at the right line and step count.
pub(crate) fn fold(e: &Expr) -> Option<Value> {
    match &e.kind {
        ExprKind::Null => Some(Value::Null),
        ExprKind::Bool(b) => Some(Value::Bool(*b)),
        ExprKind::Num(n) => Some(Value::Num(*n)),
        ExprKind::Str(s) => Some(Value::Str(s.clone())),
        ExprKind::Unary(UnOp::Neg, inner) => match fold(inner)? {
            Value::Num(n) => Some(Value::Num(-n)),
            _ => None,
        },
        ExprKind::Unary(UnOp::Not, inner) => Some(Value::Bool(!fold(inner)?.truthy())),
        ExprKind::Binary(op, lhs, rhs) => {
            let (Value::Num(a), Value::Num(b)) = (fold(lhs)?, fold(rhs)?) else {
                return None;
            };
            match op {
                BinOp::Add => Some(Value::Num(a + b)),
                BinOp::Sub => Some(Value::Num(a - b)),
                BinOp::Mul => Some(Value::Num(a * b)),
                BinOp::Div if b != 0.0 => Some(Value::Num(a / b)),
                BinOp::Rem if b != 0.0 => Some(Value::Num(a % b)),
                _ => None,
            }
        }
        _ => None,
    }
}

impl ProtoCompiler<'_, '_> {
    /// Records one would-be tree-walker bump at `line`.
    fn bump(&mut self, line: usize) {
        self.pending.push(line as u32);
    }

    /// Flushes pending bumps into a single merged `Step` op.
    fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let meta = self.step_lines.len() as u32;
        self.step_lines.extend_from_slice(&self.pending);
        let n = self.pending.len() as u32;
        self.lines.push(self.pending[0]);
        self.code.push(Op::Step { n, meta });
        self.pending.clear();
    }

    fn emit(&mut self, op: Op, line: usize) {
        self.flush();
        self.code.push(op);
        self.lines.push(line as u32);
    }

    /// Emits a *pure* op — one that cannot fail and touches only
    /// transient state — without flushing pending bumps, so runs of
    /// bumps merge across it (see the module docs for why this is
    /// unobservable).
    fn emit_pure(&mut self, op: Op, line: usize) {
        self.code.push(op);
        self.lines.push(line as u32);
    }

    /// Emits a jump-family op with a placeholder target; returns its
    /// address for patching.
    fn emit_patch(&mut self, op: Op, line: usize) -> usize {
        self.emit(op, line);
        self.code.len() - 1
    }

    /// Emits the falsy-branch of a condition, fusing a trailing
    /// comparison op into a single [`Op::CmpJumpFalse`]. Returns the
    /// jump's address for patching.
    fn emit_cond_jump(&mut self, line: usize) -> usize {
        if self.pending.is_empty() {
            let cmp = match self.code.last() {
                Some(Op::Eq) => Some(Cmp::Eq),
                Some(Op::Ne) => Some(Cmp::Ne),
                Some(Op::Lt) => Some(Cmp::Lt),
                Some(Op::Le) => Some(Cmp::Le),
                Some(Op::Gt) => Some(Cmp::Gt),
                Some(Op::Ge) => Some(Cmp::Ge),
                _ => None,
            };
            if let Some(cmp) = cmp {
                // Reuse the comparison's line so its type error (and
                // the fused op's) report identically.
                let cline = *self.lines.last().expect("line per op");
                self.code.pop();
                self.lines.pop();
                self.code.push(Op::CmpJumpFalse { cmp, target: PATCH });
                self.lines.push(cline);
                return self.code.len() - 1;
            }
        }
        self.emit_patch(Op::JumpIfFalse(PATCH), line)
    }

    /// Binds a label at the current position (flushing pending bumps so
    /// jumps to the label skip exactly the code before it).
    fn here(&mut self) -> usize {
        self.flush();
        self.code.len()
    }

    fn patch(&mut self, at: usize, target: usize) {
        let t = target as u32;
        match &mut self.code[at] {
            Op::Jump(x) | Op::JumpIfFalse(x) | Op::AndJump(x) | Op::OrJump(x) => *x = t,
            Op::CmpJumpFalse { target, .. } | Op::CmpOperandsJumpFalse { target, .. } => {
                *target = t
            }
            Op::ForNext { exit, .. } => *exit = t,
            other => unreachable!("patching non-jump op {other:?}"),
        }
    }

    fn const_id(&mut self, v: Value) -> u32 {
        let key = match &v {
            Value::Null => ConstKey::Null,
            Value::Bool(b) => ConstKey::Bool(*b),
            Value::Num(n) => ConstKey::Num(n.to_bits()),
            Value::Str(s) => ConstKey::Str(s.clone()),
            // Non-literal values never reach the pool.
            _ => {
                self.consts.push(v);
                return self.consts.len() as u32 - 1;
            }
        };
        if let Some(&id) = self.const_map.get(&key) {
            return id;
        }
        let id = self.consts.len() as u32;
        self.consts.push(v);
        self.const_map.insert(key, id);
        id
    }

    fn open_scope(&mut self) {
        self.scopes.push(ScopeFrame {
            vars: Vec::new(),
            base_slot: self.next_slot,
        });
    }

    fn close_scope(&mut self) {
        let frame = self.scopes.pop().expect("scope underflow");
        self.next_slot = frame.base_slot;
    }

    fn define_local(&mut self, name: &str) -> u32 {
        let sym = self.sh.interner.intern(name);
        let slot = self.next_slot;
        self.next_slot += 1;
        self.max_slots = self.max_slots.max(self.next_slot);
        self.scopes
            .last_mut()
            .expect("at least one scope")
            .vars
            .push(ScopeVar { sym, slot });
        slot
    }

    fn resolve(&mut self, name: &str) -> Resolved {
        let sym = self.sh.interner.intern(name);
        for scope in self.scopes.iter().rev() {
            for v in scope.vars.iter().rev() {
                if v.sym == sym {
                    return Resolved::Local(v.slot);
                }
            }
        }
        Resolved::Global(self.sh.globals.ensure(sym))
    }

    /// Compiles a `{ ... }` block: fresh scope, statements, and a
    /// `ClearLast` when empty (an empty block's value is `null`).
    fn block(&mut self, body: &[Stmt], line: usize) {
        if body.is_empty() {
            self.emit(Op::ClearLast, line);
            return;
        }
        self.open_scope();
        for s in body {
            self.stmt(s);
        }
        self.close_scope();
    }

    fn stmt(&mut self, s: &Stmt) {
        if self.scopes.len() == 1 {
            self.toplevel_line = s.line as u32;
        }
        self.bump(s.line);
        match &s.kind {
            StmtKind::Let(name, e) => {
                self.expr(e);
                if self.is_main && self.scopes.len() == 1 {
                    // Top-level `let` defines (or redefines) a global.
                    let sym = self.sh.interner.intern(name);
                    let g = self.sh.globals.ensure(sym);
                    self.emit(Op::DefineGlobal(g), s.line);
                    self.defined.insert(g);
                } else {
                    let slot = self.define_local(name);
                    self.emit_pure(Op::StoreLocal(slot), s.line);
                }
            }
            StmtKind::Assign(name, e) => {
                if self.try_fused_assign(name, e) {
                    return;
                }
                self.expr(e);
                match self.resolve(name) {
                    Resolved::Local(slot) => self.emit_pure(Op::StoreLocal(slot), s.line),
                    Resolved::Global(g) if self.defined.contains(&g) => {
                        self.emit(Op::StoreGlobalFast(g), s.line)
                    }
                    Resolved::Global(g) => self.emit(Op::StoreGlobal(g), s.line),
                }
            }
            StmtKind::IndexAssign(base, index, e) => {
                // Value then index, matching the tree-walker's order, so
                // their errors (and bumps) happen before the base check.
                self.expr(e);
                self.expr(index);
                let op = match &base.kind {
                    ExprKind::Var(name) => match self.resolve(name) {
                        Resolved::Local(slot) => Op::IndexSetLocal(slot),
                        Resolved::Global(g) => Op::IndexSetGlobal(g),
                    },
                    _ => Op::FailIndexBase,
                };
                self.emit(op, s.line);
            }
            StmtKind::Expr(e) => {
                self.expr(e);
                self.emit_pure(Op::SetLast, s.line);
            }
            StmtKind::If(cond, then_block, else_block) => {
                let jf = match self.try_fused_cond(cond) {
                    Some(at) => at,
                    None => {
                        self.expr(cond);
                        self.emit_cond_jump(s.line)
                    }
                };
                self.block(then_block, s.line);
                let jend = self.emit_patch(Op::Jump(PATCH), s.line);
                let l_else = self.here();
                self.patch(jf, l_else);
                match else_block {
                    Some(eb) => self.block(eb, s.line),
                    // No else: the statement's value is null.
                    None => self.emit(Op::ClearLast, s.line),
                }
                let l_end = self.here();
                self.patch(jend, l_end);
            }
            StmtKind::While(cond, body) => {
                let l_cond = self.here();
                let jf = match self.try_fused_cond(cond) {
                    Some(at) => at,
                    None => {
                        self.expr(cond);
                        self.emit_cond_jump(s.line)
                    }
                };
                // The tree-walker charges one step per iteration.
                self.bump(s.line);
                self.loops.push(LoopCtx {
                    cont_target: l_cond,
                    breaks: Vec::new(),
                });
                self.open_scope();
                for st in body {
                    self.stmt(st);
                }
                self.close_scope();
                self.emit(Op::Jump(l_cond as u32), s.line);
                let ctx = self.loops.pop().expect("loop ctx");
                let l_exit = self.here();
                self.patch(jf, l_exit);
                for b in ctx.breaks {
                    self.patch(b, l_exit);
                }
                self.emit(Op::ClearLast, s.line);
            }
            StmtKind::For(var, iter, body) => {
                self.expr(iter);
                self.emit(Op::ForPrep, s.line);
                // The loop variable and the body share one per-iteration
                // scope, exactly like the tree-walker's.
                self.open_scope();
                let slot = self.define_local(var);
                let l_next = self.here();
                let fornext = self.emit_patch(Op::ForNext { slot, exit: PATCH }, s.line);
                self.bump(s.line);
                self.loops.push(LoopCtx {
                    cont_target: l_next,
                    breaks: Vec::new(),
                });
                for st in body {
                    self.stmt(st);
                }
                self.emit(Op::Jump(l_next as u32), s.line);
                self.close_scope();
                let ctx = self.loops.pop().expect("loop ctx");
                let l_brk = self.here();
                self.emit(Op::PopIter, s.line);
                for b in ctx.breaks {
                    self.patch(b, l_brk);
                }
                let l_exit = self.here();
                self.patch(fornext, l_exit);
                self.emit(Op::ClearLast, s.line);
            }
            StmtKind::FnDef(def) => {
                let sym = self.sh.interner.intern(&def.name);
                let fn_id = self.sh.fns.ensure(sym);
                let proto = compile_proto(self.sh, &def.params, &def.body, false);
                let d = self.defs.len() as u32;
                self.defs.push(proto);
                self.emit(Op::DefineFn { fn_id, def: d }, s.line);
            }
            StmtKind::Return(e) => {
                match e {
                    Some(e) => self.expr(e),
                    None => {
                        let id = self.const_id(Value::Null);
                        self.emit(Op::Const(id), s.line);
                    }
                }
                self.emit(Op::Return, s.line);
            }
            StmtKind::Break => match self.loops.last_mut() {
                Some(_) => {
                    let j = self.emit_patch(Op::Jump(PATCH), s.line);
                    self.loops.last_mut().expect("loop ctx").breaks.push(j);
                }
                None => {
                    let line = self.toplevel_line as usize;
                    self.emit(Op::FailLoopFlow, line);
                }
            },
            StmtKind::Continue => match self.loops.last() {
                Some(ctx) => {
                    let t = ctx.cont_target as u32;
                    self.emit(Op::Jump(t), s.line);
                }
                None => {
                    let line = self.toplevel_line as usize;
                    self.emit(Op::FailLoopFlow, line);
                }
            },
        }
    }

    fn expr(&mut self, e: &Expr) {
        if let Some(v) = fold(e) {
            // Constant subtree: charge its bumps (pre-order, matching
            // the walk the tree-walker would have done) and push the
            // pooled value.
            self.fold_steps(e);
            let id = self.const_id(v);
            self.emit_pure(Op::Const(id), e.line);
            return;
        }
        self.bump(e.line);
        match &e.kind {
            // Literals are always folded above; kept for robustness.
            ExprKind::Null => {
                let id = self.const_id(Value::Null);
                self.emit_pure(Op::Const(id), e.line);
            }
            ExprKind::Bool(b) => {
                let id = self.const_id(Value::Bool(*b));
                self.emit_pure(Op::Const(id), e.line);
            }
            ExprKind::Num(n) => {
                let id = self.const_id(Value::Num(*n));
                self.emit_pure(Op::Const(id), e.line);
            }
            ExprKind::Str(s) => {
                let id = self.const_id(Value::Str(s.clone()));
                self.emit_pure(Op::Const(id), e.line);
            }
            ExprKind::Var(name) => match self.resolve(name) {
                Resolved::Local(slot) => self.emit_pure(Op::LoadLocal(slot), e.line),
                Resolved::Global(g) if self.defined.contains(&g) => {
                    self.emit_pure(Op::LoadGlobalFast(g), e.line)
                }
                Resolved::Global(g) => self.emit(Op::LoadGlobal(g), e.line),
            },
            ExprKind::List(items) => {
                for item in items {
                    self.expr(item);
                }
                self.emit(Op::MakeList(items.len() as u32), e.line);
            }
            ExprKind::Map(pairs) => {
                for (k, v) in pairs {
                    let id = self.const_id(Value::Str(k.clone()));
                    self.emit_pure(Op::Const(id), e.line);
                    self.expr(v);
                }
                self.emit(Op::MakeMap(pairs.len() as u32), e.line);
            }
            ExprKind::Unary(op, inner) => {
                self.expr(inner);
                let op = match op {
                    UnOp::Neg => Op::Neg,
                    UnOp::Not => Op::Not,
                };
                self.emit(op, e.line);
            }
            ExprKind::Binary(BinOp::And, lhs, rhs) => {
                self.expr(lhs);
                let j = self.emit_patch(Op::AndJump(PATCH), e.line);
                self.expr(rhs);
                self.emit(Op::ToBool, e.line);
                let end = self.here();
                self.patch(j, end);
            }
            ExprKind::Binary(BinOp::Or, lhs, rhs) => {
                self.expr(lhs);
                let j = self.emit_patch(Op::OrJump(PATCH), e.line);
                self.expr(rhs);
                self.emit(Op::ToBool, e.line);
                let end = self.here();
                self.patch(j, end);
            }
            ExprKind::Binary(op, lhs, rhs) => {
                self.expr(lhs);
                self.expr(rhs);
                let op = match op {
                    BinOp::Add => Op::Add,
                    BinOp::Sub => Op::Sub,
                    BinOp::Mul => Op::Mul,
                    BinOp::Div => Op::Div,
                    BinOp::Rem => Op::Rem,
                    BinOp::Eq => Op::Eq,
                    BinOp::Ne => Op::Ne,
                    BinOp::Lt => Op::Lt,
                    BinOp::Le => Op::Le,
                    BinOp::Gt => Op::Gt,
                    BinOp::Ge => Op::Ge,
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                };
                self.emit(op, e.line);
            }
            ExprKind::Call(name, args) => {
                for a in args {
                    self.expr(a);
                }
                let argc = args.len() as u32;
                // Builtins shadow user and host functions by name, as in
                // the tree-walker's resolution order.
                let op = match Builtin::from_name(name) {
                    Some(builtin) => Op::CallBuiltin { builtin, argc },
                    None => {
                        let sym = self.sh.interner.intern(name);
                        let fn_id = self.sh.fns.ensure(sym);
                        Op::CallFn { fn_id, argc }
                    }
                };
                self.emit(op, e.line);
            }
            ExprKind::Index(base, index) => {
                self.expr(base);
                self.expr(index);
                self.emit(Op::Index, e.line);
            }
            ExprKind::ParForEach(var, iter, body) => {
                self.expr(iter);
                // The body compiles exactly like a one-parameter
                // function: its own proto, the loop variable as local
                // slot 0, `is_main` false so body-level `let`s stay
                // local. Global writes are rejected at runtime by the
                // VM's par-mode checks, which also cover functions
                // *called* from the body.
                let proto = compile_proto(self.sh, std::slice::from_ref(var), body, false);
                let d = self.defs.len() as u32;
                self.defs.push(proto);
                self.emit(Op::ParForEach { def: d }, e.line);
            }
        }
    }

    /// Classifies an expression as a fused-op operand: a local, a
    /// proven-defined global (both pure loads), or a folded constant.
    /// `None` means it needs the general stack path.
    fn classify(&mut self, e: &Expr) -> Option<Simple> {
        if let Some(v) = fold(e) {
            return Some(Simple::Const(v));
        }
        if let ExprKind::Var(name) = &e.kind {
            return match self.resolve(name) {
                Resolved::Local(slot) => Some(Simple::Local(slot)),
                Resolved::Global(g) if self.defined.contains(&g) => Some(Simple::Global(g)),
                // An unproven global load can fail, which would break
                // the bump/error ordering a fused op assumes.
                Resolved::Global(_) => None,
            };
        }
        None
    }

    /// Charges the bumps the tree-walker would for a fused operand.
    fn charge_operand(&mut self, e: &Expr, s: &Simple) {
        match s {
            Simple::Const(_) => self.fold_steps(e),
            _ => self.bump(e.line),
        }
    }

    fn pack(&mut self, s: Simple) -> u32 {
        match s {
            Simple::Local(slot) => pack_operand(OPERAND_LOCAL, slot),
            Simple::Global(g) => pack_operand(OPERAND_GLOBAL, g),
            Simple::Const(v) => {
                let id = self.const_id(v);
                pack_operand(OPERAND_CONST, id)
            }
        }
    }

    /// Compiles `name = lhs op rhs` into a single [`Op::FusedBin`] when
    /// the destination and both operands are simple. Returns `false`
    /// (emitting nothing) when the pattern doesn't apply.
    fn try_fused_assign(&mut self, name: &str, e: &Expr) -> bool {
        // A fully constant RHS folds better on the general path.
        if fold(e).is_some() {
            return false;
        }
        let ExprKind::Binary(bop, l, r) = &e.kind else {
            return false;
        };
        let op = match bop {
            BinOp::Add => Arith::Add,
            BinOp::Sub => Arith::Sub,
            BinOp::Mul => Arith::Mul,
            BinOp::Div => Arith::Div,
            BinOp::Rem => Arith::Rem,
            _ => return false,
        };
        let dst = match self.resolve(name) {
            Resolved::Local(slot) => pack_operand(OPERAND_LOCAL, slot),
            Resolved::Global(g) if self.defined.contains(&g) => pack_operand(OPERAND_GLOBAL, g),
            // A store to an unproven global can fail after the RHS
            // evaluates; keep the checked path.
            Resolved::Global(_) => return false,
        };
        let (Some(cl), Some(cr)) = (self.classify(l), self.classify(r)) else {
            return false;
        };
        // Same pre-order bumps as expr() would charge.
        self.bump(e.line);
        self.charge_operand(l, &cl);
        self.charge_operand(r, &cr);
        let (lhs, rhs) = (self.pack(cl), self.pack(cr));
        self.emit(Op::FusedBin { op, dst, lhs, rhs }, e.line);
        true
    }

    /// Compiles an `if`/`while` condition of the shape
    /// `simple cmp simple` into a single [`Op::CmpOperandsJumpFalse`];
    /// returns its address for patching, or `None` for the general
    /// `expr` + [`Self::emit_cond_jump`] path.
    fn try_fused_cond(&mut self, cond: &Expr) -> Option<usize> {
        if fold(cond).is_some() {
            return None;
        }
        let ExprKind::Binary(bop, l, r) = &cond.kind else {
            return None;
        };
        let cmp = match bop {
            BinOp::Eq => Cmp::Eq,
            BinOp::Ne => Cmp::Ne,
            BinOp::Lt => Cmp::Lt,
            BinOp::Le => Cmp::Le,
            BinOp::Gt => Cmp::Gt,
            BinOp::Ge => Cmp::Ge,
            _ => return None,
        };
        let cl = self.classify(l)?;
        let cr = self.classify(r)?;
        self.bump(cond.line);
        self.charge_operand(l, &cl);
        self.charge_operand(r, &cr);
        let (lhs, rhs) = (self.pack(cl), self.pack(cr));
        Some(self.emit_patch(
            Op::CmpOperandsJumpFalse {
                cmp,
                lhs,
                rhs,
                target: PATCH,
            },
            cond.line,
        ))
    }

    /// Charges the pre-order bumps of a folded constant subtree.
    fn fold_steps(&mut self, e: &Expr) {
        self.bump(e.line);
        match &e.kind {
            ExprKind::Unary(_, inner) => self.fold_steps(inner),
            ExprKind::Binary(_, lhs, rhs) => {
                self.fold_steps(lhs);
                self.fold_steps(rhs);
            }
            _ => {}
        }
    }
}
