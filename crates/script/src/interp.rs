//! Tree-walking interpreter with a host-function registry.

use crate::ast::*;
use crate::parser::parse;
use crate::value::Value;
use crate::{Result, ScriptError};
use std::collections::{BTreeMap, HashMap};

/// Signature of a host function: positional arguments in, value out.
/// Host errors are plain strings; the interpreter attaches the call site.
pub type HostFn = Box<dyn FnMut(Vec<Value>) -> std::result::Result<Value, String>>;

type Scope = BTreeMap<String, Value>;

enum Flow {
    Normal(Value),
    Return(Value),
    Break,
    Continue,
}

/// The script interpreter.
///
/// An interpreter owns global state across [`Interpreter::run`] calls, so
/// a host can define bindings once and evaluate several scripts against
/// them (as PerfExplorer does with its session objects).
pub struct Interpreter {
    host_fns: HashMap<String, HostFn>,
    user_fns: HashMap<String, FnDef>,
    /// Call frames; each frame is a stack of block scopes. Frame 0 /
    /// scope 0 is the global scope.
    frames: Vec<Vec<Scope>>,
    output: Vec<String>,
    steps: u64,
    step_limit: u64,
}

impl Default for Interpreter {
    fn default() -> Self {
        Interpreter::new()
    }
}

impl Interpreter {
    /// Creates an interpreter with the default step budget.
    pub fn new() -> Self {
        Interpreter {
            host_fns: HashMap::new(),
            user_fns: HashMap::new(),
            frames: vec![vec![Scope::new()]],
            output: Vec::new(),
            steps: 0,
            step_limit: 50_000_000,
        }
    }

    /// Overrides the execution step budget (each statement and expression
    /// node costs one step). Guards runaway `while` loops.
    pub fn with_step_limit(mut self, limit: u64) -> Self {
        self.step_limit = limit;
        self
    }

    /// Registers a host function callable from scripts.
    pub fn register(
        &mut self,
        name: &str,
        f: impl FnMut(Vec<Value>) -> std::result::Result<Value, String> + 'static,
    ) {
        self.host_fns.insert(name.to_string(), Box::new(f));
    }

    /// Defines a global variable visible to scripts.
    pub fn set_global(&mut self, name: &str, value: Value) {
        self.frames[0][0].insert(name.to_string(), value);
    }

    /// Reads a global variable after a run.
    pub fn get_global(&self, name: &str) -> Option<&Value> {
        self.frames[0][0].get(name)
    }

    /// Takes the accumulated `print` output.
    pub fn take_output(&mut self) -> Vec<String> {
        std::mem::take(&mut self.output)
    }

    /// Parses and executes a script, returning the value of its final
    /// expression statement (or [`Value::Null`]).
    pub fn run(&mut self, src: &str) -> Result<Value> {
        let program = parse(src)?;
        self.steps = 0;
        let mut last = Value::Null;
        for stmt in &program.statements {
            match self.exec(stmt)? {
                Flow::Normal(v) => last = v,
                Flow::Return(v) => return Ok(v),
                Flow::Break | Flow::Continue => {
                    return Err(ScriptError::runtime(
                        stmt.line,
                        "break/continue outside loop",
                    ))
                }
            }
        }
        Ok(last)
    }

    fn bump(&mut self, line: usize) -> Result<()> {
        self.steps += 1;
        if self.steps > self.step_limit {
            return Err(ScriptError::runtime(line, "step limit exceeded"));
        }
        Ok(())
    }

    fn lookup(&self, name: &str) -> Option<&Value> {
        let frame = self.frames.last().expect("at least global frame");
        for scope in frame.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Some(v);
            }
        }
        // Fall back to globals (frame 0, scope 0) from inside functions.
        self.frames[0][0].get(name)
    }

    fn assign(&mut self, name: &str, value: Value, line: usize) -> Result<()> {
        let frame = self.frames.last_mut().expect("at least global frame");
        for scope in frame.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                *slot = value;
                return Ok(());
            }
        }
        if let Some(slot) = self.frames[0][0].get_mut(name) {
            *slot = value;
            return Ok(());
        }
        Err(ScriptError::runtime(
            line,
            format!("assignment to undefined variable {name:?}"),
        ))
    }

    fn exec_block(&mut self, body: &[Stmt]) -> Result<Flow> {
        self.frames.last_mut().expect("frame").push(Scope::new());
        let mut flow = Flow::Normal(Value::Null);
        for stmt in body {
            match self.exec(stmt)? {
                Flow::Normal(v) => flow = Flow::Normal(v),
                other => {
                    flow = other;
                    break;
                }
            }
        }
        self.frames.last_mut().expect("frame").pop();
        Ok(flow)
    }

    fn exec(&mut self, stmt: &Stmt) -> Result<Flow> {
        self.bump(stmt.line)?;
        match &stmt.kind {
            StmtKind::Let(name, e) => {
                let v = self.eval(e)?;
                self.frames
                    .last_mut()
                    .expect("frame")
                    .last_mut()
                    .expect("scope")
                    .insert(name.clone(), v);
                Ok(Flow::Normal(Value::Null))
            }
            StmtKind::Assign(name, e) => {
                let v = self.eval(e)?;
                self.assign(name, v, stmt.line)?;
                Ok(Flow::Normal(Value::Null))
            }
            StmtKind::IndexAssign(base, index, e) => {
                let value = self.eval(e)?;
                let idx = self.eval(index)?;
                // Only direct variables support index assignment; nested
                // containers are updated by rebuilding in script code.
                let ExprKind::Var(name) = &base.kind else {
                    return Err(ScriptError::runtime(
                        stmt.line,
                        "index assignment requires a variable base",
                    ));
                };
                let mut container = self.lookup(name).cloned().ok_or_else(|| {
                    ScriptError::runtime(stmt.line, format!("undefined variable {name:?}"))
                })?;
                match (&mut container, &idx) {
                    (Value::List(items), Value::Num(n)) => {
                        let i = *n as usize;
                        if n.fract() != 0.0 || i >= items.len() {
                            return Err(ScriptError::runtime(
                                stmt.line,
                                format!("list index {n} out of range (len {})", items.len()),
                            ));
                        }
                        items[i] = value;
                    }
                    (Value::Map(m), Value::Str(k)) => {
                        m.insert(k.clone(), value);
                    }
                    (c, i) => {
                        return Err(ScriptError::runtime(
                            stmt.line,
                            format!("cannot index {} with {}", c.type_name(), i.type_name()),
                        ))
                    }
                }
                self.assign(name, container, stmt.line)?;
                Ok(Flow::Normal(Value::Null))
            }
            StmtKind::Expr(e) => Ok(Flow::Normal(self.eval(e)?)),
            StmtKind::If(cond, then_block, else_block) => {
                if self.eval(cond)?.truthy() {
                    self.exec_block(then_block)
                } else if let Some(eb) = else_block {
                    self.exec_block(eb)
                } else {
                    Ok(Flow::Normal(Value::Null))
                }
            }
            StmtKind::While(cond, body) => {
                while self.eval(cond)?.truthy() {
                    self.bump(stmt.line)?;
                    match self.exec_block(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal(_) | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal(Value::Null))
            }
            StmtKind::For(var, iter, body) => {
                let iterable = self.eval(iter)?;
                let items: Vec<Value> = match iterable {
                    Value::List(v) => v,
                    Value::Map(m) => m.keys().map(|k| Value::Str(k.clone())).collect(),
                    other => {
                        return Err(ScriptError::runtime(
                            stmt.line,
                            format!("cannot iterate a {}", other.type_name()),
                        ))
                    }
                };
                for item in items {
                    self.bump(stmt.line)?;
                    self.frames.last_mut().expect("frame").push(Scope::new());
                    self.frames
                        .last_mut()
                        .expect("frame")
                        .last_mut()
                        .expect("scope")
                        .insert(var.clone(), item);
                    let mut result = Flow::Normal(Value::Null);
                    for s in body {
                        match self.exec(s)? {
                            Flow::Normal(_) => {}
                            other => {
                                result = other;
                                break;
                            }
                        }
                    }
                    self.frames.last_mut().expect("frame").pop();
                    match result {
                        Flow::Break => return Ok(Flow::Normal(Value::Null)),
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal(_) | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal(Value::Null))
            }
            StmtKind::FnDef(def) => {
                self.user_fns.insert(def.name.clone(), def.clone());
                Ok(Flow::Normal(Value::Null))
            }
            StmtKind::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e)?,
                    None => Value::Null,
                };
                Ok(Flow::Return(v))
            }
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
        }
    }

    fn eval(&mut self, e: &Expr) -> Result<Value> {
        self.bump(e.line)?;
        match &e.kind {
            ExprKind::Null => Ok(Value::Null),
            ExprKind::Bool(b) => Ok(Value::Bool(*b)),
            ExprKind::Num(n) => Ok(Value::Num(*n)),
            ExprKind::Str(s) => Ok(Value::Str(s.clone())),
            ExprKind::Var(name) => self.lookup(name).cloned().ok_or_else(|| {
                ScriptError::runtime(e.line, format!("undefined variable {name:?}"))
            }),
            ExprKind::List(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(self.eval(item)?);
                }
                Ok(Value::List(out))
            }
            ExprKind::Map(pairs) => {
                let mut m = BTreeMap::new();
                for (k, v) in pairs {
                    m.insert(k.clone(), self.eval(v)?);
                }
                Ok(Value::Map(m))
            }
            ExprKind::Unary(op, inner) => {
                let v = self.eval(inner)?;
                match op {
                    UnOp::Neg => v.as_num().map(|n| Value::Num(-n)).ok_or_else(|| {
                        ScriptError::runtime(e.line, format!("cannot negate a {}", v.type_name()))
                    }),
                    UnOp::Not => Ok(Value::Bool(!v.truthy())),
                }
            }
            ExprKind::Binary(op, lhs, rhs) => self.eval_binary(e.line, *op, lhs, rhs),
            ExprKind::Index(base, index) => {
                let b = self.eval(base)?;
                let i = self.eval(index)?;
                match (&b, &i) {
                    (Value::List(items), Value::Num(n)) => {
                        let idx = *n as usize;
                        if n.fract() != 0.0 || *n < 0.0 || idx >= items.len() {
                            Err(ScriptError::runtime(
                                e.line,
                                format!("list index {n} out of range (len {})", items.len()),
                            ))
                        } else {
                            Ok(items[idx].clone())
                        }
                    }
                    (Value::Map(m), Value::Str(k)) => m.get(k).cloned().ok_or_else(|| {
                        ScriptError::runtime(e.line, format!("missing map key {k:?}"))
                    }),
                    (Value::Str(s), Value::Num(n)) => {
                        let idx = *n as usize;
                        s.chars()
                            .nth(idx)
                            .map(|c| Value::Str(c.to_string()))
                            .ok_or_else(|| {
                                ScriptError::runtime(
                                    e.line,
                                    format!("string index {n} out of range"),
                                )
                            })
                    }
                    (b, i) => Err(ScriptError::runtime(
                        e.line,
                        format!("cannot index {} with {}", b.type_name(), i.type_name()),
                    )),
                }
            }
            ExprKind::Call(name, args) => {
                // Short-circuit-free argument evaluation.
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(self.eval(a)?);
                }
                self.call(name, values, e.line)
            }
        }
    }

    fn eval_binary(&mut self, line: usize, op: BinOp, lhs: &Expr, rhs: &Expr) -> Result<Value> {
        // Short-circuit logic first.
        if matches!(op, BinOp::And | BinOp::Or) {
            let l = self.eval(lhs)?;
            return match (op, l.truthy()) {
                (BinOp::And, false) => Ok(Value::Bool(false)),
                (BinOp::Or, true) => Ok(Value::Bool(true)),
                _ => Ok(Value::Bool(self.eval(rhs)?.truthy())),
            };
        }
        let l = self.eval(lhs)?;
        let r = self.eval(rhs)?;
        let type_err = |op: &str| {
            ScriptError::runtime(
                line,
                format!(
                    "cannot apply {op} to {} and {}",
                    l.type_name(),
                    r.type_name()
                ),
            )
        };
        match op {
            BinOp::Add => match (&l, &r) {
                (Value::Num(a), Value::Num(b)) => Ok(Value::Num(a + b)),
                (Value::List(a), Value::List(b)) => {
                    let mut out = a.clone();
                    out.extend(b.iter().cloned());
                    Ok(Value::List(out))
                }
                (Value::Str(_), _) | (_, Value::Str(_)) => Ok(Value::Str(format!("{l}{r}"))),
                _ => Err(type_err("+")),
            },
            BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => {
                let (Some(a), Some(b)) = (l.as_num(), r.as_num()) else {
                    return Err(type_err(match op {
                        BinOp::Sub => "-",
                        BinOp::Mul => "*",
                        BinOp::Div => "/",
                        _ => "%",
                    }));
                };
                match op {
                    BinOp::Sub => Ok(Value::Num(a - b)),
                    BinOp::Mul => Ok(Value::Num(a * b)),
                    BinOp::Div => {
                        if b == 0.0 {
                            Err(ScriptError::runtime(line, "division by zero"))
                        } else {
                            Ok(Value::Num(a / b))
                        }
                    }
                    _ => {
                        if b == 0.0 {
                            Err(ScriptError::runtime(line, "modulo by zero"))
                        } else {
                            Ok(Value::Num(a % b))
                        }
                    }
                }
            }
            BinOp::Eq => Ok(Value::Bool(l == r)),
            BinOp::Ne => Ok(Value::Bool(l != r)),
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let ord = match (&l, &r) {
                    (Value::Num(a), Value::Num(b)) => a.partial_cmp(b),
                    (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
                    _ => None,
                }
                .ok_or_else(|| type_err("comparison"))?;
                use std::cmp::Ordering::*;
                Ok(Value::Bool(match op {
                    BinOp::Lt => ord == Less,
                    BinOp::Le => ord != Greater,
                    BinOp::Gt => ord == Greater,
                    _ => ord != Less,
                }))
            }
            BinOp::And | BinOp::Or => unreachable!("handled above"),
        }
    }

    fn call(&mut self, name: &str, args: Vec<Value>, line: usize) -> Result<Value> {
        // 1. builtins, 2. user functions, 3. host functions.
        if let Some(v) = self.call_builtin(name, &args, line)? {
            return Ok(v);
        }
        if let Some(def) = self.user_fns.get(name).cloned() {
            if def.params.len() != args.len() {
                return Err(ScriptError::runtime(
                    line,
                    format!(
                        "{name}() expects {} arguments, got {}",
                        def.params.len(),
                        args.len()
                    ),
                ));
            }
            let mut scope = Scope::new();
            for (p, a) in def.params.iter().zip(args) {
                scope.insert(p.clone(), a);
            }
            self.frames.push(vec![scope]);
            let mut result = Value::Null;
            let mut flow_err = None;
            for stmt in &def.body {
                match self.exec(stmt) {
                    Ok(Flow::Normal(v)) => result = v,
                    Ok(Flow::Return(v)) => {
                        result = v;
                        break;
                    }
                    Ok(Flow::Break) | Ok(Flow::Continue) => {
                        flow_err = Some(ScriptError::runtime(
                            stmt.line,
                            "break/continue outside loop",
                        ));
                        break;
                    }
                    Err(e) => {
                        flow_err = Some(e);
                        break;
                    }
                }
            }
            self.frames.pop();
            return match flow_err {
                Some(e) => Err(e),
                None => Ok(result),
            };
        }
        if let Some(f) = self.host_fns.get_mut(name) {
            return f(args).map_err(|msg| ScriptError::runtime(line, format!("{name}(): {msg}")));
        }
        Err(ScriptError::runtime(
            line,
            format!("unknown function {name:?}"),
        ))
    }

    /// Built-in functions. Returns `Ok(None)` when `name` is not a
    /// builtin so resolution can continue.
    fn call_builtin(&mut self, name: &str, args: &[Value], line: usize) -> Result<Option<Value>> {
        let argc_err = |expected: &str| {
            ScriptError::runtime(line, format!("{name}() expects {expected} arguments"))
        };
        let num_arg = |i: usize| -> Result<f64> {
            args.get(i).and_then(Value::as_num).ok_or_else(|| {
                ScriptError::runtime(line, format!("{name}(): argument {i} must be a number"))
            })
        };
        let v = match name {
            "print" => {
                let text = args
                    .iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
                    .join(" ");
                self.output.push(text);
                Value::Null
            }
            "len" => match args {
                [Value::Str(s)] => Value::Num(s.chars().count() as f64),
                [Value::List(v)] => Value::Num(v.len() as f64),
                [Value::Map(m)] => Value::Num(m.len() as f64),
                _ => return Err(argc_err("one str/list/map")),
            },
            "str" => match args {
                [v] => Value::Str(v.to_string()),
                _ => return Err(argc_err("one")),
            },
            "num" => match args {
                [Value::Num(n)] => Value::Num(*n),
                [Value::Str(s)] => s.trim().parse::<f64>().map(Value::Num).map_err(|_| {
                    ScriptError::runtime(line, format!("num(): cannot parse {s:?}"))
                })?,
                _ => return Err(argc_err("one num/str")),
            },
            "push" => match args {
                [Value::List(items), v] => {
                    let mut out = items.clone();
                    out.push(v.clone());
                    Value::List(out)
                }
                _ => return Err(argc_err("a list and a value")),
            },
            "range" => match args.len() {
                1 => {
                    let n = num_arg(0)? as i64;
                    Value::List((0..n).map(|i| Value::Num(i as f64)).collect())
                }
                2 => {
                    let a = num_arg(0)? as i64;
                    let b = num_arg(1)? as i64;
                    Value::List((a..b).map(|i| Value::Num(i as f64)).collect())
                }
                _ => return Err(argc_err("one or two")),
            },
            "keys" => match args {
                [Value::Map(m)] => Value::List(m.keys().map(|k| Value::Str(k.clone())).collect()),
                _ => return Err(argc_err("one map")),
            },
            "has" => match args {
                [Value::Map(m), Value::Str(k)] => Value::Bool(m.contains_key(k)),
                [Value::List(v), item] => Value::Bool(v.contains(item)),
                _ => return Err(argc_err("a map/list and a key")),
            },
            "get" => match args {
                [Value::Map(m), Value::Str(k), default] => {
                    m.get(k).cloned().unwrap_or_else(|| default.clone())
                }
                _ => return Err(argc_err("a map, key, and default")),
            },
            "abs" => Value::Num(num_arg(0)?.abs()),
            "sqrt" => {
                let n = num_arg(0)?;
                if n < 0.0 {
                    return Err(ScriptError::runtime(line, "sqrt of negative number"));
                }
                Value::Num(n.sqrt())
            }
            "floor" => Value::Num(num_arg(0)?.floor()),
            "ceil" => Value::Num(num_arg(0)?.ceil()),
            "pow" => Value::Num(num_arg(0)?.powf(num_arg(1)?)),
            "min" => match args {
                [Value::List(items)] if !items.is_empty() => {
                    let mut best = f64::INFINITY;
                    for v in items {
                        best = best.min(v.as_num().ok_or_else(|| argc_err("numeric list"))?);
                    }
                    Value::Num(best)
                }
                [Value::Num(a), Value::Num(b)] => Value::Num(a.min(*b)),
                _ => return Err(argc_err("two numbers or a non-empty numeric list")),
            },
            "max" => match args {
                [Value::List(items)] if !items.is_empty() => {
                    let mut best = f64::NEG_INFINITY;
                    for v in items {
                        best = best.max(v.as_num().ok_or_else(|| argc_err("numeric list"))?);
                    }
                    Value::Num(best)
                }
                [Value::Num(a), Value::Num(b)] => Value::Num(a.max(*b)),
                _ => return Err(argc_err("two numbers or a non-empty numeric list")),
            },
            "sum" => match args {
                [Value::List(items)] => {
                    let mut total = 0.0;
                    for v in items {
                        total += v.as_num().ok_or_else(|| argc_err("numeric list"))?;
                    }
                    Value::Num(total)
                }
                _ => return Err(argc_err("one numeric list")),
            },
            "sort" => match args {
                [Value::List(items)] => {
                    let mut out = items.clone();
                    out.sort_by(|a, b| match (a, b) {
                        (Value::Num(x), Value::Num(y)) => {
                            x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal)
                        }
                        (Value::Str(x), Value::Str(y)) => x.cmp(y),
                        _ => std::cmp::Ordering::Equal,
                    });
                    Value::List(out)
                }
                _ => return Err(argc_err("one list")),
            },
            "join" => match args {
                [Value::List(items), Value::Str(sep)] => Value::Str(
                    items
                        .iter()
                        .map(|v| v.to_string())
                        .collect::<Vec<_>>()
                        .join(sep),
                ),
                _ => return Err(argc_err("a list and a separator")),
            },
            "split" => match args {
                [Value::Str(s), Value::Str(sep)] => Value::List(
                    s.split(sep.as_str())
                        .map(|p| Value::Str(p.to_string()))
                        .collect(),
                ),
                _ => return Err(argc_err("a string and a separator")),
            },
            "contains" => match args {
                [Value::Str(s), Value::Str(sub)] => Value::Bool(s.contains(sub.as_str())),
                _ => return Err(argc_err("two strings")),
            },
            "type" => match args {
                [v] => Value::Str(v.type_name().to_string()),
                _ => return Err(argc_err("one")),
            },
            _ => return Ok(None),
        };
        Ok(Some(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(src: &str) -> Value {
        Interpreter::new().run(src).unwrap()
    }

    fn eval_err(src: &str) -> ScriptError {
        Interpreter::new().run(src).unwrap_err()
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(eval("1 + 2 * 3"), Value::Num(7.0));
        assert_eq!(eval("(1 + 2) * 3"), Value::Num(9.0));
        assert_eq!(eval("10 % 3"), Value::Num(1.0));
        assert_eq!(eval("-2 * 3"), Value::Num(-6.0));
        assert_eq!(eval("7 / 2"), Value::Num(3.5));
    }

    #[test]
    fn string_concat_and_comparison() {
        assert_eq!(eval("\"a\" + 1"), Value::Str("a1".into()));
        assert_eq!(eval("1 + \"a\""), Value::Str("1a".into()));
        assert_eq!(eval("\"ab\" < \"ac\""), Value::Bool(true));
        assert_eq!(eval("\"x\" == \"x\""), Value::Bool(true));
    }

    #[test]
    fn let_assign_and_scoping() {
        assert_eq!(eval("let x = 1; x = x + 1; x"), Value::Num(2.0));
        // Block scope shadows then disappears.
        assert_eq!(
            eval("let x = 1; if true { let x = 99; } x"),
            Value::Num(1.0)
        );
        // Assignment inside a block reaches outward.
        assert_eq!(eval("let x = 1; if true { x = 5; } x"), Value::Num(5.0));
    }

    #[test]
    fn while_loop_with_break_continue() {
        let src = "\
let total = 0;
let i = 0;
while true {
    i = i + 1;
    if i > 10 { break; }
    if i % 2 == 0 { continue; }
    total = total + i;
}
total";
        assert_eq!(eval(src), Value::Num(25.0)); // 1+3+5+7+9
    }

    #[test]
    fn for_loop_over_list_and_map() {
        assert_eq!(
            eval("let t = 0; for x in [1, 2, 3] { t = t + x; } t"),
            Value::Num(6.0)
        );
        assert_eq!(
            eval("let ks = \"\"; for k in { b: 1, a: 2 } { ks = ks + k; } ks"),
            Value::Str("ab".into()) // map iteration is key-ordered
        );
    }

    #[test]
    fn functions_recursion_and_return() {
        let src = "\
fn fib(n) {
    if n < 2 { return n; }
    return fib(n - 1) + fib(n - 2);
}
fib(10)";
        assert_eq!(eval(src), Value::Num(55.0));
    }

    #[test]
    fn functions_see_globals_but_have_own_scope() {
        let src = "\
let g = 10;
fn f(x) { return x + g; }
let r = f(5);
r";
        assert_eq!(eval(src), Value::Num(15.0));
        // Parameters do not leak.
        assert!(matches!(
            eval_err("fn f(x) { return x; } f(1); x"),
            ScriptError { .. }
        ));
    }

    #[test]
    fn lists_maps_indexing() {
        assert_eq!(eval("[10, 20, 30][1]"), Value::Num(20.0));
        assert_eq!(eval("{ a: 5 }[\"a\"]"), Value::Num(5.0));
        assert_eq!(
            eval("let a = [1, 2]; a[0] = 9; a[0] + a[1]"),
            Value::Num(11.0)
        );
        assert_eq!(
            eval("let m = { x: 1 }; m[\"y\"] = 2; m[\"x\"] + m[\"y\"]"),
            Value::Num(3.0)
        );
        assert_eq!(eval("\"abc\"[1]"), Value::Str("b".into()));
    }

    #[test]
    fn builtins() {
        assert_eq!(eval("len([1, 2, 3])"), Value::Num(3.0));
        assert_eq!(eval("len(\"abc\")"), Value::Num(3.0));
        assert_eq!(eval("str(1.5)"), Value::Str("1.5".into()));
        assert_eq!(eval("num(\" 42 \")"), Value::Num(42.0));
        assert_eq!(eval("sum(range(5))"), Value::Num(10.0));
        assert_eq!(eval("len(range(2, 6))"), Value::Num(4.0));
        assert_eq!(eval("max([3, 9, 1])"), Value::Num(9.0));
        assert_eq!(eval("min(3, 9)"), Value::Num(3.0));
        assert_eq!(eval("abs(0 - 5)"), Value::Num(5.0));
        assert_eq!(eval("sqrt(16)"), Value::Num(4.0));
        assert_eq!(eval("pow(2, 10)"), Value::Num(1024.0));
        assert_eq!(eval("join([1, 2], \"-\")"), Value::Str("1-2".into()));
        assert_eq!(
            eval("split(\"a,b\", \",\")"),
            Value::List(vec![Value::Str("a".into()), Value::Str("b".into())])
        );
        assert_eq!(eval("contains(\"hay\", \"a\")"), Value::Bool(true));
        assert_eq!(eval("sort([3, 1, 2])[0]"), Value::Num(1.0));
        assert_eq!(eval("type({})"), Value::Str("map".into()));
        assert_eq!(eval("has({ a: 1 }, \"a\")"), Value::Bool(true));
        assert_eq!(eval("has([1, 2], 2)"), Value::Bool(true));
        assert_eq!(eval("get({ a: 1 }, \"b\", 7)"), Value::Num(7.0));
        assert_eq!(eval("len(push([1], 2))"), Value::Num(2.0));
    }

    #[test]
    fn print_accumulates_output() {
        let mut interp = Interpreter::new();
        interp.run("print(\"a\", 1); print([2]);").unwrap();
        assert_eq!(interp.take_output(), vec!["a 1", "[2]"]);
        assert!(interp.take_output().is_empty());
    }

    #[test]
    fn host_functions_and_handles() {
        let mut interp = Interpreter::new();
        interp.register("make_trial", |_args| {
            Ok(Value::Handle {
                tag: "trial".into(),
                id: 7,
            })
        });
        interp.register("trial_id", |args| {
            match args.first().and_then(Value::as_handle) {
                Some(("trial", id)) => Ok(Value::Num(id as f64)),
                _ => Err("expected a trial handle".into()),
            }
        });
        let out = interp.run("let t = make_trial(); trial_id(t)").unwrap();
        assert_eq!(out, Value::Num(7.0));
        // Wrong handle type surfaces the host's message with call context.
        let err = interp.run("trial_id(42)").unwrap_err();
        assert!(err.message.contains("trial_id"));
        assert!(err.message.contains("expected a trial handle"));
    }

    #[test]
    fn globals_persist_across_runs() {
        let mut interp = Interpreter::new();
        interp.run("let counter = 1;").unwrap();
        let v = interp.run("counter = counter + 1; counter").unwrap();
        assert_eq!(v, Value::Num(2.0));
        assert_eq!(interp.get_global("counter"), Some(&Value::Num(2.0)));
        interp.set_global("injected", Value::from("hi"));
        assert_eq!(interp.run("injected").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn runtime_errors() {
        assert!(eval_err("missing").message.contains("undefined variable"));
        assert!(eval_err("1 / 0").message.contains("division by zero"));
        assert!(eval_err("5 % 0").message.contains("modulo by zero"));
        assert!(eval_err("[1][5]").message.contains("out of range"));
        assert!(eval_err("{ a: 1 }[\"b\"]")
            .message
            .contains("missing map key"));
        assert!(eval_err("x = 1;").message.contains("undefined variable"));
        assert!(eval_err("1 + null").message.contains("cannot apply"));
        assert!(eval_err("nothere()").message.contains("unknown function"));
        assert!(eval_err("fn f(a) { return a; } f(1, 2)")
            .message
            .contains("expects 1 arguments"));
        assert!(eval_err("break;").message.contains("outside loop"));
        assert!(eval_err("sqrt(0 - 1)").message.contains("negative"));
        assert!(eval_err("for x in 5 { }")
            .message
            .contains("cannot iterate"));
    }

    #[test]
    fn step_limit_guards_infinite_loops() {
        let mut interp = Interpreter::new().with_step_limit(10_000);
        let err = interp.run("while true { }").unwrap_err();
        assert!(err.message.contains("step limit"));
    }

    #[test]
    fn error_lines_are_reported() {
        let err = eval_err("let x = 1;\nlet y = 2;\nz");
        assert_eq!(err.line, 3);
    }

    #[test]
    fn short_circuit_evaluation() {
        // The RHS would error if evaluated.
        assert_eq!(eval("false && missing_var"), Value::Bool(false));
        assert_eq!(eval("true || missing_var"), Value::Bool(true));
        assert_eq!(eval("true && 1"), Value::Bool(true));
    }
}
