//! The script interpreter: compile-and-execute pipeline over the
//! bytecode VMs, with a host-function registry and compilation caching.
//!
//! [`Interpreter::run`] lexes/parses/compiles on first sight of a
//! source string and caches the compiled program (keyed by a content
//! hash of the source, bounded by an LRU eviction policy), so driver
//! loops that re-run the same script (as PerfExplorer workflows do per
//! trial) pay for compilation once. [`Interpreter::compile`] exposes
//! the cached unit as a [`Compiled`] handle for callers that want to
//! manage reuse explicitly, and [`Interpreter::compile_portable`]
//! produces a [`PortableScript`] that can be replayed on other
//! identically-initialized interpreters (the service layer shares one
//! compile cache across its worker pool this way).
//!
//! Two bytecode engines implement the language: the PR 4 stack VM
//! (`vm.rs`) and the register VM (`rcompile.rs`/`rvm.rs`), selected by
//! [`Engine`] with the register engine as the default. The original
//! tree-walking implementation lives on in [`crate::reference`] as the
//! executable specification; differential tests pin both engines
//! against it.

use crate::compile::{compile, Proto};
use crate::parser::parse;
use crate::rcompile::{rcompile, RProto};
use crate::rvm::ParallelExecutor;
use crate::value::{Interner, Symbol, Value};
use crate::vm::{FnTable, Globals};
use crate::{Result, ScriptError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Signature of a host function: positional arguments in (as a
/// mutable, interpreter-owned buffer the host may consume or inspect in
/// place — its contents after the call are discarded), value out. Host
/// errors are plain strings; the interpreter attaches the call site.
pub type HostFn = Box<dyn FnMut(&mut Vec<Value>) -> std::result::Result<Value, String>>;

/// Source of unique interpreter ids, used to pair [`Compiled`] programs
/// with the interpreter whose symbol/slot tables they bake in.
static NEXT_INTERP_ID: AtomicU64 = AtomicU64::new(1);

/// Keep at most this many compiled programs in the per-interpreter
/// cache; beyond it, the least-recently-used entry is evicted.
const CACHE_CAP: usize = 128;

/// Which bytecode engine executes scripts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The PR 4 stack VM: push/pop evaluation over an operand stack.
    Stack,
    /// The register VM: three-address instructions over per-frame
    /// register windows. Roughly 2x faster on arithmetic-heavy loops
    /// and the only engine that can hand sweep bodies to a parallel
    /// executor.
    #[default]
    Register,
}

/// A compiled program for whichever engine produced it.
#[derive(Clone)]
pub(crate) enum Unit {
    /// Stack-VM bytecode.
    Stack(Arc<Proto>),
    /// Register-VM bytecode.
    Register(Arc<RProto>),
}

/// A compiled script, reusable across [`Interpreter::run_compiled`]
/// calls on the interpreter that produced it.
///
/// The bytecode bakes in global-slot and function-table indices of its
/// interpreter, so a `Compiled` is only executable there; running it on
/// a different interpreter is caught and reported as a runtime error.
/// For a handle that *can* travel between interpreters, see
/// [`PortableScript`].
#[derive(Clone)]
pub struct Compiled {
    unit: Unit,
    owner: u64,
}

/// A register-VM program plus a snapshot of the name/slot tables it was
/// compiled against, replayable on any interpreter whose tables are a
/// prefix-compatible match (in practice: interpreters initialized by
/// the same registration sequence, as the service's per-worker sessions
/// are).
///
/// Unlike [`Compiled`], a `PortableScript` is `Send + Sync` and carries
/// no owner id: [`Interpreter::run_portable`] instead *replays* the
/// snapshot constructively — interning each recorded name and asserting
/// it lands on the recorded index — so a fresh identically-registered
/// interpreter extends its tables to match, while a divergent one is
/// rejected with the same error a foreign [`Compiled`] gets.
#[derive(Clone)]
pub struct PortableScript {
    main: Arc<RProto>,
    /// Every interned name, in symbol order, at compile time.
    names: Arc<Vec<String>>,
    /// Symbol index of each global slot, in slot order.
    global_syms: Arc<Vec<usize>>,
    /// Symbol index of each function-table entry, in id order.
    fn_syms: Arc<Vec<usize>>,
}

/// Compilation-cache counters, exposed for cache-behavior tests and
/// service metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Runs served from the cache without recompiling.
    pub hits: u64,
    /// Compilations caused by a source not (or no longer) cached.
    pub misses: u64,
    /// Entries discarded to stay within the cache bound.
    pub evictions: u64,
    /// Entries currently cached.
    pub entries: usize,
}

/// One cached compilation: the unit plus its last-use stamp.
struct CacheEntry {
    unit: Unit,
    stamp: u64,
}

/// 128-bit FNV-1a over the source bytes: the compilation-cache key.
/// Content-addressed keying means re-submitted identical sources hit
/// the cache regardless of which `String` they arrived in, and the
/// cache never retains the (potentially large) source text itself.
fn content_hash(src: &str) -> u128 {
    const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const FNV_PRIME: u128 = 0x0000000001000000000000000000013B;
    let mut h = FNV_OFFSET;
    for &b in src.as_bytes() {
        h ^= b as u128;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Wraps one sweep-body outcome as the map `par_foreach_trial` yields
/// per item: `{ok: true, value}` on success, `{ok: false, error, line}`
/// on failure. Shared by all three engines so a corrupt trial degrades
/// to an identical record everywhere.
pub(crate) fn sweep_outcome_value(result: Result<Value>) -> Value {
    let mut m = std::collections::BTreeMap::new();
    match result {
        Ok(v) => {
            m.insert("ok".to_string(), Value::Bool(true));
            m.insert("value".to_string(), v);
        }
        Err(e) => {
            m.insert("ok".to_string(), Value::Bool(false));
            m.insert("error".to_string(), Value::Str(e.message));
            m.insert("line".to_string(), Value::Num(e.line as f64));
        }
    }
    Value::Map(m)
}

/// The script interpreter.
///
/// An interpreter owns global state across [`Interpreter::run`] calls, so
/// a host can define bindings once and evaluate several scripts against
/// them (as PerfExplorer does with its session objects).
pub struct Interpreter {
    pub(crate) interner: Interner,
    pub(crate) globals: Globals,
    pub(crate) fns: FnTable,
    pub(crate) output: Vec<String>,
    pub(crate) steps: u64,
    pub(crate) step_limit: u64,
    /// Maximum user-function call depth before "call depth limit
    /// exceeded" (guards unbounded recursion, which the step budget
    /// alone would let exhaust the native stack first).
    pub(crate) call_depth_limit: usize,
    /// VM operand stack, reused across runs (stack engine).
    pub(crate) stack: Vec<Value>,
    /// VM local slots of all live frames, reused across runs (stack
    /// engine).
    pub(crate) locals: Vec<Value>,
    /// Register file of all live frames, reused across runs (register
    /// engine).
    pub(crate) regs: Vec<Value>,
    /// Open `for` iterators: (items, next index).
    pub(crate) iters: Vec<(Vec<Value>, usize)>,
    /// Reusable host-call argument buffer.
    pub(crate) argbuf: Vec<Value>,
    /// When set, register-VM `par_foreach_trial` sweeps hand their
    /// bodies to this executor instead of running them inline.
    pub(crate) par_exec: Option<Arc<ParallelExecutor>>,
    engine: Engine,
    cache: HashMap<u128, CacheEntry>,
    cache_tick: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
    id: u64,
}

impl Default for Interpreter {
    fn default() -> Self {
        Interpreter::new()
    }
}

impl Interpreter {
    /// Creates an interpreter with the default step budget and engine.
    pub fn new() -> Self {
        Interpreter {
            interner: Interner::new(),
            globals: Globals::default(),
            fns: FnTable::default(),
            output: Vec::new(),
            steps: 0,
            step_limit: 50_000_000,
            call_depth_limit: 1000,
            stack: Vec::new(),
            locals: Vec::new(),
            regs: Vec::new(),
            iters: Vec::new(),
            argbuf: Vec::new(),
            par_exec: None,
            engine: Engine::default(),
            cache: HashMap::new(),
            cache_tick: 0,
            cache_hits: 0,
            cache_misses: 0,
            cache_evictions: 0,
            id: NEXT_INTERP_ID.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Overrides the execution step budget (each statement and expression
    /// node costs one step). Guards runaway `while` loops.
    pub fn with_step_limit(mut self, limit: u64) -> Self {
        self.step_limit = limit;
        self
    }

    /// Overrides the user-function call depth limit (default 1000).
    pub fn with_call_depth_limit(mut self, limit: usize) -> Self {
        self.call_depth_limit = limit;
        self
    }

    /// Selects the bytecode engine (default [`Engine::Register`]).
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// The engine this interpreter executes scripts with.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Installs the executor that register-VM `par_foreach_trial`
    /// sweeps dispatch their bodies through (e.g. a thread pool). Pass
    /// bodies still observe sequential semantics: outcomes and output
    /// come back in item order and bodies cannot write shared state.
    pub fn set_parallel_executor(&mut self, exec: Arc<ParallelExecutor>) {
        self.par_exec = Some(exec);
    }

    /// Registers a host function callable from scripts.
    pub fn register(
        &mut self,
        name: &str,
        f: impl FnMut(&mut Vec<Value>) -> std::result::Result<Value, String> + 'static,
    ) {
        let sym = self.interner.intern(name);
        let id = self.fns.ensure(sym);
        self.fns.entries[id as usize].host = Some(Box::new(f));
    }

    /// Defines a global variable visible to scripts.
    pub fn set_global(&mut self, name: &str, value: Value) {
        let sym = self.interner.intern(name);
        let g = self.globals.ensure(sym);
        self.globals.slots[g as usize] = Some(value);
    }

    /// Reads a global variable after a run.
    pub fn get_global(&self, name: &str) -> Option<&Value> {
        let sym = self.interner.lookup(name)?;
        let g = self.globals.lookup(sym)?;
        self.globals.slots[g as usize].as_ref()
    }

    /// Takes the accumulated `print` output.
    pub fn take_output(&mut self) -> Vec<String> {
        std::mem::take(&mut self.output)
    }

    /// Steps consumed by the most recent run.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Compilation-cache counters (hits/misses/evictions/entries).
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.cache_hits,
            misses: self.cache_misses,
            evictions: self.cache_evictions,
            entries: self.cache.len(),
        }
    }

    /// Compiles a script to reusable bytecode without executing it.
    ///
    /// Compilation interns names into this interpreter's persistent
    /// tables, so the handle stays valid across later `register` /
    /// `set_global` / `run` calls on the same interpreter.
    pub fn compile(&mut self, src: &str) -> Result<Compiled> {
        let unit = self.compile_cached(src)?;
        Ok(Compiled {
            unit,
            owner: self.id,
        })
    }

    /// Executes a previously compiled script, returning the value of its
    /// final expression statement (or [`Value::Null`]).
    pub fn run_compiled(&mut self, program: &Compiled) -> Result<Value> {
        if program.owner != self.id {
            return Err(ScriptError::runtime(
                0,
                "compiled script belongs to a different interpreter",
            ));
        }
        let unit = program.unit.clone();
        self.run_unit(&unit)
    }

    /// Parses, compiles (with caching), and executes a script, returning
    /// the value of its final expression statement (or [`Value::Null`]).
    pub fn run(&mut self, src: &str) -> Result<Value> {
        let unit = self.compile_cached(src)?;
        self.run_unit(&unit)
    }

    /// Compiles a script with the register pipeline (regardless of this
    /// interpreter's engine) into a handle that can run on *other*
    /// identically-initialized interpreters. Used by the service layer
    /// to share one compilation across its worker pool. Bypasses the
    /// run cache: callers that want reuse cache the handle themselves.
    pub fn compile_portable(&mut self, src: &str) -> Result<PortableScript> {
        let program = parse(src)?;
        let main = rcompile(
            &program,
            &mut self.interner,
            &mut self.globals,
            &mut self.fns,
        );
        let names = (0..self.interner.len())
            .map(|i| self.interner.resolve(Symbol::from_index(i)).to_string())
            .collect();
        let global_syms = self.globals.names.iter().map(|s| s.index()).collect();
        let fn_syms = self.fns.entries.iter().map(|e| e.name.index()).collect();
        Ok(PortableScript {
            main,
            names: Arc::new(names),
            global_syms: Arc::new(global_syms),
            fn_syms: Arc::new(fn_syms),
        })
    }

    /// Executes a [`PortableScript`], first replaying its name-table
    /// snapshot into this interpreter (see the type docs). Errors with
    /// "compiled script belongs to a different interpreter" when the
    /// tables cannot be made to match.
    pub fn run_portable(&mut self, program: &PortableScript) -> Result<Value> {
        let mismatch =
            || ScriptError::runtime(0, "compiled script belongs to a different interpreter");
        for (i, name) in program.names.iter().enumerate() {
            if self.interner.intern(name).index() != i {
                return Err(mismatch());
            }
        }
        for (slot, &sym) in program.global_syms.iter().enumerate() {
            if self.globals.ensure(Symbol::from_index(sym)) != slot as u32 {
                return Err(mismatch());
            }
        }
        for (id, &sym) in program.fn_syms.iter().enumerate() {
            if self.fns.ensure(Symbol::from_index(sym)) != id as u32 {
                return Err(mismatch());
            }
        }
        self.steps = 0;
        self.execute_register(&program.main)
    }

    fn run_unit(&mut self, unit: &Unit) -> Result<Value> {
        self.steps = 0;
        match unit {
            Unit::Stack(main) => self.execute(main),
            Unit::Register(main) => self.execute_register(main),
        }
    }

    fn compile_cached(&mut self, src: &str) -> Result<Unit> {
        let key = content_hash(src);
        self.cache_tick += 1;
        let tick = self.cache_tick;
        if let Some(entry) = self.cache.get_mut(&key) {
            entry.stamp = tick;
            self.cache_hits += 1;
            return Ok(entry.unit.clone());
        }
        self.cache_misses += 1;
        let program = parse(src)?;
        let unit = match self.engine {
            Engine::Stack => Unit::Stack(compile(
                &program,
                &mut self.interner,
                &mut self.globals,
                &mut self.fns,
            )),
            Engine::Register => Unit::Register(rcompile(
                &program,
                &mut self.interner,
                &mut self.globals,
                &mut self.fns,
            )),
        };
        if self.cache.len() >= CACHE_CAP {
            if let Some(&oldest) = self
                .cache
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k)
            {
                self.cache.remove(&oldest);
                self.cache_evictions += 1;
            }
        }
        self.cache.insert(
            key,
            CacheEntry {
                unit: unit.clone(),
                stamp: tick,
            },
        );
        Ok(unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(src: &str) -> Value {
        Interpreter::new().run(src).unwrap()
    }

    fn eval_err(src: &str) -> ScriptError {
        Interpreter::new().run(src).unwrap_err()
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(eval("1 + 2 * 3"), Value::Num(7.0));
        assert_eq!(eval("(1 + 2) * 3"), Value::Num(9.0));
        assert_eq!(eval("10 % 3"), Value::Num(1.0));
        assert_eq!(eval("-2 * 3"), Value::Num(-6.0));
        assert_eq!(eval("7 / 2"), Value::Num(3.5));
    }

    #[test]
    fn string_concat_and_comparison() {
        assert_eq!(eval("\"a\" + 1"), Value::Str("a1".into()));
        assert_eq!(eval("1 + \"a\""), Value::Str("1a".into()));
        assert_eq!(eval("\"ab\" < \"ac\""), Value::Bool(true));
        assert_eq!(eval("\"x\" == \"x\""), Value::Bool(true));
    }

    #[test]
    fn let_assign_and_scoping() {
        assert_eq!(eval("let x = 1; x = x + 1; x"), Value::Num(2.0));
        // Block scope shadows then disappears.
        assert_eq!(
            eval("let x = 1; if true { let x = 99; } x"),
            Value::Num(1.0)
        );
        // Assignment inside a block reaches outward.
        assert_eq!(eval("let x = 1; if true { x = 5; } x"), Value::Num(5.0));
    }

    #[test]
    fn while_loop_with_break_continue() {
        let src = "\
let total = 0;
let i = 0;
while true {
    i = i + 1;
    if i > 10 { break; }
    if i % 2 == 0 { continue; }
    total = total + i;
}
total";
        assert_eq!(eval(src), Value::Num(25.0)); // 1+3+5+7+9
    }

    #[test]
    fn for_loop_over_list_and_map() {
        assert_eq!(
            eval("let t = 0; for x in [1, 2, 3] { t = t + x; } t"),
            Value::Num(6.0)
        );
        assert_eq!(
            eval("let ks = \"\"; for k in { b: 1, a: 2 } { ks = ks + k; } ks"),
            Value::Str("ab".into()) // map iteration is key-ordered
        );
    }

    #[test]
    fn functions_recursion_and_return() {
        let src = "\
fn fib(n) {
    if n < 2 { return n; }
    return fib(n - 1) + fib(n - 2);
}
fib(10)";
        assert_eq!(eval(src), Value::Num(55.0));
    }

    #[test]
    fn functions_see_globals_but_have_own_scope() {
        let src = "\
let g = 10;
fn f(x) { return x + g; }
let r = f(5);
r";
        assert_eq!(eval(src), Value::Num(15.0));
        // Parameters do not leak.
        assert!(matches!(
            eval_err("fn f(x) { return x; } f(1); x"),
            ScriptError { .. }
        ));
    }

    #[test]
    fn lists_maps_indexing() {
        assert_eq!(eval("[10, 20, 30][1]"), Value::Num(20.0));
        assert_eq!(eval("{ a: 5 }[\"a\"]"), Value::Num(5.0));
        assert_eq!(
            eval("let a = [1, 2]; a[0] = 9; a[0] + a[1]"),
            Value::Num(11.0)
        );
        assert_eq!(
            eval("let m = { x: 1 }; m[\"y\"] = 2; m[\"x\"] + m[\"y\"]"),
            Value::Num(3.0)
        );
        assert_eq!(eval("\"abc\"[1]"), Value::Str("b".into()));
    }

    #[test]
    fn builtins() {
        assert_eq!(eval("len([1, 2, 3])"), Value::Num(3.0));
        assert_eq!(eval("len(\"abc\")"), Value::Num(3.0));
        assert_eq!(eval("str(1.5)"), Value::Str("1.5".into()));
        assert_eq!(eval("num(\" 42 \")"), Value::Num(42.0));
        assert_eq!(eval("sum(range(5))"), Value::Num(10.0));
        assert_eq!(eval("len(range(2, 6))"), Value::Num(4.0));
        assert_eq!(eval("max([3, 9, 1])"), Value::Num(9.0));
        assert_eq!(eval("min(3, 9)"), Value::Num(3.0));
        assert_eq!(eval("abs(0 - 5)"), Value::Num(5.0));
        assert_eq!(eval("sqrt(16)"), Value::Num(4.0));
        assert_eq!(eval("pow(2, 10)"), Value::Num(1024.0));
        assert_eq!(eval("join([1, 2], \"-\")"), Value::Str("1-2".into()));
        assert_eq!(
            eval("split(\"a,b\", \",\")"),
            Value::List(vec![Value::Str("a".into()), Value::Str("b".into())])
        );
        assert_eq!(eval("contains(\"hay\", \"a\")"), Value::Bool(true));
        assert_eq!(eval("sort([3, 1, 2])[0]"), Value::Num(1.0));
        assert_eq!(eval("type({})"), Value::Str("map".into()));
        assert_eq!(eval("has({ a: 1 }, \"a\")"), Value::Bool(true));
        assert_eq!(eval("has([1, 2], 2)"), Value::Bool(true));
        assert_eq!(eval("get({ a: 1 }, \"b\", 7)"), Value::Num(7.0));
        assert_eq!(eval("len(push([1], 2))"), Value::Num(2.0));
    }

    #[test]
    fn print_accumulates_output() {
        let mut interp = Interpreter::new();
        interp.run("print(\"a\", 1); print([2]);").unwrap();
        assert_eq!(interp.take_output(), vec!["a 1", "[2]"]);
        assert!(interp.take_output().is_empty());
    }

    #[test]
    fn host_functions_and_handles() {
        let mut interp = Interpreter::new();
        interp.register("make_trial", |_args| {
            Ok(Value::Handle {
                tag: "trial".into(),
                id: 7,
            })
        });
        interp.register("trial_id", |args| {
            match args.first().and_then(Value::as_handle) {
                Some(("trial", id)) => Ok(Value::Num(id as f64)),
                _ => Err("expected a trial handle".into()),
            }
        });
        let out = interp.run("let t = make_trial(); trial_id(t)").unwrap();
        assert_eq!(out, Value::Num(7.0));
        // Wrong handle type surfaces the host's message with call context.
        let err = interp.run("trial_id(42)").unwrap_err();
        assert!(err.message.contains("trial_id"));
        assert!(err.message.contains("expected a trial handle"));
    }

    #[test]
    fn globals_persist_across_runs() {
        let mut interp = Interpreter::new();
        interp.run("let counter = 1;").unwrap();
        let v = interp.run("counter = counter + 1; counter").unwrap();
        assert_eq!(v, Value::Num(2.0));
        assert_eq!(interp.get_global("counter"), Some(&Value::Num(2.0)));
        interp.set_global("injected", Value::from("hi"));
        assert_eq!(interp.run("injected").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn runtime_errors() {
        assert!(eval_err("missing").message.contains("undefined variable"));
        assert!(eval_err("1 / 0").message.contains("division by zero"));
        assert!(eval_err("5 % 0").message.contains("modulo by zero"));
        assert!(eval_err("[1][5]").message.contains("out of range"));
        assert!(eval_err("{ a: 1 }[\"b\"]")
            .message
            .contains("missing map key"));
        assert!(eval_err("x = 1;").message.contains("undefined variable"));
        assert!(eval_err("1 + null").message.contains("cannot apply"));
        assert!(eval_err("nothere()").message.contains("unknown function"));
        assert!(eval_err("fn f(a) { return a; } f(1, 2)")
            .message
            .contains("expects 1 arguments"));
        assert!(eval_err("break;").message.contains("outside loop"));
        assert!(eval_err("sqrt(0 - 1)").message.contains("negative"));
        assert!(eval_err("for x in 5 { }")
            .message
            .contains("cannot iterate"));
    }

    #[test]
    fn step_limit_guards_infinite_loops() {
        let mut interp = Interpreter::new().with_step_limit(10_000);
        let err = interp.run("while true { }").unwrap_err();
        assert!(err.message.contains("step limit"));
    }

    #[test]
    fn error_lines_are_reported() {
        let err = eval_err("let x = 1;\nlet y = 2;\nz");
        assert_eq!(err.line, 3);
    }

    #[test]
    fn short_circuit_evaluation() {
        // The RHS would error if evaluated.
        assert_eq!(eval("false && missing_var"), Value::Bool(false));
        assert_eq!(eval("true || missing_var"), Value::Bool(true));
        assert_eq!(eval("true && 1"), Value::Bool(true));
    }

    #[test]
    fn compiled_scripts_are_reusable() {
        let mut interp = Interpreter::new();
        interp.run("let n = 0;").unwrap();
        let program = interp.compile("n = n + 1; n").unwrap();
        assert_eq!(interp.run_compiled(&program).unwrap(), Value::Num(1.0));
        assert_eq!(interp.run_compiled(&program).unwrap(), Value::Num(2.0));
        // Functions registered after compilation are still reachable:
        // call sites resolve through the persistent function table.
        let call = interp.compile("late_fn(n)").unwrap();
        interp.register("late_fn", |args| {
            Ok(Value::Num(
                args.first().and_then(Value::as_num).unwrap_or(0.0) + 100.0,
            ))
        });
        assert_eq!(interp.run_compiled(&call).unwrap(), Value::Num(102.0));
    }

    #[test]
    fn compiled_scripts_are_interpreter_specific() {
        let mut a = Interpreter::new();
        let mut b = Interpreter::new();
        let program = a.compile("1 + 1").unwrap();
        assert_eq!(a.run_compiled(&program).unwrap(), Value::Num(2.0));
        let err = b.run_compiled(&program).unwrap_err();
        assert!(err.message.contains("different interpreter"));
    }

    #[test]
    fn repeated_runs_reuse_cached_compilation() {
        let mut interp = Interpreter::new();
        interp.run("let acc = 0;").unwrap();
        for _ in 0..3 {
            interp.run("acc = acc + 1;").unwrap();
        }
        assert_eq!(interp.get_global("acc"), Some(&Value::Num(3.0)));
        // One miss per distinct source, hits for the repeats.
        let stats = interp.cache_stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn cache_evicts_least_recently_used() {
        let mut interp = Interpreter::new();
        // Fill the cache, then keep entry 0 warm while adding one more:
        // the eviction must pick a cold entry, not the warm one.
        let srcs: Vec<String> = (0..CACHE_CAP).map(|i| format!("{i} + 0")).collect();
        for s in &srcs {
            interp.run(s).unwrap();
        }
        interp.run(&srcs[0]).unwrap(); // refresh entry 0
        interp.run("123456789").unwrap(); // forces one eviction
        let stats = interp.cache_stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, CACHE_CAP);
        // Entry 0 survived (hit), so re-running it is another hit.
        let before = interp.cache_stats().hits;
        interp.run(&srcs[0]).unwrap();
        assert_eq!(interp.cache_stats().hits, before + 1);
    }

    #[test]
    fn step_exhaustion_is_clamped_to_limit_plus_one() {
        let mut interp = Interpreter::new().with_step_limit(100);
        let err = interp.run("while true { }").unwrap_err();
        assert!(err.message.contains("step limit"));
        assert_eq!(interp.steps(), 101);
    }

    #[test]
    fn both_engines_run_the_same_program() {
        for engine in [Engine::Stack, Engine::Register] {
            let mut interp = Interpreter::new().with_engine(engine);
            let v = interp
                .run("fn f(n) { return n * 2; } let t = 0; for x in [1, 2, 3] { t = t + f(x); } t")
                .unwrap();
            assert_eq!(v, Value::Num(12.0), "engine {engine:?}");
        }
    }

    #[test]
    fn call_depth_limit_stops_runaway_recursion() {
        for engine in [Engine::Stack, Engine::Register] {
            let mut interp = Interpreter::new()
                .with_engine(engine)
                .with_call_depth_limit(64);
            let err = interp.run("fn f(n) { return f(n); } f(1)").unwrap_err();
            assert!(
                err.message.contains("call depth limit exceeded"),
                "engine {engine:?}: {}",
                err.message
            );
        }
    }

    #[test]
    fn portable_scripts_replay_on_identical_interpreters() {
        let mk = || {
            let mut i = Interpreter::new();
            i.register("twice", |args| {
                Ok(Value::Num(
                    args.first().and_then(Value::as_num).unwrap_or(0.0) * 2.0,
                ))
            });
            i.set_global("base", Value::Num(10.0));
            i
        };
        let mut a = mk();
        let program = a.compile_portable("twice(base) + 1").unwrap();
        assert_eq!(a.run_portable(&program).unwrap(), Value::Num(21.0));
        // A fresh interpreter with the same registration sequence
        // replays the snapshot and runs the same bytecode.
        let mut b = mk();
        assert_eq!(b.run_portable(&program).unwrap(), Value::Num(21.0));
        // A divergent interpreter (different name order) is rejected.
        let mut c = Interpreter::new();
        c.set_global("unrelated", Value::Null);
        let err = c.run_portable(&program).unwrap_err();
        assert!(err.message.contains("different interpreter"));
    }
}
