//! The bytecode stack VM.
//!
//! Executes [`Proto`]s produced by `compile.rs`. The dispatch loop
//! works exclusively with dense indices — local slots are
//! frame-relative offsets into one shared `locals` vector, globals are
//! offsets into a persistent slot table, and calls go through a dense
//! function table — so steady-state execution performs no string
//! comparison, no per-block scope allocation, and no hashing.
//!
//! Observable behaviour (result values, `print` output, error
//! line/phase/message, and step accounting) is pinned against the
//! tree-walker in [`crate::reference`] by the differential tests in
//! `tests/differential.rs`.

use crate::compile::{Arith, Cmp, Op, Proto};
use crate::interp::{HostFn, Interpreter};
use crate::value::{Interner, Symbol, Value};
use crate::{Result, ScriptError};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Persistent global variable slots.
///
/// Slots are created (holding `None` = not-yet-defined) the first time
/// the compiler sees a name that doesn't resolve locally, and never
/// move afterwards, so slot indices baked into cached bytecode stay
/// valid for the lifetime of the interpreter.
#[derive(Default)]
pub(crate) struct Globals {
    /// Slot values; `None` means referenced but never defined.
    pub slots: Vec<Option<Value>>,
    /// Symbol of each slot (for error messages).
    pub names: Vec<Symbol>,
    by_sym: HashMap<Symbol, u32>,
}

impl Globals {
    /// Returns the slot for `sym`, creating an undefined one if new.
    pub fn ensure(&mut self, sym: Symbol) -> u32 {
        if let Some(&g) = self.by_sym.get(&sym) {
            return g;
        }
        let g = self.slots.len() as u32;
        self.slots.push(None);
        self.names.push(sym);
        self.by_sym.insert(sym, g);
        g
    }

    /// Looks up the slot for `sym` without creating one.
    pub fn lookup(&self, sym: Symbol) -> Option<u32> {
        self.by_sym.get(&sym).copied()
    }
}

/// One callable: a user-defined function body, a host closure, or both
/// (user definitions shadow host functions, as in the tree-walker).
pub(crate) struct FnEntry {
    /// The function's name (for error messages).
    pub name: Symbol,
    /// Script-defined body, bound when its `fn` statement executes
    /// (stack encoding).
    pub user: Option<Arc<Proto>>,
    /// Script-defined body in the register encoding, bound by the
    /// register VM's `DefineFn`. Each engine installs and calls only
    /// its own field.
    pub ruser: Option<Arc<crate::rcompile::RProto>>,
    /// Host closure, bound by [`Interpreter::register`].
    pub host: Option<HostFn>,
}

/// Dense function table: call sites compile to an index into `entries`.
#[derive(Default)]
pub(crate) struct FnTable {
    /// All known callables, in id order.
    pub entries: Vec<FnEntry>,
    by_sym: HashMap<Symbol, u32>,
}

impl FnTable {
    /// Returns the function id for `sym`, creating an empty entry
    /// (which raises "unknown function" if called) if new.
    pub fn ensure(&mut self, sym: Symbol) -> u32 {
        if let Some(&id) = self.by_sym.get(&sym) {
            return id;
        }
        let id = self.entries.len() as u32;
        self.entries.push(FnEntry {
            name: sym,
            user: None,
            ruser: None,
            host: None,
        });
        self.by_sym.insert(sym, id);
        id
    }
}

/// A suspended caller, restored on `Return`/`ReturnLast`.
struct Frame {
    proto: Arc<Proto>,
    ret_ip: usize,
    base: usize,
    iter_base: usize,
    saved_last: Value,
}

pub(crate) fn type_err(line: usize, op: &str, l: &Value, r: &Value) -> ScriptError {
    ScriptError::runtime(
        line,
        format!(
            "cannot apply {op} to {} and {}",
            l.type_name(),
            r.type_name()
        ),
    )
}

impl Interpreter {
    /// Runs a compiled program to completion. `self.steps` must be
    /// reset by the caller; transient stacks are cleared here so a
    /// previous run that ended in an error can't leak state.
    pub(crate) fn execute(&mut self, entry: &Arc<Proto>) -> Result<Value> {
        let Interpreter {
            interner,
            globals,
            fns,
            output,
            steps,
            step_limit,
            call_depth_limit,
            stack,
            locals,
            iters,
            argbuf,
            ..
        } = self;
        let limit = *step_limit;
        stack.clear();
        locals.clear();
        iters.clear();
        dispatch(
            interner,
            globals,
            fns,
            output,
            stack,
            locals,
            iters,
            argbuf,
            steps,
            limit,
            *call_depth_limit,
            false,
            entry,
            0,
        )
    }
}

/// The stack-VM dispatch loop, factored out of [`Interpreter::execute`]
/// so `par_foreach_trial` bodies can recurse with a swapped step
/// counter, budget, and output buffer while sharing the transient
/// stacks (each body runs above the caller's watermarks, which are
/// truncated back after it finishes).
///
/// `base_start` is where this activation's local slots begin (the entry
/// proto's parameters, if any, must already be in place there). `par`
/// is true inside a sweep body, where writes to globals and function
/// definitions — including from functions *called* by the body — are
/// rejected so bodies stay order-independent.
#[allow(clippy::too_many_arguments)]
fn dispatch(
    interner: &Interner,
    globals: &mut Globals,
    fns: &mut FnTable,
    output: &mut Vec<String>,
    stack: &mut Vec<Value>,
    locals: &mut Vec<Value>,
    iters: &mut Vec<(Vec<Value>, usize)>,
    argbuf: &mut Vec<Value>,
    steps: &mut u64,
    limit: u64,
    depth_limit: usize,
    par: bool,
    entry: &Arc<Proto>,
    base_start: usize,
) -> Result<Value> {
    {
        let mut proto = Arc::clone(entry);
        let mut frames: Vec<Frame> = Vec::new();
        let mut ip = 0usize;
        // Start of this frame's slots in `locals` / iterators in `iters`.
        let mut base = base_start;
        let mut iter_base = iters.len();
        // The statement-value register: the value of the most recent
        // expression statement, i.e. what a frame returns when it falls
        // off the end.
        let mut last = Value::Null;
        locals.resize(base + proto.locals as usize, Value::Null);

        loop {
            let op = proto.code[ip];
            match op {
                Op::Step { n, meta } => {
                    let next = steps.saturating_add(n as u64);
                    if next > limit {
                        // Which of the merged bumps crossed the limit?
                        // A sweep can fold body totals back in past the
                        // limit, in which case the very first bump
                        // fails (saturating k to 0, charging one more,
                        // exactly like the reference's bump()).
                        let k = limit.saturating_sub(*steps) as usize;
                        let line = proto.step_lines[meta as usize + k] as usize;
                        *steps = steps.saturating_add(k as u64 + 1);
                        return Err(ScriptError::runtime(line, "step limit exceeded"));
                    }
                    *steps = next;
                }
                Op::Const(i) => stack.push(proto.consts[i as usize].clone()),
                Op::LoadLocal(s) => stack.push(locals[base + s as usize].clone()),
                Op::StoreLocal(s) => {
                    let v = stack.pop().expect("stack value");
                    locals[base + s as usize] = v;
                    last = Value::Null;
                }
                Op::LoadGlobal(g) | Op::LoadGlobalFast(g) => match &globals.slots[g as usize] {
                    Some(v) => stack.push(v.clone()),
                    None => {
                        let name = interner.resolve(globals.names[g as usize]);
                        return Err(ScriptError::runtime(
                            proto.lines[ip] as usize,
                            format!("undefined variable {name:?}"),
                        ));
                    }
                },
                Op::StoreGlobal(g) | Op::StoreGlobalFast(g) => {
                    let v = stack.pop().expect("stack value");
                    let slot = &mut globals.slots[g as usize];
                    if slot.is_none() {
                        let name = interner.resolve(globals.names[g as usize]);
                        return Err(ScriptError::runtime(
                            proto.lines[ip] as usize,
                            format!("assignment to undefined variable {name:?}"),
                        ));
                    }
                    if par {
                        let name = interner.resolve(globals.names[g as usize]);
                        return Err(ScriptError::runtime(
                            proto.lines[ip] as usize,
                            format!("cannot assign to global {name:?} inside par_foreach_trial"),
                        ));
                    }
                    *slot = Some(v);
                    last = Value::Null;
                }
                Op::DefineGlobal(g) => {
                    let v = stack.pop().expect("stack value");
                    if par {
                        // Unreachable from compiled sweep bodies (they
                        // are never `is_main`), but a called function
                        // must not smuggle a definition through either.
                        let name = interner.resolve(globals.names[g as usize]);
                        return Err(ScriptError::runtime(
                            proto.lines[ip] as usize,
                            format!("cannot assign to global {name:?} inside par_foreach_trial"),
                        ));
                    }
                    globals.slots[g as usize] = Some(v);
                    last = Value::Null;
                }
                Op::MakeList(n) => {
                    let at = stack.len() - n as usize;
                    let items = stack.split_off(at);
                    stack.push(Value::List(items));
                }
                Op::MakeMap(n) => {
                    let at = stack.len() - 2 * n as usize;
                    let mut m = BTreeMap::new();
                    let mut kvs = stack.split_off(at).into_iter();
                    while let (Some(k), Some(v)) = (kvs.next(), kvs.next()) {
                        // Keys are compiled as string constants.
                        if let Value::Str(k) = k {
                            m.insert(k, v);
                        }
                    }
                    stack.push(Value::Map(m));
                }
                Op::Jump(t) => {
                    ip = t as usize;
                    continue;
                }
                Op::JumpIfFalse(t) => {
                    let v = stack.pop().expect("condition");
                    if !v.truthy() {
                        ip = t as usize;
                        continue;
                    }
                }
                Op::CmpOperandsJumpFalse {
                    cmp,
                    lhs,
                    rhs,
                    target,
                } => {
                    let line = proto.lines[ip] as usize;
                    let l =
                        read_operand(lhs, locals, base, globals, &proto.consts, interner, line)?;
                    let r =
                        read_operand(rhs, locals, base, globals, &proto.consts, interner, line)?;
                    let b = match cmp {
                        Cmp::Eq => l == r,
                        Cmp::Ne => l != r,
                        _ => {
                            let ord = match (l, r) {
                                (Value::Num(a), Value::Num(b)) => a.partial_cmp(b),
                                (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
                                _ => None,
                            };
                            let Some(ord) = ord else {
                                return Err(type_err(proto.lines[ip] as usize, "comparison", l, r));
                            };
                            use std::cmp::Ordering::*;
                            match cmp {
                                Cmp::Lt => ord == Less,
                                Cmp::Le => ord != Greater,
                                Cmp::Gt => ord == Greater,
                                _ => ord != Less,
                            }
                        }
                    };
                    if !b {
                        ip = target as usize;
                        continue;
                    }
                }
                Op::FusedBin { op, dst, lhs, rhs } => {
                    let line = proto.lines[ip] as usize;
                    let v = {
                        let l = read_operand(
                            lhs,
                            locals,
                            base,
                            globals,
                            &proto.consts,
                            interner,
                            line,
                        )?;
                        let r = read_operand(
                            rhs,
                            locals,
                            base,
                            globals,
                            &proto.consts,
                            interner,
                            line,
                        )?;
                        match op {
                            Arith::Add => match (l, r) {
                                (Value::Num(a), Value::Num(b)) => Value::Num(a + b),
                                (Value::List(a), Value::List(b)) => {
                                    let mut out = a.clone();
                                    out.extend(b.iter().cloned());
                                    Value::List(out)
                                }
                                (Value::Str(_), _) | (_, Value::Str(_)) => {
                                    Value::Str(format!("{l}{r}"))
                                }
                                _ => return Err(type_err(line, "+", l, r)),
                            },
                            _ => {
                                let (Some(a), Some(b)) = (l.as_num(), r.as_num()) else {
                                    let sym = match op {
                                        Arith::Sub => "-",
                                        Arith::Mul => "*",
                                        Arith::Div => "/",
                                        _ => "%",
                                    };
                                    return Err(type_err(line, sym, l, r));
                                };
                                match op {
                                    Arith::Sub => Value::Num(a - b),
                                    Arith::Mul => Value::Num(a * b),
                                    Arith::Div => {
                                        if b == 0.0 {
                                            return Err(ScriptError::runtime(
                                                line,
                                                "division by zero",
                                            ));
                                        }
                                        Value::Num(a / b)
                                    }
                                    _ => {
                                        if b == 0.0 {
                                            return Err(ScriptError::runtime(
                                                line,
                                                "modulo by zero",
                                            ));
                                        }
                                        Value::Num(a % b)
                                    }
                                }
                            }
                        }
                    };
                    let (tag, idx) = crate::compile::operand_parts(dst);
                    if tag == crate::compile::OPERAND_GLOBAL {
                        if par {
                            // Fused global destinations only compile in
                            // main protos, which never run in par mode;
                            // defensive to keep the ban airtight.
                            let name = interner.resolve(globals.names[idx as usize]);
                            return Err(ScriptError::runtime(
                                line,
                                format!(
                                    "cannot assign to global {name:?} inside par_foreach_trial"
                                ),
                            ));
                        }
                        globals.slots[idx as usize] = Some(v);
                    } else {
                        locals[base + idx as usize] = v;
                    }
                    last = Value::Null;
                }
                Op::CmpJumpFalse { cmp, target } => {
                    let r = stack.pop().expect("rhs");
                    let l = stack.pop().expect("lhs");
                    let b = match cmp {
                        Cmp::Eq => l == r,
                        Cmp::Ne => l != r,
                        _ => {
                            let ord = match (&l, &r) {
                                (Value::Num(a), Value::Num(b)) => a.partial_cmp(b),
                                (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
                                _ => None,
                            };
                            let Some(ord) = ord else {
                                return Err(type_err(
                                    proto.lines[ip] as usize,
                                    "comparison",
                                    &l,
                                    &r,
                                ));
                            };
                            use std::cmp::Ordering::*;
                            match cmp {
                                Cmp::Lt => ord == Less,
                                Cmp::Le => ord != Greater,
                                Cmp::Gt => ord == Greater,
                                _ => ord != Less,
                            }
                        }
                    };
                    if !b {
                        ip = target as usize;
                        continue;
                    }
                }
                Op::AndJump(t) => {
                    let v = stack.pop().expect("operand");
                    if !v.truthy() {
                        stack.push(Value::Bool(false));
                        ip = t as usize;
                        continue;
                    }
                }
                Op::OrJump(t) => {
                    let v = stack.pop().expect("operand");
                    if v.truthy() {
                        stack.push(Value::Bool(true));
                        ip = t as usize;
                        continue;
                    }
                }
                Op::ToBool => {
                    let v = stack.pop().expect("operand");
                    stack.push(Value::Bool(v.truthy()));
                }
                Op::Add => {
                    let r = stack.pop().expect("rhs");
                    let l = stack.pop().expect("lhs");
                    let v = match (&l, &r) {
                        (Value::Num(a), Value::Num(b)) => Value::Num(a + b),
                        (Value::List(a), Value::List(b)) => {
                            let mut out = a.clone();
                            out.extend(b.iter().cloned());
                            Value::List(out)
                        }
                        (Value::Str(_), _) | (_, Value::Str(_)) => Value::Str(format!("{l}{r}")),
                        _ => return Err(type_err(proto.lines[ip] as usize, "+", &l, &r)),
                    };
                    stack.push(v);
                }
                op @ (Op::Sub | Op::Mul | Op::Div | Op::Rem) => {
                    let r = stack.pop().expect("rhs");
                    let l = stack.pop().expect("lhs");
                    let line = proto.lines[ip] as usize;
                    let (Some(a), Some(b)) = (l.as_num(), r.as_num()) else {
                        let sym = match op {
                            Op::Sub => "-",
                            Op::Mul => "*",
                            Op::Div => "/",
                            _ => "%",
                        };
                        return Err(type_err(line, sym, &l, &r));
                    };
                    let v = match op {
                        Op::Sub => a - b,
                        Op::Mul => a * b,
                        Op::Div => {
                            if b == 0.0 {
                                return Err(ScriptError::runtime(line, "division by zero"));
                            }
                            a / b
                        }
                        _ => {
                            if b == 0.0 {
                                return Err(ScriptError::runtime(line, "modulo by zero"));
                            }
                            a % b
                        }
                    };
                    stack.push(Value::Num(v));
                }
                Op::Eq => {
                    let r = stack.pop().expect("rhs");
                    let l = stack.pop().expect("lhs");
                    stack.push(Value::Bool(l == r));
                }
                Op::Ne => {
                    let r = stack.pop().expect("rhs");
                    let l = stack.pop().expect("lhs");
                    stack.push(Value::Bool(l != r));
                }
                op @ (Op::Lt | Op::Le | Op::Gt | Op::Ge) => {
                    let r = stack.pop().expect("rhs");
                    let l = stack.pop().expect("lhs");
                    let ord = match (&l, &r) {
                        (Value::Num(a), Value::Num(b)) => a.partial_cmp(b),
                        (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
                        _ => None,
                    };
                    let Some(ord) = ord else {
                        return Err(type_err(proto.lines[ip] as usize, "comparison", &l, &r));
                    };
                    use std::cmp::Ordering::*;
                    let b = match op {
                        Op::Lt => ord == Less,
                        Op::Le => ord != Greater,
                        Op::Gt => ord == Greater,
                        _ => ord != Less,
                    };
                    stack.push(Value::Bool(b));
                }
                Op::Neg => {
                    let v = stack.pop().expect("operand");
                    match v.as_num() {
                        Some(n) => stack.push(Value::Num(-n)),
                        None => {
                            return Err(ScriptError::runtime(
                                proto.lines[ip] as usize,
                                format!("cannot negate a {}", v.type_name()),
                            ))
                        }
                    }
                }
                Op::Not => {
                    let v = stack.pop().expect("operand");
                    stack.push(Value::Bool(!v.truthy()));
                }
                Op::Index => {
                    let i = stack.pop().expect("index");
                    let b = stack.pop().expect("base");
                    let line = proto.lines[ip] as usize;
                    let v = match (&b, &i) {
                        (Value::List(items), Value::Num(n)) => {
                            let idx = *n as usize;
                            if n.fract() != 0.0 || *n < 0.0 || idx >= items.len() {
                                return Err(ScriptError::runtime(
                                    line,
                                    format!("list index {n} out of range (len {})", items.len()),
                                ));
                            }
                            items[idx].clone()
                        }
                        (Value::Map(m), Value::Str(k)) => match m.get(k) {
                            Some(v) => v.clone(),
                            None => {
                                return Err(ScriptError::runtime(
                                    line,
                                    format!("missing map key {k:?}"),
                                ))
                            }
                        },
                        (Value::Str(s), Value::Num(n)) => {
                            let idx = *n as usize;
                            match s.chars().nth(idx) {
                                Some(c) => Value::Str(c.to_string()),
                                None => {
                                    return Err(ScriptError::runtime(
                                        line,
                                        format!("string index {n} out of range"),
                                    ))
                                }
                            }
                        }
                        (b, i) => {
                            return Err(ScriptError::runtime(
                                line,
                                format!("cannot index {} with {}", b.type_name(), i.type_name()),
                            ))
                        }
                    };
                    stack.push(v);
                }
                Op::IndexSetLocal(s) => {
                    let idx = stack.pop().expect("index");
                    let value = stack.pop().expect("value");
                    let line = proto.lines[ip] as usize;
                    index_set(&mut locals[base + s as usize], idx, value, line)?;
                    last = Value::Null;
                }
                Op::IndexSetGlobal(g) => {
                    let idx = stack.pop().expect("index");
                    let value = stack.pop().expect("value");
                    let line = proto.lines[ip] as usize;
                    if globals.slots[g as usize].is_none() {
                        let name = interner.resolve(globals.names[g as usize]);
                        return Err(ScriptError::runtime(
                            line,
                            format!("undefined variable {name:?}"),
                        ));
                    }
                    if par {
                        let name = interner.resolve(globals.names[g as usize]);
                        return Err(ScriptError::runtime(
                            line,
                            format!("cannot mutate global {name:?} inside par_foreach_trial"),
                        ));
                    }
                    let container = globals.slots[g as usize].as_mut().expect("checked");
                    index_set(container, idx, value, line)?;
                    last = Value::Null;
                }
                Op::CallBuiltin { builtin, argc } => {
                    let at = stack.len() - argc as usize;
                    let line = proto.lines[ip] as usize;
                    let v = crate::builtins::call(builtin, &stack[at..], output, line)?;
                    stack.truncate(at);
                    stack.push(v);
                }
                Op::CallFn { fn_id, argc } => {
                    let line = proto.lines[ip] as usize;
                    let entry = &mut fns.entries[fn_id as usize];
                    if let Some(callee) = entry.user.clone() {
                        if callee.params != argc {
                            return Err(ScriptError::runtime(
                                line,
                                format!(
                                    "{}() expects {} arguments, got {}",
                                    interner.resolve(entry.name),
                                    callee.params,
                                    argc
                                ),
                            ));
                        }
                        if frames.len() >= depth_limit {
                            return Err(ScriptError::runtime(line, "call depth limit exceeded"));
                        }
                        // Arguments become the callee's first locals.
                        let at = stack.len() - argc as usize;
                        let new_base = locals.len();
                        locals.extend(stack.drain(at..));
                        locals.resize(new_base + callee.locals as usize, Value::Null);
                        frames.push(Frame {
                            proto: std::mem::replace(&mut proto, callee),
                            ret_ip: ip + 1,
                            base,
                            iter_base,
                            saved_last: std::mem::replace(&mut last, Value::Null),
                        });
                        base = new_base;
                        iter_base = iters.len();
                        ip = 0;
                        continue;
                    }
                    if let Some(f) = entry.host.as_mut() {
                        let at = stack.len() - argc as usize;
                        argbuf.clear();
                        argbuf.extend(stack.drain(at..));
                        let name = interner.resolve(entry.name);
                        let v = f(argbuf).map_err(|msg| {
                            ScriptError::runtime(line, format!("{name}(): {msg}"))
                        })?;
                        stack.push(v);
                    } else {
                        return Err(ScriptError::runtime(
                            line,
                            format!("unknown function {:?}", interner.resolve(entry.name)),
                        ));
                    }
                }
                Op::DefineFn { fn_id, def } => {
                    if par {
                        let name = interner.resolve(fns.entries[fn_id as usize].name);
                        return Err(ScriptError::runtime(
                            proto.lines[ip] as usize,
                            format!("cannot define function {name:?} inside par_foreach_trial"),
                        ));
                    }
                    fns.entries[fn_id as usize].user = Some(Arc::clone(&proto.defs[def as usize]));
                    last = Value::Null;
                }
                Op::ForPrep => {
                    let iterable = stack.pop().expect("iterable");
                    let items: Vec<Value> = match iterable {
                        Value::List(v) => v,
                        Value::Map(m) => m.keys().map(|k| Value::Str(k.clone())).collect(),
                        other => {
                            return Err(ScriptError::runtime(
                                proto.lines[ip] as usize,
                                format!("cannot iterate a {}", other.type_name()),
                            ))
                        }
                    };
                    iters.push((items, 0));
                }
                Op::ForNext { slot, exit } => {
                    let (items, idx) = iters.last_mut().expect("iterator");
                    if *idx < items.len() {
                        let v = std::mem::replace(&mut items[*idx], Value::Null);
                        *idx += 1;
                        locals[base + slot as usize] = v;
                    } else {
                        iters.pop();
                        ip = exit as usize;
                        continue;
                    }
                }
                Op::PopIter => {
                    iters.pop();
                }
                Op::SetLast => {
                    last = stack.pop().expect("statement value");
                }
                Op::ClearLast => {
                    last = Value::Null;
                }
                Op::Return | Op::ReturnLast => {
                    let v = match op {
                        Op::Return => stack.pop().expect("return value"),
                        _ => std::mem::replace(&mut last, Value::Null),
                    };
                    match frames.pop() {
                        Some(f) => {
                            // Unwind this frame's locals and any iterators
                            // still open in loops we returned out of.
                            iters.truncate(iter_base);
                            locals.truncate(base);
                            last = f.saved_last;
                            base = f.base;
                            iter_base = f.iter_base;
                            ip = f.ret_ip;
                            proto = f.proto;
                            stack.push(v);
                            continue;
                        }
                        None => return Ok(v),
                    }
                }
                Op::FailLoopFlow => {
                    return Err(ScriptError::runtime(
                        proto.lines[ip] as usize,
                        "break/continue outside loop",
                    ));
                }
                Op::FailIndexBase => {
                    return Err(ScriptError::runtime(
                        proto.lines[ip] as usize,
                        "index assignment requires a variable base",
                    ));
                }
                Op::ParForEach { def } => {
                    let iterable = stack.pop().expect("iterable");
                    let line = proto.lines[ip] as usize;
                    let Value::List(items) = iterable else {
                        return Err(ScriptError::runtime(
                            line,
                            format!(
                                "par_foreach_trial expects a list, got a {}",
                                iterable.type_name()
                            ),
                        ));
                    };
                    let body_proto = Arc::clone(&proto.defs[def as usize]);
                    // Each body runs with an independent step counter
                    // bounded by what remains of the sweep's budget;
                    // the per-body totals fold back in afterwards so
                    // sequential and parallel execution account
                    // identically.
                    let entry_steps = *steps;
                    let budget = limit - entry_steps;
                    let stack_mark = stack.len();
                    let locals_mark = locals.len();
                    let iters_mark = iters.len();
                    let mut results = Vec::with_capacity(items.len());
                    let mut total: u64 = 0;
                    for item in items {
                        let mut body_steps = 0u64;
                        let mut body_out = Vec::new();
                        locals.push(item);
                        let r = dispatch(
                            interner,
                            globals,
                            fns,
                            &mut body_out,
                            stack,
                            locals,
                            iters,
                            argbuf,
                            &mut body_steps,
                            budget,
                            depth_limit,
                            true,
                            &body_proto,
                            locals_mark,
                        );
                        // A body error (or success) must not leak
                        // transient state into its siblings or caller.
                        stack.truncate(stack_mark);
                        locals.truncate(locals_mark);
                        iters.truncate(iters_mark);
                        total = total.saturating_add(body_steps);
                        output.append(&mut body_out);
                        results.push(crate::interp::sweep_outcome_value(r));
                    }
                    *steps = entry_steps.saturating_add(total);
                    stack.push(Value::List(results));
                }
            }
            ip += 1;
        }
    }
}

/// Reads a packed fused-op operand. The global case is compiler-proven
/// defined; the error arm is defensive (it mirrors `LoadGlobal`'s)
/// rather than a panic so no script input can abort the process.
#[inline]
fn read_operand<'v>(
    packed: u32,
    locals: &'v [Value],
    base: usize,
    globals: &'v Globals,
    consts: &'v [Value],
    interner: &crate::value::Interner,
    line: usize,
) -> Result<&'v Value> {
    let (tag, idx) = crate::compile::operand_parts(packed);
    match tag {
        crate::compile::OPERAND_GLOBAL => match &globals.slots[idx as usize] {
            Some(v) => Ok(v),
            None => {
                let name = interner.resolve(globals.names[idx as usize]);
                Err(ScriptError::runtime(
                    line,
                    format!("undefined variable {name:?}"),
                ))
            }
        },
        crate::compile::OPERAND_CONST => Ok(&consts[idx as usize]),
        _ => Ok(&locals[base + idx as usize]),
    }
}

/// In-place `container[idx] = value`, replicating the tree-walker's
/// checks exactly (including its lack of a negative-index check on list
/// assignment: the cast saturates, so `a[-1] = v` writes `a[0]`).
pub(crate) fn index_set(
    container: &mut Value,
    idx: Value,
    value: Value,
    line: usize,
) -> Result<()> {
    match (container, idx) {
        (Value::List(items), Value::Num(n)) => {
            let i = n as usize;
            if n.fract() != 0.0 || i >= items.len() {
                return Err(ScriptError::runtime(
                    line,
                    format!("list index {n} out of range (len {})", items.len()),
                ));
            }
            items[i] = value;
        }
        (Value::Map(m), Value::Str(k)) => {
            m.insert(k, value);
        }
        (c, i) => {
            return Err(ScriptError::runtime(
                line,
                format!("cannot index {} with {}", c.type_name(), i.type_name()),
            ))
        }
    }
    Ok(())
}
