//! Differential tests pinning the flat kernels to the nested reference
//! implementations in `statistics::reference` (the executable spec).
//!
//! k-means is held to *bit-identical* results: the flat kernel draws the
//! same seeding decisions and accumulates the update/inertia passes in
//! the same term order, so assignments, centroids, inertia and iteration
//! count must match exactly. Silhouette, covariance and PCA reorder
//! floating-point accumulation (unrolled dots, parallel triangles), so
//! they are pinned within scale-relative tolerance; PCA additionally via
//! the eigen residual ‖C·v − λ·v‖, which is robust to eigenvector sign
//! and near-degenerate eigenvalue ordering.

use proptest::prelude::*;
use statistics::{
    covariance_matrix_flat, kmeans_flat, principal_components_flat, reference, silhouette_flat,
    DenseMatrix, KMeansConfig, MatrixView,
};

/// Rectangular nested point sets: every row shares one dimensionality.
fn rect_points(max_dim: usize, min_n: usize, max_n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    (1usize..=max_dim).prop_flat_map(move |dim| {
        prop::collection::vec(
            prop::collection::vec(-50.0f64..50.0, dim..=dim),
            min_n..=max_n,
        )
    })
}

fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    #[test]
    fn kmeans_flat_is_bit_identical_to_reference(
        pts in rect_points(8, 4, 32),
        k in 1usize..=4,
        seed in 0u64..1_000_000,
    ) {
        let cfg = KMeansConfig { k, seed, ..Default::default() };
        let m = DenseMatrix::from_rows(&pts).unwrap();
        match (reference::kmeans(&pts, &cfg), kmeans_flat(m.view(), &cfg)) {
            (Ok(r), Ok(f)) => {
                prop_assert_eq!(&r.assignments, &f.assignments);
                prop_assert_eq!(r.centroids, f.centroids.to_nested());
                prop_assert_eq!(r.inertia.to_bits(), f.inertia.to_bits());
                prop_assert_eq!(r.iterations, f.iterations);
            }
            (Err(_), Err(_)) => {}
            (r, f) => prop_assert!(false, "reference {:?} vs flat {:?}", r.is_ok(), f.is_ok()),
        }
    }

    #[test]
    fn silhouette_flat_matches_reference(
        pts in rect_points(6, 4, 28),
        k in 2usize..=4,
        seed in 0u64..1_000_000,
    ) {
        // Assignments from the reference clustering itself so they are
        // realistic; fall back silently when clustering degenerates.
        let cfg = KMeansConfig { k: k.min(pts.len()), seed, ..Default::default() };
        if let Ok(r) = reference::kmeans(&pts, &cfg) {
            let m = DenseMatrix::from_rows(&pts).unwrap();
            match (
                reference::silhouette(&pts, &r.assignments),
                silhouette_flat(m.view(), &r.assignments),
            ) {
                (Ok(a), Ok(b)) => prop_assert!(close(a, b, 1e-9), "{a} vs {b}"),
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(false, "reference {:?} vs flat {:?}", a.is_ok(), b.is_ok()),
            }
        }
    }

    #[test]
    fn covariance_flat_matches_reference(
        cols in rect_points(6, 1, 40),
    ) {
        // `rect_points` rows double as equal-length columns here.
        let reference_m = reference::covariance_matrix(&cols).unwrap();
        let flat = covariance_matrix_flat(DenseMatrix::from_columns(&cols).unwrap().view())
            .unwrap();
        let p = cols.len();
        prop_assert_eq!(flat.rows(), p);
        prop_assert_eq!(flat.cols(), p);
        for (i, ref_row) in reference_m.iter().enumerate() {
            for (j, &ref_v) in ref_row.iter().enumerate() {
                prop_assert!(
                    close(ref_v, flat.get(i, j), 1e-9),
                    "entry ({i}, {j}): {} vs {}",
                    ref_v,
                    flat.get(i, j)
                );
            }
        }
    }

    #[test]
    fn pca_flat_matches_reference(
        cols in (2usize..=5, 3usize..=24).prop_flat_map(|(p, n)| {
            // p variables (columns), n samples each.
            prop::collection::vec(
                prop::collection::vec(-20.0f64..20.0, n..=n),
                p..=p,
            )
        }),
    ) {
        let reference_pca = reference::principal_components(&cols).unwrap();
        let flat_pca =
            principal_components_flat(DenseMatrix::from_columns(&cols).unwrap().view()).unwrap();
        let p = cols.len();
        prop_assert_eq!(flat_pca.eigenvalues.len(), p);
        for (a, b) in reference_pca.eigenvalues.iter().zip(&flat_pca.eigenvalues) {
            prop_assert!(close(*a, *b, 1e-7), "eigenvalue {a} vs {b}");
        }
        for (a, b) in reference_pca.means.iter().zip(&flat_pca.means) {
            prop_assert!(close(*a, *b, 1e-9), "mean {a} vs {b}");
        }
        for (a, b) in reference_pca
            .explained_variance_ratio
            .iter()
            .zip(&flat_pca.explained_variance_ratio)
        {
            prop_assert!(close(*a, *b, 1e-6), "explained ratio {a} vs {b}");
        }
        // Eigenvector check robust to sign and degenerate ordering: each
        // flat component must satisfy C·v ≈ λ·v against the *reference*
        // covariance matrix.
        let c = reference::covariance_matrix(&cols).unwrap();
        let scale = 1.0
            + c.iter()
                .flat_map(|row| row.iter().map(|v| v.abs()))
                .fold(0.0, f64::max);
        for (lambda, v) in flat_pca.eigenvalues.iter().zip(&flat_pca.components) {
            for i in 0..p {
                let cv: f64 = (0..p).map(|j| c[i][j] * v[j]).sum();
                prop_assert!(
                    (cv - lambda * v[i]).abs() <= 1e-6 * scale,
                    "residual row {i}: C·v = {cv}, λ·v = {}",
                    lambda * v[i]
                );
            }
        }
    }

    #[test]
    fn flat_wrappers_match_flat_kernels(
        pts in rect_points(4, 4, 16),
        seed in 0u64..1_000_000,
    ) {
        // The compat wrappers must be pure gather + delegate.
        let cfg = KMeansConfig { k: 2, seed, ..Default::default() };
        let m = DenseMatrix::from_rows(&pts).unwrap();
        match (statistics::kmeans(&pts, &cfg), kmeans_flat(m.view(), &cfg)) {
            (Ok(w), Ok(f)) => {
                prop_assert_eq!(&w.assignments, &f.assignments);
                prop_assert_eq!(w.centroids, f.centroids.to_nested());
                prop_assert_eq!(w.inertia.to_bits(), f.inertia.to_bits());
                if let (Ok(sw), Ok(sf)) = (
                    statistics::silhouette(&pts, &w.assignments),
                    silhouette_flat(m.view(), &f.assignments),
                ) {
                    prop_assert_eq!(sw.to_bits(), sf.to_bits());
                }
            }
            (Err(_), Err(_)) => {}
            (w, f) => prop_assert!(false, "wrapper {:?} vs flat {:?}", w.is_ok(), f.is_ok()),
        }
    }
}

#[test]
fn flat_kernels_reject_bad_shapes_like_reference() {
    // Zero rows / zero cols.
    assert!(matches!(
        kmeans_flat(
            MatrixView::new(&[], 0, 2).unwrap(),
            &KMeansConfig::default()
        ),
        Err(statistics::StatError::Empty)
    ));
    assert!(matches!(
        kmeans_flat(
            MatrixView::new(&[], 2, 0).unwrap(),
            &KMeansConfig::default()
        ),
        Err(statistics::StatError::InvalidParameter(_))
    ));
    assert!(matches!(
        silhouette_flat(MatrixView::new(&[], 3, 0).unwrap(), &[0, 0, 1]),
        Err(statistics::StatError::InvalidParameter(_))
    ));
    // Assignment-length mismatch carries (points, assignments).
    assert!(matches!(
        silhouette_flat(MatrixView::new(&[1.0, 2.0, 3.0], 3, 1).unwrap(), &[0, 1]),
        Err(statistics::StatError::LengthMismatch { left: 3, right: 2 })
    ));
}
