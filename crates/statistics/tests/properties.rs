//! Property-based tests for the statistics kernels.

use proptest::prelude::*;
use statistics::{
    cluster::{kmeans, KMeansConfig},
    correlation::{pearson, spearman},
    descriptive::{mean, quantile, Summary, Welford},
    histogram::Histogram,
    regression::ols,
};

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6f64, 1..max_len)
}

/// O(n²) fractional ranks straight from the definition: rank = (count
/// below) + midpoint of the tie block. The naive spec the single-pass
/// `ranks` in `statistics::correlation` is pinned against.
fn naive_ranks(data: &[f64]) -> Vec<f64> {
    data.iter()
        .map(|&v| {
            let less = data.iter().filter(|&&w| w < v).count();
            let equal = data.iter().filter(|&&w| w == v).count();
            less as f64 + (equal as f64 + 1.0) / 2.0
        })
        .collect()
}

proptest! {
    #[test]
    fn mean_lies_within_min_max(data in finite_vec(64)) {
        let s = Summary::of(&data).unwrap();
        prop_assert!(s.mean >= s.min - 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
    }

    #[test]
    fn stddev_is_nonnegative(data in finite_vec(64)) {
        let s = Summary::of(&data).unwrap();
        prop_assert!(s.stddev >= 0.0);
    }

    #[test]
    fn median_lies_within_min_max(data in finite_vec(64)) {
        let s = Summary::of(&data).unwrap();
        prop_assert!(s.median >= s.min - 1e-9);
        prop_assert!(s.median <= s.max + 1e-9);
    }

    #[test]
    fn quantiles_are_monotone(data in finite_vec(64), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&data, lo).unwrap();
        let b = quantile(&data, hi).unwrap();
        prop_assert!(a <= b + 1e-9);
    }

    #[test]
    fn welford_matches_summary(data in finite_vec(64)) {
        let mut w = Welford::new();
        for &x in &data { w.push(x); }
        let s = Summary::of(&data).unwrap();
        prop_assert!((w.mean() - s.mean).abs() < 1e-6 * (1.0 + s.mean.abs()));
        prop_assert!((w.variance() - s.variance).abs() < 1e-4 * (1.0 + s.variance.abs()));
    }

    #[test]
    fn welford_merge_is_order_independent(a in finite_vec(32), b in finite_vec(32)) {
        let fold = |v: &[f64]| {
            let mut w = Welford::new();
            for &x in v { w.push(x); }
            w
        };
        let mut ab = fold(&a);
        ab.merge(&fold(&b));
        let mut ba = fold(&b);
        ba.merge(&fold(&a));
        prop_assert!((ab.mean() - ba.mean()).abs() < 1e-6 * (1.0 + ab.mean().abs()));
        prop_assert!((ab.variance() - ba.variance()).abs() < 1e-4 * (1.0 + ab.variance().abs()));
        prop_assert_eq!(ab.count(), ba.count());
    }

    #[test]
    fn pearson_in_unit_interval(
        data in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..64)
    ) {
        let x: Vec<f64> = data.iter().map(|p| p.0).collect();
        let y: Vec<f64> = data.iter().map(|p| p.1).collect();
        if let Ok(r) = pearson(&x, &y) {
            prop_assert!((-1.0..=1.0).contains(&r));
        }
    }

    #[test]
    fn pearson_is_symmetric(
        data in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..32)
    ) {
        let x: Vec<f64> = data.iter().map(|p| p.0).collect();
        let y: Vec<f64> = data.iter().map(|p| p.1).collect();
        match (pearson(&x, &y), pearson(&y, &x)) {
            (Ok(a), Ok(b)) => prop_assert!((a - b).abs() < 1e-9),
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "symmetry of error behaviour violated"),
        }
    }

    #[test]
    fn pearson_invariant_under_affine_transform(
        data in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 3..32),
        scale in 0.1f64..10.0,
        shift in -100.0f64..100.0
    ) {
        let x: Vec<f64> = data.iter().map(|p| p.0).collect();
        let y: Vec<f64> = data.iter().map(|p| p.1).collect();
        let y2: Vec<f64> = y.iter().map(|v| v * scale + shift).collect();
        if let (Ok(a), Ok(b)) = (pearson(&x, &y), pearson(&x, &y2)) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn spearman_in_unit_interval(
        data in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..48)
    ) {
        let x: Vec<f64> = data.iter().map(|p| p.0).collect();
        let y: Vec<f64> = data.iter().map(|p| p.1).collect();
        if let Ok(r) = spearman(&x, &y) {
            prop_assert!((-1.0..=1.0).contains(&r));
        }
    }

    #[test]
    fn spearman_matches_naive_rank_reference_on_ties(
        data in prop::collection::vec((0i32..6, 0i32..6), 2..48)
    ) {
        // Small integer grids force heavy ties in both series.
        let x: Vec<f64> = data.iter().map(|p| p.0 as f64).collect();
        let y: Vec<f64> = data.iter().map(|p| p.1 as f64).collect();
        match (spearman(&x, &y), pearson(&naive_ranks(&x), &naive_ranks(&y))) {
            (Ok(a), Ok(b)) => prop_assert!((a - b).abs() < 1e-9, "{} vs naive {}", a, b),
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "tie handling diverges from the naive reference"),
        }
    }

    #[test]
    fn ols_residuals_orthogonal_to_x(
        data in prop::collection::vec((-1e2f64..1e2, -1e2f64..1e2), 3..32)
    ) {
        let x: Vec<f64> = data.iter().map(|p| p.0).collect();
        let y: Vec<f64> = data.iter().map(|p| p.1).collect();
        if let Ok(fit) = ols(&x, &y) {
            // Normal equations force residuals orthogonal to the design.
            let dot: f64 = x.iter().zip(&y)
                .map(|(&a, &b)| a * (b - fit.predict(a)))
                .sum();
            let scale: f64 = 1.0 + x.iter().map(|v| v.abs()).sum::<f64>()
                * y.iter().map(|v| v.abs()).fold(0.0, f64::max);
            prop_assert!(dot.abs() / scale < 1e-6);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&fit.r_squared));
        }
    }

    #[test]
    fn kmeans_assignment_count_matches_points(
        pts in prop::collection::vec(
            prop::collection::vec(-100.0f64..100.0, 2..=2), 4..32),
        k in 1usize..4
    ) {
        let cfg = KMeansConfig { k, ..Default::default() };
        let res = kmeans(&pts, &cfg).unwrap();
        prop_assert_eq!(res.assignments.len(), pts.len());
        prop_assert!(res.assignments.iter().all(|&a| a < k));
        prop_assert!(res.inertia >= 0.0);
    }

    #[test]
    fn histogram_conserves_samples(data in finite_vec(128), bins in 1usize..32) {
        let h = Histogram::from_data(&data, bins).unwrap();
        let binned: u64 = h.counts().iter().sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), h.total());
        prop_assert_eq!(h.total(), data.len() as u64);
    }

    #[test]
    fn mean_of_shifted_data_shifts(data in finite_vec(64), shift in -1e3f64..1e3) {
        let m1 = mean(&data).unwrap();
        let shifted: Vec<f64> = data.iter().map(|x| x + shift).collect();
        let m2 = mean(&shifted).unwrap();
        prop_assert!((m2 - (m1 + shift)).abs() < 1e-6 * (1.0 + m1.abs() + shift.abs()));
    }
}
