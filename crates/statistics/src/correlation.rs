//! Correlation and covariance.
//!
//! The paper's load-imbalance rule requires that "on a per-thread basis,
//! the times in the events are highly negatively correlated — a thread
//! that finishes the inner loop early will spend more time in the outer
//! loop waiting at the barrier". [`pearson`] is the primitive behind that
//! condition; [`spearman`] is provided for rank-robust variants.
//!
//! [`covariance_matrix_flat`] is the optimized kernel: it centres every
//! column exactly once into a contiguous column-major scratch, then
//! fills the upper triangle with one unrolled dot product per entry,
//! parallelised over triangle rows with rayon. The nested
//! [`covariance_matrix`] signature survives as a gather-once wrapper;
//! [`crate::reference::covariance_matrix`] keeps the original per-pair
//! implementation as the executable spec.

use crate::matrix::{dot, DenseMatrix, MatrixView};
use crate::{Result, StatError};
use rayon::prelude::*;

fn check_pair(x: &[f64], y: &[f64], need: usize) -> Result<()> {
    if x.len() != y.len() {
        return Err(StatError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    if x.len() < need {
        return Err(StatError::TooFewSamples { got: x.len(), need });
    }
    Ok(())
}

/// Population covariance of two equal-length series.
pub fn covariance(x: &[f64], y: &[f64]) -> Result<f64> {
    check_pair(x, y, 1)?;
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    Ok(x.iter()
        .zip(y)
        .map(|(&a, &b)| (a - mx) * (b - my))
        .sum::<f64>()
        / n)
}

/// Pearson product-moment correlation coefficient, in `[-1, 1]`.
///
/// Returns [`StatError::Degenerate`] when either series has zero variance
/// (correlation is undefined for a constant series).
pub fn pearson(x: &[f64], y: &[f64]) -> Result<f64> {
    check_pair(x, y, 2)?;
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return Err(StatError::Degenerate("zero variance series".into()));
    }
    // Clamp to counteract floating point drift just outside [-1, 1].
    Ok((sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0))
}

/// Assigns fractional ranks (average rank for ties), 1-based.
///
/// Single forward pass over the sort order: a tie group is closed as
/// soon as the next value differs, so each position is visited once.
/// Public so incremental rank summaries ([`crate::streaming`]) refresh
/// dirty planes with the exact kernel the batch path uses.
pub fn ranks(data: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..data.len()).collect();
    idx.sort_by(|&a, &b| {
        data[a]
            .partial_cmp(&data[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out = vec![0.0; data.len()];
    let mut start = 0;
    for pos in 1..=idx.len() {
        if pos == idx.len() || data[idx[pos]] != data[idx[start]] {
            // Ranks are 1-based; a tie group spanning sorted positions
            // [start, pos) averages to the midpoint of those ranks.
            let avg = (start + pos - 1) as f64 / 2.0 + 1.0;
            for &k in &idx[start..pos] {
                out[k] = avg;
            }
            start = pos;
        }
    }
    out
}

/// Spearman rank correlation coefficient, in `[-1, 1]`.
pub fn spearman(x: &[f64], y: &[f64]) -> Result<f64> {
    check_pair(x, y, 2)?;
    pearson(&ranks(x), &ranks(y))
}

/// Covariance matrix over the flat layout: `data` holds one observation
/// per row and one variable per column; the result is the symmetric
/// `cols × cols` population covariance matrix.
///
/// Columns are centred exactly once into a contiguous column-major
/// scratch, so every matrix entry reduces to a single unrolled dot
/// product of two adjacent-memory slices; the upper-triangle rows are
/// independent and computed in parallel.
pub fn covariance_matrix_flat(data: MatrixView<'_>) -> Result<DenseMatrix> {
    let n = data.rows();
    let p = data.cols();
    if n == 0 || p == 0 {
        return Err(StatError::Empty);
    }
    let mut means = vec![0.0; p];
    for i in 0..n {
        for (m, &v) in means.iter_mut().zip(data.row(i)) {
            *m += v;
        }
    }
    for m in &mut means {
        *m /= n as f64;
    }
    let mut centered = vec![0.0; p * n];
    for i in 0..n {
        for (j, &v) in data.row(i).iter().enumerate() {
            centered[j * n + i] = v - means[j];
        }
    }
    let cc = &centered;
    let tri: Vec<Vec<f64>> = (0..p)
        .into_par_iter()
        .map(|i| {
            let ci = &cc[i * n..(i + 1) * n];
            (i..p)
                .map(|j| dot(ci, &cc[j * n..(j + 1) * n]) / n as f64)
                .collect()
        })
        .collect();
    let mut out = DenseMatrix::zeros(p, p);
    for (i, row) in tri.iter().enumerate() {
        for (off, &v) in row.iter().enumerate() {
            out.set(i, i + off, v);
            out.set(i + off, i, v);
        }
    }
    Ok(out)
}

/// Full covariance matrix of column-major data: `columns[j]` is variable
/// `j`'s samples. Result is a symmetric `p × p` matrix in row-major order.
///
/// Compatibility wrapper: transposes the columns into a [`DenseMatrix`]
/// once and defers to [`covariance_matrix_flat`].
pub fn covariance_matrix(columns: &[Vec<f64>]) -> Result<Vec<Vec<f64>>> {
    let m = DenseMatrix::from_columns(columns)?;
    Ok(covariance_matrix_flat(m.view())?.to_nested())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn pearson_perfect_positive() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!(approx(pearson(&x, &y).unwrap(), 1.0));
    }

    #[test]
    fn pearson_perfect_negative() {
        // The paper's barrier-wait signature: inner-loop time up,
        // outer-loop wait time down, exactly anti-correlated.
        let inner = [5.0, 7.0, 9.0, 11.0];
        let outer: Vec<f64> = inner.iter().map(|t| 20.0 - t).collect();
        assert!(approx(pearson(&inner, &outer).unwrap(), -1.0));
    }

    #[test]
    fn pearson_uncorrelated_is_near_zero() {
        // A symmetric pattern orthogonal to the linear ramp.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let y = [1.0, -1.0, -1.0, 1.0, 1.0, -1.0, -1.0, 1.0];
        assert!(pearson(&x, &y).unwrap().abs() < 1e-9);
    }

    #[test]
    fn pearson_constant_series_is_degenerate() {
        assert!(matches!(
            pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]),
            Err(StatError::Degenerate(_))
        ));
    }

    #[test]
    fn pearson_length_mismatch() {
        assert!(matches!(
            pearson(&[1.0, 2.0], &[1.0, 2.0, 3.0]),
            Err(StatError::LengthMismatch { left: 2, right: 3 })
        ));
    }

    #[test]
    fn pearson_needs_two_samples() {
        assert!(matches!(
            pearson(&[1.0], &[1.0]),
            Err(StatError::TooFewSamples { got: 1, need: 2 })
        ));
    }

    #[test]
    fn covariance_known_value() {
        let x = [1.0, 2.0, 3.0];
        let y = [4.0, 6.0, 8.0];
        // cov = E[(x - 2)(y - 6)] = (2 + 0 + 2) / 3
        assert!(approx(covariance(&x, &y).unwrap(), 4.0 / 3.0));
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        let x: [f64; 5] = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v| v.exp()).collect();
        assert!(approx(spearman(&x, &y).unwrap(), 1.0));
    }

    #[test]
    fn spearman_handles_ties() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 2.0, 2.0, 3.0];
        assert!(approx(spearman(&x, &y).unwrap(), 1.0));
    }

    #[test]
    fn ranks_average_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn ranks_all_tied_and_leading_trailing_groups() {
        assert_eq!(ranks(&[7.0, 7.0, 7.0]), vec![2.0, 2.0, 2.0]);
        assert_eq!(
            ranks(&[1.0, 1.0, 2.0, 3.0, 3.0]),
            vec![1.5, 1.5, 3.0, 4.5, 4.5]
        );
        assert_eq!(ranks(&[]), Vec::<f64>::new());
    }

    #[test]
    fn covariance_matrix_is_symmetric_with_variances_on_diagonal() {
        let cols = vec![vec![1.0, 2.0, 3.0, 4.0], vec![2.0, 1.0, 4.0, 3.0]];
        let m = covariance_matrix(&cols).unwrap();
        assert_eq!(m.len(), 2);
        assert!(approx(m[0][1], m[1][0]));
        let var0 = covariance(&cols[0], &cols[0]).unwrap();
        assert!(approx(m[0][0], var0));
    }

    #[test]
    fn covariance_matrix_rejects_ragged_input() {
        let cols = vec![vec![1.0, 2.0], vec![1.0]];
        assert!(matches!(
            covariance_matrix(&cols),
            Err(StatError::LengthMismatch { left: 2, right: 1 })
        ));
    }

    #[test]
    fn covariance_matrix_flat_rejects_empty_shapes() {
        assert!(matches!(
            covariance_matrix_flat(MatrixView::new(&[], 0, 3).unwrap()),
            Err(StatError::Empty)
        ));
        assert!(matches!(
            covariance_matrix_flat(MatrixView::new(&[], 4, 0).unwrap()),
            Err(StatError::Empty)
        ));
    }
}
