//! Correlation and covariance.
//!
//! The paper's load-imbalance rule requires that "on a per-thread basis,
//! the times in the events are highly negatively correlated — a thread
//! that finishes the inner loop early will spend more time in the outer
//! loop waiting at the barrier". [`pearson`] is the primitive behind that
//! condition; [`spearman`] is provided for rank-robust variants.

use crate::{Result, StatError};

fn check_pair(x: &[f64], y: &[f64], need: usize) -> Result<()> {
    if x.len() != y.len() {
        return Err(StatError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    if x.len() < need {
        return Err(StatError::TooFewSamples { got: x.len(), need });
    }
    Ok(())
}

/// Population covariance of two equal-length series.
pub fn covariance(x: &[f64], y: &[f64]) -> Result<f64> {
    check_pair(x, y, 1)?;
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    Ok(x.iter()
        .zip(y)
        .map(|(&a, &b)| (a - mx) * (b - my))
        .sum::<f64>()
        / n)
}

/// Pearson product-moment correlation coefficient, in `[-1, 1]`.
///
/// Returns [`StatError::Degenerate`] when either series has zero variance
/// (correlation is undefined for a constant series).
pub fn pearson(x: &[f64], y: &[f64]) -> Result<f64> {
    check_pair(x, y, 2)?;
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return Err(StatError::Degenerate("zero variance series".into()));
    }
    // Clamp to counteract floating point drift just outside [-1, 1].
    Ok((sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0))
}

/// Assigns fractional ranks (average rank for ties), 1-based.
fn ranks(data: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..data.len()).collect();
    idx.sort_by(|&a, &b| {
        data[a]
            .partial_cmp(&data[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out = vec![0.0; data.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && data[idx[j + 1]] == data[idx[i]] {
            j += 1;
        }
        // Average rank for the tie group [i, j].
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation coefficient, in `[-1, 1]`.
pub fn spearman(x: &[f64], y: &[f64]) -> Result<f64> {
    check_pair(x, y, 2)?;
    pearson(&ranks(x), &ranks(y))
}

/// Full covariance matrix of column-major data: `columns[j]` is variable
/// `j`'s samples. Result is a symmetric `p × p` matrix in row-major order.
pub fn covariance_matrix(columns: &[Vec<f64>]) -> Result<Vec<Vec<f64>>> {
    if columns.is_empty() {
        return Err(StatError::Empty);
    }
    let n = columns[0].len();
    if n == 0 {
        return Err(StatError::Empty);
    }
    for c in columns {
        if c.len() != n {
            return Err(StatError::LengthMismatch {
                left: n,
                right: c.len(),
            });
        }
    }
    let p = columns.len();
    let mut m = vec![vec![0.0; p]; p];
    for i in 0..p {
        for j in i..p {
            let c = covariance(&columns[i], &columns[j])?;
            m[i][j] = c;
            m[j][i] = c;
        }
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn pearson_perfect_positive() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!(approx(pearson(&x, &y).unwrap(), 1.0));
    }

    #[test]
    fn pearson_perfect_negative() {
        // The paper's barrier-wait signature: inner-loop time up,
        // outer-loop wait time down, exactly anti-correlated.
        let inner = [5.0, 7.0, 9.0, 11.0];
        let outer: Vec<f64> = inner.iter().map(|t| 20.0 - t).collect();
        assert!(approx(pearson(&inner, &outer).unwrap(), -1.0));
    }

    #[test]
    fn pearson_uncorrelated_is_near_zero() {
        // A symmetric pattern orthogonal to the linear ramp.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let y = [1.0, -1.0, -1.0, 1.0, 1.0, -1.0, -1.0, 1.0];
        assert!(pearson(&x, &y).unwrap().abs() < 1e-9);
    }

    #[test]
    fn pearson_constant_series_is_degenerate() {
        assert!(matches!(
            pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]),
            Err(StatError::Degenerate(_))
        ));
    }

    #[test]
    fn pearson_length_mismatch() {
        assert!(matches!(
            pearson(&[1.0, 2.0], &[1.0, 2.0, 3.0]),
            Err(StatError::LengthMismatch { left: 2, right: 3 })
        ));
    }

    #[test]
    fn pearson_needs_two_samples() {
        assert!(matches!(
            pearson(&[1.0], &[1.0]),
            Err(StatError::TooFewSamples { got: 1, need: 2 })
        ));
    }

    #[test]
    fn covariance_known_value() {
        let x = [1.0, 2.0, 3.0];
        let y = [4.0, 6.0, 8.0];
        // cov = E[(x - 2)(y - 6)] = (2 + 0 + 2) / 3
        assert!(approx(covariance(&x, &y).unwrap(), 4.0 / 3.0));
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        let x: [f64; 5] = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v| v.exp()).collect();
        assert!(approx(spearman(&x, &y).unwrap(), 1.0));
    }

    #[test]
    fn spearman_handles_ties() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 2.0, 2.0, 3.0];
        assert!(approx(spearman(&x, &y).unwrap(), 1.0));
    }

    #[test]
    fn ranks_average_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn covariance_matrix_is_symmetric_with_variances_on_diagonal() {
        let cols = vec![vec![1.0, 2.0, 3.0, 4.0], vec![2.0, 1.0, 4.0, 3.0]];
        let m = covariance_matrix(&cols).unwrap();
        assert_eq!(m.len(), 2);
        assert!(approx(m[0][1], m[1][0]));
        let var0 = covariance(&cols[0], &cols[0]).unwrap();
        assert!(approx(m[0][0], var0));
    }

    #[test]
    fn covariance_matrix_rejects_ragged_input() {
        let cols = vec![vec![1.0, 2.0], vec![1.0]];
        assert!(covariance_matrix(&cols).is_err());
    }
}
