//! Fixed-width histograms.
//!
//! Used to build per-event distribution facts (e.g. the spread of
//! per-thread times that Figure 4(a) visualises) and for summarising
//! iteration-cost distributions in the scheduling studies.

use crate::{Result, StatError};
use serde::{Deserialize, Serialize};

/// A fixed-width histogram over a closed range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width buckets over `[lo, hi]`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self> {
        if bins == 0 {
            return Err(StatError::InvalidParameter("bins must be >= 1".into()));
        }
        if lo >= hi {
            return Err(StatError::InvalidParameter(format!(
                "invalid range [{lo}, {hi}]"
            )));
        }
        Ok(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            underflow: 0,
            overflow: 0,
        })
    }

    /// Builds a histogram from data, choosing the range from its extremes.
    pub fn from_data(data: &[f64], bins: usize) -> Result<Self> {
        if data.is_empty() {
            return Err(StatError::Empty);
        }
        let lo = data.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        // Degenerate all-equal data still deserves a usable histogram.
        let (lo, hi) = if lo == hi {
            (lo - 0.5, hi + 0.5)
        } else {
            (lo, hi)
        };
        let mut h = Histogram::new(lo, hi, bins)?;
        for &x in data {
            h.record(x);
        }
        Ok(h)
    }

    /// Records one sample. Samples outside the range land in the
    /// under/overflow counters rather than being dropped silently.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        if x > self.hi {
            self.overflow += 1;
            return;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let mut idx = ((x - self.lo) / width) as usize;
        if idx >= self.counts.len() {
            idx = self.counts.len() - 1; // x == hi lands in the last bin
        }
        self.counts[idx] += 1;
    }

    /// Bucket counts, left to right.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total samples recorded, including under/overflow.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples above the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// `(low_edge, high_edge)` of bucket `i`.
    pub fn bucket_range(&self, i: usize) -> Option<(f64, f64)> {
        if i >= self.counts.len() {
            return None;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        Some((self.lo + width * i as f64, self.lo + width * (i + 1) as f64))
    }

    /// Renders a terminal-friendly bar chart, one bucket per line.
    pub fn render(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let (lo, hi) = self.bucket_range(i).expect("index in range");
            let bar_len = (c as usize * width) / max as usize;
            out.push_str(&format!(
                "[{lo:>12.4}, {hi:>12.4}) {c:>8} {}\n",
                "#".repeat(bar_len)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.record(0.5);
        h.record(5.5);
        h.record(9.99);
        h.record(10.0); // boundary: last bin
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.counts()[9], 2);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn out_of_range_counted_not_dropped() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        h.record(-1.0);
        h.record(2.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 2);
        assert!(h.counts().iter().all(|&c| c == 0));
    }

    #[test]
    fn from_data_covers_extremes() {
        let data = [3.0, 1.0, 2.0, 4.0];
        let h = Histogram::from_data(&data, 3).unwrap();
        assert_eq!(h.total(), 4);
        assert_eq!(h.underflow() + h.overflow(), 0);
        assert_eq!(h.counts().iter().sum::<u64>(), 4);
    }

    #[test]
    fn from_data_constant_series() {
        let h = Histogram::from_data(&[7.0; 5], 4).unwrap();
        assert_eq!(h.total(), 5);
        assert_eq!(h.counts().iter().sum::<u64>(), 5);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(2.0, 1.0, 4).is_err());
        assert!(Histogram::from_data(&[], 4).is_err());
    }

    #[test]
    fn bucket_range_and_render() {
        let mut h = Histogram::new(0.0, 4.0, 4).unwrap();
        assert_eq!(h.bucket_range(0), Some((0.0, 1.0)));
        assert_eq!(h.bucket_range(3), Some((3.0, 4.0)));
        assert_eq!(h.bucket_range(4), None);
        h.record(0.5);
        let text = h.render(10);
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains('#'));
    }
}
