//! Nested-`Vec` reference implementations — the executable spec for the
//! flat kernels.
//!
//! These are the original `Vec<Vec<f64>>` statistics routines, kept
//! verbatim (modulo the empty-cluster re-seeding bugfix, applied to
//! both sides) after the hot paths were rewritten over
//! [`crate::matrix::DenseMatrix`]. They exist for two reasons, the same
//! convention `rules::reference` established:
//!
//! 1. **Differential testing** — `tests/flat_equivalence.rs` pins the
//!    optimized kernels to these across random point sets, seeds and
//!    `k`: k-means must match on assignments, centroids and inertia;
//!    silhouette, covariance and PCA within floating-point reordering
//!    tolerance.
//! 2. **Bench ablation** — `bench/benches/statistics_kernels.rs`
//!    measures flat vs. reference on identical inputs, so the layout
//!    win is quantified against the real former implementation rather
//!    than a strawman.
//!
//! Nothing in the analysis layer should call these; use the flat
//! kernels (or their compat wrappers) in [`crate::cluster`],
//! [`crate::correlation`] and [`crate::pca`] instead.

// Index-based loops are the natural notation for symmetric-matrix
// rotations; iterator adaptors obscure the (p, q) plane updates.
#![allow(clippy::needless_range_loop)]

use crate::cluster::{KMeansConfig, KMeansResult};
use crate::matrix::sq_dist;
use crate::pca::Pca;
use crate::{Result, StatError};

/// Small deterministic xorshift generator so clustering results are
/// reproducible without pulling a full RNG dependency into this crate.
/// Shared by the reference and flat k-means so both draw identical
/// seeding decisions from the same `seed`.
pub(crate) struct XorShift64(u64);

impl XorShift64 {
    pub(crate) fn new(seed: u64) -> Self {
        XorShift64(seed.max(1))
    }
    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Reference k-means: Lloyd's algorithm over nested points, k-means++
/// seeding, one heap-allocated `Vec` per point and per centroid.
pub fn kmeans(points: &[Vec<f64>], config: &KMeansConfig) -> Result<KMeansResult> {
    if points.is_empty() {
        return Err(StatError::Empty);
    }
    if config.k == 0 {
        return Err(StatError::InvalidParameter("k must be >= 1".into()));
    }
    if config.k > points.len() {
        return Err(StatError::InvalidParameter(format!(
            "k = {} exceeds number of points {}",
            config.k,
            points.len()
        )));
    }
    let dim = points[0].len();
    if dim == 0 {
        return Err(StatError::InvalidParameter(
            "zero-dimensional points".into(),
        ));
    }
    for p in points {
        if p.len() != dim {
            return Err(StatError::LengthMismatch {
                left: dim,
                right: p.len(),
            });
        }
    }

    // --- k-means++ seeding ---
    let mut rng = XorShift64::new(config.seed);
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(config.k);
    centroids.push(points[(rng.next_u64() % points.len() as u64) as usize].clone());
    let mut dists: Vec<f64> = points.iter().map(|p| sq_dist(p, &centroids[0])).collect();
    while centroids.len() < config.k {
        let total: f64 = dists.iter().sum();
        let next = if total <= 0.0 {
            // All remaining points coincide with a centroid; pick uniformly.
            (rng.next_u64() % points.len() as u64) as usize
        } else {
            let mut target = rng.next_f64() * total;
            let mut chosen = points.len() - 1;
            for (i, &d) in dists.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.push(points[next].clone());
        for (i, p) in points.iter().enumerate() {
            let d = sq_dist(p, centroids.last().expect("just pushed"));
            if d < dists[i] {
                dists[i] = d;
            }
        }
    }

    // --- Lloyd iterations ---
    let mut assignments = vec![0usize; points.len()];
    let mut iterations = 0;
    loop {
        iterations += 1;
        // Assignment step.
        for (i, p) in points.iter().enumerate() {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let d = sq_dist(p, centroid);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            assignments[i] = best;
        }
        // Update step.
        let mut sums = vec![vec![0.0; dim]; config.k];
        let mut counts = vec![0usize; config.k];
        for (p, &a) in points.iter().zip(&assignments) {
            counts[a] += 1;
            for (s, &v) in sums[a].iter_mut().zip(p) {
                *s += v;
            }
        }
        let mut movement = 0.0;
        for c in 0..config.k {
            if counts[c] == 0 {
                // Empty cluster: re-seed at the point farthest from its
                // *own* assigned centroid to avoid collapsing k.
                let far = points
                    .iter()
                    .enumerate()
                    .max_by(|(i, a), (j, b)| {
                        sq_dist(a, &centroids[assignments[*i]])
                            .partial_cmp(&sq_dist(b, &centroids[assignments[*j]]))
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                movement += sq_dist(&centroids[c], &points[far]);
                centroids[c] = points[far].clone();
                continue;
            }
            let new: Vec<f64> = sums[c].iter().map(|s| s / counts[c] as f64).collect();
            movement += sq_dist(&centroids[c], &new);
            centroids[c] = new;
        }
        // Scale-invariant convergence: same normalisation (and term
        // order) as the flat implementation, so both take the same
        // branch on the same data.
        let mut scale = 0.0;
        for c in 0..config.k {
            for &v in &centroids[c] {
                scale += v * v;
            }
        }
        let threshold = if scale > 0.0 {
            config.tolerance * scale
        } else {
            config.tolerance
        };
        if movement <= threshold {
            break;
        }
        if iterations >= config.max_iterations {
            return Err(StatError::NoConvergence {
                algorithm: "kmeans",
                iterations,
            });
        }
    }

    let inertia = points
        .iter()
        .zip(&assignments)
        .map(|(p, &a)| sq_dist(p, &centroids[a]))
        .sum();
    Ok(KMeansResult {
        assignments,
        centroids,
        inertia,
        iterations,
    })
}

/// Reference silhouette: for every query point, one full O(n) scan of
/// all other points per evaluation — O(n²·d) with nested rows.
pub fn silhouette(points: &[Vec<f64>], assignments: &[usize]) -> Result<f64> {
    if points.is_empty() {
        return Err(StatError::Empty);
    }
    if points.len() != assignments.len() {
        return Err(StatError::LengthMismatch {
            left: points.len(),
            right: assignments.len(),
        });
    }
    if points[0].is_empty() {
        return Err(StatError::InvalidParameter(
            "zero-dimensional points".into(),
        ));
    }
    let k = assignments.iter().copied().max().unwrap_or(0) + 1;
    let mut cluster_sizes = vec![0usize; k];
    for &a in assignments {
        cluster_sizes[a] += 1;
    }
    if cluster_sizes.iter().filter(|&&c| c > 0).count() < 2 {
        return Err(StatError::InvalidParameter(
            "silhouette requires at least 2 populated clusters".into(),
        ));
    }
    let mut total = 0.0;
    for (i, p) in points.iter().enumerate() {
        // Mean distance to every cluster.
        let mut mean_d = vec![0.0; k];
        for (j, q) in points.iter().enumerate() {
            if i != j {
                mean_d[assignments[j]] += sq_dist(p, q).sqrt();
            }
        }
        let own = assignments[i];
        let a = if cluster_sizes[own] > 1 {
            mean_d[own] / (cluster_sizes[own] - 1) as f64
        } else {
            0.0
        };
        let b = (0..k)
            .filter(|&c| c != own && cluster_sizes[c] > 0)
            .map(|c| mean_d[c] / cluster_sizes[c] as f64)
            .fold(f64::INFINITY, f64::min);
        let s = if cluster_sizes[own] > 1 {
            (b - a) / a.max(b)
        } else {
            0.0
        };
        total += s;
    }
    Ok(total / points.len() as f64)
}

/// Reference covariance matrix over column-major data: one pairwise
/// pass per (i, j) entry, each recomputing both column means.
pub fn covariance_matrix(columns: &[Vec<f64>]) -> Result<Vec<Vec<f64>>> {
    if columns.is_empty() {
        return Err(StatError::Empty);
    }
    let n = columns[0].len();
    if n == 0 {
        return Err(StatError::Empty);
    }
    for c in columns {
        if c.len() != n {
            return Err(StatError::LengthMismatch {
                left: n,
                right: c.len(),
            });
        }
    }
    let p = columns.len();
    let mut m = vec![vec![0.0; p]; p];
    for i in 0..p {
        for j in i..p {
            let c = crate::correlation::covariance(&columns[i], &columns[j])?;
            m[i][j] = c;
            m[j][i] = c;
        }
    }
    Ok(m)
}

/// Cyclic Jacobi eigendecomposition of a nested symmetric matrix.
///
/// Returns `(eigenvalues, eigenvectors)` where `eigenvectors[i]` is the
/// eigenvector for `eigenvalues[i]`, both sorted descending by eigenvalue.
pub fn jacobi_eigen(matrix: &[Vec<f64>]) -> Result<(Vec<f64>, Vec<Vec<f64>>)> {
    let n = matrix.len();
    let mut a: Vec<Vec<f64>> = matrix.to_vec();
    let mut v = vec![vec![0.0; n]; n];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    const MAX_SWEEPS: usize = 100;
    for _sweep in 0..MAX_SWEEPS {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += a[i][j] * a[i][j];
            }
        }
        if off.sqrt() < 1e-12 {
            let mut eigen: Vec<(f64, Vec<f64>)> = (0..n)
                .map(|i| (a[i][i], (0..n).map(|r| v[r][i]).collect()))
                .collect();
            eigen.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap_or(std::cmp::Ordering::Equal));
            let (vals, vecs) = eigen.into_iter().unzip();
            return Ok((vals, vecs));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                if a[p][q].abs() < 1e-15 {
                    continue;
                }
                let theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/columns p and q.
                for k in 0..n {
                    let akp = a[k][p];
                    let akq = a[k][q];
                    a[k][p] = c * akp - s * akq;
                    a[k][q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[p][k];
                    let aqk = a[q][k];
                    a[p][k] = c * apk - s * aqk;
                    a[q][k] = s * apk + c * aqk;
                }
                for k in 0..n {
                    let vkp = v[k][p];
                    let vkq = v[k][q];
                    v[k][p] = c * vkp - s * vkq;
                    v[k][q] = s * vkp + c * vkq;
                }
            }
        }
    }
    Err(StatError::NoConvergence {
        algorithm: "jacobi",
        iterations: MAX_SWEEPS,
    })
}

/// Reference PCA over column-major data via the nested covariance and
/// Jacobi routines above.
pub fn principal_components(columns: &[Vec<f64>]) -> Result<Pca> {
    if columns.is_empty() {
        return Err(StatError::Empty);
    }
    let cov = covariance_matrix(columns)?;
    let (eigenvalues, components) = jacobi_eigen(&cov)?;
    let total: f64 = eigenvalues.iter().map(|&e| e.max(0.0)).sum();
    let explained = if total > 0.0 {
        eigenvalues.iter().map(|&e| e.max(0.0) / total).collect()
    } else {
        vec![0.0; eigenvalues.len()]
    };
    let means = columns
        .iter()
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect();
    Ok(Pca {
        eigenvalues,
        components,
        explained_variance_ratio: explained,
        means,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_kmeans_separates_blobs() {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(vec![0.0 + 0.01 * i as f64, 0.0]);
            pts.push(vec![10.0 + 0.01 * i as f64, 10.0]);
        }
        let res = kmeans(&pts, &KMeansConfig::default()).unwrap();
        assert_ne!(res.assignments[0], res.assignments[1]);
        assert!(res.inertia < 1.0);
        let s = silhouette(&pts, &res.assignments).unwrap();
        assert!(s > 0.9);
    }

    #[test]
    fn reference_reseed_uses_own_centroid_distances() {
        // Same crafted case as the regression test in `crate::cluster`:
        // a cluster empties mid-run and the farthest-point pick must be
        // measured against each point's own centroid, not point 0's.
        let pts = vec![
            vec![15.25],
            vec![10.0],
            vec![10.25],
            vec![5.5],
            vec![10.5],
            vec![0.5],
            vec![15.0],
        ];
        let cfg = KMeansConfig {
            k: 4,
            seed: 0xcb54d58de858f293,
            ..Default::default()
        };
        let res = kmeans(&pts, &cfg).unwrap();
        assert_eq!(res.assignments, vec![0, 1, 1, 2, 1, 3, 0]);
        assert!(res.inertia < 1.0);
    }

    #[test]
    fn reference_jacobi_known_eigenvalues() {
        let m = vec![vec![2.0, 1.0], vec![1.0, 2.0]];
        let (vals, _) = jacobi_eigen(&m).unwrap();
        assert!((vals[0] - 3.0).abs() < 1e-9);
        assert!((vals[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reference_covariance_symmetric() {
        let cols = vec![vec![1.0, 2.0, 3.0, 4.0], vec![2.0, 1.0, 4.0, 3.0]];
        let m = covariance_matrix(&cols).unwrap();
        assert_eq!(m[0][1], m[1][0]);
    }
}
