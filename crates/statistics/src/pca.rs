//! Principal component analysis via Jacobi eigendecomposition.
//!
//! PerfExplorer uses dimensionality reduction to visualise
//! multi-metric/multi-event profiles; this module provides the same
//! operation: center the data, form the covariance matrix, and extract
//! eigenvectors sorted by explained variance.

// Index-based loops are the natural notation for symmetric-matrix
// rotations; iterator adaptors obscure the (p, q) plane updates.
#![allow(clippy::needless_range_loop)]

use crate::correlation::covariance_matrix;
use crate::{Result, StatError};
use serde::{Deserialize, Serialize};

/// Result of a principal component analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pca {
    /// Eigenvalues (variances along components), descending.
    pub eigenvalues: Vec<f64>,
    /// Component vectors (rows), matching `eigenvalues` order.
    pub components: Vec<Vec<f64>>,
    /// Fraction of total variance explained per component.
    pub explained_variance_ratio: Vec<f64>,
    /// Column means subtracted before analysis.
    pub means: Vec<f64>,
}

impl Pca {
    /// Projects a single observation (length = number of variables) onto
    /// the first `n` principal components.
    pub fn project(&self, row: &[f64], n: usize) -> Result<Vec<f64>> {
        if row.len() != self.means.len() {
            return Err(StatError::LengthMismatch {
                left: row.len(),
                right: self.means.len(),
            });
        }
        let n = n.min(self.components.len());
        let centered: Vec<f64> = row.iter().zip(&self.means).map(|(x, m)| x - m).collect();
        Ok(self.components[..n]
            .iter()
            .map(|c| c.iter().zip(&centered).map(|(a, b)| a * b).sum())
            .collect())
    }
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix.
///
/// Returns `(eigenvalues, eigenvectors)` where `eigenvectors[i]` is the
/// eigenvector for `eigenvalues[i]`, both sorted descending by eigenvalue.
fn jacobi_eigen(matrix: &[Vec<f64>]) -> Result<(Vec<f64>, Vec<Vec<f64>>)> {
    let n = matrix.len();
    let mut a: Vec<Vec<f64>> = matrix.to_vec();
    let mut v = vec![vec![0.0; n]; n];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    const MAX_SWEEPS: usize = 100;
    for _sweep in 0..MAX_SWEEPS {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += a[i][j] * a[i][j];
            }
        }
        if off.sqrt() < 1e-12 {
            let mut eigen: Vec<(f64, Vec<f64>)> = (0..n)
                .map(|i| (a[i][i], (0..n).map(|r| v[r][i]).collect()))
                .collect();
            eigen.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap_or(std::cmp::Ordering::Equal));
            let (vals, vecs) = eigen.into_iter().unzip();
            return Ok((vals, vecs));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                if a[p][q].abs() < 1e-15 {
                    continue;
                }
                let theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/columns p and q.
                for k in 0..n {
                    let akp = a[k][p];
                    let akq = a[k][q];
                    a[k][p] = c * akp - s * akq;
                    a[k][q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[p][k];
                    let aqk = a[q][k];
                    a[p][k] = c * apk - s * aqk;
                    a[q][k] = s * apk + c * aqk;
                }
                for k in 0..n {
                    let vkp = v[k][p];
                    let vkq = v[k][q];
                    v[k][p] = c * vkp - s * vkq;
                    v[k][q] = s * vkp + c * vkq;
                }
            }
        }
    }
    Err(StatError::NoConvergence {
        algorithm: "jacobi",
        iterations: MAX_SWEEPS,
    })
}

/// Runs PCA over column-major data: `columns[j]` holds variable `j`'s
/// samples (one per observation).
pub fn principal_components(columns: &[Vec<f64>]) -> Result<Pca> {
    if columns.is_empty() {
        return Err(StatError::Empty);
    }
    let cov = covariance_matrix(columns)?;
    let (eigenvalues, components) = jacobi_eigen(&cov)?;
    let total: f64 = eigenvalues.iter().map(|&e| e.max(0.0)).sum();
    let explained = if total > 0.0 {
        eigenvalues.iter().map(|&e| e.max(0.0) / total).collect()
    } else {
        vec![0.0; eigenvalues.len()]
    };
    let means = columns
        .iter()
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect();
    Ok(Pca {
        eigenvalues,
        components,
        explained_variance_ratio: explained,
        means,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() < eps
    }

    #[test]
    fn jacobi_diagonalizes_known_matrix() {
        // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
        let m = vec![vec![2.0, 1.0], vec![1.0, 2.0]];
        let (vals, vecs) = jacobi_eigen(&m).unwrap();
        assert!(approx(vals[0], 3.0, 1e-9));
        assert!(approx(vals[1], 1.0, 1e-9));
        // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
        let v = &vecs[0];
        assert!(approx(v[0].abs(), std::f64::consts::FRAC_1_SQRT_2, 1e-9));
        assert!(approx(v[1].abs(), std::f64::consts::FRAC_1_SQRT_2, 1e-9));
    }

    #[test]
    fn pca_finds_dominant_direction() {
        // Points along the line y = 2x with slight noise: the first
        // component must align with (1, 2)/|.| and explain ~all variance.
        let xs: Vec<f64> = (0..50).map(|i| i as f64 / 10.0).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| 2.0 * x + if i % 2 == 0 { 0.01 } else { -0.01 })
            .collect();
        let pca = principal_components(&[xs, ys]).unwrap();
        assert!(pca.explained_variance_ratio[0] > 0.999);
        let c = &pca.components[0];
        let slope = c[1] / c[0];
        assert!(approx(slope, 2.0, 0.01));
    }

    #[test]
    fn pca_projection_is_centered() {
        let xs = vec![1.0, 2.0, 3.0];
        let ys = vec![1.0, 2.0, 3.0];
        let pca = principal_components(&[xs, ys]).unwrap();
        // Projecting the mean point must give the origin.
        let p = pca.project(&[2.0, 2.0], 2).unwrap();
        assert!(p.iter().all(|&v| v.abs() < 1e-9));
    }

    #[test]
    fn pca_explained_ratios_sum_to_one() {
        let cols = vec![
            vec![1.0, 4.0, 2.0, 8.0, 3.0],
            vec![2.0, 1.0, 7.0, 3.0, 5.0],
            vec![0.5, 2.5, 1.5, 4.5, 0.0],
        ];
        let pca = principal_components(&cols).unwrap();
        let sum: f64 = pca.explained_variance_ratio.iter().sum();
        assert!(approx(sum, 1.0, 1e-9));
        // Eigenvalues are sorted descending.
        for w in pca.eigenvalues.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn pca_rejects_empty_and_mismatched_projection() {
        assert!(principal_components(&[]).is_err());
        let pca = principal_components(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert!(pca.project(&[1.0], 1).is_err());
    }
}
