//! Principal component analysis via Jacobi eigendecomposition.
//!
//! PerfExplorer uses dimensionality reduction to visualise
//! multi-metric/multi-event profiles; this module provides the same
//! operation: center the data, form the covariance matrix, and extract
//! eigenvectors sorted by explained variance.
//!
//! The hot path is flat end-to-end: [`principal_components_flat`] forms
//! the covariance with [`covariance_matrix_flat`] (columns centred
//! once, unrolled dots) and diagonalises it with [`jacobi_eigen_flat`],
//! whose rotation updates stride one contiguous `n × n` buffer instead
//! of `n` heap rows. The nested [`principal_components`] signature
//! survives as a gather-once wrapper; the original implementation lives
//! on in [`crate::reference`] as the executable spec.

use crate::correlation::covariance_matrix_flat;
use crate::matrix::{DenseMatrix, MatrixView};
use crate::{Result, StatError};
use serde::{Deserialize, Serialize};

/// Result of a principal component analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pca {
    /// Eigenvalues (variances along components), descending.
    pub eigenvalues: Vec<f64>,
    /// Component vectors (rows), matching `eigenvalues` order.
    pub components: Vec<Vec<f64>>,
    /// Fraction of total variance explained per component.
    pub explained_variance_ratio: Vec<f64>,
    /// Column means subtracted before analysis.
    pub means: Vec<f64>,
}

impl Pca {
    /// Projects a single observation (length = number of variables) onto
    /// the first `n` principal components.
    pub fn project(&self, row: &[f64], n: usize) -> Result<Vec<f64>> {
        if row.len() != self.means.len() {
            return Err(StatError::LengthMismatch {
                left: row.len(),
                right: self.means.len(),
            });
        }
        let n = n.min(self.components.len());
        let centered: Vec<f64> = row.iter().zip(&self.means).map(|(x, m)| x - m).collect();
        Ok(self.components[..n]
            .iter()
            .map(|c| c.iter().zip(&centered).map(|(a, b)| a * b).sum())
            .collect())
    }
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix in the flat
/// layout.
///
/// Returns `(eigenvalues, eigenvectors)` sorted descending by
/// eigenvalue, with `eigenvectors.row(i)` the unit eigenvector for
/// `eigenvalues[i]`. The rotation updates index directly into one
/// contiguous `n × n` buffer per matrix, so each (p, q) plane sweep
/// streams two strided lanes instead of dereferencing `n` row pointers.
pub fn jacobi_eigen_flat(matrix: &DenseMatrix) -> Result<(Vec<f64>, DenseMatrix)> {
    let n = matrix.rows();
    if n != matrix.cols() {
        return Err(StatError::LengthMismatch {
            left: n,
            right: matrix.cols(),
        });
    }
    let mut a = matrix.as_slice().to_vec();
    let mut v = vec![0.0; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }
    const MAX_SWEEPS: usize = 100;
    for _sweep in 0..MAX_SWEEPS {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += a[i * n + j] * a[i * n + j];
            }
        }
        if off.sqrt() < 1e-12 {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&x, &y| {
                a[y * n + y]
                    .partial_cmp(&a[x * n + x])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let vals = order.iter().map(|&i| a[i * n + i]).collect();
            let mut vecs = DenseMatrix::zeros(n, n);
            for (out, &i) in order.iter().enumerate() {
                for r in 0..n {
                    vecs.set(out, r, v[r * n + i]);
                }
            }
            return Ok((vals, vecs));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                if a[p * n + q].abs() < 1e-15 {
                    continue;
                }
                let theta = (a[q * n + q] - a[p * n + p]) / (2.0 * a[p * n + q]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/columns p and q.
                for k in 0..n {
                    let akp = a[k * n + p];
                    let akq = a[k * n + q];
                    a[k * n + p] = c * akp - s * akq;
                    a[k * n + q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[p * n + k];
                    let aqk = a[q * n + k];
                    a[p * n + k] = c * apk - s * aqk;
                    a[q * n + k] = s * apk + c * aqk;
                }
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }
    Err(StatError::NoConvergence {
        algorithm: "jacobi",
        iterations: MAX_SWEEPS,
    })
}

/// Runs PCA over the flat layout: one observation per row of `data`,
/// one variable per column.
pub fn principal_components_flat(data: MatrixView<'_>) -> Result<Pca> {
    let cov = covariance_matrix_flat(data)?;
    let (eigenvalues, components) = jacobi_eigen_flat(&cov)?;
    let total: f64 = eigenvalues.iter().map(|&e| e.max(0.0)).sum();
    let explained = if total > 0.0 {
        eigenvalues.iter().map(|&e| e.max(0.0) / total).collect()
    } else {
        vec![0.0; eigenvalues.len()]
    };
    let n = data.rows() as f64;
    let mut means = vec![0.0; data.cols()];
    for i in 0..data.rows() {
        for (m, &v) in means.iter_mut().zip(data.row(i)) {
            *m += v;
        }
    }
    for m in &mut means {
        *m /= n;
    }
    Ok(Pca {
        eigenvalues,
        components: components.to_nested(),
        explained_variance_ratio: explained,
        means,
    })
}

/// Runs PCA over column-major data: `columns[j]` holds variable `j`'s
/// samples (one per observation).
///
/// Compatibility wrapper: transposes the columns into a [`DenseMatrix`]
/// once and defers to [`principal_components_flat`].
pub fn principal_components(columns: &[Vec<f64>]) -> Result<Pca> {
    let m = DenseMatrix::from_columns(columns)?;
    principal_components_flat(m.view())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() < eps
    }

    #[test]
    fn jacobi_diagonalizes_known_matrix() {
        // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
        let m = DenseMatrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let (vals, vecs) = jacobi_eigen_flat(&m).unwrap();
        assert!(approx(vals[0], 3.0, 1e-9));
        assert!(approx(vals[1], 1.0, 1e-9));
        // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
        let v = vecs.row(0);
        assert!(approx(v[0].abs(), std::f64::consts::FRAC_1_SQRT_2, 1e-9));
        assert!(approx(v[1].abs(), std::f64::consts::FRAC_1_SQRT_2, 1e-9));
    }

    #[test]
    fn jacobi_rejects_non_square() {
        let m = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            jacobi_eigen_flat(&m),
            Err(StatError::LengthMismatch { left: 2, right: 3 })
        ));
    }

    #[test]
    fn pca_finds_dominant_direction() {
        // Points along the line y = 2x with slight noise: the first
        // component must align with (1, 2)/|.| and explain ~all variance.
        let xs: Vec<f64> = (0..50).map(|i| i as f64 / 10.0).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| 2.0 * x + if i % 2 == 0 { 0.01 } else { -0.01 })
            .collect();
        let pca = principal_components(&[xs, ys]).unwrap();
        assert!(pca.explained_variance_ratio[0] > 0.999);
        let c = &pca.components[0];
        let slope = c[1] / c[0];
        assert!(approx(slope, 2.0, 0.01));
    }

    #[test]
    fn pca_projection_is_centered() {
        let xs = vec![1.0, 2.0, 3.0];
        let ys = vec![1.0, 2.0, 3.0];
        let pca = principal_components(&[xs, ys]).unwrap();
        // Projecting the mean point must give the origin.
        let p = pca.project(&[2.0, 2.0], 2).unwrap();
        assert!(p.iter().all(|&v| v.abs() < 1e-9));
    }

    #[test]
    fn pca_explained_ratios_sum_to_one() {
        let cols = vec![
            vec![1.0, 4.0, 2.0, 8.0, 3.0],
            vec![2.0, 1.0, 7.0, 3.0, 5.0],
            vec![0.5, 2.5, 1.5, 4.5, 0.0],
        ];
        let pca = principal_components(&cols).unwrap();
        let sum: f64 = pca.explained_variance_ratio.iter().sum();
        assert!(approx(sum, 1.0, 1e-9));
        // Eigenvalues are sorted descending.
        for w in pca.eigenvalues.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn pca_rejects_empty_and_mismatched_projection() {
        assert!(principal_components(&[]).is_err());
        let pca = principal_components(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert!(pca.project(&[1.0], 1).is_err());
    }

    #[test]
    fn flat_pca_runs_on_row_major_observations() {
        // Same data as pca_finds_dominant_direction, but row-major
        // observations straight into the flat entry point.
        let mut data = Vec::new();
        for i in 0..50 {
            let x = i as f64 / 10.0;
            data.push(x);
            data.push(2.0 * x + if i % 2 == 0 { 0.01 } else { -0.01 });
        }
        let view = MatrixView::new(&data, 50, 2).unwrap();
        let pca = principal_components_flat(view).unwrap();
        assert!(pca.explained_variance_ratio[0] > 0.999);
    }
}
