//! Incremental accumulators for streaming analysis.
//!
//! A batch analysis pass folds whole `events × threads` planes through
//! [`crate::descriptive::Summary`] on every request. Under streaming
//! ingestion only a handful of cells change per chunk, so this module
//! keeps per-plane running state that absorbs a cell update in O(1)
//! ([`RunningPlane`]) and tie-aware rank summaries that refresh only
//! dirty planes ([`RankedPlane`]).
//!
//! Floating-point caveat, by design: a running sum updated as
//! `sum − old + new` re-associates the addition order, so it can drift
//! a few ulps from a fresh left-to-right fold. Consumers that need
//! *bitwise* parity with the batch kernels (the differential-test
//! contract in `core`) use these accumulators to find *which* planes
//! changed and then recompute those planes with the batch kernels;
//! consumers that only need numeric parity (monitor dashboards, bench
//! harnesses) read the running state directly.
//!
//! Non-finite values (NaN, ±∞) poison a running sum irrecoverably
//! (`∞ − ∞ = NaN`), so they are excluded from the accumulators and
//! counted instead; while any are present the plane reports NaN moments
//! — exactly the "fall back to the batch kernel" signal, matching how
//! NaN propagates through [`crate::descriptive::Summary::of`].

use crate::correlation::ranks;

/// Running sum / sum-of-squares / extrema over one (metric, event)
/// plane of per-thread values, with O(1) cell updates.
#[derive(Debug, Clone, PartialEq)]
pub struct RunningPlane {
    values: Vec<f64>,
    sum: f64,
    sumsq: f64,
    min: f64,
    max: f64,
    /// An extremum holder was overwritten; min/max need one rescan.
    extrema_dirty: bool,
    /// Count of non-finite cells currently in the plane.
    non_finite: usize,
}

impl RunningPlane {
    /// Builds running state from a plane's current values.
    pub fn from_values(values: &[f64]) -> Self {
        let mut plane = RunningPlane {
            values: values.to_vec(),
            sum: 0.0,
            sumsq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            extrema_dirty: false,
            non_finite: 0,
        };
        for &v in values {
            plane.absorb(v);
        }
        plane
    }

    fn absorb(&mut self, v: f64) {
        if v.is_finite() {
            self.sum += v;
            self.sumsq += v * v;
            if v < self.min {
                self.min = v;
            }
            if v > self.max {
                self.max = v;
            }
        } else {
            self.non_finite += 1;
        }
    }

    /// Number of cells in the plane.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the plane has no cells.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Current value of one cell.
    pub fn value(&self, idx: usize) -> f64 {
        self.values[idx]
    }

    /// All current values, in cell order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Replaces the value of one cell, updating the running moments in
    /// O(1). Returns the value that was replaced. If the replaced value
    /// held an extremum the next [`RunningPlane::min`]/[`RunningPlane::max`]
    /// query performs one O(n) rescan.
    pub fn update(&mut self, idx: usize, new: f64) -> f64 {
        let old = std::mem::replace(&mut self.values[idx], new);
        if old.is_finite() {
            self.sum -= old;
            self.sumsq -= old * old;
            if old == self.min || old == self.max {
                self.extrema_dirty = true;
            }
        } else {
            self.non_finite -= 1;
        }
        if new.is_finite() {
            self.sum += new;
            self.sumsq += new * new;
            if !self.extrema_dirty {
                if new < self.min {
                    self.min = new;
                }
                if new > self.max {
                    self.max = new;
                }
            }
        } else {
            self.non_finite += 1;
        }
        old
    }

    /// True while any cell is non-finite; moments report NaN and the
    /// caller should defer to the batch kernel for this plane.
    pub fn poisoned(&self) -> bool {
        self.non_finite > 0
    }

    /// Running sum (NaN while poisoned).
    pub fn sum(&self) -> f64 {
        if self.poisoned() {
            f64::NAN
        } else {
            self.sum
        }
    }

    /// Running sum of squares (NaN while poisoned).
    pub fn sum_squares(&self) -> f64 {
        if self.poisoned() {
            f64::NAN
        } else {
            self.sumsq
        }
    }

    /// Running mean (NaN while poisoned or empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            f64::NAN
        } else {
            self.sum() / self.values.len() as f64
        }
    }

    /// Running population variance, clamped at zero against cancellation
    /// (NaN while poisoned or empty).
    pub fn variance(&self) -> f64 {
        // Explicit poison check: `f64::max` would silently swallow the
        // NaN the accessors propagate.
        if self.values.is_empty() || self.poisoned() {
            return f64::NAN;
        }
        let n = self.values.len() as f64;
        let mean = self.sum() / n;
        (self.sum_squares() / n - mean * mean).max(0.0)
    }

    /// Running population standard deviation (NaN while poisoned or
    /// empty).
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    fn rescan_extrema(&mut self) {
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
        for &v in &self.values {
            if v.is_finite() {
                if v < self.min {
                    self.min = v;
                }
                if v > self.max {
                    self.max = v;
                }
            }
        }
        self.extrema_dirty = false;
    }

    /// Minimum finite value (∞ when none). Rescans once after an
    /// extremum holder was overwritten.
    pub fn min(&mut self) -> f64 {
        if self.extrema_dirty {
            self.rescan_extrema();
        }
        self.min
    }

    /// Maximum finite value (−∞ when none). Rescans once after an
    /// extremum holder was overwritten.
    pub fn max(&mut self) -> f64 {
        if self.extrema_dirty {
            self.rescan_extrema();
        }
        self.max
    }
}

/// Tie-aware rank summary of one plane, refreshed lazily: O(1) cell
/// updates mark the plane dirty; the next rank query recomputes with
/// the exact batch kernel ([`crate::correlation::ranks`]), so a
/// streaming consumer pays the O(n log n) ranking cost only for planes
/// a chunk actually touched.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedPlane {
    values: Vec<f64>,
    cache: Option<Vec<f64>>,
}

impl RankedPlane {
    /// Builds the summary from a plane's current values.
    pub fn from_values(values: &[f64]) -> Self {
        RankedPlane {
            values: values.to_vec(),
            cache: None,
        }
    }

    /// Number of cells in the plane.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the plane has no cells.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Replaces one cell's value, invalidating the cached ranks.
    /// Returns the value that was replaced.
    pub fn update(&mut self, idx: usize, new: f64) -> f64 {
        self.cache = None;
        std::mem::replace(&mut self.values[idx], new)
    }

    /// Current values, in cell order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Tie-averaged 1-based ranks of the current values, bitwise equal
    /// to a batch [`crate::correlation::ranks`] call on the same data.
    pub fn ranks(&mut self) -> &[f64] {
        if self.cache.is_none() {
            self.cache = Some(ranks(&self.values));
        }
        self.cache.as_deref().expect("cache just filled")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::XorShift64;

    fn batch_sum(values: &[f64]) -> f64 {
        values.iter().sum()
    }

    #[test]
    fn random_updates_track_batch_recompute() {
        let mut rng = XorShift64::new(0xfeed);
        let mut values: Vec<f64> = (0..32).map(|_| rng.next_f64() * 100.0).collect();
        let mut plane = RunningPlane::from_values(&values);
        for _ in 0..500 {
            let idx = (rng.next_u64() % values.len() as u64) as usize;
            let new = rng.next_f64() * 100.0 - 50.0;
            values[idx] = new;
            plane.update(idx, new);
            let fresh = batch_sum(&values);
            assert!((plane.sum() - fresh).abs() <= 1e-9 * fresh.abs().max(1.0));
            let mean = fresh / values.len() as f64;
            assert!((plane.mean() - mean).abs() <= 1e-9 * mean.abs().max(1.0));
        }
        // Extrema are exact (rescans use the true values).
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(plane.min(), lo);
        assert_eq!(plane.max(), hi);
    }

    #[test]
    fn overwriting_an_extremum_triggers_a_correct_rescan() {
        let mut plane = RunningPlane::from_values(&[1.0, 5.0, 3.0]);
        assert_eq!(plane.max(), 5.0);
        plane.update(1, 2.0);
        assert_eq!(plane.max(), 3.0);
        assert_eq!(plane.min(), 1.0);
        plane.update(0, 10.0);
        assert_eq!(plane.max(), 10.0);
        assert_eq!(plane.min(), 2.0);
    }

    #[test]
    fn non_finite_values_poison_and_recover() {
        let mut plane = RunningPlane::from_values(&[1.0, 2.0, 3.0]);
        assert!(!plane.poisoned());
        plane.update(1, f64::NAN);
        assert!(plane.poisoned());
        assert!(plane.sum().is_nan());
        assert!(plane.mean().is_nan());
        assert!(plane.stddev().is_nan());
        // Overwriting the NaN restores exact running state: the finite
        // accumulators never saw the poison.
        plane.update(1, 4.0);
        assert!(!plane.poisoned());
        assert_eq!(plane.sum(), 8.0);
        plane.update(0, f64::INFINITY);
        assert!(plane.poisoned());
        assert!(plane.sum().is_nan());
        plane.update(0, 1.0);
        assert_eq!(plane.sum(), 8.0);
    }

    #[test]
    fn variance_matches_two_pass_within_tolerance() {
        let mut rng = XorShift64::new(7);
        let values: Vec<f64> = (0..64).map(|_| rng.next_f64() * 10.0).collect();
        let mut plane = RunningPlane::from_values(&[0.0; 64]);
        for (i, &v) in values.iter().enumerate() {
            plane.update(i, v);
        }
        let mean = values.iter().sum::<f64>() / 64.0;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / 64.0;
        assert!((plane.variance() - var).abs() <= 1e-9 * var.max(1.0));
        assert!((plane.stddev() - var.sqrt()).abs() <= 1e-9);
    }

    #[test]
    fn ranked_plane_matches_batch_ranks_after_updates() {
        let mut rp = RankedPlane::from_values(&[3.0, 1.0, 2.0, 2.0]);
        assert_eq!(rp.ranks(), ranks(&[3.0, 1.0, 2.0, 2.0]).as_slice());
        rp.update(0, 2.0);
        // Three-way tie at 2.0: tie-averaged ranks from the batch kernel.
        assert_eq!(rp.ranks(), ranks(&[2.0, 1.0, 2.0, 2.0]).as_slice());
        rp.update(1, 9.0);
        assert_eq!(rp.ranks(), ranks(&[2.0, 9.0, 2.0, 2.0]).as_slice());
    }
}
