//! Least-squares regression.
//!
//! Used by the scalability analyses to fit speedup and efficiency trends
//! across thread counts, and by the power model validation to relate
//! instruction counts to energy.

use crate::{Result, StatError};
use serde::{Deserialize, Serialize};

/// Result of an ordinary least squares fit `y ≈ intercept + slope · x`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OlsFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r_squared: f64,
}

impl OlsFit {
    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Fits a straight line through `(x, y)` pairs by ordinary least squares.
pub fn ols(x: &[f64], y: &[f64]) -> Result<OlsFit> {
    if x.len() != y.len() {
        return Err(StatError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    if x.len() < 2 {
        return Err(StatError::TooFewSamples {
            got: x.len(),
            need: 2,
        });
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        sxx += (a - mx) * (a - mx);
        sxy += (a - mx) * (b - my);
        syy += (b - my) * (b - my);
    }
    if sxx == 0.0 {
        return Err(StatError::Degenerate("all x values identical".into()));
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r_squared = if syy == 0.0 {
        1.0 // y is constant and perfectly fit by the horizontal line
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Ok(OlsFit {
        slope,
        intercept,
        r_squared,
    })
}

/// Fits a polynomial of the given `degree` by least squares, returning
/// coefficients lowest-order first (`c[0] + c[1]·x + …`).
///
/// Solves the normal equations with Gaussian elimination and partial
/// pivoting; degrees stay small (≤ 4 in practice) so this is both fast and
/// stable enough for trend fitting.
pub fn polyfit(x: &[f64], y: &[f64], degree: usize) -> Result<Vec<f64>> {
    if x.len() != y.len() {
        return Err(StatError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    let terms = degree + 1;
    if x.len() < terms {
        return Err(StatError::TooFewSamples {
            got: x.len(),
            need: terms,
        });
    }
    // Normal equations: (VᵀV) c = Vᵀ y with Vandermonde V.
    let mut ata = vec![vec![0.0; terms]; terms];
    let mut atb = vec![0.0; terms];
    for (&xi, &yi) in x.iter().zip(y) {
        let mut powers = Vec::with_capacity(terms);
        let mut p = 1.0;
        for _ in 0..terms {
            powers.push(p);
            p *= xi;
        }
        for i in 0..terms {
            atb[i] += powers[i] * yi;
            for j in 0..terms {
                ata[i][j] += powers[i] * powers[j];
            }
        }
    }
    solve_linear(&mut ata, &mut atb)
}

/// Solves `A c = b` in place via Gaussian elimination with partial
/// pivoting. `a` and `b` are consumed as scratch space.
#[allow(clippy::needless_range_loop)] // dense index math reads better
fn solve_linear(a: &mut [Vec<f64>], b: &mut [f64]) -> Result<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Partial pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty range");
        if a[pivot][col].abs() < 1e-12 {
            return Err(StatError::Degenerate("singular normal equations".into()));
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in (col + 1)..n {
            let factor = a[row][col] / a[col][col];
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    let mut c = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row][k] * c[k];
        }
        c[row] = acc / a[row][row];
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn ols_exact_line() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [1.0, 3.0, 5.0, 7.0];
        let fit = ols(&x, &y).unwrap();
        assert!(approx(fit.slope, 2.0));
        assert!(approx(fit.intercept, 1.0));
        assert!(approx(fit.r_squared, 1.0));
        assert!(approx(fit.predict(10.0), 21.0));
    }

    #[test]
    fn ols_noisy_line_has_lower_r2() {
        let x = [0.0, 1.0, 2.0, 3.0, 4.0];
        let y = [0.0, 2.4, 1.6, 3.5, 3.9];
        let fit = ols(&x, &y).unwrap();
        assert!(fit.r_squared < 1.0);
        assert!(fit.r_squared > 0.5);
        assert!(fit.slope > 0.0);
    }

    #[test]
    fn ols_constant_x_is_degenerate() {
        assert!(matches!(
            ols(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]),
            Err(StatError::Degenerate(_))
        ));
    }

    #[test]
    fn ols_constant_y_r2_is_one() {
        let fit = ols(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert!(approx(fit.slope, 0.0));
        assert!(approx(fit.r_squared, 1.0));
    }

    #[test]
    fn polyfit_recovers_quadratic() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| 2.0 - 3.0 * v + 0.5 * v * v).collect();
        let c = polyfit(&x, &y, 2).unwrap();
        assert!(approx(c[0], 2.0));
        assert!(approx(c[1], -3.0));
        assert!(approx(c[2], 0.5));
    }

    #[test]
    fn polyfit_degree_zero_is_mean() {
        let c = polyfit(&[1.0, 2.0, 3.0], &[4.0, 6.0, 8.0], 0).unwrap();
        assert!(approx(c[0], 6.0));
    }

    #[test]
    fn polyfit_requires_enough_points() {
        assert!(matches!(
            polyfit(&[1.0, 2.0], &[1.0, 2.0], 3),
            Err(StatError::TooFewSamples { .. })
        ));
    }
}
