//! Numerical analysis kernels used throughout the performance data mining
//! pipeline.
//!
//! This crate is the "math substrate" of the workspace: descriptive
//! statistics, correlation, regression, clustering, principal component
//! analysis and histograms. All routines operate on plain `&[f64]` slices
//! so they compose with any data layout the profile store produces.
//!
//! The routines here correspond to the statistical and data-mining
//! operations PerfExplorer applies to parallel profiles: per-event
//! mean/standard-deviation summaries across threads, inter-event
//! correlation (used by the load-imbalance rule's negative-correlation
//! condition), clustering of thread behaviour, and dimensionality
//! reduction for multi-metric views.

#![warn(missing_docs)]

pub mod cluster;
pub mod correlation;
pub mod descriptive;
pub mod error;
pub mod histogram;
pub mod matrix;
pub mod pca;
pub mod reference;
pub mod regression;
pub mod streaming;

pub use cluster::{
    kmeans, kmeans_flat, kmeans_warm_flat, silhouette, silhouette_flat, FlatKMeans, KMeansConfig,
    KMeansResult, WarmKMeans,
};
pub use correlation::{
    covariance, covariance_matrix, covariance_matrix_flat, pearson, ranks, spearman,
};
pub use descriptive::{Summary, Welford};
pub use error::StatError;
pub use histogram::Histogram;
pub use matrix::{dot, f64s_from_bytes, sq_dist, sq_norm, DenseMatrix, MatrixView};
pub use pca::{jacobi_eigen_flat, principal_components, principal_components_flat, Pca};
pub use regression::{polyfit, OlsFit};
pub use streaming::{RankedPlane, RunningPlane};

/// Convenience result alias for statistics routines.
pub type Result<T> = std::result::Result<T, StatError>;
