//! Flat, row-major dense matrices and the contiguous-memory kernels the
//! optimized statistics routines are built on.
//!
//! PerfExplorer's data-mining operations (clustering, PCA, correlation)
//! consume per-thread feature vectors extracted from the columnar
//! profile store. [`DenseMatrix`] keeps those vectors in one flat
//! `Vec<f64>` with row-major layout — row `i` is the contiguous slice
//! `data[i * cols .. (i + 1) * cols]` — so the hot kernels stream
//! adjacent memory instead of chasing one heap pointer per point, and a
//! profile column view can be gathered into it exactly once.
//! [`MatrixView`] is the borrowed, zero-copy counterpart used by kernel
//! entry points so callers never clone the data to analyse it.
//!
//! The free functions at the bottom are the shared distance kernels:
//! [`sq_dist`] is the *specification* form (sequential accumulation,
//! bit-identical to the nested reference implementations in
//! [`crate::reference`]), while [`dot`] and [`sq_norm`] are unrolled
//! multi-accumulator reductions that break the serial floating-point
//! dependency chain — the single biggest win on the assignment step of
//! k-means, where `‖x − c‖² = ‖x‖² − 2·x·c + ‖c‖²` turns distance
//! ranking into cached norms plus one contiguous dot product.

use crate::{Result, StatError};
use serde::{Deserialize, Serialize};

/// A flat, row-major `rows × cols` matrix of `f64`.
///
/// Row `i` occupies the contiguous slice `data[i*cols .. (i+1)*cols]`,
/// so per-row kernels stream adjacent memory and the whole matrix can
/// be handed to blocked kernels as one slice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl DenseMatrix {
    /// An all-zero `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Builds a matrix from an existing row-major buffer.
    ///
    /// Returns [`StatError::LengthMismatch`] when `data.len()` is not
    /// `rows * cols` (left: expected, right: provided).
    pub fn from_row_major(data: Vec<f64>, rows: usize, cols: usize) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(StatError::LengthMismatch {
                left: rows * cols,
                right: data.len(),
            });
        }
        Ok(DenseMatrix { data, rows, cols })
    }

    /// Gathers nested rows (points) into the flat layout.
    ///
    /// Returns [`StatError::Empty`] for zero rows and
    /// [`StatError::LengthMismatch`] for ragged input (left: the first
    /// row's length, right: the offending row's length).
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Err(StatError::Empty);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(StatError::LengthMismatch {
                    left: cols,
                    right: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(DenseMatrix {
            data,
            rows: rows.len(),
            cols,
        })
    }

    /// Gathers column-major data (`columns[j]` holds variable `j`'s
    /// samples) into the row-major layout, transposing once.
    ///
    /// Returns [`StatError::Empty`] for zero columns or zero-length
    /// columns and [`StatError::LengthMismatch`] for ragged input
    /// (left: the first column's length, right: the offending one's).
    pub fn from_columns(columns: &[Vec<f64>]) -> Result<Self> {
        if columns.is_empty() {
            return Err(StatError::Empty);
        }
        let n = columns[0].len();
        if n == 0 {
            return Err(StatError::Empty);
        }
        for c in columns {
            if c.len() != n {
                return Err(StatError::LengthMismatch {
                    left: n,
                    right: c.len(),
                });
            }
        }
        let p = columns.len();
        let mut m = DenseMatrix::zeros(n, p);
        for (j, c) in columns.iter().enumerate() {
            for (i, &v) in c.iter().enumerate() {
                m.data[i * p + j] = v;
            }
        }
        Ok(m)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a contiguous slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable contiguous slice.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The cell at (`i`, `j`).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Sets the cell at (`i`, `j`).
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// The whole row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The whole backing buffer, row-major, mutable.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Iterates rows as contiguous slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// A borrowed, zero-copy view of the whole matrix.
    pub fn view(&self) -> MatrixView<'_> {
        MatrixView {
            data: &self.data,
            rows: self.rows,
            cols: self.cols,
        }
    }

    /// Copies out to the nested representation (compat bridges only).
    pub fn to_nested(&self) -> Vec<Vec<f64>> {
        self.iter_rows().map(<[f64]>::to_vec).collect()
    }
}

/// A borrowed, zero-copy row-major matrix view.
///
/// This is the argument type of the flat kernels: any contiguous
/// row-major buffer — a [`DenseMatrix`], a profile-store gather, a
/// bench harness arena — can be analysed without copying.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatrixView<'a> {
    data: &'a [f64],
    rows: usize,
    cols: usize,
}

impl<'a> MatrixView<'a> {
    /// Wraps a row-major buffer.
    ///
    /// Returns [`StatError::LengthMismatch`] when `data.len()` is not
    /// `rows * cols`.
    pub fn new(data: &'a [f64], rows: usize, cols: usize) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(StatError::LengthMismatch {
                left: rows * cols,
                right: data.len(),
            });
        }
        Ok(MatrixView { data, rows, cols })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a contiguous slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The cell at (`i`, `j`).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// The whole row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        self.data
    }

    /// Iterates rows as contiguous slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &'a [f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Wraps raw little-endian `f64` bytes as a row-major view without
    /// copying — the entry point for memory-mapped columnar stores.
    ///
    /// The bytes are reinterpreted in place, so the buffer must be
    /// 8-byte aligned and the host little-endian; see
    /// [`f64s_from_bytes`] for the exact failure modes.
    pub fn from_f64_bytes(bytes: &'a [u8], rows: usize, cols: usize) -> Result<Self> {
        MatrixView::new(f64s_from_bytes(bytes)?, rows, cols)
    }
}

/// Reinterprets raw little-endian `f64` bytes as an `&[f64]` without
/// copying.
///
/// Fails with [`StatError::Misaligned`] unless the buffer starts on an
/// 8-byte boundary and its length is a multiple of 8, and on
/// big-endian hosts (where an in-place reinterpretation would read the
/// wrong byte order — such hosts must take the owned, byte-swapping
/// load path instead).
pub fn f64s_from_bytes(bytes: &[u8]) -> Result<&[f64]> {
    if cfg!(target_endian = "big") {
        return Err(StatError::Misaligned {
            required: 8,
            detail: "zero-copy f64 views require a little-endian host",
        });
    }
    if !bytes.len().is_multiple_of(8) {
        return Err(StatError::Misaligned {
            required: 8,
            detail: "byte length is not a multiple of 8",
        });
    }
    if !(bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<f64>()) {
        return Err(StatError::Misaligned {
            required: 8,
            detail: "buffer does not start on an 8-byte boundary",
        });
    }
    // SAFETY: alignment and length were checked above; every bit
    // pattern is a valid f64; the lifetime is inherited from `bytes`.
    Ok(unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const f64, bytes.len() / 8) })
}

/// Squared Euclidean distance, sequential accumulation.
///
/// This is the *specification* form: term order and rounding are
/// exactly those of the nested reference implementations, so the
/// seeding, update and inertia passes of the optimized k-means stay
/// bit-identical to [`crate::reference::kmeans`].
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

const LANES: usize = 8;

/// Dot product with eight independent accumulators.
///
/// A sequential `iter().sum()` is a single floating-point dependency
/// chain (one add per ~4 cycles); eight accumulators expose
/// instruction-level parallelism and let LLVM vectorize the loop. On
/// x86-64 hosts with AVX2+FMA the call dispatches (once, cached) to a
/// fused-multiply-add kernel. Either way the result differs from
/// sequential summation only by rounding order — callers that need a
/// pinned summation order (the RNG-facing k-means paths) use
/// [`sq_dist`] instead.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    if *HAS_AVX2_FMA {
        // SAFETY: the feature check guarantees AVX2 and FMA.
        return unsafe { avx2::dot_fma(a, b) };
    }
    dot_portable(a, b)
}

/// Whether the host supports the AVX2+FMA kernel paths (checked once).
#[cfg(target_arch = "x86_64")]
static HAS_AVX2_FMA: std::sync::LazyLock<bool> = std::sync::LazyLock::new(|| {
    std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma")
});

/// Whether the host supports the AVX-512 assignment kernel (checked
/// once).
#[cfg(target_arch = "x86_64")]
static HAS_AVX512F: std::sync::LazyLock<bool> =
    std::sync::LazyLock::new(|| std::is_x86_feature_detected!("avx512f"));

/// Centroids pre-arranged for the k-means assignment argmin.
///
/// Ranks centroids by the expansion `‖c‖² − 2·x·c` (the dropped `‖x‖²`
/// term is constant per point, so the argmin is unchanged). A naive
/// `dot` per centroid ends every candidate in a horizontal-reduction
/// latency chain; instead the centroids are transposed into
/// chunk-major panels of eight (`panel[j*8 + lane]` = dimension `j` of
/// the panel's `lane`-th centroid) so the hot loop broadcasts one
/// point coordinate against contiguous panel rows and keeps eight
/// *vertical* accumulators — per-centroid sums never leave their SIMD
/// lane until the final score. One block serves a whole assignment
/// pass: build it after each centroid update, then call
/// [`nearest`](CentroidBlock::nearest) per point.
pub struct CentroidBlock {
    /// Transposed centroid panels, `panels × (dim × 8)`, zero-padded.
    panels: Vec<f64>,
    /// `‖c‖²` per centroid, padded to the panel boundary.
    cnorms: Vec<f64>,
    /// Real centroid count (`k`).
    k: usize,
    /// Dimensions per centroid.
    dim: usize,
}

/// Centroids per panel: one AVX2 register pair (2 × 4 lanes).
const PANEL: usize = 8;

impl CentroidBlock {
    /// Builds the transposed panels and norms from centroid rows.
    pub fn new(centroids: &DenseMatrix) -> Self {
        let k = centroids.rows();
        let dim = centroids.cols();
        let npanels = k.div_ceil(PANEL);
        let mut panels = vec![0.0; npanels * dim * PANEL];
        for c in 0..k {
            let row = centroids.row(c);
            let base = (c / PANEL) * dim * PANEL + c % PANEL;
            for (j, &v) in row.iter().enumerate() {
                panels[base + j * PANEL] = v;
            }
        }
        let mut cnorms = vec![f64::INFINITY; npanels * PANEL];
        for (c, cn) in cnorms.iter_mut().enumerate().take(k) {
            *cn = sq_norm(centroids.row(c));
        }
        CentroidBlock {
            panels,
            cnorms,
            k,
            dim,
        }
    }

    /// Index of the centroid nearest to `x`. Ties keep the earlier
    /// centroid, matching a strict `<` scan over full squared
    /// distances.
    pub fn nearest(&self, x: &[f64]) -> usize {
        debug_assert_eq!(x.len(), self.dim);
        let mut scores = [0.0f64; PANEL];
        let mut best = 0;
        let mut best_s = f64::INFINITY;
        // `max(1)` keeps the chunk size legal for zero-dim centroids
        // (the panel buffer is empty then, so the loop never runs).
        for (p, panel) in self
            .panels
            .chunks_exact(self.dim.max(1) * PANEL)
            .enumerate()
        {
            let cn = &self.cnorms[p * PANEL..(p + 1) * PANEL];
            #[cfg(target_arch = "x86_64")]
            if *HAS_AVX2_FMA {
                // SAFETY: the feature check guarantees AVX2 and FMA.
                unsafe { avx2::panel_scores_fma(x, panel, cn, &mut scores) };
                for (c, &s) in scores.iter().enumerate().take(self.k - p * PANEL) {
                    if s < best_s {
                        best_s = s;
                        best = p * PANEL + c;
                    }
                }
                continue;
            }
            panel_scores_portable(x, panel, cn, &mut scores);
            for (c, &s) in scores.iter().enumerate().take(self.k - p * PANEL) {
                if s < best_s {
                    best_s = s;
                    best = p * PANEL + c;
                }
            }
        }
        best
    }
}

impl CentroidBlock {
    /// Assigns rows `lo..lo + out.len()` of `points`, writing one
    /// centroid index per row into `out` — the shape a
    /// `par_chunks_mut` sweep over a flat assignment buffer needs.
    ///
    /// On AVX2+FMA hosts the whole range runs inside one SIMD region:
    /// points go through the panel scorer in pairs, so each panel row
    /// load serves two points (the loop is load-port bound, not FMA
    /// bound) and the per-point dispatch/call overhead disappears.
    pub fn assign_into(&self, points: MatrixView<'_>, lo: usize, out: &mut [usize]) {
        debug_assert_eq!(points.cols(), self.dim);
        debug_assert!(lo + out.len() <= points.rows());
        #[cfg(target_arch = "x86_64")]
        {
            if *HAS_AVX512F {
                // SAFETY: the feature check guarantees AVX-512F, and
                // the debug-asserted bounds hold for every caller.
                unsafe {
                    avx512::assign_range_512(
                        points.as_slice(),
                        self.dim,
                        lo,
                        &self.panels,
                        &self.cnorms,
                        self.k,
                        out,
                    );
                }
                return;
            }
            if *HAS_AVX2_FMA {
                // SAFETY: the feature check guarantees AVX2 and FMA,
                // and the debug-asserted bounds hold for every caller.
                unsafe {
                    avx2::assign_range_fma(
                        points.as_slice(),
                        self.dim,
                        lo,
                        &self.panels,
                        &self.cnorms,
                        self.k,
                        out,
                    );
                }
                return;
            }
        }
        for (r, slot) in out.iter_mut().enumerate() {
            *slot = self.nearest(points.row(lo + r));
        }
    }
}

/// Writes `out[i] = sq_dist(points.row(i), c)` for every row.
///
/// The SIMD path pins one *point per lane*: each lane performs exactly
/// the scalar kernel's subtract → multiply → add sequence over
/// dimensions, so every distance is bit-identical to [`sq_dist`] —
/// the parallelism only breaks the cross-point latency chain. That
/// makes this safe for the RNG-facing k-means++ seeding pass, where
/// the distances feed weighted draws and any rounding change would
/// cascade into different seeds.
pub fn sq_dists_to(points: MatrixView<'_>, c: &[f64], out: &mut [f64]) {
    let n = points.rows();
    debug_assert_eq!(points.cols(), c.len());
    debug_assert_eq!(out.len(), n);
    let mut i = 0;
    #[cfg(target_arch = "x86_64")]
    {
        let dim = points.cols();
        let data = points.as_slice();
        if *HAS_AVX512F && dim > 0 {
            while i + 8 <= n {
                // SAFETY: the feature check guarantees AVX-512F;
                // `i + 8 <= n` bounds the eight row reads.
                unsafe {
                    avx512::sq_dist_x8(data, i * dim, dim, c, &mut out[i..i + 8]);
                }
                i += 8;
            }
        }
        if *HAS_AVX2_FMA {
            while i + 4 <= n {
                // SAFETY: the feature check guarantees AVX2; `i + 4 <=
                // n` bounds the four row reads.
                unsafe {
                    avx2::sq_dist_x4(data, i * dim, dim, c, &mut out[i..i + 4]);
                }
                i += 4;
            }
        }
    }
    for (r, o) in out.iter_mut().enumerate().skip(i) {
        *o = sq_dist(points.row(r), c);
    }
}

/// Writes `out[i] = sq_dist(points.row(i), centroids.row(assignments[i]))`
/// for every row — the k-means inertia/reseed distance pass.
///
/// Like [`sq_dists_to`], the SIMD path pins one point per lane running
/// the scalar subtract → multiply → add sequence in dimension order,
/// so every distance is bit-identical to the scalar calls; only the
/// cross-point latency chain is broken. Callers that need a pinned
/// reduction order sum the buffer sequentially afterwards.
///
/// # Panics
///
/// Panics (or writes garbage distances in release builds via the
/// scalar row read) if an assignment is out of range; callers pass
/// assignments produced by [`CentroidBlock::assign_into`].
pub fn sq_dists_assigned(
    points: MatrixView<'_>,
    centroids: &DenseMatrix,
    assignments: &[usize],
    out: &mut [f64],
) {
    let n = points.rows();
    debug_assert_eq!(assignments.len(), n);
    debug_assert_eq!(out.len(), n);
    debug_assert_eq!(points.cols(), centroids.cols());
    let mut i = 0;
    #[cfg(target_arch = "x86_64")]
    if *HAS_AVX512F && points.cols() > 0 {
        let dim = points.cols();
        let data = points.as_slice();
        let cents = centroids.as_slice();
        while i + 8 <= n {
            for &a in &assignments[i..i + 8] {
                assert!(a < centroids.rows(), "assignment out of range");
            }
            // SAFETY: the feature check guarantees AVX-512F; `i + 8 <=
            // n` bounds the eight row reads and the assertion above
            // bounds the centroid gathers.
            unsafe {
                avx512::sq_dist_x8_assigned(
                    data,
                    i * dim,
                    dim,
                    cents,
                    &assignments[i..i + 8],
                    &mut out[i..i + 8],
                );
            }
            i += 8;
        }
    }
    for r in i..n {
        out[r] = sq_dist(points.row(r), centroids.row(assignments[r]));
    }
}

/// Adds `src` element-wise into `dst` (`dst[j] += src[j]`).
///
/// Each dimension is an independent accumulator, so the SIMD path
/// changes no rounding: results are bit-identical to the scalar loop
/// regardless of dispatch. This is the k-means update-step primitive
/// (summing assigned points into a centroid row).
pub fn accumulate(dst: &mut [f64], src: &[f64]) {
    debug_assert_eq!(dst.len(), src.len());
    #[cfg(target_arch = "x86_64")]
    if *HAS_AVX2_FMA {
        // SAFETY: the feature check guarantees AVX2.
        unsafe { avx2::accumulate_avx2(dst, src) };
        return;
    }
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

/// Scatter-accumulates every row of `points` into the `sums` row its
/// assignment names, bumping the matching count — the k-means update
/// step as one fused pass.
///
/// Rows are visited in input order and each dimension is an
/// independent accumulator (the same order as per-row [`accumulate`]
/// calls), so results are bit-identical to the scalar reference loop
/// regardless of dispatch. Fusing the pass matters because a
/// `#[target_feature]` kernel cannot inline into a plain caller: one
/// region per pass instead of one per point removes the per-call
/// dispatch overhead.
///
/// # Panics
///
/// Panics if an assignment is out of range for `sums`/`counts`, or if
/// shapes disagree.
pub fn scatter_add(
    points: MatrixView<'_>,
    assignments: &[usize],
    sums: &mut DenseMatrix,
    counts: &mut [usize],
) {
    assert_eq!(points.rows(), assignments.len());
    assert_eq!(points.cols(), sums.cols());
    assert_eq!(sums.rows(), counts.len());
    #[cfg(target_arch = "x86_64")]
    {
        if *HAS_AVX512F {
            // SAFETY: the feature check guarantees AVX-512F; shapes
            // are asserted above and assignments are bounds-checked
            // inside.
            unsafe {
                avx512::scatter_add_512(
                    points.as_slice(),
                    points.cols(),
                    assignments,
                    sums.as_mut_slice(),
                    counts,
                );
            }
            return;
        }
        if *HAS_AVX2_FMA {
            // SAFETY: the feature check guarantees AVX2; shapes are
            // asserted above and assignments are bounds-checked inside.
            unsafe {
                avx2::scatter_add_avx2(
                    points.as_slice(),
                    points.cols(),
                    assignments,
                    sums.as_mut_slice(),
                    counts,
                );
            }
            return;
        }
    }
    for (i, &a) in assignments.iter().enumerate() {
        counts[a] += 1;
        for (d, &s) in sums.row_mut(a).iter_mut().zip(points.row(i)) {
            *d += s;
        }
    }
}

/// Portable panel scorer: eight vertical accumulators, same reduction
/// shape as the AVX2 path.
fn panel_scores_portable(x: &[f64], panel: &[f64], cnorms: &[f64], scores: &mut [f64; PANEL]) {
    let mut acc = [0.0f64; PANEL];
    for (j, &xv) in x.iter().enumerate() {
        for l in 0..PANEL {
            acc[l] += xv * panel[j * PANEL + l];
        }
    }
    for l in 0..PANEL {
        scores[l] = cnorms[l] - 2.0 * acc[l];
    }
}

/// Portable eight-accumulator dot kernel (the non-SIMD fallback).
fn dot_portable(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = [0.0f64; LANES];
    let chunks = a.len() / LANES * LANES;
    let (ah, at) = a.split_at(chunks);
    let (bh, bt) = b.split_at(chunks);
    for (ca, cb) in ah.chunks_exact(LANES).zip(bh.chunks_exact(LANES)) {
        for l in 0..LANES {
            acc[l] += ca[l] * cb[l];
        }
    }
    let mut tail = 0.0;
    for (x, y) in at.iter().zip(bt) {
        tail += x * y;
    }
    (acc[0] + acc[4]) + (acc[1] + acc[5]) + (acc[2] + acc[6]) + (acc[3] + acc[7]) + tail
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! AVX2+FMA dot kernel. The baseline x86-64 target only guarantees
    //! SSE2, so LLVM cannot emit 256-bit FMAs for the portable loop;
    //! this compiles the same four-accumulator reduction with the
    //! wider instructions and is selected at runtime.

    /// Fused-multiply-add dot over four 256-bit accumulators.
    ///
    /// # Safety
    ///
    /// The caller must ensure the CPU supports AVX2 and FMA.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot_fma(a: &[f64], b: &[f64]) -> f64 {
        use std::arch::x86_64::*;
        let n = a.len().min(b.len());
        let pa = a.as_ptr();
        let pb = b.as_ptr();
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut acc2 = _mm256_setzero_pd();
        let mut acc3 = _mm256_setzero_pd();
        let mut i = 0;
        while i + 16 <= n {
            acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(pa.add(i)), _mm256_loadu_pd(pb.add(i)), acc0);
            acc1 = _mm256_fmadd_pd(
                _mm256_loadu_pd(pa.add(i + 4)),
                _mm256_loadu_pd(pb.add(i + 4)),
                acc1,
            );
            acc2 = _mm256_fmadd_pd(
                _mm256_loadu_pd(pa.add(i + 8)),
                _mm256_loadu_pd(pb.add(i + 8)),
                acc2,
            );
            acc3 = _mm256_fmadd_pd(
                _mm256_loadu_pd(pa.add(i + 12)),
                _mm256_loadu_pd(pb.add(i + 12)),
                acc3,
            );
            i += 16;
        }
        while i + 4 <= n {
            acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(pa.add(i)), _mm256_loadu_pd(pb.add(i)), acc0);
            i += 4;
        }
        let acc = _mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3));
        let half = _mm_add_pd(_mm256_castpd256_pd128(acc), _mm256_extractf128_pd(acc, 1));
        let mut sum = _mm_cvtsd_f64(_mm_add_sd(half, _mm_unpackhi_pd(half, half)));
        while i < n {
            sum += a[i] * b[i];
            i += 1;
        }
        sum
    }

    /// Scores one transposed centroid panel (eight centroids) against
    /// `x`: `scores[l] = cnorms[l] − 2·x·cₗ`. Eight vertical
    /// accumulator registers (two per unrolled dimension phase) keep
    /// every centroid's partial sum in its own SIMD lane with no
    /// horizontal reduction inside the loop, and the four-phase unroll
    /// spaces each accumulator's reuse past the FMA latency.
    ///
    /// # Safety
    ///
    /// The caller must ensure the CPU supports AVX2 and FMA. `panel`
    /// must hold `x.len() * 8` values and `cnorms` at least 8.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn panel_scores_fma(
        x: &[f64],
        panel: &[f64],
        cnorms: &[f64],
        scores: &mut [f64; 8],
    ) {
        use std::arch::x86_64::*;
        let d = x.len();
        let px = x.as_ptr();
        let pp = panel.as_ptr();
        let mut a0 = _mm256_setzero_pd();
        let mut b0 = _mm256_setzero_pd();
        let mut a1 = _mm256_setzero_pd();
        let mut b1 = _mm256_setzero_pd();
        let mut a2 = _mm256_setzero_pd();
        let mut b2 = _mm256_setzero_pd();
        let mut a3 = _mm256_setzero_pd();
        let mut b3 = _mm256_setzero_pd();
        let mut j = 0;
        while j + 4 <= d {
            let x0 = _mm256_set1_pd(*px.add(j));
            a0 = _mm256_fmadd_pd(x0, _mm256_loadu_pd(pp.add(j * 8)), a0);
            b0 = _mm256_fmadd_pd(x0, _mm256_loadu_pd(pp.add(j * 8 + 4)), b0);
            let x1 = _mm256_set1_pd(*px.add(j + 1));
            a1 = _mm256_fmadd_pd(x1, _mm256_loadu_pd(pp.add((j + 1) * 8)), a1);
            b1 = _mm256_fmadd_pd(x1, _mm256_loadu_pd(pp.add((j + 1) * 8 + 4)), b1);
            let x2 = _mm256_set1_pd(*px.add(j + 2));
            a2 = _mm256_fmadd_pd(x2, _mm256_loadu_pd(pp.add((j + 2) * 8)), a2);
            b2 = _mm256_fmadd_pd(x2, _mm256_loadu_pd(pp.add((j + 2) * 8 + 4)), b2);
            let x3 = _mm256_set1_pd(*px.add(j + 3));
            a3 = _mm256_fmadd_pd(x3, _mm256_loadu_pd(pp.add((j + 3) * 8)), a3);
            b3 = _mm256_fmadd_pd(x3, _mm256_loadu_pd(pp.add((j + 3) * 8 + 4)), b3);
            j += 4;
        }
        while j < d {
            let xv = _mm256_set1_pd(*px.add(j));
            a0 = _mm256_fmadd_pd(xv, _mm256_loadu_pd(pp.add(j * 8)), a0);
            b0 = _mm256_fmadd_pd(xv, _mm256_loadu_pd(pp.add(j * 8 + 4)), b0);
            j += 1;
        }
        let lo = _mm256_add_pd(_mm256_add_pd(a0, a1), _mm256_add_pd(a2, a3));
        let hi = _mm256_add_pd(_mm256_add_pd(b0, b1), _mm256_add_pd(b2, b3));
        let two = _mm256_set1_pd(2.0);
        let s_lo = _mm256_fnmadd_pd(lo, two, _mm256_loadu_pd(cnorms.as_ptr()));
        let s_hi = _mm256_fnmadd_pd(hi, two, _mm256_loadu_pd(cnorms.as_ptr().add(4)));
        _mm256_storeu_pd(scores.as_mut_ptr(), s_lo);
        _mm256_storeu_pd(scores.as_mut_ptr().add(4), s_hi);
    }

    /// Two-point variant of [`panel_scores_fma`]: every panel row is
    /// loaded once and fused against both points' broadcasts, trading
    /// the four-phase unroll for a two-phase one to stay inside the
    /// sixteen YMM registers.
    ///
    /// # Safety
    ///
    /// The caller must ensure the CPU supports AVX2 and FMA. `panel`
    /// must hold `x0.len() * 8` values, `cnorms` at least 8, and
    /// `x1.len() == x0.len()`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn panel_scores2_fma(
        x0: &[f64],
        x1: &[f64],
        panel: &[f64],
        cnorms: &[f64],
        s0: &mut [f64; 8],
        s1: &mut [f64; 8],
    ) {
        use std::arch::x86_64::*;
        let d = x0.len();
        let p0 = x0.as_ptr();
        let p1 = x1.as_ptr();
        let pp = panel.as_ptr();
        let mut a_lo0 = _mm256_setzero_pd();
        let mut a_hi0 = _mm256_setzero_pd();
        let mut a_lo1 = _mm256_setzero_pd();
        let mut a_hi1 = _mm256_setzero_pd();
        let mut b_lo0 = _mm256_setzero_pd();
        let mut b_hi0 = _mm256_setzero_pd();
        let mut b_lo1 = _mm256_setzero_pd();
        let mut b_hi1 = _mm256_setzero_pd();
        let mut j = 0;
        while j + 2 <= d {
            let r_lo = _mm256_loadu_pd(pp.add(j * 8));
            let r_hi = _mm256_loadu_pd(pp.add(j * 8 + 4));
            let xa = _mm256_set1_pd(*p0.add(j));
            let xb = _mm256_set1_pd(*p1.add(j));
            a_lo0 = _mm256_fmadd_pd(xa, r_lo, a_lo0);
            a_hi0 = _mm256_fmadd_pd(xa, r_hi, a_hi0);
            b_lo0 = _mm256_fmadd_pd(xb, r_lo, b_lo0);
            b_hi0 = _mm256_fmadd_pd(xb, r_hi, b_hi0);
            let q_lo = _mm256_loadu_pd(pp.add((j + 1) * 8));
            let q_hi = _mm256_loadu_pd(pp.add((j + 1) * 8 + 4));
            let ya = _mm256_set1_pd(*p0.add(j + 1));
            let yb = _mm256_set1_pd(*p1.add(j + 1));
            a_lo1 = _mm256_fmadd_pd(ya, q_lo, a_lo1);
            a_hi1 = _mm256_fmadd_pd(ya, q_hi, a_hi1);
            b_lo1 = _mm256_fmadd_pd(yb, q_lo, b_lo1);
            b_hi1 = _mm256_fmadd_pd(yb, q_hi, b_hi1);
            j += 2;
        }
        if j < d {
            let r_lo = _mm256_loadu_pd(pp.add(j * 8));
            let r_hi = _mm256_loadu_pd(pp.add(j * 8 + 4));
            let xa = _mm256_set1_pd(*p0.add(j));
            let xb = _mm256_set1_pd(*p1.add(j));
            a_lo0 = _mm256_fmadd_pd(xa, r_lo, a_lo0);
            a_hi0 = _mm256_fmadd_pd(xa, r_hi, a_hi0);
            b_lo0 = _mm256_fmadd_pd(xb, r_lo, b_lo0);
            b_hi0 = _mm256_fmadd_pd(xb, r_hi, b_hi0);
        }
        let two = _mm256_set1_pd(2.0);
        let cn_lo = _mm256_loadu_pd(cnorms.as_ptr());
        let cn_hi = _mm256_loadu_pd(cnorms.as_ptr().add(4));
        _mm256_storeu_pd(
            s0.as_mut_ptr(),
            _mm256_fnmadd_pd(_mm256_add_pd(a_lo0, a_lo1), two, cn_lo),
        );
        _mm256_storeu_pd(
            s0.as_mut_ptr().add(4),
            _mm256_fnmadd_pd(_mm256_add_pd(a_hi0, a_hi1), two, cn_hi),
        );
        _mm256_storeu_pd(
            s1.as_mut_ptr(),
            _mm256_fnmadd_pd(_mm256_add_pd(b_lo0, b_lo1), two, cn_lo),
        );
        _mm256_storeu_pd(
            s1.as_mut_ptr().add(4),
            _mm256_fnmadd_pd(_mm256_add_pd(b_hi0, b_hi1), two, cn_hi),
        );
    }

    /// Assigns a contiguous range of points inside one SIMD region:
    /// the panel scorers inline here (same target features), so the
    /// only per-point work is the score scan.
    ///
    /// # Safety
    ///
    /// The caller must ensure the CPU supports AVX2 and FMA; `points`
    /// must hold at least `(lo + out.len()) * dim` values, `panels`
    /// whole `dim * 8` panels covering `k` centroids, and `cnorms` 8
    /// entries per panel.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn assign_range_fma(
        points: &[f64],
        dim: usize,
        lo: usize,
        panels: &[f64],
        cnorms: &[f64],
        k: usize,
        out: &mut [usize],
    ) {
        let hi = lo + out.len();
        let pstride = dim.max(1) * 8;
        let npanels = panels.len() / pstride;
        let mut s0 = [0.0f64; 8];
        let mut s1 = [0.0f64; 8];
        let mut i = lo;
        while i + 2 <= hi {
            let x0 = points.get_unchecked(i * dim..(i + 1) * dim);
            let x1 = points.get_unchecked((i + 1) * dim..(i + 2) * dim);
            let mut best = (0usize, 0usize);
            let mut bs = (f64::INFINITY, f64::INFINITY);
            for p in 0..npanels {
                let panel = panels.get_unchecked(p * pstride..(p + 1) * pstride);
                let cn = cnorms.get_unchecked(p * 8..p * 8 + 8);
                panel_scores2_fma(x0, x1, panel, cn, &mut s0, &mut s1);
                let live = (k - p * 8).min(8);
                // Branchless select: scores are effectively random, so
                // a compare-and-branch scan would mispredict ~half the
                // time.
                for c in 0..live {
                    let idx = p * 8 + c;
                    let hit0 = s0[c] < bs.0;
                    bs.0 = if hit0 { s0[c] } else { bs.0 };
                    best.0 = if hit0 { idx } else { best.0 };
                    let hit1 = s1[c] < bs.1;
                    bs.1 = if hit1 { s1[c] } else { bs.1 };
                    best.1 = if hit1 { idx } else { best.1 };
                }
            }
            *out.get_unchecked_mut(i - lo) = best.0;
            *out.get_unchecked_mut(i + 1 - lo) = best.1;
            i += 2;
        }
        if i < hi {
            let x = points.get_unchecked(i * dim..(i + 1) * dim);
            let mut best = 0;
            let mut bs = f64::INFINITY;
            for p in 0..npanels {
                let panel = panels.get_unchecked(p * pstride..(p + 1) * pstride);
                let cn = cnorms.get_unchecked(p * 8..p * 8 + 8);
                panel_scores_fma(x, panel, cn, &mut s0);
                let live = (k - p * 8).min(8);
                for (c, &s) in s0.iter().enumerate().take(live) {
                    if s < bs {
                        bs = s;
                        best = p * 8 + c;
                    }
                }
            }
            *out.get_unchecked_mut(i - lo) = best;
        }
    }

    /// Squared distances from four consecutive matrix rows (starting
    /// at flat offset `base`) to `c`, one point per lane. Each lane
    /// runs the scalar subtract → multiply → add sequence, so the four
    /// results are bit-identical to four [`sq_dist`](super::sq_dist)
    /// calls; only the cross-point latency chain is broken.
    ///
    /// # Safety
    ///
    /// The caller must ensure the CPU supports AVX2, that `data` holds
    /// `base + 4 * dim` values, `c` holds `dim`, and `out` holds 4.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sq_dist_x4(data: &[f64], base: usize, dim: usize, c: &[f64], out: &mut [f64]) {
        use std::arch::x86_64::*;
        let p = data.as_ptr().add(base);
        let mut acc = _mm256_setzero_pd();
        for (j, &cj) in c.iter().enumerate().take(dim) {
            let x = _mm256_set_pd(
                *p.add(3 * dim + j),
                *p.add(2 * dim + j),
                *p.add(dim + j),
                *p.add(j),
            );
            let d = _mm256_sub_pd(x, _mm256_set1_pd(cj));
            acc = _mm256_add_pd(_mm256_mul_pd(d, d), acc);
        }
        _mm256_storeu_pd(out.as_mut_ptr(), acc);
    }

    /// `dst[j] += src[j]` with 256-bit adds. Lane-per-dimension, so
    /// bit-identical to the scalar loop.
    ///
    /// # Safety
    ///
    /// The caller must ensure the CPU supports AVX2 and that the
    /// slices are equal length.
    #[target_feature(enable = "avx2")]
    pub unsafe fn accumulate_avx2(dst: &mut [f64], src: &[f64]) {
        use std::arch::x86_64::*;
        let n = dst.len().min(src.len());
        let pd = dst.as_mut_ptr();
        let ps = src.as_ptr();
        let mut j = 0;
        while j + 8 <= n {
            let d0 = _mm256_add_pd(_mm256_loadu_pd(pd.add(j)), _mm256_loadu_pd(ps.add(j)));
            let d1 = _mm256_add_pd(
                _mm256_loadu_pd(pd.add(j + 4)),
                _mm256_loadu_pd(ps.add(j + 4)),
            );
            _mm256_storeu_pd(pd.add(j), d0);
            _mm256_storeu_pd(pd.add(j + 4), d1);
            j += 8;
        }
        while j < n {
            *pd.add(j) += *ps.add(j);
            j += 1;
        }
    }

    /// Fused k-means update pass: for each row `i`, `counts[a] += 1`
    /// and `sums[a] += points[i]` where `a = assignments[i]`.
    /// Lane-per-dimension adds in input order, so bit-identical to
    /// the scalar loop.
    ///
    /// # Safety
    ///
    /// The caller must ensure the CPU supports AVX2 and that `points`
    /// holds `assignments.len() * dim` values; assignment values are
    /// bounds-checked against `sums`/`counts` by safe indexing.
    #[target_feature(enable = "avx2")]
    pub unsafe fn scatter_add_avx2(
        points: &[f64],
        dim: usize,
        assignments: &[usize],
        sums: &mut [f64],
        counts: &mut [usize],
    ) {
        use std::arch::x86_64::*;
        for (i, &a) in assignments.iter().enumerate() {
            counts[a] += 1;
            let dst = &mut sums[a * dim..(a + 1) * dim];
            let pd = dst.as_mut_ptr();
            let ps = points.as_ptr().add(i * dim);
            let mut j = 0;
            while j + 8 <= dim {
                let d0 = _mm256_add_pd(_mm256_loadu_pd(pd.add(j)), _mm256_loadu_pd(ps.add(j)));
                let d1 = _mm256_add_pd(
                    _mm256_loadu_pd(pd.add(j + 4)),
                    _mm256_loadu_pd(ps.add(j + 4)),
                );
                _mm256_storeu_pd(pd.add(j), d0);
                _mm256_storeu_pd(pd.add(j + 4), d1);
                j += 8;
            }
            while j + 4 <= dim {
                let d0 = _mm256_add_pd(_mm256_loadu_pd(pd.add(j)), _mm256_loadu_pd(ps.add(j)));
                _mm256_storeu_pd(pd.add(j), d0);
                j += 4;
            }
            while j < dim {
                *pd.add(j) += *ps.add(j);
                j += 1;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx512 {
    //! AVX-512F assignment kernel. A transposed centroid panel row is
    //! exactly one 512-bit register (eight `f64` lanes, one per
    //! centroid), so scoring a point against a whole panel costs one
    //! broadcast-FMA per dimension step instead of the AVX2 path's
    //! two-register pair.

    /// Assigns a contiguous range of points, four per group, inside
    /// one AVX-512 region: each group shares every panel row load
    /// across four points, and each point keeps two phase accumulators
    /// so the FMA chains stay off the critical path. Scores are the
    /// same `‖c‖² − 2·x·c` expansion as the AVX2 path, and ties keep
    /// the lowest centroid index via the same strict `<` scan.
    ///
    /// # Safety
    ///
    /// The caller must ensure the CPU supports AVX-512F; `points` must
    /// hold at least `(lo + out.len()) * dim` values, `panels` whole
    /// `dim * 8` panels covering `k` centroids, and `cnorms` 8 entries
    /// per panel.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx512f")]
    pub unsafe fn assign_range_512(
        points: &[f64],
        dim: usize,
        lo: usize,
        panels: &[f64],
        cnorms: &[f64],
        k: usize,
        out: &mut [usize],
    ) {
        use std::arch::x86_64::*;
        let hi = lo + out.len();
        let pstride = dim.max(1) * 8;
        let npanels = panels.len() / pstride;
        let two = _mm512_set1_pd(2.0);
        let mut s = [[0.0f64; 8]; 4];
        let mut i = lo;
        while i + 4 <= hi {
            let x0 = points.as_ptr().add(i * dim);
            let x1 = points.as_ptr().add((i + 1) * dim);
            let x2 = points.as_ptr().add((i + 2) * dim);
            let x3 = points.as_ptr().add((i + 3) * dim);
            let mut best = [0usize; 4];
            let mut bs = [f64::INFINITY; 4];
            for p in 0..npanels {
                let pp = panels.as_ptr().add(p * pstride);
                let mut a0 = _mm512_setzero_pd();
                let mut a1 = _mm512_setzero_pd();
                let mut a2 = _mm512_setzero_pd();
                let mut a3 = _mm512_setzero_pd();
                let mut b0 = _mm512_setzero_pd();
                let mut b1 = _mm512_setzero_pd();
                let mut b2 = _mm512_setzero_pd();
                let mut b3 = _mm512_setzero_pd();
                let mut j = 0;
                while j + 2 <= dim {
                    let r0 = _mm512_loadu_pd(pp.add(j * 8));
                    let r1 = _mm512_loadu_pd(pp.add((j + 1) * 8));
                    a0 = _mm512_fmadd_pd(_mm512_set1_pd(*x0.add(j)), r0, a0);
                    a1 = _mm512_fmadd_pd(_mm512_set1_pd(*x1.add(j)), r0, a1);
                    a2 = _mm512_fmadd_pd(_mm512_set1_pd(*x2.add(j)), r0, a2);
                    a3 = _mm512_fmadd_pd(_mm512_set1_pd(*x3.add(j)), r0, a3);
                    b0 = _mm512_fmadd_pd(_mm512_set1_pd(*x0.add(j + 1)), r1, b0);
                    b1 = _mm512_fmadd_pd(_mm512_set1_pd(*x1.add(j + 1)), r1, b1);
                    b2 = _mm512_fmadd_pd(_mm512_set1_pd(*x2.add(j + 1)), r1, b2);
                    b3 = _mm512_fmadd_pd(_mm512_set1_pd(*x3.add(j + 1)), r1, b3);
                    j += 2;
                }
                if j < dim {
                    let r0 = _mm512_loadu_pd(pp.add(j * 8));
                    a0 = _mm512_fmadd_pd(_mm512_set1_pd(*x0.add(j)), r0, a0);
                    a1 = _mm512_fmadd_pd(_mm512_set1_pd(*x1.add(j)), r0, a1);
                    a2 = _mm512_fmadd_pd(_mm512_set1_pd(*x2.add(j)), r0, a2);
                    a3 = _mm512_fmadd_pd(_mm512_set1_pd(*x3.add(j)), r0, a3);
                }
                let cn = _mm512_loadu_pd(cnorms.as_ptr().add(p * 8));
                _mm512_storeu_pd(
                    s[0].as_mut_ptr(),
                    _mm512_fnmadd_pd(_mm512_add_pd(a0, b0), two, cn),
                );
                _mm512_storeu_pd(
                    s[1].as_mut_ptr(),
                    _mm512_fnmadd_pd(_mm512_add_pd(a1, b1), two, cn),
                );
                _mm512_storeu_pd(
                    s[2].as_mut_ptr(),
                    _mm512_fnmadd_pd(_mm512_add_pd(a2, b2), two, cn),
                );
                _mm512_storeu_pd(
                    s[3].as_mut_ptr(),
                    _mm512_fnmadd_pd(_mm512_add_pd(a3, b3), two, cn),
                );
                let live = (k - p * 8).min(8);
                // Branchless select, as in the AVX2 scan: scores are
                // effectively random, so branches would mispredict. The
                // index `c` addresses the same lane of all four score
                // rows, so the range loop is the honest shape here.
                #[allow(clippy::needless_range_loop)]
                for c in 0..live {
                    let idx = p * 8 + c;
                    for t in 0..4 {
                        let hit = s[t][c] < bs[t];
                        bs[t] = if hit { s[t][c] } else { bs[t] };
                        best[t] = if hit { idx } else { best[t] };
                    }
                }
            }
            for (t, &b) in best.iter().enumerate() {
                *out.get_unchecked_mut(i + t - lo) = b;
            }
            i += 4;
        }
        while i < hi {
            let x0 = points.as_ptr().add(i * dim);
            let mut best = 0usize;
            let mut bs = f64::INFINITY;
            for p in 0..npanels {
                let pp = panels.as_ptr().add(p * pstride);
                let mut a0 = _mm512_setzero_pd();
                let mut b0 = _mm512_setzero_pd();
                let mut j = 0;
                while j + 2 <= dim {
                    let r0 = _mm512_loadu_pd(pp.add(j * 8));
                    let r1 = _mm512_loadu_pd(pp.add((j + 1) * 8));
                    a0 = _mm512_fmadd_pd(_mm512_set1_pd(*x0.add(j)), r0, a0);
                    b0 = _mm512_fmadd_pd(_mm512_set1_pd(*x0.add(j + 1)), r1, b0);
                    j += 2;
                }
                if j < dim {
                    let r0 = _mm512_loadu_pd(pp.add(j * 8));
                    a0 = _mm512_fmadd_pd(_mm512_set1_pd(*x0.add(j)), r0, a0);
                }
                let cn = _mm512_loadu_pd(cnorms.as_ptr().add(p * 8));
                _mm512_storeu_pd(
                    s[0].as_mut_ptr(),
                    _mm512_fnmadd_pd(_mm512_add_pd(a0, b0), two, cn),
                );
                let live = (k - p * 8).min(8);
                for (c, &sc) in s[0].iter().enumerate().take(live) {
                    if sc < bs {
                        bs = sc;
                        best = p * 8 + c;
                    }
                }
            }
            *out.get_unchecked_mut(i - lo) = best;
            i += 1;
        }
    }

    /// Squared distances from eight consecutive matrix rows (starting
    /// at flat offset `base`) to `c`, one point per 512-bit lane. Like
    /// [`sq_dist_x4`](super::avx2::sq_dist_x4), each lane runs the
    /// scalar subtract → multiply → add sequence in dimension order,
    /// so the results are bit-identical to eight
    /// [`sq_dist`](super::sq_dist) calls; the strided row reads go
    /// through one gather per dimension.
    ///
    /// # Safety
    ///
    /// The caller must ensure the CPU supports AVX-512F, that `data`
    /// holds `base + 8 * dim` values, `c` holds `dim`, and `out` holds
    /// 8.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn sq_dist_x8(data: &[f64], base: usize, dim: usize, c: &[f64], out: &mut [f64]) {
        use std::arch::x86_64::*;
        let p = data.as_ptr().add(base);
        let d = dim as i64;
        let idx = _mm512_setr_epi64(0, d, 2 * d, 3 * d, 4 * d, 5 * d, 6 * d, 7 * d);
        let mut acc = _mm512_setzero_pd();
        for (j, &cj) in c.iter().enumerate().take(dim) {
            let x = _mm512_i64gather_pd::<8>(idx, p.add(j));
            let df = _mm512_sub_pd(x, _mm512_set1_pd(cj));
            acc = _mm512_add_pd(_mm512_mul_pd(df, df), acc);
        }
        _mm512_storeu_pd(out.as_mut_ptr(), acc);
    }

    /// Like [`sq_dist_x8`], but each lane's reference row is the
    /// centroid its assignment names: one gather walks eight point
    /// rows, a second walks the eight assigned centroid rows. Per-lane
    /// operation order is unchanged, so results stay bit-identical to
    /// the scalar calls.
    ///
    /// # Safety
    ///
    /// The caller must ensure the CPU supports AVX-512F, that `data`
    /// holds `base + 8 * dim` values, `cents` holds a full `dim` row
    /// for every index in `aidx`, and `aidx`/`out` hold 8.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn sq_dist_x8_assigned(
        data: &[f64],
        base: usize,
        dim: usize,
        cents: &[f64],
        aidx: &[usize],
        out: &mut [f64],
    ) {
        use std::arch::x86_64::*;
        let p = data.as_ptr().add(base);
        let pc = cents.as_ptr();
        let d = dim as i64;
        let pidx = _mm512_setr_epi64(0, d, 2 * d, 3 * d, 4 * d, 5 * d, 6 * d, 7 * d);
        let cidx = _mm512_setr_epi64(
            (aidx[0] * dim) as i64,
            (aidx[1] * dim) as i64,
            (aidx[2] * dim) as i64,
            (aidx[3] * dim) as i64,
            (aidx[4] * dim) as i64,
            (aidx[5] * dim) as i64,
            (aidx[6] * dim) as i64,
            (aidx[7] * dim) as i64,
        );
        let mut acc = _mm512_setzero_pd();
        for j in 0..dim {
            let x = _mm512_i64gather_pd::<8>(pidx, p.add(j));
            let cv = _mm512_i64gather_pd::<8>(cidx, pc.add(j));
            let df = _mm512_sub_pd(x, cv);
            acc = _mm512_add_pd(_mm512_mul_pd(df, df), acc);
        }
        _mm512_storeu_pd(out.as_mut_ptr(), acc);
    }

    /// 512-bit variant of
    /// [`scatter_add_avx2`](super::avx2::scatter_add_avx2): the fused
    /// k-means update pass with eight-wide adds. Lane-per-dimension in
    /// input order, so bit-identical to the scalar loop.
    ///
    /// # Safety
    ///
    /// The caller must ensure the CPU supports AVX-512F and that
    /// `points` holds `assignments.len() * dim` values; assignment
    /// values are bounds-checked against `sums`/`counts` by safe
    /// indexing.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn scatter_add_512(
        points: &[f64],
        dim: usize,
        assignments: &[usize],
        sums: &mut [f64],
        counts: &mut [usize],
    ) {
        use std::arch::x86_64::*;
        for (i, &a) in assignments.iter().enumerate() {
            counts[a] += 1;
            let dst = &mut sums[a * dim..(a + 1) * dim];
            let pd = dst.as_mut_ptr();
            let ps = points.as_ptr().add(i * dim);
            let mut j = 0;
            while j + 16 <= dim {
                let d0 = _mm512_add_pd(_mm512_loadu_pd(pd.add(j)), _mm512_loadu_pd(ps.add(j)));
                let d1 = _mm512_add_pd(
                    _mm512_loadu_pd(pd.add(j + 8)),
                    _mm512_loadu_pd(ps.add(j + 8)),
                );
                _mm512_storeu_pd(pd.add(j), d0);
                _mm512_storeu_pd(pd.add(j + 8), d1);
                j += 16;
            }
            while j + 8 <= dim {
                let d0 = _mm512_add_pd(_mm512_loadu_pd(pd.add(j)), _mm512_loadu_pd(ps.add(j)));
                _mm512_storeu_pd(pd.add(j), d0);
                j += 8;
            }
            while j + 4 <= dim {
                let d0 = _mm256_add_pd(_mm256_loadu_pd(pd.add(j)), _mm256_loadu_pd(ps.add(j)));
                _mm256_storeu_pd(pd.add(j), d0);
                j += 4;
            }
            while j < dim {
                *pd.add(j) += *ps.add(j);
                j += 1;
            }
        }
    }
}

/// Squared Euclidean norm via the unrolled [`dot`] kernel.
pub fn sq_norm(a: &[f64]) -> f64 {
    dot(a, a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64s_from_bytes_zero_copy_cast() {
        // An f64 vector is always 8-aligned; its bytes cast back losslessly.
        let values = vec![1.5f64, -2.25, f64::MAX, 0.0];
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        // Vec<u8> has no alignment guarantee — copy into an aligned
        // arena the way the owned mmap fallback does.
        let mut arena = vec![0u64; bytes.len() / 8];
        // SAFETY: u64 arena is 8-aligned and sized exactly.
        let arena_bytes =
            unsafe { std::slice::from_raw_parts_mut(arena.as_mut_ptr() as *mut u8, bytes.len()) };
        arena_bytes.copy_from_slice(&bytes);
        let cast = f64s_from_bytes(arena_bytes).unwrap();
        assert_eq!(cast, values.as_slice());
        // Same pointer: no copy happened.
        assert_eq!(cast.as_ptr() as usize, arena_bytes.as_ptr() as usize);

        let view = MatrixView::from_f64_bytes(arena_bytes, 2, 2).unwrap();
        assert_eq!(view.get(1, 0), f64::MAX);
    }

    #[test]
    fn f64s_from_bytes_rejects_bad_length_and_misalignment() {
        let arena = [0u64; 2];
        // SAFETY: in-bounds read-only reinterpretation for the test.
        let bytes = unsafe { std::slice::from_raw_parts(arena.as_ptr() as *const u8, 16) };
        assert!(matches!(
            f64s_from_bytes(&bytes[..12]),
            Err(StatError::Misaligned { required: 8, .. })
        ));
        assert!(matches!(
            f64s_from_bytes(&bytes[1..9]),
            Err(StatError::Misaligned { required: 8, .. })
        ));
        assert!(f64s_from_bytes(&bytes[..16]).is_ok());
    }

    #[test]
    fn from_rows_round_trips() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let m = DenseMatrix::from_rows(&rows).unwrap();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.get(2, 1), 6.0);
        assert_eq!(m.to_nested(), rows);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn from_rows_rejects_ragged_and_empty() {
        assert!(matches!(
            DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]),
            Err(StatError::LengthMismatch { left: 2, right: 1 })
        ));
        assert!(matches!(DenseMatrix::from_rows(&[]), Err(StatError::Empty)));
    }

    #[test]
    fn from_columns_transposes() {
        let cols = vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        let m = DenseMatrix::from_columns(&cols).unwrap();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.row(0), &[1.0, 4.0]);
        assert_eq!(m.row(2), &[3.0, 6.0]);
    }

    #[test]
    fn from_columns_rejects_ragged_and_empty() {
        assert!(matches!(
            DenseMatrix::from_columns(&[vec![1.0, 2.0], vec![3.0]]),
            Err(StatError::LengthMismatch { left: 2, right: 1 })
        ));
        assert!(matches!(
            DenseMatrix::from_columns(&[]),
            Err(StatError::Empty)
        ));
        assert!(matches!(
            DenseMatrix::from_columns(&[vec![]]),
            Err(StatError::Empty)
        ));
    }

    #[test]
    fn from_row_major_validates_length() {
        assert!(DenseMatrix::from_row_major(vec![0.0; 6], 2, 3).is_ok());
        assert!(matches!(
            DenseMatrix::from_row_major(vec![0.0; 5], 2, 3),
            Err(StatError::LengthMismatch { left: 6, right: 5 })
        ));
        assert!(matches!(
            MatrixView::new(&[0.0; 5], 2, 3),
            Err(StatError::LengthMismatch { left: 6, right: 5 })
        ));
    }

    #[test]
    fn view_matches_owner() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let v = m.view();
        assert_eq!(v.rows(), 2);
        assert_eq!(v.cols(), 2);
        assert_eq!(v.row(1), m.row(1));
        assert_eq!(v.get(0, 1), 2.0);
        let rows: Vec<&[f64]> = v.iter_rows().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], &[1.0, 2.0]);
    }

    #[test]
    fn row_mut_writes_through() {
        let mut m = DenseMatrix::zeros(2, 3);
        m.row_mut(1)[2] = 7.0;
        m.set(0, 0, 1.0);
        assert_eq!(m.get(1, 2), 7.0);
        assert_eq!(m.as_slice(), &[1.0, 0.0, 0.0, 0.0, 0.0, 7.0]);
    }

    #[test]
    fn dot_matches_sequential_sum() {
        // Lengths straddling the unroll width, including the tail path.
        for len in [0usize, 1, 7, 8, 9, 16, 19, 64, 100] {
            let a: Vec<f64> = (0..len).map(|i| (i as f64).sin()).collect();
            let b: Vec<f64> = (0..len).map(|i| (i as f64 + 0.5).cos()).collect();
            let seq: f64 = a.iter().zip(&b).map(|(&x, &y)| x * y).sum();
            let unrolled = dot(&a, &b);
            assert!(
                (seq - unrolled).abs() <= 1e-12 * (1.0 + seq.abs()),
                "len {len}: {seq} vs {unrolled}"
            );
            let n: f64 = a.iter().map(|&x| x * x).sum();
            assert!((sq_norm(&a) - n).abs() <= 1e-12 * (1.0 + n));
        }
    }

    #[test]
    fn sq_dist_is_the_reference_form() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 0.0, 3.0];
        assert_eq!(sq_dist(&a, &b), 9.0 + 4.0);
        assert_eq!(sq_dist(&a, &a), 0.0);
    }

    #[test]
    fn norm_expansion_identity() {
        // ‖x − c‖² == ‖x‖² − 2 x·c + ‖c‖² up to rounding — the identity
        // behind the k-means assignment kernel.
        let x: Vec<f64> = (0..33).map(|i| (i as f64 * 0.7).sin() * 5.0).collect();
        let c: Vec<f64> = (0..33).map(|i| (i as f64 * 1.3).cos() * 5.0).collect();
        let direct = sq_dist(&x, &c);
        let expanded = sq_norm(&x) - 2.0 * dot(&x, &c) + sq_norm(&c);
        assert!((direct - expanded).abs() < 1e-9 * (1.0 + direct));
    }
}
