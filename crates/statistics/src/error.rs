//! Error type shared by all statistics routines.

use std::fmt;

/// Errors produced by the numerical routines in this crate.
///
/// Every routine validates its inputs and returns a typed error instead of
/// panicking; the analysis layer above surfaces these as diagnostics on
/// malformed or degenerate profile data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatError {
    /// The input slice was empty where at least one element is required.
    Empty,
    /// Two parallel inputs had different lengths.
    LengthMismatch {
        /// Length of the first input.
        left: usize,
        /// Length of the second input.
        right: usize,
    },
    /// The input had fewer elements than the operation requires.
    TooFewSamples {
        /// Number of samples provided.
        got: usize,
        /// Minimum number of samples required.
        need: usize,
    },
    /// A parameter was outside its valid domain (e.g. `k = 0` clusters).
    InvalidParameter(String),
    /// The computation is undefined for this input (e.g. correlation of a
    /// constant series, which has zero variance).
    Degenerate(String),
    /// An iterative method failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the algorithm that failed to converge.
        algorithm: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// A byte buffer offered for zero-copy reinterpretation was not
    /// aligned (or sized) for the element type.
    Misaligned {
        /// Required alignment in bytes.
        required: usize,
        /// The offending address or length remainder.
        detail: &'static str,
    },
}

impl fmt::Display for StatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatError::Empty => write!(f, "empty input"),
            StatError::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
            StatError::TooFewSamples { got, need } => {
                write!(f, "too few samples: got {got}, need at least {need}")
            }
            StatError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            StatError::Degenerate(msg) => write!(f, "degenerate input: {msg}"),
            StatError::NoConvergence {
                algorithm,
                iterations,
            } => write!(
                f,
                "{algorithm} did not converge after {iterations} iterations"
            ),
            StatError::Misaligned { required, detail } => {
                write!(f, "buffer not {required}-byte aligned: {detail}")
            }
        }
    }
}

impl std::error::Error for StatError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert_eq!(StatError::Empty.to_string(), "empty input");
        assert_eq!(
            StatError::LengthMismatch { left: 3, right: 5 }.to_string(),
            "length mismatch: 3 vs 5"
        );
        assert_eq!(
            StatError::TooFewSamples { got: 1, need: 2 }.to_string(),
            "too few samples: got 1, need at least 2"
        );
        let e = StatError::NoConvergence {
            algorithm: "jacobi",
            iterations: 100,
        };
        assert!(e.to_string().contains("jacobi"));
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<StatError>();
    }
}
