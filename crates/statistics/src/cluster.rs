//! k-means clustering with k-means++ seeding.
//!
//! PerfExplorer's data-mining operations include clustering of per-thread
//! behaviour (e.g. grouping threads by their event time vectors to reveal
//! distinct behavioural classes on large runs). This module provides the
//! same capability: deterministic, seedable k-means over dense vectors.

use crate::{Result, StatError};
use serde::{Deserialize, Serialize};

/// Configuration for [`kmeans`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KMeansConfig {
    /// Number of clusters to form.
    pub k: usize,
    /// Maximum Lloyd iterations before declaring non-convergence.
    pub max_iterations: usize,
    /// Convergence threshold on total centroid movement.
    pub tolerance: f64,
    /// Seed for the deterministic k-means++ initialisation.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 2,
            max_iterations: 200,
            tolerance: 1e-9,
            seed: 0x5eed_cafe,
        }
    }
}

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeansResult {
    /// Cluster index assigned to each input point.
    pub assignments: Vec<usize>,
    /// Final centroids, `k` rows of the input dimensionality.
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared distances of points to their centroid (inertia).
    pub inertia: f64,
    /// Lloyd iterations performed.
    pub iterations: usize,
}

/// Small deterministic xorshift generator so clustering results are
/// reproducible without pulling a full RNG dependency into this crate.
struct XorShift64(u64);

impl XorShift64 {
    fn new(seed: u64) -> Self {
        XorShift64(seed.max(1))
    }
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

/// Clusters `points` (rows) into `config.k` groups with Lloyd's algorithm
/// seeded by k-means++.
pub fn kmeans(points: &[Vec<f64>], config: &KMeansConfig) -> Result<KMeansResult> {
    if points.is_empty() {
        return Err(StatError::Empty);
    }
    if config.k == 0 {
        return Err(StatError::InvalidParameter("k must be >= 1".into()));
    }
    if config.k > points.len() {
        return Err(StatError::InvalidParameter(format!(
            "k = {} exceeds number of points {}",
            config.k,
            points.len()
        )));
    }
    let dim = points[0].len();
    if dim == 0 {
        return Err(StatError::InvalidParameter(
            "zero-dimensional points".into(),
        ));
    }
    for p in points {
        if p.len() != dim {
            return Err(StatError::LengthMismatch {
                left: dim,
                right: p.len(),
            });
        }
    }

    // --- k-means++ seeding ---
    let mut rng = XorShift64::new(config.seed);
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(config.k);
    centroids.push(points[(rng.next_u64() % points.len() as u64) as usize].clone());
    let mut dists: Vec<f64> = points.iter().map(|p| sq_dist(p, &centroids[0])).collect();
    while centroids.len() < config.k {
        let total: f64 = dists.iter().sum();
        let next = if total <= 0.0 {
            // All remaining points coincide with a centroid; pick uniformly.
            (rng.next_u64() % points.len() as u64) as usize
        } else {
            let mut target = rng.next_f64() * total;
            let mut chosen = points.len() - 1;
            for (i, &d) in dists.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.push(points[next].clone());
        for (i, p) in points.iter().enumerate() {
            let d = sq_dist(p, centroids.last().expect("just pushed"));
            if d < dists[i] {
                dists[i] = d;
            }
        }
    }

    // --- Lloyd iterations ---
    let mut assignments = vec![0usize; points.len()];
    let mut iterations = 0;
    loop {
        iterations += 1;
        // Assignment step.
        for (i, p) in points.iter().enumerate() {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let d = sq_dist(p, centroid);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            assignments[i] = best;
        }
        // Update step.
        let mut sums = vec![vec![0.0; dim]; config.k];
        let mut counts = vec![0usize; config.k];
        for (p, &a) in points.iter().zip(&assignments) {
            counts[a] += 1;
            for (s, &v) in sums[a].iter_mut().zip(p) {
                *s += v;
            }
        }
        let mut movement = 0.0;
        for c in 0..config.k {
            if counts[c] == 0 {
                // Empty cluster: re-seed at the point farthest from its
                // centroid to avoid collapsing k.
                let far = points
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        sq_dist(a, &centroids[assignments[0]])
                            .partial_cmp(&sq_dist(b, &centroids[assignments[0]]))
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                movement += sq_dist(&centroids[c], &points[far]);
                centroids[c] = points[far].clone();
                continue;
            }
            let new: Vec<f64> = sums[c].iter().map(|s| s / counts[c] as f64).collect();
            movement += sq_dist(&centroids[c], &new);
            centroids[c] = new;
        }
        if movement <= config.tolerance {
            break;
        }
        if iterations >= config.max_iterations {
            return Err(StatError::NoConvergence {
                algorithm: "kmeans",
                iterations,
            });
        }
    }

    let inertia = points
        .iter()
        .zip(&assignments)
        .map(|(p, &a)| sq_dist(p, &centroids[a]))
        .sum();
    Ok(KMeansResult {
        assignments,
        centroids,
        inertia,
        iterations,
    })
}

/// Mean silhouette coefficient of a clustering, in `[-1, 1]`; larger is
/// better separated. Requires at least 2 clusters actually populated.
pub fn silhouette(points: &[Vec<f64>], assignments: &[usize]) -> Result<f64> {
    if points.is_empty() {
        return Err(StatError::Empty);
    }
    if points.len() != assignments.len() {
        return Err(StatError::LengthMismatch {
            left: points.len(),
            right: assignments.len(),
        });
    }
    let k = assignments.iter().copied().max().unwrap_or(0) + 1;
    let mut cluster_sizes = vec![0usize; k];
    for &a in assignments {
        cluster_sizes[a] += 1;
    }
    if cluster_sizes.iter().filter(|&&c| c > 0).count() < 2 {
        return Err(StatError::InvalidParameter(
            "silhouette requires at least 2 populated clusters".into(),
        ));
    }
    let mut total = 0.0;
    for (i, p) in points.iter().enumerate() {
        // Mean distance to every cluster.
        let mut mean_d = vec![0.0; k];
        for (j, q) in points.iter().enumerate() {
            if i != j {
                mean_d[assignments[j]] += sq_dist(p, q).sqrt();
            }
        }
        let own = assignments[i];
        let a = if cluster_sizes[own] > 1 {
            mean_d[own] / (cluster_sizes[own] - 1) as f64
        } else {
            0.0
        };
        let b = (0..k)
            .filter(|&c| c != own && cluster_sizes[c] > 0)
            .map(|c| mean_d[c] / cluster_sizes[c] as f64)
            .fold(f64::INFINITY, f64::min);
        let s = if cluster_sizes[own] > 1 {
            (b - a) / a.max(b)
        } else {
            0.0
        };
        total += s;
    }
    Ok(total / points.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(vec![0.0 + 0.01 * i as f64, 0.0]);
            pts.push(vec![10.0 + 0.01 * i as f64, 10.0]);
        }
        pts
    }

    #[test]
    fn kmeans_separates_two_blobs() {
        let pts = two_blobs();
        let res = kmeans(&pts, &KMeansConfig::default()).unwrap();
        // All even indices (blob A) share a cluster; odd (blob B) the other.
        let a = res.assignments[0];
        let b = res.assignments[1];
        assert_ne!(a, b);
        for i in (0..pts.len()).step_by(2) {
            assert_eq!(res.assignments[i], a);
        }
        for i in (1..pts.len()).step_by(2) {
            assert_eq!(res.assignments[i], b);
        }
        assert!(res.inertia < 1.0);
    }

    #[test]
    fn kmeans_is_deterministic_for_fixed_seed() {
        let pts = two_blobs();
        let cfg = KMeansConfig {
            seed: 42,
            ..Default::default()
        };
        let r1 = kmeans(&pts, &cfg).unwrap();
        let r2 = kmeans(&pts, &cfg).unwrap();
        assert_eq!(r1.assignments, r2.assignments);
        assert_eq!(r1.centroids, r2.centroids);
    }

    #[test]
    fn kmeans_k_equals_n_gives_zero_inertia() {
        let pts = vec![vec![1.0], vec![2.0], vec![3.0]];
        let cfg = KMeansConfig {
            k: 3,
            ..Default::default()
        };
        let res = kmeans(&pts, &cfg).unwrap();
        assert!(res.inertia < 1e-12);
    }

    #[test]
    fn kmeans_rejects_bad_parameters() {
        let pts = vec![vec![1.0], vec![2.0]];
        assert!(kmeans(
            &pts,
            &KMeansConfig {
                k: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(kmeans(
            &pts,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            }
        )
        .is_err());
        assert!(kmeans(&[], &KMeansConfig::default()).is_err());
    }

    #[test]
    fn kmeans_rejects_ragged_points() {
        let pts = vec![vec![1.0, 2.0], vec![3.0]];
        assert!(matches!(
            kmeans(&pts, &KMeansConfig::default()),
            Err(StatError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn kmeans_identical_points_converges() {
        let pts = vec![vec![5.0, 5.0]; 8];
        let res = kmeans(&pts, &KMeansConfig::default()).unwrap();
        assert!(res.inertia < 1e-12);
    }

    #[test]
    fn silhouette_high_for_separated_blobs() {
        let pts = two_blobs();
        let res = kmeans(&pts, &KMeansConfig::default()).unwrap();
        let s = silhouette(&pts, &res.assignments).unwrap();
        assert!(s > 0.9, "expected well-separated blobs, got s = {s}");
    }

    #[test]
    fn silhouette_requires_two_clusters() {
        let pts = vec![vec![1.0], vec![2.0]];
        assert!(silhouette(&pts, &[0, 0]).is_err());
    }
}
