//! k-means clustering with k-means++ seeding, over the flat matrix
//! layout.
//!
//! PerfExplorer's data-mining operations include clustering of per-thread
//! behaviour (e.g. grouping threads by their event time vectors to reveal
//! distinct behavioural classes on large runs). This module provides the
//! same capability: deterministic, seedable k-means over dense vectors.
//!
//! The kernels ([`kmeans_flat`], [`silhouette_flat`]) operate on a
//! zero-copy [`MatrixView`] so data gathered once from the columnar
//! profile store is clustered in place. The assignment step ranks
//! centroids with the norm expansion `‖x − c‖² = ‖x‖² − 2·x·c + ‖c‖²`:
//! centroid norms are cached per iteration and the remaining work per
//! (point, centroid) pair is one contiguous unrolled dot product,
//! parallelised over points with rayon. Seeding, the blocked update
//! step, and the inertia pass accumulate in the exact term order of
//! [`crate::reference::kmeans`], so for equal assignments the results
//! are bit-identical to the nested reference — the property the
//! differential proptests in `tests/flat_equivalence.rs` pin.
//!
//! [`kmeans`] and [`silhouette`] are thin compatibility wrappers that
//! gather nested `Vec<Vec<f64>>` points once and defer to the flat
//! kernels.

use crate::matrix::{
    dot, scatter_add, sq_dist, sq_dists_assigned, sq_dists_to, sq_norm, CentroidBlock, DenseMatrix,
    MatrixView,
};
use crate::reference::XorShift64;
use crate::{Result, StatError};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Configuration for [`kmeans`] / [`kmeans_flat`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KMeansConfig {
    /// Number of clusters to form.
    pub k: usize,
    /// Maximum Lloyd iterations before declaring non-convergence.
    pub max_iterations: usize,
    /// Convergence threshold on total centroid movement, relative to
    /// the total squared centroid norm (scale-invariant: multiplying
    /// every coordinate by a constant does not change the decision).
    pub tolerance: f64,
    /// Seed for the deterministic k-means++ initialisation.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 2,
            max_iterations: 200,
            tolerance: 1e-9,
            seed: 0x5eed_cafe,
        }
    }
}

/// Result of a k-means run over nested points (compat shape).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeansResult {
    /// Cluster index assigned to each input point.
    pub assignments: Vec<usize>,
    /// Final centroids, `k` rows of the input dimensionality.
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared distances of points to their centroid (inertia).
    pub inertia: f64,
    /// Lloyd iterations performed.
    pub iterations: usize,
}

/// Result of a k-means run over the flat layout: centroids stay in one
/// contiguous `k × dim` matrix, so keeping or comparing many candidate
/// clusterings does not clone per-centroid `Vec`s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlatKMeans {
    /// Cluster index assigned to each input point.
    pub assignments: Vec<usize>,
    /// Final centroids as a flat `k × dim` matrix.
    pub centroids: DenseMatrix,
    /// Sum of squared distances of points to their centroid (inertia).
    pub inertia: f64,
    /// Lloyd iterations performed.
    pub iterations: usize,
}

fn validate(rows: usize, cols: usize, config: &KMeansConfig) -> Result<()> {
    if rows == 0 {
        return Err(StatError::Empty);
    }
    if config.k == 0 {
        return Err(StatError::InvalidParameter("k must be >= 1".into()));
    }
    if config.k > rows {
        return Err(StatError::InvalidParameter(format!(
            "k = {} exceeds number of points {}",
            config.k, rows
        )));
    }
    if cols == 0 {
        return Err(StatError::InvalidParameter(
            "zero-dimensional points".into(),
        ));
    }
    Ok(())
}

/// Clusters the rows of `points` into `config.k` groups with Lloyd's
/// algorithm seeded by k-means++, entirely on the flat layout.
pub fn kmeans_flat(points: MatrixView<'_>, config: &KMeansConfig) -> Result<FlatKMeans> {
    let n = points.rows();
    let dim = points.cols();
    validate(n, dim, config)?;
    let k = config.k;

    // --- k-means++ seeding (term order identical to the reference, so
    // both draw the same RNG decisions from the same seed) ---
    let mut rng = XorShift64::new(config.seed);
    let mut centroids = DenseMatrix::zeros(k, dim);
    let first = (rng.next_u64() % n as u64) as usize;
    centroids.row_mut(0).copy_from_slice(points.row(first));
    // `sq_dists_to` pins one point per SIMD lane, so every distance is
    // bit-identical to a scalar `sq_dist` call and the RNG decisions
    // below are unchanged.
    let mut dists = vec![0.0; n];
    sq_dists_to(points, centroids.row(0), &mut dists);
    let mut newd = vec![0.0; n];
    let mut seeded = 1;
    while seeded < k {
        let total: f64 = dists.iter().sum();
        let next = if total <= 0.0 {
            // All remaining points coincide with a centroid; pick uniformly.
            (rng.next_u64() % n as u64) as usize
        } else {
            let mut target = rng.next_f64() * total;
            let mut chosen = n - 1;
            for (i, &d) in dists.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.row_mut(seeded).copy_from_slice(points.row(next));
        sq_dists_to(points, centroids.row(seeded), &mut newd);
        for (d, &nd) in dists.iter_mut().zip(&newd) {
            if nd < *d {
                *d = nd;
            }
        }
        seeded += 1;
    }

    lloyd(points, centroids, config)
}

/// Lloyd iterations from a given set of starting centroids. Shared by
/// the cold path ([`kmeans_flat`], after k-means++ seeding) and the
/// warm path ([`kmeans_warm_flat`], starting from refined previous
/// centroids).
fn lloyd(
    points: MatrixView<'_>,
    mut centroids: DenseMatrix,
    config: &KMeansConfig,
) -> Result<FlatKMeans> {
    let n = points.rows();
    let dim = points.cols();
    let k = config.k;
    // --- Lloyd iterations ---
    let mut assignments: Vec<usize> = vec![0; n];
    let mut iterations = 0;
    let mut scratch = vec![0.0; dim];
    loop {
        iterations += 1;
        // Assignment step: rank centroids by ‖c‖² − 2·x·c (the ‖x‖²
        // term is constant per point, so it cannot change the argmin).
        // The centroids are transposed once into a register-blocked
        // [`CentroidBlock`]; rayon fans the scan out over contiguous
        // chunks of one reused assignment buffer (no per-iteration
        // allocation), and inside a chunk points go through the kernel
        // in pairs so each panel row read serves two points.
        let block = CentroidBlock::new(&centroids);
        let block = &block;
        const ASSIGN_CHUNK: usize = 256;
        assignments
            .par_chunks_mut(ASSIGN_CHUNK)
            .enumerate()
            .for_each(|(ch, chunk)| {
                block.assign_into(points, ch * ASSIGN_CHUNK, chunk);
            });

        // Update step: one fused pass over the points in input order,
        // accumulating into the contiguous per-cluster rows of a flat
        // sum matrix — the same summation order as the reference, so
        // converged centroids match it bit for bit.
        let mut sums = DenseMatrix::zeros(k, dim);
        let mut counts = vec![0usize; k];
        scatter_add(points, &assignments, &mut sums, &mut counts);
        let mut movement = 0.0;
        for (c, &count) in counts.iter().enumerate() {
            if count == 0 {
                // Empty cluster: re-seed at the point farthest from its
                // *own* assigned centroid to avoid collapsing k. Ties
                // keep the later point, matching the reference's
                // `max_by` semantics.
                let mut far = 0;
                let mut far_d = f64::NEG_INFINITY;
                for (i, &a) in assignments.iter().enumerate() {
                    let d = sq_dist(points.row(i), centroids.row(a));
                    if d.partial_cmp(&far_d) != Some(std::cmp::Ordering::Less) {
                        far_d = d;
                        far = i;
                    }
                }
                movement += sq_dist(centroids.row(c), points.row(far));
                centroids.row_mut(c).copy_from_slice(points.row(far));
                continue;
            }
            for (j, s) in sums.row(c).iter().enumerate() {
                scratch[j] = s / count as f64;
            }
            movement += sq_dist(centroids.row(c), &scratch);
            centroids.row_mut(c).copy_from_slice(&scratch);
        }
        // Scale-invariant convergence: normalise movement by the total
        // squared centroid norm so the decision is unchanged when all
        // coordinates are multiplied by a constant. Degenerate scale
        // (all centroids at the origin) falls back to the absolute
        // threshold. Term order matches the reference exactly so both
        // implementations take the same branch on the same data.
        let mut scale = 0.0;
        for c in 0..k {
            for &v in centroids.row(c) {
                scale += v * v;
            }
        }
        let threshold = if scale > 0.0 {
            config.tolerance * scale
        } else {
            config.tolerance
        };
        if movement <= threshold {
            break;
        }
        if iterations >= config.max_iterations {
            return Err(StatError::NoConvergence {
                algorithm: "kmeans",
                iterations,
            });
        }
    }

    // Batched per-point distances (bit-identical per lane), summed
    // sequentially in input order — the reference's reduction order.
    let mut dists = vec![0.0; n];
    sq_dists_assigned(points, &centroids, &assignments, &mut dists);
    let inertia = dists.iter().sum();
    Ok(FlatKMeans {
        assignments,
        centroids,
        inertia,
        iterations,
    })
}

/// Outcome of a warm-started k-means run ([`kmeans_warm_flat`]).
#[derive(Debug, Clone, PartialEq)]
pub struct WarmKMeans {
    /// The clustering, same shape as a cold [`kmeans_flat`] result.
    pub result: FlatKMeans,
    /// True when the warm path was abandoned and the result comes from
    /// a full k-means++ seeded run (dimension mismatch, non-convergence
    /// from the warm start, or inertia drift past the threshold).
    pub fell_back: bool,
}

/// Warm-started k-means: seeds Lloyd from `prev_centroids` instead of
/// k-means++, after a mini-batch refinement pass over `delta_rows`
/// (the point rows touched since the previous clustering).
///
/// Each delta row nudges its nearest centroid by a decaying per-cluster
/// learning rate (`c += (x − c) / n_c`, the standard mini-batch k-means
/// update), so centroids track drifting workloads before the full Lloyd
/// passes run. The warm path is abandoned — falling back to a cold
/// [`kmeans_flat`] run — when the previous centroids do not match the
/// data's shape, when Lloyd fails to converge from them, or when the
/// warm inertia exceeds `drift_threshold ×` `prev_inertia` (the
/// previous optimum is no longer a good basin).
pub fn kmeans_warm_flat(
    points: MatrixView<'_>,
    prev_centroids: &DenseMatrix,
    prev_inertia: f64,
    delta_rows: &[usize],
    config: &KMeansConfig,
    drift_threshold: f64,
) -> Result<WarmKMeans> {
    let n = points.rows();
    let dim = points.cols();
    validate(n, dim, config)?;
    let cold = |_: ()| -> Result<WarmKMeans> {
        Ok(WarmKMeans {
            result: kmeans_flat(points, config)?,
            fell_back: true,
        })
    };
    if prev_centroids.rows() != config.k || prev_centroids.cols() != dim {
        return cold(());
    }
    let mut centroids = prev_centroids.clone();

    // Mini-batch refinement over the touched rows. Counts start at 1 so
    // the first delta moves a centroid halfway rather than teleporting
    // it onto the point.
    let mut counts = vec![1usize; config.k];
    for &i in delta_rows {
        if i >= n {
            continue;
        }
        let x = points.row(i);
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for c in 0..config.k {
            let d = sq_dist(x, centroids.row(c));
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        counts[best] += 1;
        let eta = 1.0 / counts[best] as f64;
        for (cv, &xv) in centroids.row_mut(best).iter_mut().zip(x) {
            *cv += eta * (xv - *cv);
        }
    }

    match lloyd(points, centroids, config) {
        Ok(result) => {
            let drifted = prev_inertia.is_finite()
                && prev_inertia > 0.0
                && result.inertia > drift_threshold * prev_inertia;
            if drifted {
                cold(())
            } else {
                Ok(WarmKMeans {
                    result,
                    fell_back: false,
                })
            }
        }
        Err(StatError::NoConvergence { .. }) => cold(()),
        Err(e) => Err(e),
    }
}

/// Clusters nested `points` (rows) into `config.k` groups.
///
/// Compatibility wrapper: gathers the points into a [`DenseMatrix`]
/// once and defers to [`kmeans_flat`].
pub fn kmeans(points: &[Vec<f64>], config: &KMeansConfig) -> Result<KMeansResult> {
    if points.is_empty() {
        return Err(StatError::Empty);
    }
    validate(points.len(), points[0].len(), config)?;
    let m = DenseMatrix::from_rows(points)?;
    let flat = kmeans_flat(m.view(), config)?;
    Ok(KMeansResult {
        assignments: flat.assignments,
        centroids: flat.centroids.to_nested(),
        inertia: flat.inertia,
        iterations: flat.iterations,
    })
}

/// Mean silhouette coefficient of a clustering over the flat layout,
/// in `[-1, 1]`; larger is better separated. Requires at least 2
/// populated clusters.
///
/// Per query point the distances to all clusters are folded into one
/// per-cluster aggregate (sum of distances) in a single scan built on
/// cached squared norms and the unrolled dot kernel; query points are
/// independent and evaluated in parallel.
pub fn silhouette_flat(points: MatrixView<'_>, assignments: &[usize]) -> Result<f64> {
    let n = points.rows();
    if n == 0 {
        return Err(StatError::Empty);
    }
    if n != assignments.len() {
        return Err(StatError::LengthMismatch {
            left: n,
            right: assignments.len(),
        });
    }
    if points.cols() == 0 {
        return Err(StatError::InvalidParameter(
            "zero-dimensional points".into(),
        ));
    }
    let k = assignments.iter().copied().max().unwrap_or(0) + 1;
    let mut cluster_sizes = vec![0usize; k];
    for &a in assignments {
        cluster_sizes[a] += 1;
    }
    if cluster_sizes.iter().filter(|&&c| c > 0).count() < 2 {
        return Err(StatError::InvalidParameter(
            "silhouette requires at least 2 populated clusters".into(),
        ));
    }
    let norms: Vec<f64> = (0..n).map(|i| sq_norm(points.row(i))).collect();
    let sizes = &cluster_sizes;
    let norms_ref = &norms;
    let scores: Vec<f64> = (0..n)
        .into_par_iter()
        .map(|i| {
            let x = points.row(i);
            // Per-cluster aggregate distances, one scan: the pairwise
            // distance is √(‖x‖² + ‖q‖² − 2·x·q) from cached norms.
            let mut sum_d = vec![0.0; k];
            for j in 0..n {
                if i != j {
                    let d2 = norms_ref[i] + norms_ref[j] - 2.0 * dot(x, points.row(j));
                    sum_d[assignments[j]] += d2.max(0.0).sqrt();
                }
            }
            let own = assignments[i];
            let a = if sizes[own] > 1 {
                sum_d[own] / (sizes[own] - 1) as f64
            } else {
                0.0
            };
            let b = (0..k)
                .filter(|&c| c != own && sizes[c] > 0)
                .map(|c| sum_d[c] / sizes[c] as f64)
                .fold(f64::INFINITY, f64::min);
            if sizes[own] > 1 {
                (b - a) / a.max(b)
            } else {
                0.0
            }
        })
        .collect();
    Ok(scores.iter().sum::<f64>() / n as f64)
}

/// Mean silhouette coefficient over nested points (compat wrapper for
/// [`silhouette_flat`]; also rejects ragged point sets).
pub fn silhouette(points: &[Vec<f64>], assignments: &[usize]) -> Result<f64> {
    if points.is_empty() {
        return Err(StatError::Empty);
    }
    if points.len() != assignments.len() {
        return Err(StatError::LengthMismatch {
            left: points.len(),
            right: assignments.len(),
        });
    }
    let m = DenseMatrix::from_rows(points)?;
    silhouette_flat(m.view(), assignments)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(vec![0.0 + 0.01 * i as f64, 0.0]);
            pts.push(vec![10.0 + 0.01 * i as f64, 10.0]);
        }
        pts
    }

    #[test]
    fn kmeans_separates_two_blobs() {
        let pts = two_blobs();
        let res = kmeans(&pts, &KMeansConfig::default()).unwrap();
        // All even indices (blob A) share a cluster; odd (blob B) the other.
        let a = res.assignments[0];
        let b = res.assignments[1];
        assert_ne!(a, b);
        for i in (0..pts.len()).step_by(2) {
            assert_eq!(res.assignments[i], a);
        }
        for i in (1..pts.len()).step_by(2) {
            assert_eq!(res.assignments[i], b);
        }
        assert!(res.inertia < 1.0);
    }

    #[test]
    fn kmeans_is_deterministic_for_fixed_seed() {
        let pts = two_blobs();
        let cfg = KMeansConfig {
            seed: 42,
            ..Default::default()
        };
        let r1 = kmeans(&pts, &cfg).unwrap();
        let r2 = kmeans(&pts, &cfg).unwrap();
        assert_eq!(r1.assignments, r2.assignments);
        assert_eq!(r1.centroids, r2.centroids);
    }

    #[test]
    fn kmeans_k_equals_n_gives_zero_inertia() {
        let pts = vec![vec![1.0], vec![2.0], vec![3.0]];
        let cfg = KMeansConfig {
            k: 3,
            ..Default::default()
        };
        let res = kmeans(&pts, &cfg).unwrap();
        assert!(res.inertia < 1e-12);
    }

    #[test]
    fn kmeans_rejects_bad_parameters() {
        let pts = vec![vec![1.0], vec![2.0]];
        assert!(kmeans(
            &pts,
            &KMeansConfig {
                k: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(kmeans(
            &pts,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            }
        )
        .is_err());
        assert!(kmeans(&[], &KMeansConfig::default()).is_err());
    }

    #[test]
    fn kmeans_rejects_ragged_points() {
        // LengthMismatch carries (expected dim, offending row's len).
        let pts = vec![vec![1.0, 2.0], vec![3.0]];
        assert!(matches!(
            kmeans(&pts, &KMeansConfig::default()),
            Err(StatError::LengthMismatch { left: 2, right: 1 })
        ));
    }

    #[test]
    fn kmeans_rejects_zero_dimensional_points() {
        let pts = vec![vec![], vec![]];
        assert!(matches!(
            kmeans(&pts, &KMeansConfig::default()),
            Err(StatError::InvalidParameter(_))
        ));
    }

    #[test]
    fn silhouette_rejects_ragged_and_zero_dimensional_points() {
        // Ragged: LengthMismatch carries (expected dim, offending len).
        assert!(matches!(
            silhouette(&[vec![1.0, 2.0], vec![3.0]], &[0, 1]),
            Err(StatError::LengthMismatch { left: 2, right: 1 })
        ));
        assert!(matches!(
            silhouette(&[vec![], vec![]], &[0, 1]),
            Err(StatError::InvalidParameter(_))
        ));
        // Assignment-length mismatch carries (points, assignments).
        assert!(matches!(
            silhouette(&[vec![1.0], vec![2.0], vec![3.0]], &[0, 1]),
            Err(StatError::LengthMismatch { left: 3, right: 2 })
        ));
    }

    #[test]
    fn empty_cluster_reseeds_at_farthest_from_own_centroid() {
        // With this seed, Lloyd dynamics empty one of the four clusters
        // mid-run. The old re-seeding measured every point against
        // *point 0's* centroid instead of each point's own, picked the
        // already-well-clustered 0.5 and collapsed two clusters onto it
        // (assignments [0,1,1,1,1,2,0], inertia ≈ 17.08). Re-seeding at
        // the point farthest from its own centroid recovers all four
        // real clusters {15.25, 15.0}, {10.0, 10.25, 10.5}, {5.5}, {0.5}.
        let pts = vec![
            vec![15.25],
            vec![10.0],
            vec![10.25],
            vec![5.5],
            vec![10.5],
            vec![0.5],
            vec![15.0],
        ];
        let cfg = KMeansConfig {
            k: 4,
            seed: 0xcb54d58de858f293,
            ..Default::default()
        };
        let res = kmeans(&pts, &cfg).unwrap();
        assert_eq!(res.assignments, vec![0, 1, 1, 2, 1, 3, 0]);
        assert!(
            res.inertia < 1.0,
            "reseed regression: inertia {}",
            res.inertia
        );
    }

    #[test]
    fn kmeans_identical_points_converges() {
        let pts = vec![vec![5.0, 5.0]; 8];
        let res = kmeans(&pts, &KMeansConfig::default()).unwrap();
        assert!(res.inertia < 1e-12);
    }

    #[test]
    fn flat_api_runs_without_gather() {
        // 4 points on a line, flat row-major buffer, no nesting anywhere.
        let data = [0.0, 0.1, 10.0, 10.1];
        let view = MatrixView::new(&data, 4, 1).unwrap();
        let res = kmeans_flat(
            view,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(res.assignments[0], res.assignments[1]);
        assert_eq!(res.assignments[2], res.assignments[3]);
        assert_ne!(res.assignments[0], res.assignments[2]);
        assert_eq!(res.centroids.rows(), 2);
        let s = silhouette_flat(view, &res.assignments).unwrap();
        assert!(s > 0.9);
    }

    #[test]
    fn convergence_is_scale_invariant() {
        // The same geometry at unit scale and at 1e8 scale must take
        // the same number of Lloyd iterations: the movement threshold
        // is relative to the total squared centroid norm, not absolute.
        let unit = two_blobs();
        let big: Vec<Vec<f64>> = unit
            .iter()
            .map(|p| p.iter().map(|v| v * 1e8).collect())
            .collect();
        let cfg = KMeansConfig::default();
        let ru = kmeans(&unit, &cfg).unwrap();
        let rb = kmeans(&big, &cfg).unwrap();
        assert_eq!(ru.iterations, rb.iterations);
        assert_eq!(ru.assignments, rb.assignments);
    }

    #[test]
    fn warm_start_from_converged_centroids_keeps_assignments() {
        let pts = two_blobs();
        let m = DenseMatrix::from_rows(&pts).unwrap();
        let cfg = KMeansConfig::default();
        let cold = kmeans_flat(m.view(), &cfg).unwrap();
        let warm =
            kmeans_warm_flat(m.view(), &cold.centroids, cold.inertia, &[], &cfg, 2.0).unwrap();
        assert!(!warm.fell_back);
        assert_eq!(warm.result.assignments, cold.assignments);
        assert_eq!(warm.result.centroids, cold.centroids);
        // Warm start skips seeding and starts at the optimum: one
        // confirming iteration.
        assert_eq!(warm.result.iterations, 1);
    }

    #[test]
    fn warm_start_refines_on_delta_rows_after_drift() {
        // Cluster blob A vs blob B, then move blob B far away; warm
        // start with the moved rows as deltas still separates the blobs.
        let mut pts = two_blobs();
        let m = DenseMatrix::from_rows(&pts).unwrap();
        let cfg = KMeansConfig::default();
        let cold = kmeans_flat(m.view(), &cfg).unwrap();
        for (i, p) in pts.iter_mut().enumerate() {
            if i % 2 == 1 {
                p[0] += 40.0;
                p[1] += 40.0;
            }
        }
        let moved: Vec<usize> = (1..pts.len()).step_by(2).collect();
        let m2 = DenseMatrix::from_rows(&pts).unwrap();
        let warm = kmeans_warm_flat(
            m2.view(),
            &cold.centroids,
            cold.inertia,
            &moved,
            &cfg,
            // Generous threshold: the blobs kept their internal spread,
            // so a good warm solution has comparable inertia.
            10.0,
        )
        .unwrap();
        let a = warm.result.assignments[0];
        let b = warm.result.assignments[1];
        assert_ne!(a, b);
        for i in (0..pts.len()).step_by(2) {
            assert_eq!(warm.result.assignments[i], a);
        }
        for i in (1..pts.len()).step_by(2) {
            assert_eq!(warm.result.assignments[i], b);
        }
    }

    #[test]
    fn warm_start_falls_back_on_dimension_mismatch_and_drift() {
        let pts = two_blobs();
        let m = DenseMatrix::from_rows(&pts).unwrap();
        let cfg = KMeansConfig::default();
        let cold = kmeans_flat(m.view(), &cfg).unwrap();
        // Wrong dimensionality → cold rerun.
        let wrong = DenseMatrix::zeros(cfg.k, 3);
        let warm = kmeans_warm_flat(m.view(), &wrong, cold.inertia, &[], &cfg, 2.0).unwrap();
        assert!(warm.fell_back);
        assert_eq!(warm.result.assignments, cold.assignments);
        // Impossible drift threshold (any positive inertia exceeds
        // 0 × prev) → cold rerun.
        let warm =
            kmeans_warm_flat(m.view(), &cold.centroids, cold.inertia, &[], &cfg, 0.0).unwrap();
        assert!(warm.fell_back);
        assert_eq!(warm.result.assignments, cold.assignments);
    }

    #[test]
    fn silhouette_high_for_separated_blobs() {
        let pts = two_blobs();
        let res = kmeans(&pts, &KMeansConfig::default()).unwrap();
        let s = silhouette(&pts, &res.assignments).unwrap();
        assert!(s > 0.9, "expected well-separated blobs, got s = {s}");
    }

    #[test]
    fn silhouette_requires_two_clusters() {
        let pts = vec![vec![1.0], vec![2.0]];
        assert!(silhouette(&pts, &[0, 0]).is_err());
    }
}
