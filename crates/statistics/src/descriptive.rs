//! Descriptive statistics: one-pass summaries, quantiles and ratios.
//!
//! The load-imbalance analysis in the paper is built on exactly these
//! quantities: for each instrumented code region it computes the mean and
//! standard deviation of exclusive time across threads and then the ratio
//! of the standard deviation to the mean (a coefficient of variation).

use crate::{Result, StatError};
use serde::{Deserialize, Serialize};

/// One-pass mean/variance accumulator using Welford's algorithm.
///
/// Welford's recurrence is numerically stable for long streams of samples
/// whose magnitudes differ widely — common for cycle counters, where values
/// span many orders of magnitude between a tight loop and `main`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds one sample into the accumulator.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel reduction).
    ///
    /// This is the Chan et al. pairwise update, so summaries computed per
    /// thread can be combined without revisiting the samples.
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples folded in so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of the samples (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by `n`).
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n - 1`); 0 when fewer than 2 samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample seen, `+inf` if empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample seen, `-inf` if empty.
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// A complete descriptive summary of a sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Population variance.
    pub variance: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile, linear interpolation).
    pub median: f64,
    /// Sum of the samples.
    pub sum: f64,
}

impl Summary {
    /// Computes a summary of `data`.
    ///
    /// Returns [`StatError::Empty`] for an empty slice.
    pub fn of(data: &[f64]) -> Result<Self> {
        if data.is_empty() {
            return Err(StatError::Empty);
        }
        let mut acc = Welford::new();
        let mut sum = 0.0;
        for &x in data {
            acc.push(x);
            sum += x;
        }
        Ok(Summary {
            count: data.len(),
            mean: acc.mean(),
            stddev: acc.stddev(),
            variance: acc.variance(),
            min: acc.min(),
            max: acc.max(),
            median: quantile(data, 0.5)?,
            sum,
        })
    }

    /// Coefficient of variation: `stddev / mean`.
    ///
    /// This is the imbalance indicator used by the paper's load-balance
    /// rule ("two loops have a high standard deviation to mean ratio
    /// (> 0.25)"). Returns [`StatError::Degenerate`] when the mean is zero.
    pub fn coefficient_of_variation(&self) -> Result<f64> {
        if self.mean == 0.0 {
            return Err(StatError::Degenerate("zero mean".into()));
        }
        Ok(self.stddev / self.mean)
    }
}

/// Computes the `q`-quantile (`0.0..=1.0`) of `data` with linear
/// interpolation between order statistics.
pub fn quantile(data: &[f64], q: f64) -> Result<f64> {
    if data.is_empty() {
        return Err(StatError::Empty);
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(StatError::InvalidParameter(format!(
            "quantile {q} outside [0, 1]"
        )));
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Ok(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Arithmetic mean of a slice.
pub fn mean(data: &[f64]) -> Result<f64> {
    if data.is_empty() {
        return Err(StatError::Empty);
    }
    Ok(data.iter().sum::<f64>() / data.len() as f64)
}

/// Population standard deviation of a slice.
pub fn stddev(data: &[f64]) -> Result<f64> {
    Summary::of(data).map(|s| s.stddev)
}

/// Geometric mean; every element must be strictly positive.
pub fn geometric_mean(data: &[f64]) -> Result<f64> {
    if data.is_empty() {
        return Err(StatError::Empty);
    }
    if data.iter().any(|&x| x <= 0.0) {
        return Err(StatError::InvalidParameter(
            "geometric mean requires positive values".into(),
        ));
    }
    let log_sum: f64 = data.iter().map(|x| x.ln()).sum();
    Ok((log_sum / data.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn summary_of_known_data() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!(approx(s.mean, 5.0));
        assert!(approx(s.stddev, 2.0));
        assert!(approx(s.min, 2.0));
        assert!(approx(s.max, 9.0));
        assert!(approx(s.sum, 40.0));
        assert_eq!(s.count, 8);
    }

    #[test]
    fn summary_empty_is_error() {
        assert_eq!(Summary::of(&[]).unwrap_err(), StatError::Empty);
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::of(&[3.5]).unwrap();
        assert!(approx(s.mean, 3.5));
        assert!(approx(s.stddev, 0.0));
        assert!(approx(s.median, 3.5));
    }

    #[test]
    fn welford_matches_two_pass() {
        let data = [1.0, 2.0, 3.0, 4.0, 100.0, -7.0];
        let mut w = Welford::new();
        for &x in &data {
            w.push(x);
        }
        let m = data.iter().sum::<f64>() / data.len() as f64;
        let v = data.iter().map(|x| (x - m).powi(2)).sum::<f64>() / data.len() as f64;
        assert!(approx(w.mean(), m));
        assert!(approx(w.variance(), v));
        assert_eq!(w.count(), 6);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let a = [1.0, 5.0, 2.0];
        let b = [10.0, -3.0, 4.0, 8.0];
        let mut wa = Welford::new();
        let mut wb = Welford::new();
        let mut wall = Welford::new();
        for &x in &a {
            wa.push(x);
            wall.push(x);
        }
        for &x in &b {
            wb.push(x);
            wall.push(x);
        }
        wa.merge(&wb);
        assert!(approx(wa.mean(), wall.mean()));
        assert!(approx(wa.variance(), wall.variance()));
        assert_eq!(wa.count(), wall.count());
        assert!(approx(wa.min(), wall.min()));
        assert!(approx(wa.max(), wall.max()));
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut w = Welford::new();
        w.push(2.0);
        let empty = Welford::new();
        let snapshot = w;
        w.merge(&empty);
        assert_eq!(w, snapshot);

        let mut e = Welford::new();
        e.merge(&w);
        assert_eq!(e, w);
    }

    #[test]
    fn quantile_interpolates() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert!(approx(quantile(&data, 0.0).unwrap(), 1.0));
        assert!(approx(quantile(&data, 1.0).unwrap(), 4.0));
        assert!(approx(quantile(&data, 0.5).unwrap(), 2.5));
        assert!(approx(quantile(&data, 0.25).unwrap(), 1.75));
    }

    #[test]
    fn quantile_rejects_bad_q() {
        assert!(matches!(
            quantile(&[1.0], 1.5),
            Err(StatError::InvalidParameter(_))
        ));
        assert!(matches!(
            quantile(&[1.0], -0.1),
            Err(StatError::InvalidParameter(_))
        ));
    }

    #[test]
    fn coefficient_of_variation_detects_imbalance() {
        // Balanced: identical per-thread times.
        let balanced = Summary::of(&[10.0; 16]).unwrap();
        assert!(approx(balanced.coefficient_of_variation().unwrap(), 0.0));
        // Imbalanced: one thread does everything.
        let mut times = vec![0.5; 15];
        times.push(20.0);
        let imbalanced = Summary::of(&times).unwrap();
        assert!(imbalanced.coefficient_of_variation().unwrap() > 0.25);
    }

    #[test]
    fn cov_zero_mean_is_degenerate() {
        let s = Summary::of(&[-1.0, 1.0]).unwrap();
        assert!(matches!(
            s.coefficient_of_variation(),
            Err(StatError::Degenerate(_))
        ));
    }

    #[test]
    fn geometric_mean_known() {
        assert!(approx(geometric_mean(&[1.0, 4.0, 16.0]).unwrap(), 4.0));
        assert!(geometric_mean(&[1.0, 0.0]).is_err());
        assert!(geometric_mean(&[]).is_err());
    }
}
