//! Observational equivalence of the columnar arena `Profile` against a
//! reference implementation of the seed's nested
//! `data[event][metric][thread]` model, plus the seed-format (v1) JSON
//! fixture check.
//!
//! Random construction sequences are applied to both models; every
//! read the old API offered must agree afterwards, so the arena refactor
//! is invisible to callers.

use perfdmf::{Event, EventId, Measurement, Metric, MetricId, Profile, Repository, ThreadId};
use proptest::prelude::*;

/// Reference model: the seed's storage layout and lookup semantics.
struct NestedProfile {
    metric_names: Vec<String>,
    event_names: Vec<String>,
    threads: usize,
    /// `data[event][metric][thread]`.
    data: Vec<Vec<Vec<Measurement>>>,
}

impl NestedProfile {
    fn new(threads: usize) -> Self {
        NestedProfile {
            metric_names: Vec::new(),
            event_names: Vec::new(),
            threads,
            data: Vec::new(),
        }
    }

    fn add_metric(&mut self, name: &str) -> Option<usize> {
        if self.metric_names.iter().any(|m| m == name) {
            return None;
        }
        self.metric_names.push(name.to_string());
        for block in &mut self.data {
            block.push(vec![Measurement::default(); self.threads]);
        }
        Some(self.metric_names.len() - 1)
    }

    fn add_event(&mut self, name: &str) -> Option<usize> {
        if self.event_names.iter().any(|e| e == name) {
            return None;
        }
        self.event_names.push(name.to_string());
        self.data.push(vec![
            vec![Measurement::default(); self.threads];
            self.metric_names.len()
        ]);
        Some(self.event_names.len() - 1)
    }

    fn set(&mut self, e: usize, m: usize, t: usize, v: Measurement) {
        self.data[e][m][t] = v;
    }
}

/// One step of a random construction sequence.
#[derive(Debug, Clone)]
enum Op {
    AddMetric(String),
    AddEvent(String),
    /// Indices are taken modulo the current axis lengths.
    Set(usize, usize, usize, f64),
}

fn arb_ops() -> impl Strategy<Value = (usize, Vec<Op>)> {
    let op = prop_oneof![
        "[A-Z]{1,6}".prop_map(Op::AddMetric),
        "[a-z]{1,6}".prop_map(Op::AddEvent),
        (0usize..8, 0usize..8, 0usize..8, -1e6f64..1e6)
            .prop_map(|(e, m, t, v)| Op::Set(e, m, t, v)),
    ];
    (1usize..5, prop::collection::vec(op, 0..40))
}

/// Applies the same sequence to both models. Metrics and events pass
/// through the same duplicate filter; sets target the same cell.
fn build_both(threads: usize, ops: &[Op]) -> (Profile, NestedProfile) {
    let mut col = Profile::new((0..threads as u32).map(ThreadId::flat).collect());
    let mut nested = NestedProfile::new(threads);
    for op in ops {
        match op {
            Op::AddMetric(name) => {
                let n = nested.add_metric(name);
                let c = col.add_metric(Metric::measured(name.as_str()));
                assert_eq!(n.is_some(), c.is_ok(), "duplicate detection must agree");
                if let (Some(n), Ok(c)) = (n, c) {
                    assert_eq!(n as u32, c.0, "metric ids must agree");
                }
            }
            Op::AddEvent(name) => {
                let n = nested.add_event(name);
                let c = col.add_event(Event::new(name.as_str()));
                assert_eq!(n.is_some(), c.is_ok(), "duplicate detection must agree");
                if let (Some(n), Ok(c)) = (n, c) {
                    assert_eq!(n as u32, c.0, "event ids must agree");
                }
            }
            Op::Set(e, m, t, v) => {
                let (ne, nm) = (nested.event_names.len(), nested.metric_names.len());
                if ne == 0 || nm == 0 {
                    continue;
                }
                let (e, m, t) = (e % ne, m % nm, t % threads);
                let cell = Measurement {
                    inclusive: 2.0 * v,
                    exclusive: *v,
                    calls: 1.0,
                    subcalls: 0.0,
                };
                nested.set(e, m, t, cell);
                col.set(EventId(e as u32), MetricId(m as u32), t, cell)
                    .expect("in-range set");
            }
        }
    }
    (col, nested)
}

proptest! {
    /// Every read the old nested API offered agrees with the arena.
    #[test]
    fn construction_sequences_are_observationally_equivalent(
        (threads, ops) in arb_ops()
    ) {
        let (col, nested) = build_both(threads, &ops);

        prop_assert_eq!(col.metric_count(), nested.metric_names.len());
        prop_assert_eq!(col.event_count(), nested.event_names.len());
        prop_assert_eq!(col.thread_count(), threads);

        // Interned name lookups agree with the seed's linear scans.
        for (i, name) in nested.metric_names.iter().enumerate() {
            prop_assert_eq!(col.metric_id(name), Some(MetricId(i as u32)));
        }
        for (i, name) in nested.event_names.iter().enumerate() {
            prop_assert_eq!(col.event_id(name), Some(EventId(i as u32)));
        }
        prop_assert_eq!(col.metric_id("no such metric"), None);
        prop_assert_eq!(col.event_id("no such event"), None);

        // Cell-for-cell equality through get / column / thread_slice.
        for e in 0..nested.event_names.len() {
            let eid = EventId(e as u32);
            for m in 0..nested.metric_names.len() {
                let mid = MetricId(m as u32);
                let column = col.column(eid, mid);
                prop_assert_eq!(column, nested.data[e][m].as_slice());
                for t in 0..threads {
                    prop_assert_eq!(col.get(eid, mid, t), Some(&nested.data[e][m][t]));
                }
            }
        }
        for m in 0..nested.metric_names.len() {
            for t in 0..threads {
                let lane: Vec<Measurement> = col
                    .thread_slice(MetricId(m as u32), t)
                    .map(|(_, c)| *c)
                    .collect();
                let expect: Vec<Measurement> =
                    (0..nested.event_names.len()).map(|e| nested.data[e][m][t]).collect();
                prop_assert_eq!(lane, expect);
            }
        }

        // The columns iterator is the triple loop in event-major,
        // metric-inner order, each column exactly once.
        let mut expect = Vec::new();
        for e in 0..nested.event_names.len() {
            for m in 0..nested.metric_names.len() {
                expect.push((e as u32, m as u32, nested.data[e][m].clone()));
            }
        }
        let got: Vec<(u32, u32, Vec<Measurement>)> =
            col.columns().map(|(e, m, c)| (e.0, m.0, c.to_vec())).collect();
        prop_assert_eq!(got, expect);

        // Out-of-range access stays checked, as the nested Vecs were.
        let ne = nested.event_names.len() as u32;
        let nm = nested.metric_names.len() as u32;
        prop_assert_eq!(col.get(EventId(ne), MetricId(0), 0), None);
        prop_assert_eq!(col.get(EventId(0), MetricId(nm), 0), None);
        prop_assert_eq!(col.get(EventId(0), MetricId(0), threads), None);
    }

    /// The wire format round-trips and is byte-stable: the arena never
    /// leaks into JSON, so old readers keep working.
    #[test]
    fn serialization_is_nested_and_stable((threads, ops) in arb_ops()) {
        let (col, _) = build_both(threads, &ops);
        let json = serde_json::to_string(&col).unwrap();
        if col.event_count() > 0 && col.metric_count() > 0 {
            prop_assert!(json.contains("\"data\":[[["));
        }
        let back: Profile = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &col);
        prop_assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }
}

/// A repository JSON written by the seed build (nested v1 `data`
/// arrays) loads unchanged and resolves through the interned lookups.
#[test]
fn v1_fixture_loads() {
    let json = include_str!("fixtures/v1_repo.json");
    assert!(
        json.contains("\"data\":[[["),
        "fixture must be the nested v1 wire format"
    );
    let repo = Repository::from_json(json).unwrap();
    let trial = repo.trial("gyro.B1-std", "scaling", "64_threads").unwrap();
    let p = &trial.profile;

    assert_eq!(p.thread_count(), 4);
    let time = p.metric_id("TIME").unwrap();
    let cycles = p.metric_id("CPU_CYCLES").unwrap();
    let main = p.event_id("main").unwrap();
    let hot = p.event_id("main => timestep => diff_coeff").unwrap();

    assert_eq!(p.get(main, time, 0).unwrap().inclusive, 110.0);
    assert_eq!(p.get(main, time, 3).unwrap().exclusive, 13.0);
    assert_eq!(p.get(hot, time, 2).unwrap().exclusive, 54.0);
    assert_eq!(p.get(main, cycles, 1).unwrap().inclusive, 1e6);
    assert_eq!(p.column(hot, cycles).len(), 4);
    assert!(p.column(hot, cycles).iter().all(|c| c.exclusive == 5e5));

    assert_eq!(trial.metadata.get_str("machine"), Some("mcr.llnl.gov"));
    assert_eq!(trial.metadata.get_num("threads"), Some(4.0));

    // Writing it back preserves the v1 wire format byte-for-byte.
    assert_eq!(repo.to_json().unwrap(), json.trim_end());
}
