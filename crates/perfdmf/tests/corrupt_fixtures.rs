//! Golden tests over checked-in corrupt fixtures: each known corruption
//! shape must produce *exactly* the expected diagnostics and
//! `DataQuality` actions, so the degradation behaviour is pinned, not
//! merely "doesn't crash".

use perfdmf::formats::{csv, gprof, tau};
use perfdmf::quality::{Repair, RepairAction};
use perfdmf::{sanitize_trial, QualityConfig};

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"))
}

#[test]
fn truncated_tau_file_keeps_partial_profile_with_exact_diagnostics() {
    let text = fixture("corrupt_truncated.tau");
    // Strict parse fails outright.
    assert!(tau::parse_thread_profile(&text).is_err());

    let (parsed, diags) = tau::parse_thread_profile_lossy(&text);
    let p = parsed.expect("header is readable; partial profile expected");
    assert_eq!(p.metric, "TIME");
    assert_eq!(p.rows.len(), 1);
    assert_eq!(p.rows[0].0, "main");
    assert_eq!(p.rows[0].1.inclusive, 1000.0);

    assert_eq!(diags.len(), 2, "diagnostics: {diags:?}");
    assert_eq!(diags[0].format, "tau");
    assert_eq!(diags[0].line, Some(4));
    assert_eq!(
        diags[0].message,
        "row skipped: expected at least 4 numeric fields, found 3"
    );
    assert_eq!(diags[1].line, None);
    assert_eq!(
        diags[1].message,
        "header declared 3 functions, found 1 (keeping partial profile)"
    );
}

#[test]
fn nan_counter_csv_parses_then_sanitizes_with_exact_repairs() {
    let text = fixture("corrupt_nan.csv");
    // "NaN" parses as a float, so even the strict parser accepts the
    // row — the sanitization pass is what must catch it.
    let mut trial = csv::parse_trial("nan-fixture", &text).expect("NaN parses as f64");
    let report = sanitize_trial(&mut trial, &QualityConfig::default());

    assert!(report.quarantined.is_empty(), "report: {report:?}");
    assert_eq!(
        report.repairs,
        vec![
            Repair {
                event: "main".into(),
                metric: "TIME".into(),
                thread: 1,
                action: RepairAction::ReplacedNonFinite {
                    field: "inclusive",
                    was: "NaN".into(),
                },
            },
            // Zeroing the NaN inclusive leaves exclusive above it; the
            // pass must notice and clamp in the same sweep.
            Repair {
                event: "main".into(),
                metric: "TIME".into(),
                thread: 1,
                action: RepairAction::ClampedExclusive {
                    exclusive: 4.0,
                    inclusive: 0.0,
                },
            },
        ]
    );
    // The repaired cell is actually repaired.
    let m = trial.profile.metric_id("TIME").unwrap();
    let e = trial.profile.event_id("main").unwrap();
    let cell = trial.profile.get(e, m, 1).unwrap();
    assert_eq!(cell.inclusive, 0.0);
    assert_eq!(cell.exclusive, 0.0);
    // Summary names the actions for the human report.
    let summary = report.summary();
    assert!(summary.contains("2 repair(s)"), "{summary}");
    assert!(summary.contains("inclusive was NaN, set to 0"), "{summary}");
}

#[test]
fn missing_thread_column_csv_drops_exactly_that_row() {
    let text = fixture("corrupt_missing_thread.csv");
    assert!(csv::parse_trial("t", &text).is_err());

    let out = csv::parse_trial_lossy("missing-thread", &text);
    assert_eq!(out.rows_kept, 2);
    assert_eq!(out.rows_dropped, 1);
    assert_eq!(out.diagnostics.len(), 1);
    assert_eq!(out.diagnostics[0].format, "csv");
    assert_eq!(out.diagnostics[0].line, Some(3));
    assert_eq!(
        out.diagnostics[0].message,
        "row skipped: expected 9 fields, found 8"
    );
    let trial = out.trial.expect("two rows survive");
    // Only thread 0 supplied data; the half-row for main contributes
    // nothing.
    assert_eq!(trial.profile.thread_count(), 1);
    assert!(trial.profile.event_id("main").is_some());
    assert!(trial.profile.event_id("compute").is_some());
}

#[test]
fn garbled_gprof_row_is_skipped_with_exact_diagnostic() {
    let text = fixture("corrupt_row.gprof");
    assert!(gprof::parse_flat_profile("g", &text).is_err());

    let out = gprof::parse_flat_profile_lossy("gprof-fixture", &text);
    assert_eq!(out.rows_kept, 2);
    assert_eq!(out.rows_dropped, 1);
    assert_eq!(out.diagnostics.len(), 1);
    assert_eq!(out.diagnostics[0].line, Some(7));
    assert_eq!(
        out.diagnostics[0].message,
        "row skipped: bad self-seconds \"###\""
    );
    let trial = out.trial.expect("good rows survive");
    assert!(trial.profile.event_id("compute").is_some());
    assert!(trial.profile.event_id("main").is_some());
}
