//! Property-based tests for the profile store, algebra and formats.

use perfdmf::algebra::{aggregate_threads, difference, merge, Aggregation};
use perfdmf::formats::{csv, tau};
use perfdmf::{Measurement, Profile, Repository, ThreadId, Trial, TrialBuilder};
use proptest::prelude::*;

/// Strategy: a small random profile with one TIME metric.
fn arb_profile() -> impl Strategy<Value = Profile> {
    (
        1usize..5,                                 // threads
        prop::collection::vec("[a-z]{1,8}", 1..6), // event names
    )
        .prop_flat_map(|(threads, mut names)| {
            names.sort();
            names.dedup();
            let n_events = names.len();
            (
                Just(threads),
                Just(names),
                prop::collection::vec(0.0f64..1e4, n_events * threads),
            )
        })
        .prop_map(|(threads, names, values)| {
            let mut b = TrialBuilder::with_flat_threads("p", threads);
            let m = b.metric("TIME");
            for (i, name) in names.iter().enumerate() {
                let e = b.event(name);
                for t in 0..threads {
                    b.set(e, m, t, Measurement::leaf(values[i * threads + t]));
                }
            }
            b.build().profile
        })
}

proptest! {
    #[test]
    fn difference_with_self_is_zero(p in arb_profile()) {
        let d = difference(&p, &p).unwrap();
        let m = d.metric_id("TIME").unwrap();
        for ev in d.events() {
            let e = d.event_id(&ev.name).unwrap();
            for t in 0..d.thread_count() {
                let c = d.get(e, m, t).unwrap();
                prop_assert!(c.exclusive.abs() < 1e-9);
                prop_assert!(c.inclusive.abs() < 1e-9);
            }
        }
    }

    #[test]
    fn merge_is_commutative_on_values(a in arb_profile(), b in arb_profile()) {
        prop_assume!(a.thread_count() == b.thread_count());
        let ab = merge(&a, &b).unwrap();
        let ba = merge(&b, &a).unwrap();
        let m = ab.metric_id("TIME").unwrap();
        let m2 = ba.metric_id("TIME").unwrap();
        for ev in ab.events() {
            let e1 = ab.event_id(&ev.name).unwrap();
            let e2 = ba.event_id(&ev.name).unwrap();
            for t in 0..ab.thread_count() {
                let c1 = ab.get(e1, m, t).unwrap();
                let c2 = ba.get(e2, m2, t).unwrap();
                prop_assert!((c1.exclusive - c2.exclusive).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn merge_then_difference_recovers_left(a in arb_profile(), b in arb_profile()) {
        prop_assume!(a.thread_count() == b.thread_count());
        let merged = merge(&a, &b).unwrap();
        let back = difference(&merged, &b).unwrap();
        let m = back.metric_id("TIME").unwrap();
        for ev in a.events() {
            // Events unique to `a` survive; events shared with `b` must
            // subtract back to a's values.
            if b.event_id(&ev.name).is_some() {
                let ea = a.event_id(&ev.name).unwrap();
                let eo = back.event_id(&ev.name).unwrap();
                let ma = a.metric_id("TIME").unwrap();
                for t in 0..a.thread_count() {
                    let va = a.get(ea, ma, t).unwrap().exclusive;
                    let vo = back.get(eo, m, t).unwrap().exclusive;
                    prop_assert!((va - vo).abs() < 1e-6);
                }
            }
        }
    }

    #[test]
    fn aggregation_mean_between_min_and_max(p in arb_profile()) {
        let mean = aggregate_threads(&p, Aggregation::Mean).unwrap();
        let min = aggregate_threads(&p, Aggregation::Min).unwrap();
        let max = aggregate_threads(&p, Aggregation::Max).unwrap();
        let m = mean.metric_id("TIME").unwrap();
        for ev in p.events() {
            let e = mean.event_id(&ev.name).unwrap();
            let vmean = mean.get(e, m, 0).unwrap().exclusive;
            let vmin = min.get(e, m, 0).unwrap().exclusive;
            let vmax = max.get(e, m, 0).unwrap().exclusive;
            prop_assert!(vmin <= vmean + 1e-9);
            prop_assert!(vmean <= vmax + 1e-9);
        }
    }

    #[test]
    fn aggregation_total_is_threads_times_mean(p in arb_profile()) {
        let mean = aggregate_threads(&p, Aggregation::Mean).unwrap();
        let total = aggregate_threads(&p, Aggregation::Total).unwrap();
        let m = mean.metric_id("TIME").unwrap();
        let n = p.thread_count() as f64;
        for ev in p.events() {
            let e = mean.event_id(&ev.name).unwrap();
            let vmean = mean.get(e, m, 0).unwrap().exclusive;
            let vtotal = total.get(e, m, 0).unwrap().exclusive;
            prop_assert!((vtotal - n * vmean).abs() < 1e-6 * (1.0 + vtotal.abs()));
        }
    }

    #[test]
    fn csv_roundtrip_preserves_profile(p in arb_profile()) {
        let trial = Trial::new("t", p);
        let text = csv::write_trial(&trial);
        let back = csv::parse_trial("t", &text).unwrap();
        prop_assert_eq!(trial.profile, back.profile);
    }

    #[test]
    fn tau_roundtrip_preserves_rows(
        rows in prop::collection::vec(
            ("[a-z]{1,10}", 0.0f64..1e6, 0.0f64..1e6, 1.0f64..100.0),
            1..8,
        )
    ) {
        let mut named: Vec<(String, Measurement)> = Vec::new();
        for (name, excl, extra, calls) in rows {
            if named.iter().any(|(n, _)| *n == name) {
                continue;
            }
            named.push((
                name,
                Measurement {
                    exclusive: excl,
                    inclusive: excl + extra,
                    calls,
                    subcalls: 0.0,
                },
            ));
        }
        let text = tau::write_thread_profile("TIME", &named);
        let parsed = tau::parse_thread_profile(&text).unwrap();
        prop_assert_eq!(parsed.metric, "TIME");
        prop_assert_eq!(parsed.rows, named);
    }

    #[test]
    fn repository_roundtrips_through_json(p in arb_profile()) {
        let mut repo = Repository::new();
        repo.add_trial("app", "exp", Trial::new("t", p)).unwrap();
        let json = repo.to_json().unwrap();
        let back = Repository::from_json(&json).unwrap();
        prop_assert_eq!(repo, back);
    }
}

#[test]
fn repository_query_across_formats() {
    // Profiles arriving via different formats coexist in one repository.
    let tau_text = "1 templated_functions_MULTI_TIME\n\"main\" 1 0 10 10 0\n";
    let tau_trial = tau::assemble_trial("tau_run", &[(ThreadId::flat(0), tau_text)]).unwrap();

    let csv_text = "\
event,metric,node,context,thread,inclusive,exclusive,calls,subcalls
main,TIME,0,0,0,20,20,1,0
";
    let csv_trial = csv::parse_trial("csv_run", csv_text).unwrap();

    let mut repo = Repository::new();
    repo.add_trial("app", "exp", tau_trial).unwrap();
    repo.add_trial("app", "exp", csv_trial).unwrap();

    let a = repo.trial("app", "exp", "tau_run").unwrap();
    let b = repo.trial("app", "exp", "csv_run").unwrap();
    let (pa, pb) = (&a.profile, &b.profile);
    let diff = difference(pb, pa).unwrap();
    let m = diff.metric_id("TIME").unwrap();
    let e = diff.event_id("main").unwrap();
    assert_eq!(diff.get(e, m, 0).unwrap().exclusive, 10.0);
}
