//! The profile data model: trials, metrics, events, threads, measurements.
//!
//! Measurements live in a single contiguous arena indexed
//! `(event * n_metrics + metric) * n_threads + thread`, so one
//! event/metric column is a contiguous `&[Measurement]` handed out
//! zero-copy, and name → id lookups go through interned hash tables
//! instead of linear scans. The JSON form is unchanged from the
//! original nested `data[event][metric][thread]` layout (see the
//! manual `Serialize`/`Deserialize` impls on [`Profile`]).

use crate::metadata::Metadata;
use crate::{DmfError, Result};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Name of the conventional top-level event. Analyses that compare a
/// region against the whole program (the paper's `compareEventToMain`)
/// resolve this event.
pub const MAIN_EVENT: &str = "main";

/// Separator used in callpath event names (`main => loop => inner`),
/// following the TAU convention.
pub const CALLPATH_SEPARATOR: &str = " => ";

/// Identifier of a metric within one trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MetricId(pub u32);

/// Identifier of an event (instrumented code region) within one trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EventId(pub u32);

/// TAU-style thread identity: node, context, thread.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct ThreadId {
    /// Node (MPI rank or SMP node index).
    pub node: u32,
    /// Context within the node (usually 0).
    pub context: u32,
    /// Thread within the context (OpenMP thread index).
    pub thread: u32,
}

impl ThreadId {
    /// Shorthand for a flat thread numbering `(0,0,t)`.
    pub fn flat(t: u32) -> Self {
        ThreadId {
            node: 0,
            context: 0,
            thread: t,
        }
    }

    /// Shorthand for MPI-style numbering `(rank,0,0)`.
    pub fn rank(r: u32) -> Self {
        ThreadId {
            node: r,
            context: 0,
            thread: 0,
        }
    }
}

impl std::fmt::Display for ThreadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}.{}", self.node, self.context, self.thread)
    }
}

/// A measured performance metric (e.g. `TIME`, `CPU_CYCLES`,
/// `BACK_END_BUBBLE_ALL`, `L3_MISSES`, or a derived expression).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metric {
    /// Metric name. Derived metrics use parenthesised expressions such as
    /// `(BACK_END_BUBBLE_ALL / CPU_CYCLES)`, matching PerfExplorer.
    pub name: String,
    /// Whether this metric was derived by analysis rather than measured.
    pub derived: bool,
}

impl Metric {
    /// A measured (non-derived) metric.
    pub fn measured(name: impl Into<String>) -> Self {
        Metric {
            name: name.into(),
            derived: false,
        }
    }

    /// A derived metric.
    pub fn derived(name: impl Into<String>) -> Self {
        Metric {
            name: name.into(),
            derived: true,
        }
    }
}

/// An instrumented code region. Regions form a call tree encoded in their
/// names with [`CALLPATH_SEPARATOR`], as TAU does for callpath profiles.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Full (possibly callpath) name.
    pub name: String,
    /// Optional source-region kind tag ("procedure", "loop", "barrier",
    /// "callsite", ...) supplied by the instrumentation layer.
    pub kind: Option<String>,
}

impl Event {
    /// Creates a plain event.
    pub fn new(name: impl Into<String>) -> Self {
        Event {
            name: name.into(),
            kind: None,
        }
    }

    /// Creates an event with a region-kind tag.
    pub fn with_kind(name: impl Into<String>, kind: impl Into<String>) -> Self {
        Event {
            name: name.into(),
            kind: Some(kind.into()),
        }
    }

    /// Leaf (rightmost) component of the callpath name.
    pub fn leaf(&self) -> &str {
        self.name
            .rsplit(CALLPATH_SEPARATOR)
            .next()
            .unwrap_or(&self.name)
    }

    /// Callpath parent name (everything before the last separator), or
    /// `None` for a root event.
    pub fn parent_name(&self) -> Option<&str> {
        self.name
            .rfind(CALLPATH_SEPARATOR)
            .map(|idx| &self.name[..idx])
    }

    /// Whether this event is an ancestor of `other` in the call tree
    /// (proper prefix of its callpath).
    pub fn is_ancestor_of(&self, other: &Event) -> bool {
        other.name.len() > self.name.len()
            && other.name.starts_with(&self.name)
            && other.name[self.name.len()..].starts_with(CALLPATH_SEPARATOR)
    }
}

/// One cell of a profile: the measurements of one event, for one metric,
/// on one thread.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Measurement {
    /// Inclusive value (includes children).
    pub inclusive: f64,
    /// Exclusive value (excludes children).
    pub exclusive: f64,
    /// Number of invocations of the region.
    pub calls: f64,
    /// Number of child invocations made from the region.
    pub subcalls: f64,
}

impl Measurement {
    /// A measurement with equal inclusive/exclusive value and one call.
    pub fn leaf(value: f64) -> Self {
        Measurement {
            inclusive: value,
            exclusive: value,
            calls: 1.0,
            subcalls: 0.0,
        }
    }
}

/// The measurement container of a trial: a dense
/// `event × metric × thread` array.
///
/// Storage is a flat arena with event-major stride
/// `(event * n_metrics + metric) * n_threads + thread`: one
/// event/metric column occupies `n_threads` adjacent cells, and one
/// event's block of `n_metrics * n_threads` cells is contiguous too.
/// Name lookups ([`Profile::metric_id`], [`Profile::event_id`]) are
/// O(1) through interned side tables kept in sync by the mutating
/// methods.
#[derive(Debug, Clone)]
pub struct Profile {
    metrics: Vec<Metric>,
    events: Vec<Event>,
    threads: Vec<ThreadId>,
    /// Flat arena; see the struct docs for the stride.
    data: Vec<Measurement>,
    metric_index: HashMap<String, u32>,
    event_index: HashMap<String, u32>,
}

// The intern tables are derivable from `metrics`/`events`, so equality
// (like the wire format) covers only the four logical fields.
impl PartialEq for Profile {
    fn eq(&self, other: &Self) -> bool {
        self.metrics == other.metrics
            && self.events == other.events
            && self.threads == other.threads
            && self.data == other.data
    }
}

impl Profile {
    /// Creates an empty profile over the given thread set.
    pub fn new(threads: Vec<ThreadId>) -> Self {
        Profile {
            metrics: Vec::new(),
            events: Vec::new(),
            threads,
            data: Vec::new(),
            metric_index: HashMap::new(),
            event_index: HashMap::new(),
        }
    }

    /// Creates an empty profile with arena capacity reserved for
    /// `events × metrics` columns, so bulk loads append without
    /// reallocating.
    pub fn with_capacity(threads: Vec<ThreadId>, events: usize, metrics: usize) -> Self {
        let mut p = Profile::new(threads);
        p.metrics.reserve(metrics);
        p.events.reserve(events);
        p.data.reserve(events * metrics * p.threads.len());
        p
    }

    /// Assembles a profile from complete parts: the three axis vectors
    /// plus a flat arena in the canonical
    /// `(event * n_metrics + metric) * n_threads + thread` order.
    ///
    /// Validates the arena length against the axes and rejects
    /// duplicate metric/event names, then builds the interned lookup
    /// tables. This is the single entry point for bulk loaders (the
    /// JSON deserializer and the PDB1 binary reader) — validation
    /// lives here so every format enforces the same invariants.
    pub fn from_parts(
        metrics: Vec<Metric>,
        events: Vec<Event>,
        threads: Vec<ThreadId>,
        data: Vec<Measurement>,
    ) -> Result<Self> {
        let expected = events.len() * metrics.len() * threads.len();
        if data.len() != expected {
            return Err(DmfError::Incompatible(format!(
                "profile arena has {} cells, dimensions require {expected} \
                 ({} events x {} metrics x {} threads)",
                data.len(),
                events.len(),
                metrics.len(),
                threads.len()
            )));
        }
        let mut metric_index = HashMap::with_capacity(metrics.len());
        for (i, m) in metrics.iter().enumerate() {
            if metric_index.insert(m.name.clone(), i as u32).is_some() {
                return Err(DmfError::Duplicate {
                    kind: "metric",
                    name: m.name.clone(),
                });
            }
        }
        let mut event_index = HashMap::with_capacity(events.len());
        for (i, e) in events.iter().enumerate() {
            if event_index.insert(e.name.clone(), i as u32).is_some() {
                return Err(DmfError::Duplicate {
                    kind: "event",
                    name: e.name.clone(),
                });
            }
        }
        Ok(Profile {
            metrics,
            events,
            threads,
            data,
            metric_index,
            event_index,
        })
    }

    /// All metrics.
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// All events.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// All threads.
    pub fn threads(&self) -> &[ThreadId] {
        &self.threads
    }

    /// Number of threads.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Number of metrics.
    pub fn metric_count(&self) -> usize {
        self.metrics.len()
    }

    /// Number of events.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Arena offset of a cell; see the struct docs for the stride.
    #[inline]
    fn offset(&self, event: usize, metric: usize, thread: usize) -> usize {
        (event * self.metrics.len() + metric) * self.threads.len() + thread
    }

    /// Looks up a metric id by name in O(1).
    pub fn metric_id(&self, name: &str) -> Option<MetricId> {
        self.metric_index.get(name).map(|&i| MetricId(i))
    }

    /// Looks up an event id by full name in O(1).
    pub fn event_id(&self, name: &str) -> Option<EventId> {
        self.event_index.get(name).map(|&i| EventId(i))
    }

    /// Metric by id.
    pub fn metric(&self, id: MetricId) -> &Metric {
        &self.metrics[id.0 as usize]
    }

    /// Event by id.
    pub fn event(&self, id: EventId) -> &Event {
        &self.events[id.0 as usize]
    }

    /// Adds a metric, initialising its cells to zero for every existing
    /// event. Fails on duplicates.
    ///
    /// This is the expensive mutation: the arena is rebuilt to widen
    /// every event block by one column. Loaders that know their metric
    /// set up front should add all metrics before the bulk of events.
    pub fn add_metric(&mut self, metric: Metric) -> Result<MetricId> {
        if self.metric_index.contains_key(&metric.name) {
            return Err(DmfError::Duplicate {
                kind: "metric",
                name: metric.name,
            });
        }
        let nm = self.metrics.len();
        let nt = self.threads.len();
        let ne = self.events.len();
        if ne > 0 && nt > 0 {
            let mut widened = Vec::with_capacity(ne * (nm + 1) * nt);
            if nm == 0 {
                widened.resize(ne * nt, Measurement::default());
            } else {
                for block in self.data.chunks_exact(nm * nt) {
                    widened.extend_from_slice(block);
                    widened.resize(widened.len() + nt, Measurement::default());
                }
            }
            self.data = widened;
        }
        self.metric_index.insert(metric.name.clone(), nm as u32);
        self.metrics.push(metric);
        Ok(MetricId(nm as u32))
    }

    /// Adds an event, initialising its cells to zero for every metric.
    /// Fails on duplicates. Amortised O(1) in the arena: the new block
    /// is appended at the end.
    pub fn add_event(&mut self, event: Event) -> Result<EventId> {
        if self.event_index.contains_key(&event.name) {
            return Err(DmfError::Duplicate {
                kind: "event",
                name: event.name,
            });
        }
        let ne = self.events.len();
        let block = self.metrics.len() * self.threads.len();
        self.data
            .resize(self.data.len() + block, Measurement::default());
        self.event_index.insert(event.name.clone(), ne as u32);
        self.events.push(event);
        Ok(EventId(ne as u32))
    }

    /// Fault-injection support (the `faultsim` crate): overwrites a
    /// metric's name **without** updating the interned lookup table,
    /// leaving the index stale and possibly creating duplicate names —
    /// the inconsistency a hand-edited or bit-rotted store exhibits.
    /// Analyses must tolerate profiles in this state; normal code adds
    /// metrics through [`Profile::add_metric`].
    pub fn corrupt_metric_name(&mut self, id: MetricId, name: impl Into<String>) {
        if let Some(m) = self.metrics.get_mut(id.0 as usize) {
            m.name = name.into();
        }
    }

    /// Fault-injection counterpart of [`Profile::corrupt_metric_name`]
    /// for event names.
    pub fn corrupt_event_name(&mut self, id: EventId, name: impl Into<String>) {
        if let Some(e) = self.events.get_mut(id.0 as usize) {
            e.name = name.into();
        }
    }

    /// Returns the measurement cell, if all indices are in range.
    pub fn get(&self, event: EventId, metric: MetricId, thread: usize) -> Option<&Measurement> {
        if event.0 as usize >= self.events.len()
            || metric.0 as usize >= self.metrics.len()
            || thread >= self.threads.len()
        {
            return None;
        }
        self.data
            .get(self.offset(event.0 as usize, metric.0 as usize, thread))
    }

    /// Mutable access to a measurement cell.
    pub fn get_mut(
        &mut self,
        event: EventId,
        metric: MetricId,
        thread: usize,
    ) -> Option<&mut Measurement> {
        if event.0 as usize >= self.events.len()
            || metric.0 as usize >= self.metrics.len()
            || thread >= self.threads.len()
        {
            return None;
        }
        let idx = self.offset(event.0 as usize, metric.0 as usize, thread);
        self.data.get_mut(idx)
    }

    /// Sets a measurement cell. Out-of-range indices are an error.
    pub fn set(
        &mut self,
        event: EventId,
        metric: MetricId,
        thread: usize,
        m: Measurement,
    ) -> Result<()> {
        match self.get_mut(event, metric, thread) {
            Some(cell) => {
                *cell = m;
                Ok(())
            }
            None => Err(DmfError::NotFound {
                kind: "profile cell",
                name: format!("event {event:?} metric {metric:?} thread {thread}"),
            }),
        }
    }

    /// Zero-copy per-thread column for one event/metric: `n_threads`
    /// contiguous cells straight out of the arena.
    pub fn column(&self, event: EventId, metric: MetricId) -> &[Measurement] {
        let start = self.offset(event.0 as usize, metric.0 as usize, 0);
        &self.data[start..start + self.threads.len()]
    }

    /// Mutable counterpart of [`Profile::column`].
    pub fn column_mut(&mut self, event: EventId, metric: MetricId) -> &mut [Measurement] {
        let start = self.offset(event.0 as usize, metric.0 as usize, 0);
        let nt = self.threads.len();
        &mut self.data[start..start + nt]
    }

    /// Zero-copy block of one event's cells across all metrics and
    /// threads: `n_metrics * n_threads` contiguous cells, metric-major.
    pub fn event_slice(&self, event: EventId) -> &[Measurement] {
        let block = self.metrics.len() * self.threads.len();
        let start = event.0 as usize * block;
        &self.data[start..start + block]
    }

    /// Strided view of one metric on one thread across every event, in
    /// event order. (The stride makes this a walk, not a slice.)
    pub fn thread_slice(
        &self,
        metric: MetricId,
        thread: usize,
    ) -> impl Iterator<Item = (EventId, &Measurement)> + '_ {
        let stride = self.metrics.len() * self.threads.len();
        let first = metric.0 as usize * self.threads.len() + thread;
        self.data
            .iter()
            .skip(first)
            .step_by(stride.max(1))
            .take(self.events.len())
            .enumerate()
            .map(|(e, m)| (EventId(e as u32), m))
    }

    /// Iterates every event/metric column as a zero-copy slice. This is
    /// the replacement for the old triple index loop: callers get each
    /// contiguous column exactly once, in arena order.
    pub fn columns(&self) -> impl Iterator<Item = (EventId, MetricId, &[Measurement])> + '_ {
        let nm = self.metrics.len();
        let nt = self.threads.len();
        self.data
            .chunks_exact(nt.max(1))
            .enumerate()
            .map(move |(i, col)| {
                (
                    EventId((i / nm.max(1)) as u32),
                    MetricId((i % nm.max(1)) as u32),
                    col,
                )
            })
    }

    /// Mutable counterpart of [`Profile::columns`]; columns are disjoint
    /// so the borrow is safe to split.
    pub fn columns_mut(
        &mut self,
    ) -> impl Iterator<Item = (EventId, MetricId, &mut [Measurement])> + '_ {
        let nm = self.metrics.len();
        let nt = self.threads.len();
        self.data
            .chunks_exact_mut(nt.max(1))
            .enumerate()
            .map(move |(i, col)| {
                (
                    EventId((i / nm.max(1)) as u32),
                    MetricId((i % nm.max(1)) as u32),
                    col,
                )
            })
    }

    /// Iterates every cell with its coordinates, in arena order.
    pub fn cells(&self) -> impl Iterator<Item = (EventId, MetricId, usize, &Measurement)> + '_ {
        self.columns()
            .flat_map(|(e, m, col)| col.iter().enumerate().map(move |(t, c)| (e, m, t, c)))
    }

    /// The whole arena, read-only. Exposed for benchmarks and bulk
    /// numeric sweeps; coordinate-aware callers should prefer
    /// [`Profile::columns`].
    pub fn arena(&self) -> &[Measurement] {
        &self.data
    }

    /// Per-thread slice of measurements for one event/metric.
    /// (Original name of [`Profile::column`], kept for callers that
    /// read better with it.)
    pub fn across_threads(&self, event: EventId, metric: MetricId) -> &[Measurement] {
        self.column(event, metric)
    }

    /// Exclusive values across threads as a fresh vector.
    pub fn exclusive_across_threads(&self, event: EventId, metric: MetricId) -> Vec<f64> {
        self.across_threads(event, metric)
            .iter()
            .map(|m| m.exclusive)
            .collect()
    }

    /// Inclusive values across threads as a fresh vector.
    pub fn inclusive_across_threads(&self, event: EventId, metric: MetricId) -> Vec<f64> {
        self.across_threads(event, metric)
            .iter()
            .map(|m| m.inclusive)
            .collect()
    }

    /// Mean of exclusive values across threads.
    pub fn mean_exclusive(&self, event: EventId, metric: MetricId) -> f64 {
        let v = self.across_threads(event, metric);
        if v.is_empty() {
            return 0.0;
        }
        v.iter().map(|m| m.exclusive).sum::<f64>() / v.len() as f64
    }

    /// Mean of inclusive values across threads.
    pub fn mean_inclusive(&self, event: EventId, metric: MetricId) -> f64 {
        let v = self.across_threads(event, metric);
        if v.is_empty() {
            return 0.0;
        }
        v.iter().map(|m| m.inclusive).sum::<f64>() / v.len() as f64
    }

    /// Maximum inclusive value across threads (the critical-path reading of
    /// a region's cost in a fork-join program).
    pub fn max_inclusive(&self, event: EventId, metric: MetricId) -> f64 {
        self.across_threads(event, metric)
            .iter()
            .map(|m| m.inclusive)
            .fold(0.0, f64::max)
    }

    /// The event id of [`MAIN_EVENT`], if present.
    pub fn main_event(&self) -> Option<EventId> {
        self.event_id(MAIN_EVENT)
    }
}

// The wire format predates the flat arena: `data` is serialized as the
// original nested `[event][metric][thread]` arrays, so repositories
// written by older builds load unchanged and new files remain readable
// by them. Only the in-memory layout changed.
impl Serialize for Profile {
    fn to_value(&self) -> serde::Value {
        let events: Vec<serde::Value> = (0..self.events.len())
            .map(|e| {
                serde::Value::Array(
                    (0..self.metrics.len())
                        .map(|m| {
                            serde::Value::Array(
                                self.column(EventId(e as u32), MetricId(m as u32))
                                    .iter()
                                    .map(Serialize::to_value)
                                    .collect(),
                            )
                        })
                        .collect(),
                )
            })
            .collect();
        serde::Value::Object(vec![
            ("metrics".to_string(), self.metrics.to_value()),
            ("events".to_string(), self.events.to_value()),
            ("threads".to_string(), self.threads.to_value()),
            ("data".to_string(), serde::Value::Array(events)),
        ])
    }
}

impl Deserialize for Profile {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let pairs = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("Profile: expected object"))?;
        let field = |name: &str| {
            serde::object_get(pairs, name)
                .ok_or_else(|| serde::Error::custom(format!("Profile: missing field {name}")))
        };
        let metrics = Vec::<Metric>::from_value(field("metrics")?)?;
        let events = Vec::<Event>::from_value(field("events")?)?;
        let threads = Vec::<ThreadId>::from_value(field("threads")?)?;
        let nested = Vec::<Vec<Vec<Measurement>>>::from_value(field("data")?)?;

        let (ne, nm, nt) = (events.len(), metrics.len(), threads.len());
        if nested.len() != ne {
            return Err(serde::Error::custom(format!(
                "Profile: {} events but {} data blocks",
                ne,
                nested.len()
            )));
        }
        let mut data = Vec::with_capacity(ne * nm * nt);
        for (e, block) in nested.iter().enumerate() {
            if block.len() != nm {
                return Err(serde::Error::custom(format!(
                    "Profile: event {e} has {} metric rows, expected {nm}",
                    block.len()
                )));
            }
            for (m, col) in block.iter().enumerate() {
                if col.len() != nt {
                    return Err(serde::Error::custom(format!(
                        "Profile: event {e} metric {m} has {} cells, expected {nt}",
                        col.len()
                    )));
                }
                data.extend_from_slice(col);
            }
        }

        Profile::from_parts(metrics, events, threads, data)
            .map_err(|e| serde::Error::custom(format!("Profile: {e}")))
    }
}

/// One experimental run: a profile plus its identity and metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trial {
    /// Trial name, unique within its experiment (e.g. `"1_8"` for
    /// 1 node × 8 threads).
    pub name: String,
    /// The measurement data.
    pub profile: Profile,
    /// Performance context: machine, schedule, problem size, ...
    pub metadata: Metadata,
}

impl Trial {
    /// Creates a trial around an existing profile.
    pub fn new(name: impl Into<String>, profile: Profile) -> Self {
        Trial {
            name: name.into(),
            profile,
            metadata: Metadata::new(),
        }
    }
}

/// Incremental builder for trials, used by the simulator's profiling layer
/// and the format readers.
#[derive(Debug, Clone)]
pub struct TrialBuilder {
    name: String,
    profile: Profile,
    metadata: Metadata,
}

impl TrialBuilder {
    /// Starts a trial over `n` flat threads `(0,0,0) .. (0,0,n-1)`.
    pub fn with_flat_threads(name: impl Into<String>, n: usize) -> Self {
        TrialBuilder {
            name: name.into(),
            profile: Profile::new((0..n as u32).map(ThreadId::flat).collect()),
            metadata: Metadata::new(),
        }
    }

    /// Starts a trial over `n` MPI ranks `(0,0,0) .. (n-1,0,0)`.
    pub fn with_ranks(name: impl Into<String>, n: usize) -> Self {
        TrialBuilder {
            name: name.into(),
            profile: Profile::new((0..n as u32).map(ThreadId::rank).collect()),
            metadata: Metadata::new(),
        }
    }

    /// Starts a trial over an explicit thread list.
    pub fn with_threads(name: impl Into<String>, threads: Vec<ThreadId>) -> Self {
        TrialBuilder {
            name: name.into(),
            profile: Profile::new(threads),
            metadata: Metadata::new(),
        }
    }

    /// Adds (or reuses) a measured metric and returns its id.
    pub fn metric(&mut self, name: &str) -> MetricId {
        match self.profile.metric_id(name) {
            Some(id) => id,
            None => self
                .profile
                .add_metric(Metric::measured(name))
                .expect("checked for duplicate"),
        }
    }

    /// Adds (or reuses) an event and returns its id.
    pub fn event(&mut self, name: &str) -> EventId {
        match self.profile.event_id(name) {
            Some(id) => id,
            None => self
                .profile
                .add_event(Event::new(name))
                .expect("checked for duplicate"),
        }
    }

    /// Adds (or reuses) an event with a region-kind tag.
    pub fn event_with_kind(&mut self, name: &str, kind: &str) -> EventId {
        match self.profile.event_id(name) {
            Some(id) => id,
            None => self
                .profile
                .add_event(Event::with_kind(name, kind))
                .expect("checked for duplicate"),
        }
    }

    /// Writes one measurement cell.
    pub fn set(&mut self, event: EventId, metric: MetricId, thread: usize, m: Measurement) {
        self.profile
            .set(event, metric, thread, m)
            .expect("builder indices are construction-time valid");
    }

    /// Accumulates into one measurement cell (adds values and calls).
    pub fn accumulate(&mut self, event: EventId, metric: MetricId, thread: usize, m: Measurement) {
        if let Some(cell) = self.profile.get_mut(event, metric, thread) {
            cell.inclusive += m.inclusive;
            cell.exclusive += m.exclusive;
            cell.calls += m.calls;
            cell.subcalls += m.subcalls;
        }
    }

    /// Sets a metadata field.
    pub fn meta(&mut self, key: &str, value: impl Into<crate::MetaValue>) -> &mut Self {
        self.metadata.set(key, value);
        self
    }

    /// Read access to the profile under construction (name/id lookups
    /// for incremental consumers, e.g. the simulator's flush journal).
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Finishes the trial.
    pub fn build(self) -> Trial {
        Trial {
            name: self.name,
            profile: self.profile,
            metadata: self.metadata,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> Profile {
        let mut p = Profile::new(vec![ThreadId::flat(0), ThreadId::flat(1)]);
        let time = p.add_metric(Metric::measured("TIME")).unwrap();
        let main = p.add_event(Event::new("main")).unwrap();
        let inner = p.add_event(Event::new("main => loop")).unwrap();
        p.set(
            main,
            time,
            0,
            Measurement {
                inclusive: 10.0,
                exclusive: 4.0,
                calls: 1.0,
                subcalls: 1.0,
            },
        )
        .unwrap();
        p.set(
            main,
            time,
            1,
            Measurement {
                inclusive: 12.0,
                exclusive: 6.0,
                calls: 1.0,
                subcalls: 1.0,
            },
        )
        .unwrap();
        p.set(inner, time, 0, Measurement::leaf(6.0)).unwrap();
        p.set(inner, time, 1, Measurement::leaf(6.0)).unwrap();
        p
    }

    #[test]
    fn metric_and_event_lookup() {
        let p = sample_profile();
        assert_eq!(p.metric_id("TIME"), Some(MetricId(0)));
        assert_eq!(p.metric_id("MISSING"), None);
        assert_eq!(p.event_id("main"), Some(EventId(0)));
        assert_eq!(p.main_event(), Some(EventId(0)));
        assert_eq!(p.event(EventId(1)).leaf(), "loop");
    }

    #[test]
    fn duplicate_metric_rejected() {
        let mut p = sample_profile();
        assert!(matches!(
            p.add_metric(Metric::measured("TIME")),
            Err(DmfError::Duplicate { kind: "metric", .. })
        ));
    }

    #[test]
    fn duplicate_event_rejected() {
        let mut p = sample_profile();
        assert!(matches!(
            p.add_event(Event::new("main")),
            Err(DmfError::Duplicate { kind: "event", .. })
        ));
    }

    #[test]
    fn adding_metric_resizes_existing_events() {
        let mut p = sample_profile();
        let cycles = p.add_metric(Metric::measured("CPU_CYCLES")).unwrap();
        let main = p.event_id("main").unwrap();
        assert_eq!(p.get(main, cycles, 0), Some(&Measurement::default()));
        assert_eq!(p.get(main, cycles, 1), Some(&Measurement::default()));
    }

    #[test]
    fn across_threads_views() {
        let p = sample_profile();
        let time = p.metric_id("TIME").unwrap();
        let main = p.event_id("main").unwrap();
        assert_eq!(p.exclusive_across_threads(main, time), vec![4.0, 6.0]);
        assert_eq!(p.inclusive_across_threads(main, time), vec![10.0, 12.0]);
        assert_eq!(p.mean_exclusive(main, time), 5.0);
        assert_eq!(p.mean_inclusive(main, time), 11.0);
        assert_eq!(p.max_inclusive(main, time), 12.0);
    }

    #[test]
    fn callpath_relationships() {
        let main = Event::new("main");
        let outer = Event::new("main => outer");
        let inner = Event::new("main => outer => inner");
        assert!(main.is_ancestor_of(&outer));
        assert!(main.is_ancestor_of(&inner));
        assert!(outer.is_ancestor_of(&inner));
        assert!(!inner.is_ancestor_of(&outer));
        assert!(!outer.is_ancestor_of(&outer));
        assert_eq!(inner.parent_name(), Some("main => outer"));
        assert_eq!(main.parent_name(), None);
        assert_eq!(inner.leaf(), "inner");
    }

    #[test]
    fn prefix_but_not_path_component_is_not_ancestor() {
        let a = Event::new("main");
        let b = Event::new("mainline"); // name prefix, not a callpath child
        assert!(!a.is_ancestor_of(&b));
    }

    #[test]
    fn out_of_range_set_is_error() {
        let mut p = sample_profile();
        let time = p.metric_id("TIME").unwrap();
        let main = p.event_id("main").unwrap();
        assert!(p.set(main, time, 99, Measurement::default()).is_err());
        assert!(p.get(EventId(42), time, 0).is_none());
    }

    #[test]
    fn builder_roundtrip() {
        let mut b = TrialBuilder::with_flat_threads("1_4", 4);
        let t = b.metric("TIME");
        let e = b.event("main");
        for th in 0..4 {
            b.set(e, t, th, Measurement::leaf(th as f64));
        }
        b.accumulate(e, t, 0, Measurement::leaf(1.0));
        b.meta("schedule", "dynamic");
        let trial = b.build();
        assert_eq!(trial.name, "1_4");
        assert_eq!(trial.profile.thread_count(), 4);
        let cell = trial.profile.get(e, t, 0).unwrap();
        assert_eq!(cell.exclusive, 1.0);
        assert_eq!(cell.calls, 2.0);
        assert_eq!(trial.metadata.get_str("schedule"), Some("dynamic"));
    }

    #[test]
    fn builder_reuses_ids() {
        let mut b = TrialBuilder::with_ranks("mpi", 2);
        let a = b.metric("TIME");
        let a2 = b.metric("TIME");
        assert_eq!(a, a2);
        let e = b.event("main");
        let e2 = b.event("main");
        assert_eq!(e, e2);
    }

    #[test]
    fn thread_id_display_and_constructors() {
        assert_eq!(ThreadId::flat(3).to_string(), "0.0.3");
        assert_eq!(ThreadId::rank(5).to_string(), "5.0.0");
    }

    #[test]
    fn profile_serde_roundtrip() {
        let p = sample_profile();
        let json = serde_json::to_string(&p).unwrap();
        let back: Profile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn serde_wire_format_is_nested_v1() {
        // The arena must not leak into the JSON: `data` stays the
        // nested [event][metric][thread] arrays of the original layout.
        let p = sample_profile();
        let json = serde_json::to_string(&p).unwrap();
        assert!(json.contains("\"data\":[[["));
        assert!(json.starts_with("{\"metrics\":["));
    }

    #[test]
    fn column_views_are_contiguous_and_correct() {
        let p = sample_profile();
        let time = p.metric_id("TIME").unwrap();
        let main = p.event_id("main").unwrap();
        let inner = p.event_id("main => loop").unwrap();

        let col = p.column(main, time);
        assert_eq!(col.len(), 2);
        assert_eq!(col[0].exclusive, 4.0);
        assert_eq!(col[1].exclusive, 6.0);

        // event_slice covers all metrics for one event contiguously.
        assert_eq!(p.event_slice(inner), p.column(inner, time));

        // thread_slice walks one (metric, thread) lane across events.
        let lane: Vec<f64> = p.thread_slice(time, 1).map(|(_, m)| m.exclusive).collect();
        assert_eq!(lane, vec![6.0, 6.0]);
    }

    #[test]
    fn columns_iterator_covers_every_column_once() {
        let mut p = sample_profile();
        p.add_metric(Metric::measured("CPU_CYCLES")).unwrap();
        let seen: Vec<(u32, u32)> = p.columns().map(|(e, m, _)| (e.0, m.0)).collect();
        assert_eq!(seen, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
        for (e, m, col) in p.columns() {
            assert_eq!(col, p.column(e, m));
        }
        assert_eq!(p.cells().count(), 2 * 2 * 2);
    }

    #[test]
    fn columns_mut_writes_through() {
        let mut p = sample_profile();
        for (_, _, col) in p.columns_mut() {
            for cell in col {
                cell.exclusive *= 2.0;
            }
        }
        let time = p.metric_id("TIME").unwrap();
        let main = p.event_id("main").unwrap();
        assert_eq!(p.get(main, time, 0).unwrap().exclusive, 8.0);
    }

    #[test]
    fn add_metric_preserves_existing_cells() {
        let mut p = sample_profile();
        let time = p.metric_id("TIME").unwrap();
        let main = p.event_id("main").unwrap();
        let before = *p.get(main, time, 1).unwrap();
        let cyc = p.add_metric(Metric::measured("CPU_CYCLES")).unwrap();
        assert_eq!(p.get(main, time, 1), Some(&before));
        assert_eq!(p.get(main, cyc, 1), Some(&Measurement::default()));
        // Columns remain addressable after the rebuild.
        assert_eq!(p.column(main, cyc).len(), 2);
    }

    #[test]
    fn interned_lookup_tracks_mutations() {
        let mut p = Profile::new(vec![ThreadId::flat(0)]);
        assert_eq!(p.metric_id("TIME"), None);
        let t = p.add_metric(Metric::measured("TIME")).unwrap();
        let e = p.add_event(Event::new("alpha")).unwrap();
        assert_eq!(p.metric_id("TIME"), Some(t));
        assert_eq!(p.event_id("alpha"), Some(e));
        for i in 0..100 {
            p.add_event(Event::new(format!("ev{i}"))).unwrap();
        }
        assert_eq!(p.event_id("ev99"), Some(EventId(100)));
        assert_eq!(p.event_count(), 101);
        assert_eq!(p.arena().len(), 101);
    }

    #[test]
    fn empty_profiles_are_serde_stable() {
        let p = Profile::new(Vec::new());
        let json = serde_json::to_string(&p).unwrap();
        let back: Profile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
        assert_eq!(back.columns().count(), 0);
    }

    #[test]
    fn deserialize_rejects_ragged_data() {
        // Two events declared, one data block: dimension mismatch.
        let json = r#"{"metrics":[{"name":"TIME","derived":false}],
            "events":[{"name":"a","kind":null},{"name":"b","kind":null}],
            "threads":[{"node":0,"context":0,"thread":0}],
            "data":[[[{"inclusive":1.0,"exclusive":1.0,"calls":1.0,"subcalls":0.0}]]]}"#;
        assert!(serde_json::from_str::<Profile>(json).is_err());
    }
}
