//! The profile data model: trials, metrics, events, threads, measurements.

use crate::metadata::Metadata;
use crate::{DmfError, Result};
use serde::{Deserialize, Serialize};

/// Name of the conventional top-level event. Analyses that compare a
/// region against the whole program (the paper's `compareEventToMain`)
/// resolve this event.
pub const MAIN_EVENT: &str = "main";

/// Separator used in callpath event names (`main => loop => inner`),
/// following the TAU convention.
pub const CALLPATH_SEPARATOR: &str = " => ";

/// Identifier of a metric within one trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MetricId(pub u32);

/// Identifier of an event (instrumented code region) within one trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EventId(pub u32);

/// TAU-style thread identity: node, context, thread.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct ThreadId {
    /// Node (MPI rank or SMP node index).
    pub node: u32,
    /// Context within the node (usually 0).
    pub context: u32,
    /// Thread within the context (OpenMP thread index).
    pub thread: u32,
}

impl ThreadId {
    /// Shorthand for a flat thread numbering `(0,0,t)`.
    pub fn flat(t: u32) -> Self {
        ThreadId {
            node: 0,
            context: 0,
            thread: t,
        }
    }

    /// Shorthand for MPI-style numbering `(rank,0,0)`.
    pub fn rank(r: u32) -> Self {
        ThreadId {
            node: r,
            context: 0,
            thread: 0,
        }
    }
}

impl std::fmt::Display for ThreadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}.{}", self.node, self.context, self.thread)
    }
}

/// A measured performance metric (e.g. `TIME`, `CPU_CYCLES`,
/// `BACK_END_BUBBLE_ALL`, `L3_MISSES`, or a derived expression).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metric {
    /// Metric name. Derived metrics use parenthesised expressions such as
    /// `(BACK_END_BUBBLE_ALL / CPU_CYCLES)`, matching PerfExplorer.
    pub name: String,
    /// Whether this metric was derived by analysis rather than measured.
    pub derived: bool,
}

impl Metric {
    /// A measured (non-derived) metric.
    pub fn measured(name: impl Into<String>) -> Self {
        Metric {
            name: name.into(),
            derived: false,
        }
    }

    /// A derived metric.
    pub fn derived(name: impl Into<String>) -> Self {
        Metric {
            name: name.into(),
            derived: true,
        }
    }
}

/// An instrumented code region. Regions form a call tree encoded in their
/// names with [`CALLPATH_SEPARATOR`], as TAU does for callpath profiles.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Full (possibly callpath) name.
    pub name: String,
    /// Optional source-region kind tag ("procedure", "loop", "barrier",
    /// "callsite", ...) supplied by the instrumentation layer.
    pub kind: Option<String>,
}

impl Event {
    /// Creates a plain event.
    pub fn new(name: impl Into<String>) -> Self {
        Event {
            name: name.into(),
            kind: None,
        }
    }

    /// Creates an event with a region-kind tag.
    pub fn with_kind(name: impl Into<String>, kind: impl Into<String>) -> Self {
        Event {
            name: name.into(),
            kind: Some(kind.into()),
        }
    }

    /// Leaf (rightmost) component of the callpath name.
    pub fn leaf(&self) -> &str {
        self.name
            .rsplit(CALLPATH_SEPARATOR)
            .next()
            .unwrap_or(&self.name)
    }

    /// Callpath parent name (everything before the last separator), or
    /// `None` for a root event.
    pub fn parent_name(&self) -> Option<&str> {
        self.name
            .rfind(CALLPATH_SEPARATOR)
            .map(|idx| &self.name[..idx])
    }

    /// Whether this event is an ancestor of `other` in the call tree
    /// (proper prefix of its callpath).
    pub fn is_ancestor_of(&self, other: &Event) -> bool {
        other.name.len() > self.name.len()
            && other.name.starts_with(&self.name)
            && other.name[self.name.len()..].starts_with(CALLPATH_SEPARATOR)
    }
}

/// One cell of a profile: the measurements of one event, for one metric,
/// on one thread.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Measurement {
    /// Inclusive value (includes children).
    pub inclusive: f64,
    /// Exclusive value (excludes children).
    pub exclusive: f64,
    /// Number of invocations of the region.
    pub calls: f64,
    /// Number of child invocations made from the region.
    pub subcalls: f64,
}

impl Measurement {
    /// A measurement with equal inclusive/exclusive value and one call.
    pub fn leaf(value: f64) -> Self {
        Measurement {
            inclusive: value,
            exclusive: value,
            calls: 1.0,
            subcalls: 0.0,
        }
    }
}

/// The measurement container of a trial: a dense
/// `event × metric × thread` array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    metrics: Vec<Metric>,
    events: Vec<Event>,
    threads: Vec<ThreadId>,
    /// `data[event][metric][thread]`.
    data: Vec<Vec<Vec<Measurement>>>,
}

impl Profile {
    /// Creates an empty profile over the given thread set.
    pub fn new(threads: Vec<ThreadId>) -> Self {
        Profile {
            metrics: Vec::new(),
            events: Vec::new(),
            threads,
            data: Vec::new(),
        }
    }

    /// All metrics.
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// All events.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// All threads.
    pub fn threads(&self) -> &[ThreadId] {
        &self.threads
    }

    /// Number of threads.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Looks up a metric id by name.
    pub fn metric_id(&self, name: &str) -> Option<MetricId> {
        self.metrics
            .iter()
            .position(|m| m.name == name)
            .map(|i| MetricId(i as u32))
    }

    /// Looks up an event id by full name.
    pub fn event_id(&self, name: &str) -> Option<EventId> {
        self.events
            .iter()
            .position(|e| e.name == name)
            .map(|i| EventId(i as u32))
    }

    /// Metric by id.
    pub fn metric(&self, id: MetricId) -> &Metric {
        &self.metrics[id.0 as usize]
    }

    /// Event by id.
    pub fn event(&self, id: EventId) -> &Event {
        &self.events[id.0 as usize]
    }

    /// Adds a metric, initialising its cells to zero for every existing
    /// event. Fails on duplicates.
    pub fn add_metric(&mut self, metric: Metric) -> Result<MetricId> {
        if self.metric_id(&metric.name).is_some() {
            return Err(DmfError::Duplicate {
                kind: "metric",
                name: metric.name,
            });
        }
        self.metrics.push(metric);
        let nt = self.threads.len();
        for ev in &mut self.data {
            ev.push(vec![Measurement::default(); nt]);
        }
        Ok(MetricId(self.metrics.len() as u32 - 1))
    }

    /// Adds an event, initialising its cells to zero for every metric.
    /// Fails on duplicates.
    pub fn add_event(&mut self, event: Event) -> Result<EventId> {
        if self.event_id(&event.name).is_some() {
            return Err(DmfError::Duplicate {
                kind: "event",
                name: event.name,
            });
        }
        self.events.push(event);
        let nt = self.threads.len();
        self.data
            .push(vec![vec![Measurement::default(); nt]; self.metrics.len()]);
        Ok(EventId(self.events.len() as u32 - 1))
    }

    /// Returns the measurement cell, if all indices are in range.
    pub fn get(&self, event: EventId, metric: MetricId, thread: usize) -> Option<&Measurement> {
        self.data
            .get(event.0 as usize)?
            .get(metric.0 as usize)?
            .get(thread)
    }

    /// Mutable access to a measurement cell.
    pub fn get_mut(
        &mut self,
        event: EventId,
        metric: MetricId,
        thread: usize,
    ) -> Option<&mut Measurement> {
        self.data
            .get_mut(event.0 as usize)?
            .get_mut(metric.0 as usize)?
            .get_mut(thread)
    }

    /// Sets a measurement cell. Out-of-range indices are an error.
    pub fn set(
        &mut self,
        event: EventId,
        metric: MetricId,
        thread: usize,
        m: Measurement,
    ) -> Result<()> {
        match self.get_mut(event, metric, thread) {
            Some(cell) => {
                *cell = m;
                Ok(())
            }
            None => Err(DmfError::NotFound {
                kind: "profile cell",
                name: format!("event {event:?} metric {metric:?} thread {thread}"),
            }),
        }
    }

    /// Per-thread slice of measurements for one event/metric.
    pub fn across_threads(&self, event: EventId, metric: MetricId) -> &[Measurement] {
        &self.data[event.0 as usize][metric.0 as usize]
    }

    /// Exclusive values across threads as a fresh vector.
    pub fn exclusive_across_threads(&self, event: EventId, metric: MetricId) -> Vec<f64> {
        self.across_threads(event, metric)
            .iter()
            .map(|m| m.exclusive)
            .collect()
    }

    /// Inclusive values across threads as a fresh vector.
    pub fn inclusive_across_threads(&self, event: EventId, metric: MetricId) -> Vec<f64> {
        self.across_threads(event, metric)
            .iter()
            .map(|m| m.inclusive)
            .collect()
    }

    /// Mean of exclusive values across threads.
    pub fn mean_exclusive(&self, event: EventId, metric: MetricId) -> f64 {
        let v = self.across_threads(event, metric);
        if v.is_empty() {
            return 0.0;
        }
        v.iter().map(|m| m.exclusive).sum::<f64>() / v.len() as f64
    }

    /// Mean of inclusive values across threads.
    pub fn mean_inclusive(&self, event: EventId, metric: MetricId) -> f64 {
        let v = self.across_threads(event, metric);
        if v.is_empty() {
            return 0.0;
        }
        v.iter().map(|m| m.inclusive).sum::<f64>() / v.len() as f64
    }

    /// Maximum inclusive value across threads (the critical-path reading of
    /// a region's cost in a fork-join program).
    pub fn max_inclusive(&self, event: EventId, metric: MetricId) -> f64 {
        self.across_threads(event, metric)
            .iter()
            .map(|m| m.inclusive)
            .fold(0.0, f64::max)
    }

    /// The event id of [`MAIN_EVENT`], if present.
    pub fn main_event(&self) -> Option<EventId> {
        self.event_id(MAIN_EVENT)
    }
}

/// One experimental run: a profile plus its identity and metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trial {
    /// Trial name, unique within its experiment (e.g. `"1_8"` for
    /// 1 node × 8 threads).
    pub name: String,
    /// The measurement data.
    pub profile: Profile,
    /// Performance context: machine, schedule, problem size, ...
    pub metadata: Metadata,
}

impl Trial {
    /// Creates a trial around an existing profile.
    pub fn new(name: impl Into<String>, profile: Profile) -> Self {
        Trial {
            name: name.into(),
            profile,
            metadata: Metadata::new(),
        }
    }
}

/// Incremental builder for trials, used by the simulator's profiling layer
/// and the format readers.
#[derive(Debug, Clone)]
pub struct TrialBuilder {
    name: String,
    profile: Profile,
    metadata: Metadata,
}

impl TrialBuilder {
    /// Starts a trial over `n` flat threads `(0,0,0) .. (0,0,n-1)`.
    pub fn with_flat_threads(name: impl Into<String>, n: usize) -> Self {
        TrialBuilder {
            name: name.into(),
            profile: Profile::new((0..n as u32).map(ThreadId::flat).collect()),
            metadata: Metadata::new(),
        }
    }

    /// Starts a trial over `n` MPI ranks `(0,0,0) .. (n-1,0,0)`.
    pub fn with_ranks(name: impl Into<String>, n: usize) -> Self {
        TrialBuilder {
            name: name.into(),
            profile: Profile::new((0..n as u32).map(ThreadId::rank).collect()),
            metadata: Metadata::new(),
        }
    }

    /// Starts a trial over an explicit thread list.
    pub fn with_threads(name: impl Into<String>, threads: Vec<ThreadId>) -> Self {
        TrialBuilder {
            name: name.into(),
            profile: Profile::new(threads),
            metadata: Metadata::new(),
        }
    }

    /// Adds (or reuses) a measured metric and returns its id.
    pub fn metric(&mut self, name: &str) -> MetricId {
        match self.profile.metric_id(name) {
            Some(id) => id,
            None => self
                .profile
                .add_metric(Metric::measured(name))
                .expect("checked for duplicate"),
        }
    }

    /// Adds (or reuses) an event and returns its id.
    pub fn event(&mut self, name: &str) -> EventId {
        match self.profile.event_id(name) {
            Some(id) => id,
            None => self
                .profile
                .add_event(Event::new(name))
                .expect("checked for duplicate"),
        }
    }

    /// Adds (or reuses) an event with a region-kind tag.
    pub fn event_with_kind(&mut self, name: &str, kind: &str) -> EventId {
        match self.profile.event_id(name) {
            Some(id) => id,
            None => self
                .profile
                .add_event(Event::with_kind(name, kind))
                .expect("checked for duplicate"),
        }
    }

    /// Writes one measurement cell.
    pub fn set(&mut self, event: EventId, metric: MetricId, thread: usize, m: Measurement) {
        self.profile
            .set(event, metric, thread, m)
            .expect("builder indices are construction-time valid");
    }

    /// Accumulates into one measurement cell (adds values and calls).
    pub fn accumulate(&mut self, event: EventId, metric: MetricId, thread: usize, m: Measurement) {
        if let Some(cell) = self.profile.get_mut(event, metric, thread) {
            cell.inclusive += m.inclusive;
            cell.exclusive += m.exclusive;
            cell.calls += m.calls;
            cell.subcalls += m.subcalls;
        }
    }

    /// Sets a metadata field.
    pub fn meta(&mut self, key: &str, value: impl Into<crate::MetaValue>) -> &mut Self {
        self.metadata.set(key, value);
        self
    }

    /// Finishes the trial.
    pub fn build(self) -> Trial {
        Trial {
            name: self.name,
            profile: self.profile,
            metadata: self.metadata,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> Profile {
        let mut p = Profile::new(vec![ThreadId::flat(0), ThreadId::flat(1)]);
        let time = p.add_metric(Metric::measured("TIME")).unwrap();
        let main = p.add_event(Event::new("main")).unwrap();
        let inner = p
            .add_event(Event::new("main => loop"))
            .unwrap();
        p.set(main, time, 0, Measurement { inclusive: 10.0, exclusive: 4.0, calls: 1.0, subcalls: 1.0 }).unwrap();
        p.set(main, time, 1, Measurement { inclusive: 12.0, exclusive: 6.0, calls: 1.0, subcalls: 1.0 }).unwrap();
        p.set(inner, time, 0, Measurement::leaf(6.0)).unwrap();
        p.set(inner, time, 1, Measurement::leaf(6.0)).unwrap();
        p
    }

    #[test]
    fn metric_and_event_lookup() {
        let p = sample_profile();
        assert_eq!(p.metric_id("TIME"), Some(MetricId(0)));
        assert_eq!(p.metric_id("MISSING"), None);
        assert_eq!(p.event_id("main"), Some(EventId(0)));
        assert_eq!(p.main_event(), Some(EventId(0)));
        assert_eq!(p.event(EventId(1)).leaf(), "loop");
    }

    #[test]
    fn duplicate_metric_rejected() {
        let mut p = sample_profile();
        assert!(matches!(
            p.add_metric(Metric::measured("TIME")),
            Err(DmfError::Duplicate { kind: "metric", .. })
        ));
    }

    #[test]
    fn duplicate_event_rejected() {
        let mut p = sample_profile();
        assert!(matches!(
            p.add_event(Event::new("main")),
            Err(DmfError::Duplicate { kind: "event", .. })
        ));
    }

    #[test]
    fn adding_metric_resizes_existing_events() {
        let mut p = sample_profile();
        let cycles = p.add_metric(Metric::measured("CPU_CYCLES")).unwrap();
        let main = p.event_id("main").unwrap();
        assert_eq!(p.get(main, cycles, 0), Some(&Measurement::default()));
        assert_eq!(p.get(main, cycles, 1), Some(&Measurement::default()));
    }

    #[test]
    fn across_threads_views() {
        let p = sample_profile();
        let time = p.metric_id("TIME").unwrap();
        let main = p.event_id("main").unwrap();
        assert_eq!(p.exclusive_across_threads(main, time), vec![4.0, 6.0]);
        assert_eq!(p.inclusive_across_threads(main, time), vec![10.0, 12.0]);
        assert_eq!(p.mean_exclusive(main, time), 5.0);
        assert_eq!(p.mean_inclusive(main, time), 11.0);
        assert_eq!(p.max_inclusive(main, time), 12.0);
    }

    #[test]
    fn callpath_relationships() {
        let main = Event::new("main");
        let outer = Event::new("main => outer");
        let inner = Event::new("main => outer => inner");
        assert!(main.is_ancestor_of(&outer));
        assert!(main.is_ancestor_of(&inner));
        assert!(outer.is_ancestor_of(&inner));
        assert!(!inner.is_ancestor_of(&outer));
        assert!(!outer.is_ancestor_of(&outer));
        assert_eq!(inner.parent_name(), Some("main => outer"));
        assert_eq!(main.parent_name(), None);
        assert_eq!(inner.leaf(), "inner");
    }

    #[test]
    fn prefix_but_not_path_component_is_not_ancestor() {
        let a = Event::new("main");
        let b = Event::new("mainline"); // name prefix, not a callpath child
        assert!(!a.is_ancestor_of(&b));
    }

    #[test]
    fn out_of_range_set_is_error() {
        let mut p = sample_profile();
        let time = p.metric_id("TIME").unwrap();
        let main = p.event_id("main").unwrap();
        assert!(p.set(main, time, 99, Measurement::default()).is_err());
        assert!(p.get(EventId(42), time, 0).is_none());
    }

    #[test]
    fn builder_roundtrip() {
        let mut b = TrialBuilder::with_flat_threads("1_4", 4);
        let t = b.metric("TIME");
        let e = b.event("main");
        for th in 0..4 {
            b.set(e, t, th, Measurement::leaf(th as f64));
        }
        b.accumulate(e, t, 0, Measurement::leaf(1.0));
        b.meta("schedule", "dynamic");
        let trial = b.build();
        assert_eq!(trial.name, "1_4");
        assert_eq!(trial.profile.thread_count(), 4);
        let cell = trial.profile.get(e, t, 0).unwrap();
        assert_eq!(cell.exclusive, 1.0);
        assert_eq!(cell.calls, 2.0);
        assert_eq!(
            trial.metadata.get_str("schedule"),
            Some("dynamic")
        );
    }

    #[test]
    fn builder_reuses_ids() {
        let mut b = TrialBuilder::with_ranks("mpi", 2);
        let a = b.metric("TIME");
        let a2 = b.metric("TIME");
        assert_eq!(a, a2);
        let e = b.event("main");
        let e2 = b.event("main");
        assert_eq!(e, e2);
    }

    #[test]
    fn thread_id_display_and_constructors() {
        assert_eq!(ThreadId::flat(3).to_string(), "0.0.3");
        assert_eq!(ThreadId::rank(5).to_string(), "5.0.0");
    }

    #[test]
    fn profile_serde_roundtrip() {
        let p = sample_profile();
        let json = serde_json::to_string(&p).unwrap();
        let back: Profile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
