//! Trial metadata — the "performance context" of the paper.
//!
//! PerfDMF and PerfExplorer were "extended for better support of
//! performance context, or metadata, and rules can be constructed which
//! include the metadata to justify conclusions about the performance
//! data". This module stores that context as typed key/value pairs that
//! both analyses and inference rules can read.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A typed metadata value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetaValue {
    /// A free-form string, e.g. machine or schedule names.
    Str(String),
    /// A numeric value, e.g. thread counts or problem sizes.
    Num(f64),
    /// A boolean flag, e.g. `optimized`.
    Bool(bool),
}

impl From<&str> for MetaValue {
    fn from(s: &str) -> Self {
        MetaValue::Str(s.to_string())
    }
}

impl From<String> for MetaValue {
    fn from(s: String) -> Self {
        MetaValue::Str(s)
    }
}

impl From<f64> for MetaValue {
    fn from(n: f64) -> Self {
        MetaValue::Num(n)
    }
}

impl From<i64> for MetaValue {
    fn from(n: i64) -> Self {
        MetaValue::Num(n as f64)
    }
}

impl From<usize> for MetaValue {
    fn from(n: usize) -> Self {
        MetaValue::Num(n as f64)
    }
}

impl From<bool> for MetaValue {
    fn from(b: bool) -> Self {
        MetaValue::Bool(b)
    }
}

impl std::fmt::Display for MetaValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetaValue::Str(s) => write!(f, "{s}"),
            MetaValue::Num(n) => write!(f, "{n}"),
            MetaValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// Ordered map of metadata fields attached to a trial.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Metadata {
    fields: BTreeMap<String, MetaValue>,
}

impl Metadata {
    /// Creates an empty metadata map.
    pub fn new() -> Self {
        Metadata::default()
    }

    /// Sets a field, replacing any previous value.
    pub fn set(&mut self, key: &str, value: impl Into<MetaValue>) {
        self.fields.insert(key.to_string(), value.into());
    }

    /// Raw lookup.
    pub fn get(&self, key: &str) -> Option<&MetaValue> {
        self.fields.get(key)
    }

    /// String lookup; `None` if absent or not a string.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        match self.fields.get(key) {
            Some(MetaValue::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// Numeric lookup; `None` if absent or not numeric.
    pub fn get_num(&self, key: &str) -> Option<f64> {
        match self.fields.get(key) {
            Some(MetaValue::Num(n)) => Some(*n),
            _ => None,
        }
    }

    /// Boolean lookup; `None` if absent or not boolean.
    pub fn get_bool(&self, key: &str) -> Option<bool> {
        match self.fields.get(key) {
            Some(MetaValue::Bool(b)) => Some(*b),
            _ => None,
        }
    }

    /// Iterates fields in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetaValue)> {
        self.fields.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_set_and_get() {
        let mut m = Metadata::new();
        m.set("machine", "Altix 300");
        m.set("threads", 16usize);
        m.set("optimized", false);
        assert_eq!(m.get_str("machine"), Some("Altix 300"));
        assert_eq!(m.get_num("threads"), Some(16.0));
        assert_eq!(m.get_bool("optimized"), Some(false));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn wrong_type_lookup_is_none() {
        let mut m = Metadata::new();
        m.set("threads", 16usize);
        assert_eq!(m.get_str("threads"), None);
        assert_eq!(m.get_bool("threads"), None);
        assert_eq!(m.get_num("missing"), None);
    }

    #[test]
    fn set_replaces() {
        let mut m = Metadata::new();
        m.set("k", 1i64);
        m.set("k", "two");
        assert_eq!(m.get_str("k"), Some("two"));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn iteration_is_key_ordered() {
        let mut m = Metadata::new();
        m.set("b", 2i64);
        m.set("a", 1i64);
        let keys: Vec<&str> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "b"]);
    }

    #[test]
    fn display_values() {
        assert_eq!(MetaValue::from("x").to_string(), "x");
        assert_eq!(MetaValue::from(2.5).to_string(), "2.5");
        assert_eq!(MetaValue::from(true).to_string(), "true");
    }

    #[test]
    fn serde_roundtrip() {
        let mut m = Metadata::new();
        m.set("machine", "Altix 3600");
        m.set("ranks", 512usize);
        let json = serde_json::to_string(&m).unwrap();
        let back: Metadata = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
