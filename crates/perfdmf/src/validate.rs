//! Profile consistency validation.
//!
//! Imported profiles (external formats, hand-edited repositories) can be
//! internally inconsistent in ways that silently corrupt analyses:
//! exclusive values above inclusive ones, children exceeding their
//! parent's inclusive time, negative calls. The validator reports every
//! violation rather than stopping at the first, so a bad import is
//! diagnosed in one pass — the same philosophy as the analysis layer's
//! batched performance assertions.

use crate::model::{EventId, Profile, Trial};
use serde::{Deserialize, Serialize};

/// One consistency violation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// Event involved.
    pub event: String,
    /// Metric involved.
    pub metric: String,
    /// Thread index.
    pub thread: usize,
    /// What is wrong.
    pub kind: ViolationKind,
}

/// Violation categories.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ViolationKind {
    /// `exclusive > inclusive` on one cell.
    ExclusiveExceedsInclusive {
        /// Exclusive value.
        exclusive: f64,
        /// Inclusive value.
        inclusive: f64,
    },
    /// The sum of the direct children's inclusive values exceeds the
    /// parent's inclusive value (beyond tolerance).
    ChildrenExceedParent {
        /// Sum over direct children.
        children_sum: f64,
        /// Parent inclusive value.
        parent: f64,
    },
    /// A negative measurement (time/counters are nonnegative).
    Negative {
        /// The offending field name.
        field: String,
        /// Its value.
        value: f64,
    },
    /// Calls is zero but the cell carries nonzero values.
    ValueWithoutCalls {
        /// The inclusive value present.
        inclusive: f64,
    },
}

/// Relative tolerance for the parent/child check: trace perturbation and
/// rounding legitimately produce small overshoots.
const TOLERANCE: f64 = 1e-9;

/// Validates a profile; returns every violation found (empty = clean).
///
/// Nonnegativity and `exclusive ≤ inclusive` are checked on every
/// metric. The calls and parent/child-containment checks apply to the
/// `TIME` metric only: hardware counters are conventionally attributed
/// at leaves with zero calls and are not rolled up through every
/// intermediate callpath node, so those invariants do not hold for them.
pub fn validate_profile(profile: &Profile) -> Vec<Violation> {
    let mut out = Vec::new();
    // Per-cell checks: one streaming pass over the contiguous columns.
    for (e, m, col) in profile.columns() {
        let event = profile.event(e);
        let metric = profile.metric(m);
        let is_time = metric.name == "TIME";
        for (t, cell) in col.iter().enumerate() {
            for (field, value) in [
                ("inclusive", cell.inclusive),
                ("exclusive", cell.exclusive),
                ("calls", cell.calls),
                ("subcalls", cell.subcalls),
            ] {
                if value < 0.0 {
                    out.push(Violation {
                        event: event.name.clone(),
                        metric: metric.name.clone(),
                        thread: t,
                        kind: ViolationKind::Negative {
                            field: field.to_string(),
                            value,
                        },
                    });
                }
            }
            if cell.exclusive > cell.inclusive * (1.0 + TOLERANCE) + TOLERANCE {
                out.push(Violation {
                    event: event.name.clone(),
                    metric: metric.name.clone(),
                    thread: t,
                    kind: ViolationKind::ExclusiveExceedsInclusive {
                        exclusive: cell.exclusive,
                        inclusive: cell.inclusive,
                    },
                });
            }
            if is_time && cell.calls == 0.0 && cell.inclusive != 0.0 {
                out.push(Violation {
                    event: event.name.clone(),
                    metric: metric.name.clone(),
                    thread: t,
                    kind: ViolationKind::ValueWithoutCalls {
                        inclusive: cell.inclusive,
                    },
                });
            }
        }
    }
    // Parent/child: direct children's inclusive ≤ parent inclusive
    // (TIME only; counters are not rolled up through the callpath).
    // Children resolve their parents through the interned event table.
    let Some(time) = profile.metric_id("TIME") else {
        return out;
    };
    let mut children: Vec<Vec<EventId>> = vec![Vec::new(); profile.event_count()];
    for (i, event) in profile.events().iter().enumerate() {
        if let Some(parent) = event.parent_name() {
            if let Some(pe) = profile.event_id(parent) {
                children[pe.0 as usize].push(EventId(i as u32));
            }
        }
    }
    for (pe, kids) in children.iter().enumerate() {
        if kids.is_empty() {
            continue;
        }
        let parent = profile.event(EventId(pe as u32));
        let parent_col = profile.column(EventId(pe as u32), time);
        for (t, parent_cell) in parent_col.iter().enumerate() {
            let p_incl = parent_cell.inclusive;
            let sum: f64 = kids
                .iter()
                .map(|&ce| profile.column(ce, time)[t].inclusive)
                .sum();
            if sum > p_incl * (1.0 + TOLERANCE) + TOLERANCE {
                out.push(Violation {
                    event: parent.name.clone(),
                    metric: "TIME".to_string(),
                    thread: t,
                    kind: ViolationKind::ChildrenExceedParent {
                        children_sum: sum,
                        parent: p_incl,
                    },
                });
            }
        }
    }
    out
}

/// Validates a trial.
pub fn validate(trial: &Trial) -> Vec<Violation> {
    validate_profile(&trial.profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Measurement, TrialBuilder};

    fn clean_trial() -> Trial {
        let mut b = TrialBuilder::with_flat_threads("t", 2);
        let time = b.metric("TIME");
        let main = b.event("main");
        let k = b.event("main => k");
        for t in 0..2 {
            b.set(
                main,
                time,
                t,
                Measurement {
                    inclusive: 10.0,
                    exclusive: 4.0,
                    calls: 1.0,
                    subcalls: 1.0,
                },
            );
            b.set(
                k,
                time,
                t,
                Measurement {
                    inclusive: 6.0,
                    exclusive: 6.0,
                    calls: 3.0,
                    subcalls: 0.0,
                },
            );
        }
        b.build()
    }

    #[test]
    fn clean_profile_passes() {
        assert!(validate(&clean_trial()).is_empty());
    }

    // Cross-crate validation of *simulated* trials lives in the
    // workspace integration tests (tests/pipeline.rs); this module's
    // tests stay local to hand-built profiles.

    #[test]
    fn detects_exclusive_over_inclusive() {
        let mut t = clean_trial();
        let time = t.profile.metric_id("TIME").unwrap();
        let k = t.profile.event_id("main => k").unwrap();
        t.profile
            .set(
                k,
                time,
                0,
                Measurement {
                    inclusive: 1.0,
                    exclusive: 2.0,
                    calls: 1.0,
                    subcalls: 0.0,
                },
            )
            .unwrap();
        let violations = validate(&t);
        assert!(violations.iter().any(|v| matches!(
            v.kind,
            ViolationKind::ExclusiveExceedsInclusive { exclusive, inclusive }
                if exclusive == 2.0 && inclusive == 1.0
        )));
    }

    #[test]
    fn detects_children_exceeding_parent() {
        let mut t = clean_trial();
        let time = t.profile.metric_id("TIME").unwrap();
        let k = t.profile.event_id("main => k").unwrap();
        t.profile
            .set(
                k,
                time,
                1,
                Measurement {
                    inclusive: 50.0,
                    exclusive: 50.0,
                    calls: 1.0,
                    subcalls: 0.0,
                },
            )
            .unwrap();
        let violations = validate(&t);
        assert!(violations.iter().any(|v| matches!(
            &v.kind,
            ViolationKind::ChildrenExceedParent { children_sum, parent }
                if *children_sum == 50.0 && *parent == 10.0
        ) && v.thread == 1));
    }

    #[test]
    fn detects_negative_and_callless_values() {
        let mut t = clean_trial();
        let time = t.profile.metric_id("TIME").unwrap();
        let main = t.profile.event_id("main").unwrap();
        t.profile
            .set(
                main,
                time,
                0,
                Measurement {
                    inclusive: 10.0,
                    exclusive: -1.0,
                    calls: 1.0,
                    subcalls: 0.0,
                },
            )
            .unwrap();
        let k = t.profile.event_id("main => k").unwrap();
        t.profile
            .set(
                k,
                time,
                1,
                Measurement {
                    inclusive: 5.0,
                    exclusive: 5.0,
                    calls: 0.0,
                    subcalls: 0.0,
                },
            )
            .unwrap();
        let violations = validate(&t);
        assert!(violations.iter().any(|v| matches!(
            &v.kind,
            ViolationKind::Negative { field, value } if field == "exclusive" && *value == -1.0
        )));
        assert!(violations.iter().any(|v| matches!(
            v.kind,
            ViolationKind::ValueWithoutCalls { inclusive } if inclusive == 5.0
        )));
    }

    #[test]
    fn reports_every_violation_not_just_first() {
        let mut t = clean_trial();
        let time = t.profile.metric_id("TIME").unwrap();
        let main = t.profile.event_id("main").unwrap();
        let k = t.profile.event_id("main => k").unwrap();
        t.profile
            .set(
                main,
                time,
                0,
                Measurement {
                    inclusive: 1.0,
                    exclusive: 2.0,
                    calls: 1.0,
                    subcalls: 0.0,
                },
            )
            .unwrap();
        t.profile
            .set(
                k,
                time,
                1,
                Measurement {
                    inclusive: -3.0,
                    exclusive: -3.0,
                    calls: 1.0,
                    subcalls: 0.0,
                },
            )
            .unwrap();
        let violations = validate(&t);
        assert!(violations.len() >= 3, "found: {violations:?}");
    }
}
