//! The profile repository: applications → experiments → trials.
//!
//! This is the PerfDMF "relational database" role: analyses ask for trials
//! by `(application, experiment, trial)` name — exactly the
//! `Utilities.getTrial("Fluid Dynamic", "rib 45", "1_8")` call in the
//! paper's Figure 1 — and analysis results (derived metrics, new trials)
//! can be saved back. Persistence is a JSON document per repository.

use crate::model::Trial;
use crate::{DmfError, Result};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;

/// One experiment: a named group of trials (e.g. a scaling series).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Experiment {
    trials: BTreeMap<String, Trial>,
}

impl Experiment {
    /// Trial names in order.
    pub fn trial_names(&self) -> impl Iterator<Item = &str> {
        self.trials.keys().map(|s| s.as_str())
    }

    /// All trials in name order.
    pub fn trials(&self) -> impl Iterator<Item = &Trial> {
        self.trials.values()
    }

    /// Number of trials.
    pub fn len(&self) -> usize {
        self.trials.len()
    }

    /// Whether the experiment holds no trials.
    pub fn is_empty(&self) -> bool {
        self.trials.is_empty()
    }
}

/// One application: a named group of experiments.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Application {
    experiments: BTreeMap<String, Experiment>,
}

impl Application {
    /// Experiment names in order.
    pub fn experiment_names(&self) -> impl Iterator<Item = &str> {
        self.experiments.keys().map(|s| s.as_str())
    }
}

/// An in-memory profile repository with JSON persistence.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Repository {
    applications: BTreeMap<String, Application>,
}

impl Repository {
    /// Creates an empty repository.
    pub fn new() -> Self {
        Repository::default()
    }

    /// Application names in order.
    pub fn application_names(&self) -> impl Iterator<Item = &str> {
        self.applications.keys().map(|s| s.as_str())
    }

    /// Stores a trial under `app / experiment`, creating the hierarchy as
    /// needed. Fails if a trial with the same name already exists there.
    pub fn add_trial(&mut self, app: &str, experiment: &str, trial: Trial) -> Result<()> {
        let exp = self
            .applications
            .entry(app.to_string())
            .or_default()
            .experiments
            .entry(experiment.to_string())
            .or_default();
        if exp.trials.contains_key(&trial.name) {
            return Err(DmfError::Duplicate {
                kind: "trial",
                name: format!("{app}/{experiment}/{}", trial.name),
            });
        }
        exp.trials.insert(trial.name.clone(), trial);
        Ok(())
    }

    /// Replaces (or inserts) a trial — used when analyses write derived
    /// metrics back to the store.
    pub fn upsert_trial(&mut self, app: &str, experiment: &str, trial: Trial) {
        self.applications
            .entry(app.to_string())
            .or_default()
            .experiments
            .entry(experiment.to_string())
            .or_default()
            .trials
            .insert(trial.name.clone(), trial);
    }

    /// Looks up an application.
    pub fn application(&self, app: &str) -> Result<&Application> {
        self.applications
            .get(app)
            .ok_or_else(|| DmfError::NotFound {
                kind: "application",
                name: app.to_string(),
            })
    }

    /// Looks up an experiment.
    pub fn experiment(&self, app: &str, experiment: &str) -> Result<&Experiment> {
        self.application(app)?
            .experiments
            .get(experiment)
            .ok_or_else(|| DmfError::NotFound {
                kind: "experiment",
                name: format!("{app}/{experiment}"),
            })
    }

    /// Looks up a trial — the `Utilities.getTrial` equivalent.
    pub fn trial(&self, app: &str, experiment: &str, trial: &str) -> Result<&Trial> {
        self.experiment(app, experiment)?
            .trials
            .get(trial)
            .ok_or_else(|| DmfError::NotFound {
                kind: "trial",
                name: format!("{app}/{experiment}/{trial}"),
            })
    }

    /// Mutable trial lookup.
    pub fn trial_mut(&mut self, app: &str, experiment: &str, trial: &str) -> Result<&mut Trial> {
        self.applications
            .get_mut(app)
            .and_then(|a| a.experiments.get_mut(experiment))
            .and_then(|e| e.trials.get_mut(trial))
            .ok_or_else(|| DmfError::NotFound {
                kind: "trial",
                name: format!("{app}/{experiment}/{trial}"),
            })
    }

    /// All trials of an experiment sorted by a numeric metadata field —
    /// the shape scaling studies need (`threads = 1, 2, 4, ...`).
    pub fn trials_sorted_by(
        &self,
        app: &str,
        experiment: &str,
        meta_key: &str,
    ) -> Result<Vec<&Trial>> {
        let exp = self.experiment(app, experiment)?;
        let mut trials: Vec<&Trial> = exp.trials.values().collect();
        trials.sort_by(|a, b| {
            let ka = a.metadata.get_num(meta_key).unwrap_or(f64::MAX);
            let kb = b.metadata.get_num(meta_key).unwrap_or(f64::MAX);
            ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal)
        });
        Ok(trials)
    }

    /// Total number of trials across the repository.
    pub fn trial_count(&self) -> usize {
        self.applications
            .values()
            .flat_map(|a| a.experiments.values())
            .map(|e| e.trials.len())
            .sum()
    }

    /// Serialises the whole repository to a JSON string.
    pub fn to_json(&self) -> Result<String> {
        Ok(serde_json::to_string(self)?)
    }

    /// Restores a repository from its JSON form.
    pub fn from_json(json: &str) -> Result<Self> {
        Ok(serde_json::from_str(json)?)
    }

    /// Saves to a file.
    pub fn save(&self, path: &Path) -> Result<()> {
        std::fs::write(path, self.to_json()?)?;
        Ok(())
    }

    /// Loads from a file.
    pub fn load(path: &Path) -> Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Repository::from_json(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TrialBuilder;

    fn trial(name: &str, threads: usize) -> Trial {
        let mut b = TrialBuilder::with_flat_threads(name, threads);
        let t = b.metric("TIME");
        let e = b.event("main");
        for th in 0..threads {
            b.set(e, t, th, crate::Measurement::leaf(1.0));
        }
        b.meta("threads", threads);
        b.build()
    }

    #[test]
    fn add_and_get_trial() {
        let mut repo = Repository::new();
        repo.add_trial("Fluid Dynamic", "rib 45", trial("1_8", 8))
            .unwrap();
        let t = repo.trial("Fluid Dynamic", "rib 45", "1_8").unwrap();
        assert_eq!(t.profile.thread_count(), 8);
    }

    #[test]
    fn missing_lookups_are_typed_errors() {
        let repo = Repository::new();
        assert!(matches!(
            repo.trial("nope", "x", "y"),
            Err(DmfError::NotFound {
                kind: "application",
                ..
            })
        ));
        let mut repo = Repository::new();
        repo.add_trial("app", "exp", trial("t", 1)).unwrap();
        assert!(matches!(
            repo.trial("app", "other", "t"),
            Err(DmfError::NotFound {
                kind: "experiment",
                ..
            })
        ));
        assert!(matches!(
            repo.trial("app", "exp", "other"),
            Err(DmfError::NotFound { kind: "trial", .. })
        ));
    }

    #[test]
    fn duplicate_trial_rejected_but_upsert_allowed() {
        let mut repo = Repository::new();
        repo.add_trial("a", "e", trial("t", 1)).unwrap();
        assert!(matches!(
            repo.add_trial("a", "e", trial("t", 2)),
            Err(DmfError::Duplicate { .. })
        ));
        repo.upsert_trial("a", "e", trial("t", 4));
        assert_eq!(repo.trial("a", "e", "t").unwrap().profile.thread_count(), 4);
    }

    #[test]
    fn trials_sorted_by_metadata() {
        let mut repo = Repository::new();
        for n in [8usize, 1, 4, 2] {
            repo.add_trial("app", "scaling", trial(&format!("1_{n}"), n))
                .unwrap();
        }
        let sorted = repo.trials_sorted_by("app", "scaling", "threads").unwrap();
        let counts: Vec<usize> = sorted.iter().map(|t| t.profile.thread_count()).collect();
        assert_eq!(counts, vec![1, 2, 4, 8]);
    }

    #[test]
    fn json_roundtrip() {
        let mut repo = Repository::new();
        repo.add_trial("app", "exp", trial("t1", 2)).unwrap();
        repo.add_trial("app", "exp", trial("t2", 4)).unwrap();
        let json = repo.to_json().unwrap();
        let back = Repository::from_json(&json).unwrap();
        assert_eq!(repo, back);
        assert_eq!(back.trial_count(), 2);
    }

    #[test]
    fn save_and_load_file() {
        let mut repo = Repository::new();
        repo.add_trial("app", "exp", trial("t1", 2)).unwrap();
        let dir = std::env::temp_dir().join("perfdmf_repo_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("repo.json");
        repo.save(&path).unwrap();
        let back = Repository::load(&path).unwrap();
        assert_eq!(repo, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_is_parse_error() {
        assert!(Repository::from_json("{ not json").is_err());
    }

    #[test]
    fn enumeration_apis() {
        let mut repo = Repository::new();
        repo.add_trial("b_app", "e1", trial("t", 1)).unwrap();
        repo.add_trial("a_app", "e1", trial("t", 1)).unwrap();
        let names: Vec<&str> = repo.application_names().collect();
        assert_eq!(names, vec!["a_app", "b_app"]);
        let exp = repo.experiment("a_app", "e1").unwrap();
        assert_eq!(exp.len(), 1);
        assert!(!exp.is_empty());
        assert_eq!(exp.trial_names().collect::<Vec<_>>(), vec!["t"]);
    }
}
