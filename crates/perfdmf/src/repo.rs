//! The profile repository: applications → experiments → trials.
//!
//! This is the PerfDMF "relational database" role: analyses ask for trials
//! by `(application, experiment, trial)` name — exactly the
//! `Utilities.getTrial("Fluid Dynamic", "rib 45", "1_8")` call in the
//! paper's Figure 1 — and analysis results (derived metrics, new trials)
//! can be saved back. Persistence is either a JSON document (the
//! interchange format) or a PDB1 binary file (the storage format, see
//! [`crate::pdb1`]); readers autodetect the encoding by magic bytes.

use crate::formats::Diagnostic;
use crate::model::Trial;
use crate::{DmfError, Result};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;

/// On-disk repository encodings.
///
/// JSON stays the interchange format — diffable, editable, readable by
/// older builds. PDB1 is the binary columnar storage format analyses
/// can open at memory bandwidth. Readers never need to be told which
/// one they are looking at: the first four bytes decide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Nested v1 JSON document.
    Json,
    /// Binary columnar PDB1 file.
    Pdb1,
}

impl Format {
    /// Detects the encoding of an in-memory document by magic bytes.
    /// Anything that does not start with the PDB1 magic is treated as
    /// JSON (the pre-binary format had no magic of its own).
    pub fn detect_bytes(bytes: &[u8]) -> Format {
        if bytes.len() >= 4 && bytes[..4] == crate::pdb1::MAGIC {
            Format::Pdb1
        } else {
            Format::Json
        }
    }

    /// Detects the encoding of a file by reading its first bytes.
    pub fn detect(path: &Path) -> Result<Format> {
        use std::io::Read;
        let mut f = std::fs::File::open(path)?;
        let mut magic = [0u8; 4];
        let mut filled = 0;
        while filled < 4 {
            let n = f.read(&mut magic[filled..])?;
            if n == 0 {
                break;
            }
            filled += n;
        }
        Ok(Format::detect_bytes(&magic[..filled]))
    }

    /// Parses a format name as the CLI spells it.
    pub fn from_name(name: &str) -> Option<Format> {
        match name {
            "json" => Some(Format::Json),
            "pdb1" => Some(Format::Pdb1),
            _ => None,
        }
    }

    /// The canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Format::Json => "json",
            Format::Pdb1 => "pdb1",
        }
    }
}

impl std::fmt::Display for Format {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One experiment: a named group of trials (e.g. a scaling series).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Experiment {
    trials: BTreeMap<String, Trial>,
}

impl Experiment {
    /// Trial names in order.
    pub fn trial_names(&self) -> impl Iterator<Item = &str> {
        self.trials.keys().map(|s| s.as_str())
    }

    /// All trials in name order.
    pub fn trials(&self) -> impl Iterator<Item = &Trial> {
        self.trials.values()
    }

    /// Number of trials.
    pub fn len(&self) -> usize {
        self.trials.len()
    }

    /// Whether the experiment holds no trials.
    pub fn is_empty(&self) -> bool {
        self.trials.is_empty()
    }
}

/// One application: a named group of experiments.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Application {
    experiments: BTreeMap<String, Experiment>,
}

impl Application {
    /// Experiment names in order.
    pub fn experiment_names(&self) -> impl Iterator<Item = &str> {
        self.experiments.keys().map(|s| s.as_str())
    }
}

/// An in-memory profile repository with JSON persistence.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Repository {
    applications: BTreeMap<String, Application>,
}

impl Repository {
    /// Creates an empty repository.
    pub fn new() -> Self {
        Repository::default()
    }

    /// Application names in order.
    pub fn application_names(&self) -> impl Iterator<Item = &str> {
        self.applications.keys().map(|s| s.as_str())
    }

    /// Stores a trial under `app / experiment`, creating the hierarchy as
    /// needed. Fails if a trial with the same name already exists there.
    pub fn add_trial(&mut self, app: &str, experiment: &str, trial: Trial) -> Result<()> {
        let exp = self
            .applications
            .entry(app.to_string())
            .or_default()
            .experiments
            .entry(experiment.to_string())
            .or_default();
        if exp.trials.contains_key(&trial.name) {
            return Err(DmfError::Duplicate {
                kind: "trial",
                name: format!("{app}/{experiment}/{}", trial.name),
            });
        }
        exp.trials.insert(trial.name.clone(), trial);
        Ok(())
    }

    /// Replaces (or inserts) a trial — used when analyses write derived
    /// metrics back to the store.
    pub fn upsert_trial(&mut self, app: &str, experiment: &str, trial: Trial) {
        self.applications
            .entry(app.to_string())
            .or_default()
            .experiments
            .entry(experiment.to_string())
            .or_default()
            .trials
            .insert(trial.name.clone(), trial);
    }

    /// Looks up an application.
    pub fn application(&self, app: &str) -> Result<&Application> {
        self.applications
            .get(app)
            .ok_or_else(|| DmfError::NotFound {
                kind: "application",
                name: app.to_string(),
            })
    }

    /// Looks up an experiment.
    pub fn experiment(&self, app: &str, experiment: &str) -> Result<&Experiment> {
        self.application(app)?
            .experiments
            .get(experiment)
            .ok_or_else(|| DmfError::NotFound {
                kind: "experiment",
                name: format!("{app}/{experiment}"),
            })
    }

    /// Looks up a trial — the `Utilities.getTrial` equivalent.
    pub fn trial(&self, app: &str, experiment: &str, trial: &str) -> Result<&Trial> {
        self.experiment(app, experiment)?
            .trials
            .get(trial)
            .ok_or_else(|| DmfError::NotFound {
                kind: "trial",
                name: format!("{app}/{experiment}/{trial}"),
            })
    }

    /// Mutable trial lookup.
    pub fn trial_mut(&mut self, app: &str, experiment: &str, trial: &str) -> Result<&mut Trial> {
        self.applications
            .get_mut(app)
            .and_then(|a| a.experiments.get_mut(experiment))
            .and_then(|e| e.trials.get_mut(trial))
            .ok_or_else(|| DmfError::NotFound {
                kind: "trial",
                name: format!("{app}/{experiment}/{trial}"),
            })
    }

    /// All trials of an experiment sorted by a numeric metadata field —
    /// the shape scaling studies need (`threads = 1, 2, 4, ...`).
    pub fn trials_sorted_by(
        &self,
        app: &str,
        experiment: &str,
        meta_key: &str,
    ) -> Result<Vec<&Trial>> {
        let exp = self.experiment(app, experiment)?;
        let mut trials: Vec<&Trial> = exp.trials.values().collect();
        trials.sort_by(|a, b| {
            let ka = a.metadata.get_num(meta_key).unwrap_or(f64::MAX);
            let kb = b.metadata.get_num(meta_key).unwrap_or(f64::MAX);
            ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal)
        });
        Ok(trials)
    }

    /// Total number of trials across the repository.
    pub fn trial_count(&self) -> usize {
        self.applications
            .values()
            .flat_map(|a| a.experiments.values())
            .map(|e| e.trials.len())
            .sum()
    }

    /// Serialises the whole repository to a JSON string.
    pub fn to_json(&self) -> Result<String> {
        Ok(serde_json::to_string(self)?)
    }

    /// Restores a repository from its JSON form.
    pub fn from_json(json: &str) -> Result<Self> {
        Ok(serde_json::from_str(json)?)
    }

    /// Encodes the whole repository to PDB1 bytes (see [`crate::pdb1`]).
    pub fn to_pdb1(&self) -> Vec<u8> {
        crate::pdb1::write_repository(self)
    }

    /// Restores a repository from PDB1 bytes, strictly: any checksum
    /// mismatch or structural problem is an error.
    pub fn from_pdb1(bytes: &[u8]) -> Result<Self> {
        crate::pdb1::read_repository(bytes)
    }

    /// Decodes raw document bytes, autodetecting the format by magic.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        match Format::detect_bytes(bytes) {
            Format::Pdb1 => Repository::from_pdb1(bytes),
            Format::Json => Repository::from_json(utf8(bytes)?),
        }
    }

    /// Saves to a file as JSON, crash-safely (see
    /// [`Repository::save_as`] for the mechanism and for choosing the
    /// binary format instead).
    pub fn save(&self, path: &Path) -> Result<()> {
        self.save_as(path, Format::Json)
    }

    /// Saves to a file in the given format, crash-safely.
    ///
    /// The document is written to `<path>.tmp`, fsynced, and atomically
    /// renamed over `path`; a crash mid-write leaves the previous file
    /// intact. The previous version (if any) is first preserved as
    /// `<path>.bak`, so [`Repository::load_or_salvage`] always has one
    /// generation to fall back to even if the primary is later
    /// corrupted in place. After the rename the parent directory is
    /// fsynced too — the rename itself is only durable once the
    /// directory entry is on disk.
    pub fn save_as(&self, path: &Path, format: Format) -> Result<()> {
        let bytes = match format {
            Format::Json => self.to_json()?.into_bytes(),
            Format::Pdb1 => self.to_pdb1(),
        };
        write_atomic(path, &bytes)
    }

    /// Loads from a file, strictly: any corruption is an error. The
    /// format (JSON or PDB1) is autodetected by magic bytes.
    pub fn load(path: &Path) -> Result<Self> {
        let bytes = std::fs::read(path)?;
        Repository::from_bytes(&bytes)
    }

    /// Recovers whatever is readable from a possibly corrupt repository
    /// JSON document.
    ///
    /// The document is walked application by application, experiment by
    /// experiment, trial by trial; every subtree that deserialises is
    /// kept and every one that does not is recorded as a typed
    /// [`Diagnostic`] — the same shape the lossy text parsers report.
    /// Fails only if the text is not JSON at all.
    pub fn salvage_json(json: &str) -> Result<(Self, Vec<Diagnostic>)> {
        use serde::Deserialize;

        let jdiag = |message: String| Diagnostic {
            format: "json",
            line: None,
            message,
        };
        let root = serde_json::from_str_value(json)?;
        let mut repo = Repository::new();
        let mut dropped = Vec::new();
        let Some(apps) = root.get("applications").and_then(|v| v.as_object()) else {
            dropped.push(jdiag("no readable applications table".to_string()));
            return Ok((repo, dropped));
        };
        for (app_name, app_val) in apps {
            let Some(exps) = app_val.get("experiments").and_then(|v| v.as_object()) else {
                dropped.push(jdiag(format!("{app_name}: unreadable experiments table")));
                continue;
            };
            for (exp_name, exp_val) in exps {
                let Some(trials) = exp_val.get("trials").and_then(|v| v.as_object()) else {
                    dropped.push(jdiag(format!(
                        "{app_name}/{exp_name}: unreadable trials table"
                    )));
                    continue;
                };
                for (trial_name, trial_val) in trials {
                    match Trial::from_value(trial_val) {
                        Ok(trial) => repo.upsert_trial(app_name, exp_name, trial),
                        Err(e) => {
                            dropped.push(jdiag(format!("{app_name}/{exp_name}/{trial_name}: {e}")));
                        }
                    }
                }
            }
        }
        Ok((repo, dropped))
    }

    /// Recovers whatever is readable from possibly corrupt document
    /// bytes, in either format (autodetected by magic).
    pub fn salvage_bytes(bytes: &[u8]) -> Result<(Self, Vec<Diagnostic>)> {
        match Format::detect_bytes(bytes) {
            Format::Pdb1 => crate::pdb1::salvage(bytes),
            Format::Json => Repository::salvage_json(utf8(bytes)?),
        }
    }

    /// Loads a repository, degrading gracefully: a clean file loads
    /// normally, a corrupt one is salvaged subtree-by-subtree (JSON) or
    /// section-by-section (PDB1), and if the primary is beyond salvage
    /// the `.bak` generation written by [`Repository::save_as`] is
    /// tried. The [`RecoveredRepository`] records which path was taken.
    pub fn load_or_salvage(path: &Path) -> Result<RecoveredRepository> {
        match Repository::load(path) {
            Ok(repo) => Ok(RecoveredRepository {
                repo,
                dropped: Vec::new(),
                used_backup: false,
            }),
            Err(primary_err) => {
                if let Ok(bytes) = std::fs::read(path) {
                    if let Ok((repo, dropped)) = Repository::salvage_bytes(&bytes) {
                        if repo.trial_count() > 0 {
                            return Ok(RecoveredRepository {
                                repo,
                                dropped,
                                used_backup: false,
                            });
                        }
                    }
                }
                match Repository::load(&sibling(path, ".bak")) {
                    Ok(repo) => Ok(RecoveredRepository {
                        repo,
                        dropped: vec![Diagnostic {
                            format: "repo",
                            line: None,
                            message: format!("primary unreadable: {primary_err}"),
                        }],
                        used_backup: true,
                    }),
                    Err(_) => Err(primary_err),
                }
            }
        }
    }
}

/// Outcome of [`Repository::load_or_salvage`].
#[derive(Debug)]
pub struct RecoveredRepository {
    /// The repository that was recovered (possibly partial).
    pub repo: Repository,
    /// Typed diagnostics for every subtree or section that could not
    /// be recovered.
    pub dropped: Vec<Diagnostic>,
    /// Whether the `.bak` generation had to be used.
    pub used_backup: bool,
}

impl RecoveredRepository {
    /// Whether the load was entirely clean.
    pub fn is_clean(&self) -> bool {
        self.dropped.is_empty() && !self.used_backup
    }
}

/// `<path><suffix>` as a sibling file (`repo.json` → `repo.json.tmp`).
fn sibling(path: &Path, suffix: &str) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(suffix);
    path.with_file_name(name)
}

fn utf8(bytes: &[u8]) -> Result<&str> {
    std::str::from_utf8(bytes).map_err(|_| DmfError::Parse {
        format: "json",
        line: None,
        message: "document is not valid UTF-8".to_string(),
    })
}

/// Crash-safe file replacement: write a uniquely named scratch file,
/// fsync, keep the old generation as `<path>.bak`, rename over `path`,
/// then fsync the parent directory so the rename itself is durable.
///
/// The scratch name embeds the process id and a global counter
/// (`<path>.tmp.<pid>.<n>`): two concurrent saves to the same path —
/// the sharded service snapshots from many threads — each write their
/// own scratch file, so neither can truncate or interleave the other's
/// partially written bytes. Whichever rename lands last wins, and at
/// every instant the primary is one complete document.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> Result<()> {
    use std::io::Write;
    use std::sync::atomic::{AtomicU64, Ordering};

    static SCRATCH_COUNTER: AtomicU64 = AtomicU64::new(0);
    let tmp = sibling(
        path,
        &format!(
            ".tmp.{}.{}",
            std::process::id(),
            SCRATCH_COUNTER.fetch_add(1, Ordering::Relaxed)
        ),
    );
    let write = || -> Result<()> {
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        if path.exists() {
            // Versioned backup: the .bak always holds a recently
            // replaced generation. Copying the primary keeps it present
            // at every instant; staging the copy under a unique name
            // and renaming it into place keeps the .bak itself one
            // complete document even when saves race.
            let bak_tmp = sibling(&tmp, ".bak");
            std::fs::copy(path, &bak_tmp)?;
            std::fs::rename(&bak_tmp, sibling(path, ".bak"))?;
        }
        std::fs::rename(&tmp, path)?;
        fsync_parent_dir(path)?;
        Ok(())
    };
    let result = write();
    if result.is_err() {
        // Unique scratch names would otherwise accumulate on failure.
        std::fs::remove_file(&tmp).ok();
        std::fs::remove_file(sibling(&tmp, ".bak")).ok();
    }
    result
}

/// The rename in [`write_atomic`] only becomes durable once the parent
/// directory's entry table is on disk; an fsync on the file alone does
/// not cover it.
#[cfg(unix)]
pub(crate) fn fsync_parent_dir(path: &Path) -> std::io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    std::fs::File::open(parent)?.sync_all()
}

#[cfg(not(unix))]
pub(crate) fn fsync_parent_dir(_path: &Path) -> std::io::Result<()> {
    // Directory handles cannot be fsynced portably off unix; the
    // file-level fsync in `write_atomic` is the best available.
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TrialBuilder;

    fn trial(name: &str, threads: usize) -> Trial {
        let mut b = TrialBuilder::with_flat_threads(name, threads);
        let t = b.metric("TIME");
        let e = b.event("main");
        for th in 0..threads {
            b.set(e, t, th, crate::Measurement::leaf(1.0));
        }
        b.meta("threads", threads);
        b.build()
    }

    #[test]
    fn add_and_get_trial() {
        let mut repo = Repository::new();
        repo.add_trial("Fluid Dynamic", "rib 45", trial("1_8", 8))
            .unwrap();
        let t = repo.trial("Fluid Dynamic", "rib 45", "1_8").unwrap();
        assert_eq!(t.profile.thread_count(), 8);
    }

    #[test]
    fn missing_lookups_are_typed_errors() {
        let repo = Repository::new();
        assert!(matches!(
            repo.trial("nope", "x", "y"),
            Err(DmfError::NotFound {
                kind: "application",
                ..
            })
        ));
        let mut repo = Repository::new();
        repo.add_trial("app", "exp", trial("t", 1)).unwrap();
        assert!(matches!(
            repo.trial("app", "other", "t"),
            Err(DmfError::NotFound {
                kind: "experiment",
                ..
            })
        ));
        assert!(matches!(
            repo.trial("app", "exp", "other"),
            Err(DmfError::NotFound { kind: "trial", .. })
        ));
    }

    #[test]
    fn duplicate_trial_rejected_but_upsert_allowed() {
        let mut repo = Repository::new();
        repo.add_trial("a", "e", trial("t", 1)).unwrap();
        assert!(matches!(
            repo.add_trial("a", "e", trial("t", 2)),
            Err(DmfError::Duplicate { .. })
        ));
        repo.upsert_trial("a", "e", trial("t", 4));
        assert_eq!(repo.trial("a", "e", "t").unwrap().profile.thread_count(), 4);
    }

    #[test]
    fn trials_sorted_by_metadata() {
        let mut repo = Repository::new();
        for n in [8usize, 1, 4, 2] {
            repo.add_trial("app", "scaling", trial(&format!("1_{n}"), n))
                .unwrap();
        }
        let sorted = repo.trials_sorted_by("app", "scaling", "threads").unwrap();
        let counts: Vec<usize> = sorted.iter().map(|t| t.profile.thread_count()).collect();
        assert_eq!(counts, vec![1, 2, 4, 8]);
    }

    #[test]
    fn json_roundtrip() {
        let mut repo = Repository::new();
        repo.add_trial("app", "exp", trial("t1", 2)).unwrap();
        repo.add_trial("app", "exp", trial("t2", 4)).unwrap();
        let json = repo.to_json().unwrap();
        let back = Repository::from_json(&json).unwrap();
        assert_eq!(repo, back);
        assert_eq!(back.trial_count(), 2);
    }

    #[test]
    fn save_and_load_file() {
        let mut repo = Repository::new();
        repo.add_trial("app", "exp", trial("t1", 2)).unwrap();
        let dir = std::env::temp_dir().join("perfdmf_repo_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("repo.json");
        repo.save(&path).unwrap();
        let back = Repository::load(&path).unwrap();
        assert_eq!(repo, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_is_parse_error() {
        assert!(Repository::from_json("{ not json").is_err());
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("perfdmf_repo_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn save_keeps_backup_generation_and_no_tmp() {
        let path = temp_path("gen.json");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(super::sibling(&path, ".bak")).ok();

        let mut repo = Repository::new();
        repo.add_trial("app", "exp", trial("t1", 1)).unwrap();
        repo.save(&path).unwrap();
        assert!(!super::sibling(&path, ".bak").exists());
        assert!(!super::sibling(&path, ".tmp").exists());

        let gen1 = repo.clone();
        repo.add_trial("app", "exp", trial("t2", 2)).unwrap();
        repo.save(&path).unwrap();
        // The .bak holds the previous generation.
        let bak = Repository::load(&super::sibling(&path, ".bak")).unwrap();
        assert_eq!(bak, gen1);
        assert_eq!(Repository::load(&path).unwrap(), repo);

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(super::sibling(&path, ".bak")).ok();
    }

    #[test]
    fn concurrent_saves_to_one_path_never_interleave() {
        // Regression: `write_atomic` used a fixed `<path>.tmp` scratch
        // name, so two concurrent saves interleaved writes into the
        // same scratch file and could rename a half-written mix over
        // the primary. With unique scratch names every generation on
        // disk is exactly one writer's complete document.
        let dir =
            std::env::temp_dir().join(format!("perfdmf_concurrent_save_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("contended.json");

        // Each writer repeatedly saves its own distinctive repository:
        // `writers` different documents, all racing on one path.
        let writers = 8;
        let rounds = 12;
        let repos: Vec<Repository> = (0..writers)
            .map(|w| {
                let mut repo = Repository::new();
                // Different trial counts make the documents differ in
                // length, the shape most likely to expose interleaving.
                for i in 0..=w {
                    repo.add_trial("app", &format!("exp{w}"), trial(&format!("t{i}"), i + 1))
                        .unwrap();
                }
                repo
            })
            .collect();
        std::thread::scope(|scope| {
            for repo in &repos {
                let path = &path;
                scope.spawn(move || {
                    for _ in 0..rounds {
                        repo.save(path).unwrap();
                    }
                });
            }
        });

        // The surviving primary is byte-exactly one writer's document.
        let survivor = Repository::load(&path).unwrap();
        assert!(
            repos.contains(&survivor),
            "primary is a mix of concurrent writers"
        );
        // The backup, when readable, must also be a complete document
        // (it can lose the race between copy and a concurrent rename,
        // but never hold interleaved bytes of two writers).
        if let Ok(bak) = Repository::load(&sibling(&path, ".bak")) {
            assert!(repos.contains(&bak));
        }
        // No scratch files left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "leftover scratch files: {leftovers:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn salvage_recovers_good_trials_from_corrupt_repo() {
        let mut repo = Repository::new();
        repo.add_trial("app", "exp", trial("good", 2)).unwrap();
        repo.add_trial("app", "exp", trial("bad", 2)).unwrap();
        let json = repo.to_json().unwrap();
        // Corrupt the "bad" trial: its name field becomes a number, so
        // that one subtree no longer deserialises.
        let corrupt = json.replace("\"name\":\"bad\"", "\"name\":42");
        assert!(Repository::from_json(&corrupt).is_err());
        let (salvaged, dropped) = Repository::salvage_json(&corrupt).unwrap();
        assert_eq!(salvaged.trial_count(), 1);
        assert!(salvaged.trial("app", "exp", "good").is_ok());
        assert_eq!(dropped.len(), 1);
        // Typed diagnostics, same shape as the lossy text parsers.
        assert_eq!(dropped[0].format, "json");
        assert!(dropped[0].message.starts_with("app/exp/bad"), "{dropped:?}");
    }

    #[test]
    fn salvage_of_non_json_is_error() {
        assert!(Repository::salvage_json("\0\0 garbage").is_err());
    }

    #[test]
    fn load_or_salvage_prefers_clean_then_salvage_then_backup() {
        let path = temp_path("recover.json");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(super::sibling(&path, ".bak")).ok();

        let mut repo = Repository::new();
        repo.add_trial("app", "exp", trial("t1", 1)).unwrap();
        repo.save(&path).unwrap();
        let clean = Repository::load_or_salvage(&path).unwrap();
        assert!(clean.is_clean());
        assert_eq!(clean.repo, repo);

        // Second generation, then corrupt the primary in place beyond
        // JSON repair: salvage fails, the .bak generation is used.
        repo.add_trial("app", "exp", trial("t2", 2)).unwrap();
        repo.save(&path).unwrap();
        std::fs::write(&path, "{ totally broken").unwrap();
        let recovered = Repository::load_or_salvage(&path).unwrap();
        assert!(recovered.used_backup);
        assert_eq!(recovered.repo.trial_count(), 1);

        // Truncate primary mid-document *and* remove the backup: error.
        std::fs::remove_file(super::sibling(&path, ".bak")).unwrap();
        assert!(Repository::load_or_salvage(&path).is_err());

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn format_detection_by_magic() {
        let mut repo = Repository::new();
        repo.add_trial("a", "e", trial("t", 2)).unwrap();
        let json = repo.to_json().unwrap();
        let bin = repo.to_pdb1();
        assert_eq!(Format::detect_bytes(json.as_bytes()), Format::Json);
        assert_eq!(Format::detect_bytes(&bin), Format::Pdb1);
        assert_eq!(Format::detect_bytes(b""), Format::Json);
        assert_eq!(Format::from_name("pdb1"), Some(Format::Pdb1));
        assert_eq!(Format::from_name("xml"), None);
        assert_eq!(Format::Pdb1.to_string(), "pdb1");
    }

    #[test]
    fn save_as_pdb1_and_autodetecting_load() {
        let path = temp_path("binary.pdb");
        std::fs::remove_file(&path).ok();
        let mut repo = Repository::new();
        repo.add_trial("app", "exp", trial("t1", 4)).unwrap();
        repo.save_as(&path, Format::Pdb1).unwrap();
        assert_eq!(Format::detect(&path).unwrap(), Format::Pdb1);
        // `load` needs no format hint.
        let back = Repository::load(&path).unwrap();
        assert_eq!(back, repo);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(super::sibling(&path, ".bak")).ok();
    }

    #[test]
    fn load_or_salvage_handles_corrupt_pdb1() {
        let path = temp_path("salvage.pdb");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(super::sibling(&path, ".bak")).ok();

        let mut repo = Repository::new();
        repo.add_trial("app", "exp", trial("t1", 2)).unwrap();
        repo.add_trial("app", "exp", trial("t2", 2)).unwrap();
        repo.save_as(&path, Format::Pdb1).unwrap();

        // Flip the string-table checksum in place: strict load fails,
        // salvage recovers everything with a section diagnostic.
        let mut bytes = std::fs::read(&path).unwrap();
        crate::pdb1::flip_section_checksum(&mut bytes, 0, 1).unwrap();
        std::fs::write(&path, &bytes).unwrap();

        let recovered = Repository::load_or_salvage(&path).unwrap();
        assert!(!recovered.used_backup);
        assert_eq!(recovered.repo.trial_count(), 2);
        assert!(recovered
            .dropped
            .iter()
            .any(|d| d.format == "pdb1" && d.message.contains("string table")));

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(super::sibling(&path, ".bak")).ok();
    }

    #[test]
    fn enumeration_apis() {
        let mut repo = Repository::new();
        repo.add_trial("b_app", "e1", trial("t", 1)).unwrap();
        repo.add_trial("a_app", "e1", trial("t", 1)).unwrap();
        let names: Vec<&str> = repo.application_names().collect();
        assert_eq!(names, vec!["a_app", "b_app"]);
        let exp = repo.experiment("a_app", "e1").unwrap();
        assert_eq!(exp.len(), 1);
        assert!(!exp.is_empty());
        assert_eq!(exp.trial_names().collect::<Vec<_>>(), vec!["t"]);
    }
}
