//! Thread-safe repository sharing.
//!
//! Parallel sweeps (many simulations or profile imports at once) need to
//! write into one repository concurrently, and long-lived analysis
//! sessions need concurrent readers. [`SharedRepository`] wraps the
//! plain [`Repository`] in a `parking_lot::RwLock` behind an `Arc`,
//! giving many-reader/one-writer semantics without poisoning.

use crate::model::Trial;
use crate::repo::Repository;
use crate::Result;
use parking_lot::RwLock;
use std::path::Path;
use std::sync::Arc;

/// A clonable, thread-safe handle to a repository.
#[derive(Clone, Default)]
pub struct SharedRepository {
    inner: Arc<RwLock<Repository>>,
}

impl SharedRepository {
    /// Creates an empty shared repository.
    pub fn new() -> Self {
        SharedRepository::default()
    }

    /// Wraps an existing repository.
    pub fn from_repository(repo: Repository) -> Self {
        SharedRepository {
            inner: Arc::new(RwLock::new(repo)),
        }
    }

    /// Adds a trial (write lock).
    pub fn add_trial(&self, app: &str, experiment: &str, trial: Trial) -> Result<()> {
        self.inner.write().add_trial(app, experiment, trial)
    }

    /// Replaces or inserts a trial (write lock).
    pub fn upsert_trial(&self, app: &str, experiment: &str, trial: Trial) {
        self.inner.write().upsert_trial(app, experiment, trial)
    }

    /// Clones a trial out (read lock). Cloning keeps the lock hold time
    /// bounded; analyses operate on their own copy, as the scripting
    /// layer already does.
    pub fn get_trial(&self, app: &str, experiment: &str, trial: &str) -> Result<Trial> {
        self.inner.read().trial(app, experiment, trial).cloned()
    }

    /// Runs a closure with read access (for queries that do not need a
    /// clone).
    pub fn read<T>(&self, f: impl FnOnce(&Repository) -> T) -> T {
        f(&self.inner.read())
    }

    /// Runs a closure with read access, also reporting how long the
    /// read lock took to acquire. The sharded service aggregates this
    /// into its `lock_wait` metric: under contention the wait, not the
    /// critical section, is what grows.
    pub fn read_timed<T>(&self, f: impl FnOnce(&Repository) -> T) -> (T, std::time::Duration) {
        let start = std::time::Instant::now();
        let guard = self.inner.read();
        let waited = start.elapsed();
        (f(&guard), waited)
    }

    /// Runs a closure with write access, also reporting how long the
    /// write lock took to acquire.
    pub fn write_timed<T>(&self, f: impl FnOnce(&mut Repository) -> T) -> (T, std::time::Duration) {
        let start = std::time::Instant::now();
        let mut guard = self.inner.write();
        let waited = start.elapsed();
        (f(&mut guard), waited)
    }

    /// Total trial count (read lock).
    pub fn trial_count(&self) -> usize {
        self.inner.read().trial_count()
    }

    /// Saves a snapshot to disk (read lock).
    pub fn save(&self, path: &Path) -> Result<()> {
        self.inner.read().save(path)
    }

    /// Extracts the repository if this is the last handle, else clones.
    pub fn into_repository(self) -> Repository {
        match Arc::try_unwrap(self.inner) {
            Ok(lock) => lock.into_inner(),
            Err(arc) => arc.read().clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Measurement, TrialBuilder};

    fn trial(name: &str) -> Trial {
        let mut b = TrialBuilder::with_flat_threads(name, 1);
        let t = b.metric("TIME");
        let e = b.event("main");
        b.set(e, t, 0, Measurement::leaf(1.0));
        b.build()
    }

    #[test]
    fn concurrent_writers_land_every_trial() {
        let repo = SharedRepository::new();
        std::thread::scope(|scope| {
            for w in 0..8 {
                let repo = repo.clone();
                scope.spawn(move || {
                    for i in 0..25 {
                        repo.add_trial("app", &format!("exp{w}"), trial(&format!("t{i}")))
                            .unwrap();
                    }
                });
            }
        });
        assert_eq!(repo.trial_count(), 200);
    }

    #[test]
    fn readers_run_while_holding_clones() {
        let repo = SharedRepository::new();
        repo.add_trial("app", "exp", trial("t0")).unwrap();
        let t = repo.get_trial("app", "exp", "t0").unwrap();
        assert_eq!(t.name, "t0");
        // The clone is independent of later writes.
        repo.upsert_trial("app", "exp", trial("t0"));
        assert_eq!(t.profile.thread_count(), 1);
        // Structured read access.
        let names: Vec<String> = repo.read(|r| r.application_names().map(str::to_string).collect());
        assert_eq!(names, vec!["app"]);
    }

    #[test]
    fn into_repository_unwraps_or_clones() {
        let repo = SharedRepository::new();
        repo.add_trial("a", "e", trial("t")).unwrap();
        let extra_handle = repo.clone();
        let cloned = repo.into_repository(); // two handles: clones
        assert_eq!(cloned.trial_count(), 1);
        let owned = extra_handle.into_repository(); // last handle: unwraps
        assert_eq!(owned.trial_count(), 1);
    }

    #[test]
    fn timed_accessors_report_waits_and_run_closures() {
        let repo = SharedRepository::new();
        let ((), w1) = repo.write_timed(|r| {
            r.upsert_trial("a", "e", trial("t"));
        });
        let (count, w2) = repo.read_timed(|r| r.trial_count());
        assert_eq!(count, 1);
        // Uncontended waits are small but always measured.
        assert!(w1 < std::time::Duration::from_secs(5));
        assert!(w2 < std::time::Duration::from_secs(5));
    }

    #[test]
    fn duplicate_errors_propagate_through_the_lock() {
        let repo = SharedRepository::new();
        repo.add_trial("a", "e", trial("t")).unwrap();
        assert!(repo.add_trial("a", "e", trial("t")).is_err());
        assert!(repo.get_trial("a", "e", "missing").is_err());
    }
}
