//! Memory-mapped, zero-copy access to PDB1 repositories.
//!
//! [`MappedRepository::open`] maps a PDB1 file and parses only its
//! skeleton — header, section table, string table, manifest — eagerly
//! (with their checksums; they are a few kilobytes). The column pages,
//! which dominate the file, stay untouched mapped memory: a
//! [`TrialView`] hands out `&[f64]` planes and
//! [`statistics::MatrixView`]s **directly over the mapping**, and each
//! trial's page checksum is validated lazily, once, on first access.
//! Opening a million-trial store therefore costs a manifest parse, and
//! an analysis that touches three trials faults in and checksums three
//! pages.
//!
//! When mmap is unavailable — non-unix hosts, or the
//! `PERFDMF_NO_MMAP` environment variable is set (CI runs the whole
//! suite this way once) — the same API is served by an owned read into
//! an 8-byte-aligned arena, so every caller works identically on both
//! paths.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::model::{Event, Metric, ThreadId, Trial};
use crate::pdb1::{self, Field, TrialRec};
use crate::repo::Repository;
use crate::{DmfError, Metadata, Result};
use statistics::MatrixView;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU8, Ordering};

/// Whether the zero-copy mmap open path is available on this host:
/// unix, and not force-disabled via the `PERFDMF_NO_MMAP` environment
/// variable (CI sets it to exercise the owned-read fallback).
pub fn mmap_available() -> bool {
    cfg!(unix) && std::env::var_os("PERFDMF_NO_MMAP").is_none()
}

#[cfg(unix)]
mod sys {
    //! Minimal read-only mmap over the raw syscalls; no libc crate.

    use std::os::fd::AsRawFd;

    // std already links libc on unix; binding the two symbols we need
    // avoids a dependency the container does not have.
    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    /// A read-only private file mapping, unmapped on drop.
    #[derive(Debug)]
    pub struct Map {
        ptr: std::ptr::NonNull<u8>,
        len: usize,
    }

    impl Map {
        pub fn new(file: &std::fs::File, len: usize) -> std::io::Result<Map> {
            // SAFETY: null hint, read-only private mapping over a file
            // descriptor we hold open across the call; length checked
            // non-zero by the caller.
            let p = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if p.is_null() || p as isize == -1 {
                return Err(std::io::Error::last_os_error());
            }
            // SAFETY: just checked non-null.
            let ptr = unsafe { std::ptr::NonNull::new_unchecked(p as *mut u8) };
            Ok(Map { ptr, len })
        }

        pub fn bytes(&self) -> &[u8] {
            // SAFETY: the mapping is valid for `len` bytes until drop,
            // and MAP_PRIVATE means no other process can mutate our
            // view of it.
            unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
        }
    }

    impl Drop for Map {
        fn drop(&mut self) {
            // SAFETY: unmapping exactly what `new` mapped.
            unsafe {
                munmap(self.ptr.as_ptr() as *mut core::ffi::c_void, self.len);
            }
        }
    }
}

/// The backing storage of a [`MappedRepository`]: a file mapping on the
/// zero-copy path, or an owned 8-byte-aligned arena on the fallback.
#[derive(Debug)]
enum Buffer {
    #[cfg(unix)]
    Mapped(sys::Map),
    /// `u64` storage guarantees 8-byte alignment for the f64 casts; the
    /// second field is the logical byte length.
    Owned(Vec<u64>, usize),
}

// SAFETY: the mapped variant is a read-only MAP_PRIVATE mapping (no
// writer can change our view), the owned variant is plain memory;
// sharing &Buffer across threads only ever reads.
unsafe impl Send for Buffer {}
unsafe impl Sync for Buffer {}

impl Buffer {
    fn from_bytes(bytes: &[u8]) -> Buffer {
        let words = bytes.len().div_ceil(8);
        let mut arena = vec![0u64; words];
        // SAFETY: the u64 arena is 8-aligned and at least bytes.len()
        // bytes long.
        let dst =
            unsafe { std::slice::from_raw_parts_mut(arena.as_mut_ptr() as *mut u8, bytes.len()) };
        dst.copy_from_slice(bytes);
        Buffer::Owned(arena, bytes.len())
    }

    fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            Buffer::Mapped(m) => m.bytes(),
            Buffer::Owned(arena, len) => {
                // SAFETY: the arena holds at least `len` initialised
                // bytes (see from_bytes).
                unsafe { std::slice::from_raw_parts(arena.as_ptr() as *const u8, *len) }
            }
        }
    }

    fn is_mapped(&self) -> bool {
        #[cfg(unix)]
        if let Buffer::Mapped(_) = self {
            return true;
        }
        false
    }
}

const PAGE_UNCHECKED: u8 = 0;
const PAGE_OK: u8 = 1;
const PAGE_BAD: u8 = 2;

/// A PDB1 repository opened for zero-copy reads.
///
/// The skeleton (names, axes, metadata) is owned; the measurement
/// pages stay in the mapping and are validated lazily, per trial, on
/// first access. Construct with [`MappedRepository::open`].
#[derive(Debug)]
pub struct MappedRepository {
    buf: Buffer,
    doc: pdb1::Doc,
    /// `(app, exp, trial)` → index into `doc.trials`.
    index: HashMap<(String, String, String), usize>,
    /// Lazy per-trial page validation: unchecked / ok / bad.
    page_state: Vec<AtomicU8>,
}

impl MappedRepository {
    /// Opens a PDB1 file for zero-copy access.
    ///
    /// Uses mmap when available (see [`mmap_available`]); otherwise
    /// falls back to an owned aligned read with identical semantics.
    /// Header, section table, string table and manifest are parsed and
    /// checksum-validated eagerly; column pages are validated lazily
    /// per trial.
    pub fn open(path: &Path) -> Result<Self> {
        let buf = if mmap_available() {
            let file = std::fs::File::open(path)?;
            let len = file.metadata()?.len() as usize;
            if len == 0 {
                Buffer::from_bytes(&[])
            } else {
                match sys::Map::new(&file, len) {
                    Ok(m) => Buffer::Mapped(m),
                    // Some filesystems refuse mmap; fall back silently.
                    Err(_) => Buffer::from_bytes(&std::fs::read(path)?),
                }
            }
        } else {
            Buffer::from_bytes(&std::fs::read(path)?)
        };
        Self::from_buffer(buf)
    }

    /// Opens from in-memory PDB1 bytes (always the owned path); used by
    /// tests and callers that already hold the document.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        Self::from_buffer(Buffer::from_bytes(bytes))
    }

    fn from_buffer(buf: Buffer) -> Result<Self> {
        let (doc, _diags) = pdb1::parse_doc(buf.bytes(), false)?;
        let mut index = HashMap::with_capacity(doc.trials.len());
        for (i, rec) in doc.trials.iter().enumerate() {
            index.insert((rec.app.clone(), rec.exp.clone(), rec.name.clone()), i);
        }
        let page_state = (0..doc.trials.len())
            .map(|_| AtomicU8::new(PAGE_UNCHECKED))
            .collect();
        Ok(MappedRepository {
            buf,
            doc,
            index,
            page_state,
        })
    }

    /// Whether the backing storage is an actual file mapping (false on
    /// the owned fallback).
    pub fn is_mapped(&self) -> bool {
        self.buf.is_mapped()
    }

    /// Number of trials in the manifest.
    pub fn trial_count(&self) -> usize {
        self.doc.trials.len()
    }

    /// `(application, experiment, trial)` identity of every trial, in
    /// manifest order.
    pub fn trial_paths(&self) -> impl Iterator<Item = (&str, &str, &str)> {
        self.doc
            .trials
            .iter()
            .map(|r| (r.app.as_str(), r.exp.as_str(), r.name.as_str()))
    }

    /// Zero-copy view of one trial — the `Utilities.getTrial`
    /// equivalent on the mapped path. The trial's page checksum is
    /// validated on first access (cached thereafter).
    pub fn view(&self, app: &str, exp: &str, trial: &str) -> Result<TrialView<'_>> {
        let key = (app.to_string(), exp.to_string(), trial.to_string());
        let idx = *self.index.get(&key).ok_or_else(|| DmfError::NotFound {
            kind: "trial",
            name: format!("{app}/{exp}/{trial}"),
        })?;
        self.view_at(idx)
    }

    /// Zero-copy views of every trial, in manifest order. Corrupt
    /// pages surface as per-trial errors, not a failed open.
    pub fn views(&self) -> impl Iterator<Item = Result<TrialView<'_>>> {
        (0..self.doc.trials.len()).map(move |i| self.view_at(i))
    }

    fn view_at(&self, idx: usize) -> Result<TrialView<'_>> {
        let rec = &self.doc.trials[idx];
        let page = self.doc.page_bytes(self.buf.bytes(), rec)?;
        match self.page_state[idx].load(Ordering::Acquire) {
            PAGE_OK => {}
            PAGE_BAD => return Err(bad_page(rec)),
            _ => {
                let ok = pdb1::crc32(page) == rec.page_crc;
                self.page_state[idx].store(if ok { PAGE_OK } else { PAGE_BAD }, Ordering::Release);
                if !ok {
                    return Err(bad_page(rec));
                }
            }
        }
        let cells = statistics::f64s_from_bytes(page)
            .map_err(|e| DmfError::Incompatible(format!("trial {}: {e}", rec.path())))?;
        Ok(TrialView { rec, page, cells })
    }

    /// Materialises the whole store into an owned [`Repository`]
    /// (strictly — any bad page is an error). The bridge back to the
    /// mutation APIs.
    pub fn to_repository(&self) -> Result<Repository> {
        let mut repo = Repository::new();
        for view in self.views() {
            let view = view?;
            repo.upsert_trial(&view.rec.app, &view.rec.exp, view.to_trial()?);
        }
        Ok(repo)
    }
}

fn bad_page(rec: &TrialRec) -> DmfError {
    DmfError::Parse {
        format: "pdb1",
        line: None,
        message: format!("trial {}: column page checksum mismatch", rec.path()),
    }
}

/// One trial, viewed zero-copy over a [`MappedRepository`]'s column
/// pages.
///
/// The page holds four field planes (inclusive, exclusive, calls,
/// subcalls), each a metric-major `metrics × events × threads` array,
/// so [`TrialView::matrix`] is a constant-time subslice — no gather, no
/// conversion — feeding the SIMD kernels in `statistics` directly from
/// the file mapping.
#[derive(Debug, Clone, Copy)]
pub struct TrialView<'a> {
    rec: &'a TrialRec,
    page: &'a [u8],
    cells: &'a [f64],
}

impl<'a> TrialView<'a> {
    /// Application name.
    pub fn app(&self) -> &'a str {
        &self.rec.app
    }

    /// Experiment name.
    pub fn experiment(&self) -> &'a str {
        &self.rec.exp
    }

    /// Trial name.
    pub fn name(&self) -> &'a str {
        &self.rec.name
    }

    /// The trial's metrics, in column order.
    pub fn metrics(&self) -> &'a [Metric] {
        &self.rec.metrics
    }

    /// The trial's events, in row order.
    pub fn events(&self) -> &'a [Event] {
        &self.rec.events
    }

    /// The trial's threads, in column order of each matrix row.
    pub fn threads(&self) -> &'a [ThreadId] {
        &self.rec.threads
    }

    /// The trial's metadata.
    pub fn metadata(&self) -> &'a Metadata {
        &self.rec.metadata
    }

    /// Index of a metric by name.
    pub fn metric_index(&self, name: &str) -> Option<usize> {
        self.rec.metrics.iter().position(|m| m.name == name)
    }

    /// Index of an event by full name.
    pub fn event_index(&self, name: &str) -> Option<usize> {
        self.rec.events.iter().position(|e| e.name == name)
    }

    /// One whole field plane: `metrics × events × threads`,
    /// metric-major, straight out of the mapping.
    pub fn plane(&self, field: Field) -> &'a [f64] {
        let n = self.rec.cells();
        &self.cells[field.index() * n..(field.index() + 1) * n]
    }

    /// The `events × threads` matrix of one metric's field — a
    /// constant-time subslice of the mapped page, wrapped as the
    /// row-major [`MatrixView`] the SIMD kernels consume.
    pub fn matrix(&self, metric: usize, field: Field) -> Result<MatrixView<'a>> {
        let ne = self.rec.events.len();
        let nt = self.rec.threads.len();
        if metric >= self.rec.metrics.len() {
            return Err(DmfError::NotFound {
                kind: "metric",
                name: format!("{} (index {metric})", self.rec.path()),
            });
        }
        let plane = self.plane(field);
        let slab = &plane[metric * ne * nt..(metric + 1) * ne * nt];
        MatrixView::new(slab, ne, nt)
            .map_err(|e| DmfError::Incompatible(format!("trial {}: {e}", self.rec.path())))
    }

    /// One event's per-thread values for a metric's field: `n_threads`
    /// contiguous cells out of the mapping.
    pub fn column(&self, metric: usize, field: Field, event: usize) -> Result<&'a [f64]> {
        let ne = self.rec.events.len();
        let nt = self.rec.threads.len();
        if metric >= self.rec.metrics.len() || event >= ne {
            return Err(DmfError::NotFound {
                kind: "profile cell",
                name: format!("{} metric {metric} event {event}", self.rec.path()),
            });
        }
        let plane = self.plane(field);
        let start = (metric * ne + event) * nt;
        Ok(&plane[start..start + nt])
    }

    /// Maximum inclusive value of the `main` event — the elapsed-time
    /// reading analyses use — without materialising the trial.
    pub fn max_inclusive_of_main(&self, metric: usize) -> Result<f64> {
        let main = self
            .event_index(crate::MAIN_EVENT)
            .ok_or_else(|| DmfError::NotFound {
                kind: "event",
                name: format!("{}/{}", self.rec.path(), crate::MAIN_EVENT),
            })?;
        let col = self.column(metric, Field::Inclusive, main)?;
        Ok(col.iter().copied().fold(0.0, f64::max))
    }

    /// Address range of the trial's column page in the backing buffer,
    /// for zero-copy assertions and diagnostics.
    pub fn page_ptr_range(&self) -> std::ops::Range<usize> {
        let start = self.page.as_ptr() as usize;
        start..start + self.page.len()
    }

    /// Materialises this trial into the owned model (the only copying
    /// operation on a view).
    pub fn to_trial(&self) -> Result<Trial> {
        pdb1::materialize_trial(self.rec, self.page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Measurement, TrialBuilder};
    use crate::repo::Format;

    fn sample_repo() -> Repository {
        let mut repo = Repository::new();
        for (name, threads) in [("1_2", 2usize), ("1_4", 4)] {
            let mut b = TrialBuilder::with_flat_threads(name, threads);
            let time = b.metric("TIME");
            let cyc = b.metric("CPU_CYCLES");
            for (i, ename) in ["main", "main => compute"].iter().enumerate() {
                let e = b.event(ename);
                for t in 0..threads {
                    b.set(e, time, t, Measurement::leaf((10 * (i + 1) + t) as f64));
                    b.set(e, cyc, t, Measurement::leaf(1000.0 + t as f64));
                }
            }
            b.meta("threads", threads);
            repo.add_trial("app", "scaling", b.build()).unwrap();
        }
        repo
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("perfdmf_mapped_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn open_is_zero_copy_and_matches_owned_model() {
        let repo = sample_repo();
        let path = temp_path("zc.pdb");
        repo.save_as(&path, Format::Pdb1).unwrap();

        let mapped = MappedRepository::open(&path).unwrap();
        assert_eq!(mapped.trial_count(), 2);
        assert_eq!(mapped.is_mapped(), mmap_available());

        let view = mapped.view("app", "scaling", "1_4").unwrap();
        assert_eq!(view.metrics().len(), 2);
        assert_eq!(view.events().len(), 2);
        assert_eq!(view.threads().len(), 4);
        assert_eq!(view.metadata().get_num("threads"), Some(4.0));

        // The matrix is a subslice of the page, which is a subslice of
        // the backing buffer: pointer containment proves zero-copy.
        let time = view.metric_index("TIME").unwrap();
        let m = view.matrix(time, Field::Exclusive).unwrap();
        let buf = mapped.buf.bytes();
        let buf_range = buf.as_ptr() as usize..buf.as_ptr() as usize + buf.len();
        assert!(buf_range.contains(&(m.as_slice().as_ptr() as usize)));

        // Values agree with the owned model.
        let owned = repo.trial("app", "scaling", "1_4").unwrap();
        let e = owned.profile.event_id("main => compute").unwrap();
        let t = owned.profile.metric_id("TIME").unwrap();
        let expect: Vec<f64> = owned
            .profile
            .column(e, t)
            .iter()
            .map(|c| c.exclusive)
            .collect();
        let got = view
            .column(
                time,
                Field::Exclusive,
                view.event_index("main => compute").unwrap(),
            )
            .unwrap();
        assert_eq!(got, expect.as_slice());

        // Full materialisation round-trips.
        assert_eq!(mapped.to_repository().unwrap(), repo);

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn owned_fallback_serves_identical_views() {
        let repo = sample_repo();
        let bytes = repo.to_pdb1();
        let mapped = MappedRepository::from_bytes(&bytes).unwrap();
        assert!(!mapped.is_mapped());
        let view = mapped.view("app", "scaling", "1_2").unwrap();
        let time = view.metric_index("TIME").unwrap();
        let m = view.matrix(time, Field::Inclusive).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(view.max_inclusive_of_main(time).unwrap(), 11.0);
        assert_eq!(mapped.to_repository().unwrap(), repo);
    }

    #[test]
    fn lazy_page_validation_flags_only_corrupt_trial() {
        let repo = sample_repo();
        let mut bytes = repo.to_pdb1();
        let (doc, _) = pdb1::parse_doc(&bytes, false).unwrap();
        // Corrupt the second trial's page.
        let rec = &doc.trials[1];
        let at = doc.pages_off + rec.page_off as usize + 3;
        bytes[at] ^= 0x10;

        let mapped = MappedRepository::from_bytes(&bytes).unwrap();
        // Clean trial loads; corrupt one errors on first touch and the
        // verdict is cached.
        assert!(mapped.view("app", "scaling", "1_2").is_ok());
        let err = mapped.view("app", "scaling", "1_4").unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        let err2 = mapped.view("app", "scaling", "1_4").unwrap_err();
        assert!(err2.to_string().contains("checksum"));
        // views() surfaces per-trial results.
        let outcomes: Vec<bool> = mapped.views().map(|v| v.is_ok()).collect();
        assert_eq!(outcomes, vec![true, false]);
        assert!(mapped.to_repository().is_err());
    }

    #[test]
    fn missing_trial_is_typed_not_found() {
        let bytes = sample_repo().to_pdb1();
        let mapped = MappedRepository::from_bytes(&bytes).unwrap();
        assert!(matches!(
            mapped.view("app", "scaling", "nope"),
            Err(DmfError::NotFound { kind: "trial", .. })
        ));
    }

    #[test]
    fn kernels_run_directly_on_mapped_matrix() {
        // The acceptance-criteria shape: a statistics kernel consuming
        // the mapped view with no conversion pass.
        let bytes = sample_repo().to_pdb1();
        let mapped = MappedRepository::from_bytes(&bytes).unwrap();
        let view = mapped.view("app", "scaling", "1_4").unwrap();
        let time = view.metric_index("TIME").unwrap();
        let m = view.matrix(time, Field::Exclusive).unwrap();
        let config = statistics::KMeansConfig {
            k: 2,
            ..Default::default()
        };
        let result = statistics::kmeans_flat(m, &config).expect("kmeans over mapped view");
        assert_eq!(result.assignments.len(), m.rows());
        assert_eq!(result.centroids.rows(), 2);
    }
}
