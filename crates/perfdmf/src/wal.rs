//! Write-ahead journal for streaming chunk ingestion.
//!
//! A process crash used to lose every in-flight [`StreamingTrial`]: the
//! growing trial lives only in memory, so chunks a client was told were
//! applied simply vanished. This module is the durability half of the
//! streaming story. Before a chunk is acknowledged it is appended to a
//! per-shard journal; after a crash the journal is replayed and every
//! acknowledged chunk is folded back into a rebuilt stream, so the
//! recovered analysis state is byte-identical to an uninterrupted run.
//!
//! ## Record framing
//!
//! The file starts with an 8-byte header (`PWAL` magic + u32 LE
//! version). Each record is a crc32-framed frame:
//!
//! ```text
//! offset 0   u32 LE  payload length
//! offset 4   u32 LE  crc32 of the payload (same polynomial as PDB1)
//! offset 8   payload: one WalRecord as JSON
//! ```
//!
//! A crash mid-append leaves a *torn tail*: a frame whose length field
//! points past EOF, or whose checksum no longer matches. Replay treats
//! the valid prefix as the truth and discards the tail — a torn record
//! was by definition never acknowledged, so the client will retry it.
//! [`Journal::open`] truncates the tail away before appending again, so
//! one crash can never poison records written after the restart.
//!
//! ## Rotation
//!
//! Retired streams (a full-trial upsert shadowing the path, or an
//! explicitly finished trial) append a [`WalRecord::Retire`] tombstone.
//! [`Journal::compact`] rewrites the journal without retired streams'
//! records using the same tmp+fsync+rename discipline as
//! [`crate::Repository::save_as`], so the journal stays one complete
//! document at every instant and never grows without bound.
//!
//! ## Fsync policy
//!
//! [`FsyncPolicy::Always`] makes every acknowledged chunk durable
//! against power loss; [`FsyncPolicy::EveryN`] amortises the fsync over
//! a window (a crash may lose up to N-1 *acknowledged* chunks to an OS
//! crash, but never to a process crash); [`FsyncPolicy::Never`] leaves
//! flushing to the OS — the fast path for tests and the CI smoke lane,
//! still safe against process kills because the file write itself
//! happens before the ack.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::pdb1::crc32;
use crate::streaming::ChunkBatch;
use crate::{DmfError, Result};
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::{Path, PathBuf};

#[cfg(doc)]
use crate::streaming::StreamingTrial;

/// Journal file magic.
pub const WAL_MAGIC: [u8; 4] = *b"PWAL";
/// Journal format version.
pub const WAL_VERSION: u32 = 1;
/// Header length in bytes (magic + version).
pub const WAL_HEADER_LEN: usize = 8;
/// Frame header length in bytes (payload length + crc32).
pub const FRAME_HEADER_LEN: usize = 8;

/// One journaled event on a shard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalRecord {
    /// A chunk acknowledged into a streamed trial.
    Chunk {
        /// Tenant application.
        app: String,
        /// Tenant experiment.
        experiment: String,
        /// Trial the stream builds.
        trial: String,
        /// The acknowledged batch, verbatim.
        batch: ChunkBatch,
    },
    /// The stream at this path was retired (shadowed by a full-trial
    /// upsert, or finished). Replay drops its accumulated chunks.
    Retire {
        /// Tenant application.
        app: String,
        /// Tenant experiment.
        experiment: String,
        /// Trial whose stream was retired.
        trial: String,
    },
}

impl WalRecord {
    /// The `(app, experiment, trial)` path this record addresses.
    pub fn path(&self) -> (&str, &str, &str) {
        match self {
            WalRecord::Chunk {
                app,
                experiment,
                trial,
                ..
            }
            | WalRecord::Retire {
                app,
                experiment,
                trial,
            } => (app, experiment, trial),
        }
    }
}

/// When the journal fsyncs appended records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync after every append: an acknowledged chunk survives power
    /// loss.
    Always,
    /// Fsync after every N appends: amortised durability (a crash of
    /// the whole OS may lose up to N-1 acknowledged chunks; a process
    /// crash loses none).
    EveryN(u32),
    /// Never fsync explicitly — the OS flushes when it pleases. Safe
    /// against process kills, fastest; the CI smoke lane uses it.
    Never,
}

/// What a journal replay recovered.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WalReplay {
    /// Every intact record in append order.
    pub records: Vec<WalRecord>,
    /// Bytes discarded at the tail (a torn append, or trailing rot).
    pub torn_bytes: usize,
    /// Why the tail was discarded, when it was.
    pub torn_reason: Option<String>,
}

/// A stream's identity: `(app, experiment, trial)`.
pub type StreamKey = (String, String, String);

impl WalReplay {
    /// Folds the record sequence into the set of live streams: chunks
    /// grouped per path in arrival order, with retired paths removed.
    /// This is exactly the state a shard rebuilds on recovery.
    pub fn live_streams(&self) -> Vec<(StreamKey, Vec<&ChunkBatch>)> {
        let mut order: Vec<StreamKey> = Vec::new();
        let mut by_path: std::collections::HashMap<StreamKey, Vec<&ChunkBatch>> =
            std::collections::HashMap::new();
        for rec in &self.records {
            let (a, e, t) = rec.path();
            let key = (a.to_string(), e.to_string(), t.to_string());
            match rec {
                WalRecord::Chunk { batch, .. } => {
                    if !by_path.contains_key(&key) {
                        order.push(key.clone());
                    }
                    by_path.entry(key).or_default().push(batch);
                }
                WalRecord::Retire { .. } => {
                    by_path.remove(&key);
                    order.retain(|k| *k != key);
                }
            }
        }
        order
            .into_iter()
            .filter_map(|key| {
                let batches = by_path.remove(&key)?;
                Some((key, batches))
            })
            .collect()
    }
}

/// Outcome of a [`Journal::compact`] rewrite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactStats {
    /// Records in the journal before the rewrite.
    pub before: usize,
    /// Records surviving the rewrite.
    pub after: usize,
}

/// An append-only, crc32-framed, crash-recoverable journal file.
pub struct Journal {
    path: PathBuf,
    file: std::fs::File,
    policy: FsyncPolicy,
    unsynced: u32,
    appended: u64,
    retired: u64,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.path)
            .field("policy", &self.policy)
            .field("appended", &self.appended)
            .finish()
    }
}

fn encode_frame(record: &WalRecord) -> Result<Vec<u8>> {
    let payload = serde_json::to_string(record)?.into_bytes();
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    Ok(frame)
}

fn wal_error(message: String) -> DmfError {
    DmfError::Parse {
        format: "wal",
        line: None,
        message,
    }
}

/// Decodes every intact record of a journal byte image, stopping at the
/// first torn or corrupt frame. Errors only when the header itself is
/// not a journal's.
pub fn replay_bytes(bytes: &[u8]) -> Result<WalReplay> {
    if bytes.is_empty() {
        return Ok(WalReplay::default());
    }
    if bytes.len() < WAL_HEADER_LEN || bytes[..4] != WAL_MAGIC {
        return Err(wal_error("not a journal: bad magic".to_string()));
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != WAL_VERSION {
        return Err(wal_error(format!("unsupported journal version {version}")));
    }
    let mut replay = WalReplay::default();
    let mut at = WAL_HEADER_LEN;
    while at < bytes.len() {
        let remaining = bytes.len() - at;
        if remaining < FRAME_HEADER_LEN {
            replay.torn_bytes = remaining;
            replay.torn_reason = Some(format!("torn frame header ({remaining} bytes)"));
            break;
        }
        let len =
            u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]) as usize;
        let crc = u32::from_le_bytes([bytes[at + 4], bytes[at + 5], bytes[at + 6], bytes[at + 7]]);
        let payload_at = at + FRAME_HEADER_LEN;
        if payload_at + len > bytes.len() {
            replay.torn_bytes = remaining;
            replay.torn_reason = Some(format!(
                "torn payload (frame wants {len} bytes, {} remain)",
                bytes.len() - payload_at
            ));
            break;
        }
        let payload = &bytes[payload_at..payload_at + len];
        if crc32(payload) != crc {
            replay.torn_bytes = remaining;
            replay.torn_reason = Some(format!("checksum mismatch at offset {at}"));
            break;
        }
        let text = match std::str::from_utf8(payload) {
            Ok(t) => t,
            Err(_) => {
                replay.torn_bytes = remaining;
                replay.torn_reason = Some(format!("non-UTF-8 payload at offset {at}"));
                break;
            }
        };
        match serde_json::from_str::<WalRecord>(text) {
            Ok(rec) => replay.records.push(rec),
            Err(e) => {
                replay.torn_bytes = remaining;
                replay.torn_reason = Some(format!("undecodable record at offset {at}: {e}"));
                break;
            }
        }
        at = payload_at + len;
    }
    Ok(replay)
}

/// Replays a journal file. A missing file is an empty journal.
pub fn replay_path(path: &Path) -> Result<WalReplay> {
    match std::fs::read(path) {
        Ok(bytes) => replay_bytes(&bytes),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(WalReplay::default()),
        Err(e) => Err(DmfError::Io(e)),
    }
}

impl Journal {
    /// Opens (or creates) a journal for appending, first replaying it.
    ///
    /// Recovery and reopen are one operation on purpose: the replay
    /// finds the valid prefix, the file is truncated to exactly that
    /// prefix (discarding any torn tail), and the returned journal
    /// appends after it. The caller gets every intact record.
    pub fn open(path: &Path, policy: FsyncPolicy) -> Result<(Journal, WalReplay)> {
        let existing = match std::fs::read(path) {
            Ok(bytes) => Some(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(DmfError::Io(e)),
        };
        let (replay, valid_len) = match existing {
            Some(bytes) => {
                let replay = replay_bytes(&bytes)?;
                let valid = bytes.len() - replay.torn_bytes;
                (replay, valid)
            }
            None => (WalReplay::default(), 0),
        };

        let file = std::fs::OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(path)?;
        if valid_len == 0 {
            // Fresh (or unreadably short) journal: write the header.
            file.set_len(0)?;
            let mut f = &file;
            f.write_all(&WAL_MAGIC)?;
            f.write_all(&WAL_VERSION.to_le_bytes())?;
            if !matches!(policy, FsyncPolicy::Never) {
                file.sync_all()?;
                crate::repo::fsync_parent_dir(path)?;
            }
        } else {
            // Truncate the torn tail so post-restart appends start on a
            // frame boundary.
            file.set_len(valid_len as u64)?;
        }
        use std::io::Seek;
        let mut file = file;
        file.seek(std::io::SeekFrom::End(0))?;
        let appended = replay.records.len() as u64;
        let retired = replay
            .records
            .iter()
            .filter(|r| matches!(r, WalRecord::Retire { .. }))
            .count() as u64;
        Ok((
            Journal {
                path: path.to_path_buf(),
                file,
                policy,
                unsynced: 0,
                appended,
                retired,
            },
            replay,
        ))
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records in the journal (replayed plus appended, minus nothing —
    /// compaction resets it).
    pub fn records(&self) -> u64 {
        self.appended
    }

    /// Retire tombstones currently in the journal.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Appends one record and applies the fsync policy. When this
    /// returns, the record is in the file (and on disk, under
    /// [`FsyncPolicy::Always`]) — only then may the caller acknowledge
    /// the chunk.
    pub fn append(&mut self, record: &WalRecord) -> Result<()> {
        let frame = encode_frame(record)?;
        self.file.write_all(&frame)?;
        self.appended += 1;
        if matches!(record, WalRecord::Retire { .. }) {
            self.retired += 1;
        }
        match self.policy {
            FsyncPolicy::Always => self.file.sync_data()?,
            FsyncPolicy::EveryN(n) => {
                self.unsynced += 1;
                if self.unsynced >= n.max(1) {
                    self.file.sync_data()?;
                    self.unsynced = 0;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(())
    }

    /// Forces everything appended so far to disk regardless of policy.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        self.unsynced = 0;
        Ok(())
    }

    /// Chaos hook: appends only the first `keep` bytes of the record's
    /// frame, simulating a crash mid-append (a torn write). The frame is
    /// always left incomplete — `keep` is clamped below the frame
    /// length — so replay must discard it. Returns the full frame
    /// length the torn write was cut from.
    pub fn append_torn(&mut self, record: &WalRecord, keep: usize) -> Result<usize> {
        let frame = encode_frame(record)?;
        let cut = keep.min(frame.len().saturating_sub(1));
        self.file.write_all(&frame[..cut])?;
        self.file.sync_data()?;
        Ok(frame.len())
    }

    /// Rewrites the journal without retired streams' records, using the
    /// tmp+fsync+rename discipline: the journal on disk is one complete
    /// document at every instant, and a crash mid-compaction leaves the
    /// previous generation readable.
    pub fn compact(&mut self) -> Result<CompactStats> {
        let replay = replay_path(&self.path)?;
        let before = replay.records.len();
        let live = replay.live_streams();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WAL_MAGIC);
        bytes.extend_from_slice(&WAL_VERSION.to_le_bytes());
        let mut after = 0usize;
        for ((app, experiment, trial), batches) in live {
            for batch in batches {
                let rec = WalRecord::Chunk {
                    app: app.clone(),
                    experiment: experiment.clone(),
                    trial: trial.clone(),
                    batch: batch.clone(),
                };
                bytes.extend_from_slice(&encode_frame(&rec)?);
                after += 1;
            }
        }
        crate::repo::write_atomic(&self.path, &bytes)?;
        // The rename replaced the inode; reopen the append handle.
        use std::io::Seek;
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&self.path)?;
        file.seek(std::io::SeekFrom::End(0))?;
        self.file = file;
        self.unsynced = 0;
        self.appended = after as u64;
        self.retired = 0;
        Ok(CompactStats { before, after })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streaming::ColumnDelta;
    use crate::Measurement;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("perfdmf-wal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let unique = format!(
            "{}-{}-{name}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        );
        dir.join(unique)
    }

    fn chunk(seq: u64, v: f64) -> ChunkBatch {
        ChunkBatch {
            seq,
            threads: 2,
            deltas: vec![ColumnDelta {
                metric: "TIME".into(),
                event: "main".into(),
                event_kind: None,
                cells: vec![(0, Measurement::leaf(v)), (1, Measurement::leaf(v + 1.0))],
            }],
        }
    }

    fn rec(trial: &str, seq: u64, v: f64) -> WalRecord {
        WalRecord::Chunk {
            app: "app".into(),
            experiment: "exp".into(),
            trial: trial.into(),
            batch: chunk(seq, v),
        }
    }

    #[test]
    fn append_then_replay_round_trips() {
        let path = tmp("roundtrip.wal");
        let records = vec![rec("t1", 0, 1.0), rec("t1", 1, 2.0), rec("t2", 0, 3.0)];
        {
            let (mut j, replay) = Journal::open(&path, FsyncPolicy::Always).unwrap();
            assert!(replay.records.is_empty());
            for r in &records {
                j.append(r).unwrap();
            }
            assert_eq!(j.records(), 3);
        }
        let replay = replay_path(&path).unwrap();
        assert_eq!(replay.records, records);
        assert_eq!(replay.torn_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_discarded_and_truncated_on_reopen() {
        let path = tmp("torn.wal");
        {
            let (mut j, _) = Journal::open(&path, FsyncPolicy::Never).unwrap();
            j.append(&rec("t1", 0, 1.0)).unwrap();
            j.append(&rec("t1", 1, 2.0)).unwrap();
            // Crash mid-append of the third record.
            let full = j.append_torn(&rec("t1", 2, 3.0), 11).unwrap();
            assert!(full > 11);
        }
        let replay = replay_path(&path).unwrap();
        assert_eq!(replay.records.len(), 2, "torn record discarded");
        assert!(replay.torn_bytes > 0);
        assert!(replay.torn_reason.is_some());

        // Reopen truncates the tail; appending afterwards yields a
        // clean three-record journal.
        {
            let (mut j, replay) = Journal::open(&path, FsyncPolicy::Never).unwrap();
            assert_eq!(replay.records.len(), 2);
            j.append(&rec("t1", 2, 3.0)).unwrap();
        }
        let replay = replay_path(&path).unwrap();
        assert_eq!(replay.records.len(), 3);
        assert_eq!(replay.torn_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_torn_cut_point_recovers_the_acknowledged_prefix() {
        // Kill-point sweep: whatever byte the crash lands on, replay
        // recovers exactly the two acknowledged records.
        let probe = encode_frame(&rec("t1", 2, 3.0)).unwrap();
        for cut in 0..probe.len() {
            let path = tmp(&format!("cutpoint-{cut}.wal"));
            {
                let (mut j, _) = Journal::open(&path, FsyncPolicy::Never).unwrap();
                j.append(&rec("t1", 0, 1.0)).unwrap();
                j.append(&rec("t1", 1, 2.0)).unwrap();
                j.append_torn(&rec("t1", 2, 3.0), cut).unwrap();
            }
            let replay = replay_path(&path).unwrap();
            assert_eq!(replay.records.len(), 2, "cut at {cut}");
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn bitrot_mid_file_keeps_the_prefix() {
        let path = tmp("bitrot.wal");
        {
            let (mut j, _) = Journal::open(&path, FsyncPolicy::Never).unwrap();
            for i in 0..4 {
                j.append(&rec("t1", i, i as f64)).unwrap();
            }
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the second record's payload.
        let second_at = {
            let first_len = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize;
            WAL_HEADER_LEN + FRAME_HEADER_LEN + first_len
        };
        bytes[second_at + FRAME_HEADER_LEN + 3] ^= 0x40;
        let replay = replay_bytes(&bytes).unwrap();
        assert_eq!(replay.records.len(), 1, "prefix before the rot survives");
        assert!(replay
            .torn_reason
            .as_deref()
            .unwrap()
            .contains("checksum mismatch"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn live_streams_folds_retires() {
        let path = tmp("retire.wal");
        {
            let (mut j, _) = Journal::open(&path, FsyncPolicy::Never).unwrap();
            j.append(&rec("t1", 0, 1.0)).unwrap();
            j.append(&rec("t2", 0, 2.0)).unwrap();
            j.append(&rec("t1", 1, 3.0)).unwrap();
            j.append(&WalRecord::Retire {
                app: "app".into(),
                experiment: "exp".into(),
                trial: "t1".into(),
            })
            .unwrap();
            assert_eq!(j.retired(), 1);
        }
        let replay = replay_path(&path).unwrap();
        let live = replay.live_streams();
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].0 .2, "t2");
        assert_eq!(live[0].1.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compact_drops_retired_streams_and_stays_appendable() {
        let path = tmp("compact.wal");
        let (mut j, _) = Journal::open(&path, FsyncPolicy::Never).unwrap();
        for i in 0..8 {
            j.append(&rec("retired", i, i as f64)).unwrap();
        }
        j.append(&rec("live", 0, 42.0)).unwrap();
        j.append(&WalRecord::Retire {
            app: "app".into(),
            experiment: "exp".into(),
            trial: "retired".into(),
        })
        .unwrap();
        let stats = j.compact().unwrap();
        assert_eq!(stats.before, 10);
        assert_eq!(stats.after, 1);
        assert_eq!(j.records(), 1);
        assert_eq!(j.retired(), 0);

        // The journal accepts appends after the rewrite, and replay
        // sees both generations' records.
        j.append(&rec("live", 1, 43.0)).unwrap();
        drop(j);
        let replay = replay_path(&path).unwrap();
        assert_eq!(replay.records.len(), 2);
        let live = replay.live_streams();
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].1.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_rejects_non_journal_bytes() {
        assert!(replay_bytes(b"not a journal at all").is_err());
        assert!(replay_bytes(&[0x50]).is_err());
        // Empty is an empty journal, not an error.
        assert!(replay_bytes(b"").unwrap().records.is_empty());
    }

    #[test]
    fn missing_file_replays_empty() {
        let replay = replay_path(Path::new("/nonexistent/never/journal.wal")).unwrap();
        assert!(replay.records.is_empty());
    }

    #[test]
    fn every_n_policy_syncs_periodically() {
        // Behavioural smoke: the policy path executes; durability of
        // the OS page cache is not observable from here.
        let path = tmp("everyn.wal");
        let (mut j, _) = Journal::open(&path, FsyncPolicy::EveryN(3)).unwrap();
        for i in 0..7 {
            j.append(&rec("t", i, 0.0)).unwrap();
        }
        j.sync().unwrap();
        drop(j);
        assert_eq!(replay_path(&path).unwrap().records.len(), 7);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streamed_replay_rebuilds_identical_trial() {
        use crate::streaming::StreamingTrial;
        // The recovery contract end to end: apply chunks to a live
        // stream while journaling, "crash", replay, rebuild — the
        // rebuilt trial's profile is byte-identical.
        let path = tmp("rebuild.wal");
        let chunks: Vec<ChunkBatch> = (0..5).map(|i| chunk(i, i as f64 * 1.5)).collect();
        let mut live = StreamingTrial::new("t", 2);
        {
            let (mut j, _) = Journal::open(&path, FsyncPolicy::Always).unwrap();
            for c in &chunks {
                j.append(&WalRecord::Chunk {
                    app: "app".into(),
                    experiment: "exp".into(),
                    trial: "t".into(),
                    batch: c.clone(),
                })
                .unwrap();
                live.apply_chunk(c).unwrap();
            }
        }
        let replay = replay_path(&path).unwrap();
        let streams = replay.live_streams();
        assert_eq!(streams.len(), 1);
        let mut rebuilt = StreamingTrial::new("t", 2);
        for batch in &streams[0].1 {
            rebuilt.apply_chunk(batch).unwrap();
        }
        assert_eq!(rebuilt.trial().profile, live.trial().profile);
        std::fs::remove_file(&path).ok();
    }
}
