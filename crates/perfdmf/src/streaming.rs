//! Streaming (delta) trial construction.
//!
//! The batch path loads a whole profile, then analyses it. A live
//! monitor cannot wait for the run to finish: the simulator's profiling
//! layer flushes *column deltas* mid-execution and the analysis side
//! folds them into a growing trial as they arrive. This module is the
//! receiving half of that pipeline:
//!
//! * [`ColumnDelta`] — additive measurements for one `(metric, event)`
//!   column, sparse over threads.
//! * [`ChunkBatch`] — a flush unit: a sequence number plus the deltas
//!   accumulated since the previous flush.
//! * [`StreamingTrial`] — folds batches into a columnar [`Trial`]
//!   in place. Metric/event names are interned once through the
//!   profile's O(1) index tables; new events append a block at the end
//!   of the arena ([`Profile::add_event`] is amortised O(1)), so a
//!   chunk costs O(cells in the chunk), not O(events × threads).
//!
//! Robustness contract (the chaos stage leans on it): deltas are
//! *additive*, so batches commute — out-of-order delivery converges to
//! the same profile up to floating-point reassociation. Replayed
//! batches are detected by their sequence number and skipped. Cells
//! addressing threads outside the trial's thread axis are dropped and
//! counted, never applied and never fatal.

use crate::model::{Event, Measurement, Metric, Profile, ThreadId, Trial};
use crate::{DmfError, EventId, MetricId, Result};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Additive measurements for one `(metric, event)` column. Cells are
/// sparse: `(thread index, measurement delta)` pairs, added into the
/// trial's existing cells on application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnDelta {
    /// Metric name (interned on first sight).
    pub metric: String,
    /// Full event (callpath) name, interned on first sight.
    pub event: String,
    /// Region-kind tag for a first-sight event (`None` keeps the
    /// default kind).
    #[serde(default)]
    pub event_kind: Option<String>,
    /// Sparse per-thread deltas, added to the current cell values.
    pub cells: Vec<(u32, Measurement)>,
}

/// One flush unit from a producer: everything measured since the
/// previous flush, tagged with a monotone sequence number for replay
/// suppression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChunkBatch {
    /// Producer-assigned sequence number, unique per trial stream.
    pub seq: u64,
    /// Thread-axis size of the producing run. A [`StreamingTrial`]
    /// created from a batch uses it to size the thread axis; existing
    /// trials ignore it.
    pub threads: u32,
    /// The deltas, in the producer's first-touch column order.
    pub deltas: Vec<ColumnDelta>,
}

/// One applied column: the resolved ids plus which threads changed.
/// Downstream incremental analyses use this as their dirty set.
#[derive(Debug, Clone, PartialEq)]
pub struct TouchedColumn {
    /// Resolved metric id in the target trial.
    pub metric: MetricId,
    /// Resolved event id in the target trial.
    pub event: EventId,
    /// Thread indices whose cells changed, in delta order (deduplicated).
    pub threads: Vec<u32>,
}

/// Application record of one [`ChunkBatch`]: what changed, what was
/// new, and what had to be dropped.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AppliedChunk {
    /// The batch's sequence number.
    pub seq: u64,
    /// The batch was a replay of an already-applied sequence number and
    /// was skipped entirely.
    pub duplicate: bool,
    /// Every column the batch changed, with resolved ids.
    pub touched: Vec<TouchedColumn>,
    /// Events interned by this batch (appended arena blocks).
    pub new_events: Vec<EventId>,
    /// Metrics interned by this batch (arena rebuilds — producers
    /// should announce their metric set in the first batch).
    pub new_metrics: Vec<MetricId>,
    /// Cells addressing threads outside the trial's thread axis,
    /// dropped instead of applied.
    pub dropped_cells: usize,
}

impl AppliedChunk {
    /// Total cells applied across all touched columns.
    pub fn applied_cells(&self) -> usize {
        self.touched.iter().map(|t| t.threads.len()).sum()
    }
}

/// A trial under construction from a delta stream.
///
/// Wraps an ordinary [`Trial`] so every batch lands directly in the
/// columnar arena; [`StreamingTrial::trial`] exposes the current state
/// to batch analyses at any point, and [`StreamingTrial::finish`]
/// releases it.
#[derive(Debug, Clone)]
pub struct StreamingTrial {
    trial: Trial,
    /// Sequence numbers already applied (replay suppression).
    seen: HashSet<u64>,
}

impl StreamingTrial {
    /// Starts an empty streamed trial over `n` flat threads.
    pub fn new(name: impl Into<String>, threads: usize) -> Self {
        StreamingTrial {
            trial: Trial::new(
                name,
                Profile::new((0..threads as u32).map(ThreadId::flat).collect()),
            ),
            seen: HashSet::new(),
        }
    }

    /// Adopts an existing trial as the stream target (e.g. the overlay
    /// copy a service shard already holds). Subsequent batches append
    /// to it; previously applied sequence numbers are unknown, so
    /// replay suppression restarts.
    pub fn from_trial(trial: Trial) -> Self {
        StreamingTrial {
            trial,
            seen: HashSet::new(),
        }
    }

    /// Starts a streamed trial sized for `batch`'s thread axis, then
    /// applies it. The usual bootstrap when the first thing a consumer
    /// sees *is* a batch.
    pub fn from_batch(name: impl Into<String>, batch: &ChunkBatch) -> Result<(Self, AppliedChunk)> {
        let mut s = StreamingTrial::new(name, batch.threads as usize);
        let applied = s.apply_chunk(batch)?;
        Ok((s, applied))
    }

    /// The current state of the streamed trial.
    pub fn trial(&self) -> &Trial {
        &self.trial
    }

    /// Number of distinct batches applied so far.
    pub fn batches_applied(&self) -> usize {
        self.seen.len()
    }

    /// Whether a batch with this sequence number was already applied
    /// (applying it again would be a suppressed duplicate). Lets a
    /// journaling caller skip re-logging redelivered chunks.
    pub fn contains_seq(&self, seq: u64) -> bool {
        self.seen.contains(&seq)
    }

    /// Sets a metadata field on the trial.
    pub fn meta(&mut self, key: &str, value: impl Into<crate::MetaValue>) {
        self.trial.metadata.set(key, value);
    }

    /// Releases the assembled trial.
    pub fn finish(self) -> Trial {
        self.trial
    }

    /// Folds one batch into the trial.
    ///
    /// Additive and replay-safe: cells are `+=`'d into the arena,
    /// an already-seen `seq` returns `duplicate: true` without touching
    /// anything, and out-of-range thread indices are counted in
    /// `dropped_cells` rather than failing the batch. The only hard
    /// error is a profile whose interned index is corrupt (duplicate
    /// names), which [`Profile::add_metric`]/[`Profile::add_event`]
    /// surface as [`DmfError::Duplicate`] — that cannot happen for
    /// profiles this type built itself.
    pub fn apply_chunk(&mut self, batch: &ChunkBatch) -> Result<AppliedChunk> {
        let mut applied = AppliedChunk {
            seq: batch.seq,
            ..AppliedChunk::default()
        };
        if self.seen.contains(&batch.seq) {
            applied.duplicate = true;
            return Ok(applied);
        }
        let profile = &mut self.trial.profile;
        let n_threads = profile.thread_count() as u32;
        for delta in &batch.deltas {
            let metric = match profile.metric_id(&delta.metric) {
                Some(id) => id,
                None => {
                    let id = profile.add_metric(Metric::measured(&delta.metric))?;
                    applied.new_metrics.push(id);
                    id
                }
            };
            let event = match profile.event_id(&delta.event) {
                Some(id) => id,
                None => {
                    let ev = match &delta.event_kind {
                        Some(kind) => Event::with_kind(&delta.event, kind),
                        None => Event::new(&delta.event),
                    };
                    let id = profile.add_event(ev)?;
                    applied.new_events.push(id);
                    id
                }
            };
            let mut touched = TouchedColumn {
                metric,
                event,
                threads: Vec::with_capacity(delta.cells.len()),
            };
            for &(thread, m) in &delta.cells {
                if thread >= n_threads {
                    applied.dropped_cells += 1;
                    continue;
                }
                let cell = profile
                    .get_mut(event, metric, thread as usize)
                    .ok_or_else(|| DmfError::NotFound {
                        kind: "profile cell",
                        name: format!("event {event:?} metric {metric:?} thread {thread}"),
                    })?;
                cell.inclusive += m.inclusive;
                cell.exclusive += m.exclusive;
                cell.calls += m.calls;
                cell.subcalls += m.subcalls;
                if !touched.threads.contains(&thread) {
                    touched.threads.push(thread);
                }
            }
            if !touched.threads.is_empty() || !delta.cells.is_empty() {
                applied.touched.push(touched);
            }
        }
        self.seen.insert(batch.seq);
        Ok(applied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(metric: &str, event: &str, cells: &[(u32, f64)]) -> ColumnDelta {
        ColumnDelta {
            metric: metric.into(),
            event: event.into(),
            event_kind: None,
            cells: cells
                .iter()
                .map(|&(t, v)| (t, Measurement::leaf(v)))
                .collect(),
        }
    }

    fn batch(seq: u64, threads: u32, deltas: Vec<ColumnDelta>) -> ChunkBatch {
        ChunkBatch {
            seq,
            threads,
            deltas,
        }
    }

    #[test]
    fn chunks_accumulate_into_cells() {
        let mut s = StreamingTrial::new("t", 2);
        let a = s
            .apply_chunk(&batch(
                0,
                2,
                vec![delta("TIME", "main", &[(0, 1.0), (1, 2.0)])],
            ))
            .unwrap();
        assert_eq!(a.new_metrics.len(), 1);
        assert_eq!(a.new_events.len(), 1);
        assert_eq!(a.applied_cells(), 2);
        s.apply_chunk(&batch(1, 2, vec![delta("TIME", "main", &[(0, 3.0)])]))
            .unwrap();
        let p = &s.trial().profile;
        let m = p.metric_id("TIME").unwrap();
        let e = p.event_id("main").unwrap();
        assert_eq!(p.get(e, m, 0).unwrap().inclusive, 4.0);
        assert_eq!(p.get(e, m, 0).unwrap().calls, 2.0);
        assert_eq!(p.get(e, m, 1).unwrap().inclusive, 2.0);
    }

    #[test]
    fn duplicate_seq_is_skipped() {
        let mut s = StreamingTrial::new("t", 1);
        let b = batch(7, 1, vec![delta("TIME", "main", &[(0, 1.0)])]);
        assert!(!s.apply_chunk(&b).unwrap().duplicate);
        let replay = s.apply_chunk(&b).unwrap();
        assert!(replay.duplicate);
        assert!(replay.touched.is_empty());
        let p = &s.trial().profile;
        let m = p.metric_id("TIME").unwrap();
        let e = p.event_id("main").unwrap();
        assert_eq!(p.get(e, m, 0).unwrap().inclusive, 1.0);
        assert_eq!(s.batches_applied(), 1);
    }

    #[test]
    fn out_of_order_batches_commute() {
        let b1 = batch(1, 1, vec![delta("TIME", "main", &[(0, 1.0)])]);
        let b2 = batch(2, 1, vec![delta("TIME", "main => k", &[(0, 5.0)])]);
        let mut fwd = StreamingTrial::new("t", 1);
        fwd.apply_chunk(&b1).unwrap();
        fwd.apply_chunk(&b2).unwrap();
        let mut rev = StreamingTrial::new("t", 1);
        rev.apply_chunk(&b2).unwrap();
        rev.apply_chunk(&b1).unwrap();
        // Same cell values; interning order differs with arrival order.
        for (p, q) in [(&fwd, &rev), (&rev, &fwd)] {
            let pp = &p.trial().profile;
            let qp = &q.trial().profile;
            for name in ["main", "main => k"] {
                let (pe, pm) = (pp.event_id(name).unwrap(), pp.metric_id("TIME").unwrap());
                let (qe, qm) = (qp.event_id(name).unwrap(), qp.metric_id("TIME").unwrap());
                assert_eq!(pp.get(pe, pm, 0), qp.get(qe, qm, 0));
            }
        }
    }

    #[test]
    fn out_of_range_threads_are_dropped_not_fatal() {
        let mut s = StreamingTrial::new("t", 2);
        let a = s
            .apply_chunk(&batch(
                0,
                2,
                vec![delta("TIME", "main", &[(0, 1.0), (9, 5.0), (1, 2.0)])],
            ))
            .unwrap();
        assert_eq!(a.dropped_cells, 1);
        assert_eq!(a.applied_cells(), 2);
        let p = &s.trial().profile;
        let m = p.metric_id("TIME").unwrap();
        let e = p.event_id("main").unwrap();
        assert_eq!(p.get(e, m, 1).unwrap().inclusive, 2.0);
    }

    #[test]
    fn event_kind_applies_on_first_sight() {
        let mut s = StreamingTrial::new("t", 1);
        let mut d = delta("TIME", "main => loop", &[(0, 1.0)]);
        d.event_kind = Some("loop".into());
        s.apply_chunk(&batch(0, 1, vec![d])).unwrap();
        let p = &s.trial().profile;
        let e = p.event_id("main => loop").unwrap();
        assert_eq!(p.event(e).kind.as_deref(), Some("loop"));
    }

    #[test]
    fn from_batch_sizes_threads_from_the_batch() {
        let b = batch(0, 4, vec![delta("TIME", "main", &[(3, 1.0)])]);
        let (s, a) = StreamingTrial::from_batch("t", &b).unwrap();
        assert_eq!(s.trial().profile.thread_count(), 4);
        assert_eq!(a.applied_cells(), 1);
        assert_eq!(a.dropped_cells, 0);
    }

    #[test]
    fn batch_serde_round_trips() {
        let b = batch(
            3,
            2,
            vec![
                delta("TIME", "main", &[(0, 1.5), (1, 2.5)]),
                ColumnDelta {
                    metric: "FP_OPS".into(),
                    event: "main => k".into(),
                    event_kind: Some("loop".into()),
                    cells: vec![(1, Measurement::leaf(7.0))],
                },
            ],
        );
        let json = serde_json::to_string(&b).unwrap();
        let back: ChunkBatch = serde_json::from_str(&json).unwrap();
        assert_eq!(b, back);
        // Truncated documents fail to parse instead of panicking.
        assert!(serde_json::from_str::<ChunkBatch>(&json[..json.len() / 2]).is_err());
    }

    #[test]
    fn streamed_trial_matches_builder_built_trial() {
        use crate::TrialBuilder;
        let mut b = TrialBuilder::with_flat_threads("t", 2);
        let time = b.metric("TIME");
        let main = b.event("main");
        let inner = b.event("main => k");
        b.set(main, time, 0, Measurement::leaf(3.0));
        b.set(main, time, 1, Measurement::leaf(4.0));
        b.set(inner, time, 0, Measurement::leaf(1.0));
        let built = b.build();

        let mut s = StreamingTrial::new("t", 2);
        s.apply_chunk(&batch(
            0,
            2,
            vec![
                delta("TIME", "main", &[(0, 3.0), (1, 4.0)]),
                delta("TIME", "main => k", &[(0, 1.0)]),
            ],
        ))
        .unwrap();
        assert_eq!(s.finish().profile, built.profile);
    }
}
