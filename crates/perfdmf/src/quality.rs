//! Ingest sanitization: validate → repair-or-quarantine.
//!
//! [`validate`](crate::validate) *reports* inconsistencies; this module
//! is the ingest-side half of the robustness story: it walks a freshly
//! imported profile, repairs every cell it can (non-finite counters,
//! negative values, exclusive above inclusive, time without calls) and
//! quarantines whole metrics or events it cannot (duplicate names from
//! a corrupt store, columns that are mostly garbage). Every action is
//! recorded in a typed [`DataQuality`] report so an unattended pipeline
//! can say exactly what it changed and what it threw away — degraded
//! data never flows into an analysis silently.

use crate::model::{EventId, Metric, MetricId, Profile, Trial};
use std::collections::HashSet;

/// Tuning knobs for the sanitization pass.
#[derive(Debug, Clone)]
pub struct QualityConfig {
    /// A metric or event whose fraction of non-finite cells exceeds
    /// this is quarantined (dropped whole) instead of repaired
    /// cell-by-cell: a column that is mostly garbage carries no signal,
    /// and zero-filling it would fabricate one.
    pub max_bad_fraction: f64,
}

impl Default for QualityConfig {
    fn default() -> Self {
        QualityConfig {
            max_bad_fraction: 0.5,
        }
    }
}

/// One cell-level repair that was performed.
#[derive(Debug, Clone, PartialEq)]
pub enum RepairAction {
    /// A NaN or infinite field was replaced with zero.
    ReplacedNonFinite {
        /// Field name ("inclusive", "exclusive", "calls", "subcalls").
        field: &'static str,
        /// The offending value, stringified (`"NaN"`, `"inf"`, ...).
        was: String,
    },
    /// A negative field was clamped to zero.
    ClampedNegative {
        /// Field name.
        field: &'static str,
        /// The offending value.
        was: f64,
    },
    /// `exclusive > inclusive`; exclusive was clamped down.
    ClampedExclusive {
        /// The offending exclusive value.
        exclusive: f64,
        /// The inclusive value it was clamped to.
        inclusive: f64,
    },
    /// A `TIME` cell carried a value with zero calls; calls set to one.
    RestoredCalls {
        /// The inclusive value that was present.
        inclusive: f64,
    },
}

/// A repaired cell: where, and what was done.
#[derive(Debug, Clone, PartialEq)]
pub struct Repair {
    /// Event name.
    pub event: String,
    /// Metric name.
    pub metric: String,
    /// Thread index.
    pub thread: usize,
    /// The repair performed.
    pub action: RepairAction,
}

/// Why a metric or event was quarantined.
#[derive(Debug, Clone, PartialEq)]
pub enum QuarantineReason {
    /// Too many non-finite cells to repair credibly.
    MostlyNonFinite {
        /// Number of non-finite cells.
        bad_cells: usize,
        /// Total cells in the column set.
        total: usize,
    },
    /// The name duplicates an earlier metric/event — a corrupt or
    /// hand-edited store; the first occurrence wins.
    DuplicateName,
}

/// One quarantined (dropped) metric or event.
#[derive(Debug, Clone, PartialEq)]
pub struct Quarantine {
    /// `"metric"` or `"event"`.
    pub kind: &'static str,
    /// Name of the dropped entity.
    pub name: String,
    /// Why it was dropped.
    pub reason: QuarantineReason,
}

/// The typed report of everything the sanitization pass did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DataQuality {
    /// Cell-level repairs, in scan order.
    pub repairs: Vec<Repair>,
    /// Whole metrics/events dropped.
    pub quarantined: Vec<Quarantine>,
}

impl DataQuality {
    /// Whether the profile needed no intervention at all.
    pub fn is_clean(&self) -> bool {
        self.repairs.is_empty() && self.quarantined.is_empty()
    }

    /// One-line-per-action human rendering, for report output.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            return "data quality: clean".to_string();
        }
        let mut out = format!(
            "data quality: {} repair(s), {} quarantined",
            self.repairs.len(),
            self.quarantined.len()
        );
        for q in &self.quarantined {
            let why = match &q.reason {
                QuarantineReason::MostlyNonFinite { bad_cells, total } => {
                    format!("{bad_cells}/{total} cells non-finite")
                }
                QuarantineReason::DuplicateName => "duplicate name".to_string(),
            };
            out.push_str(&format!("\n  quarantined {} {:?}: {}", q.kind, q.name, why));
        }
        for r in &self.repairs {
            let what = match &r.action {
                RepairAction::ReplacedNonFinite { field, was } => {
                    format!("{field} was {was}, set to 0")
                }
                RepairAction::ClampedNegative { field, was } => {
                    format!("{field} was {was}, clamped to 0")
                }
                RepairAction::ClampedExclusive {
                    exclusive,
                    inclusive,
                } => format!("exclusive {exclusive} clamped to inclusive {inclusive}"),
                RepairAction::RestoredCalls { inclusive } => {
                    format!("calls restored to 1 (inclusive {inclusive})")
                }
            };
            out.push_str(&format!(
                "\n  repaired {}[{}] thread {}: {}",
                r.metric, r.event, r.thread, what
            ));
        }
        out
    }
}

const FIELDS: [&str; 4] = ["inclusive", "exclusive", "calls", "subcalls"];

fn field_values(m: &crate::Measurement) -> [f64; 4] {
    [m.inclusive, m.exclusive, m.calls, m.subcalls]
}

/// Sanitizes a profile in place; returns the report of every repair and
/// quarantine. A clean profile comes back bit-identical with an empty
/// report.
pub fn sanitize_profile(profile: &mut Profile, config: &QualityConfig) -> DataQuality {
    let mut quality = DataQuality::default();

    // Pass 1: duplicate names. The interned index cannot hold two
    // entries for one name, so duplicates are unreachable through the
    // normal lookup path — quarantine every occurrence after the first.
    let mut seen: HashSet<String> = HashSet::new();
    let mut keep_metrics: Vec<usize> = Vec::new();
    for (i, m) in profile.metrics().iter().enumerate() {
        if seen.insert(m.name.clone()) {
            keep_metrics.push(i);
        } else {
            quality.quarantined.push(Quarantine {
                kind: "metric",
                name: m.name.clone(),
                reason: QuarantineReason::DuplicateName,
            });
        }
    }
    seen.clear();
    let mut keep_events: Vec<usize> = Vec::new();
    for (i, e) in profile.events().iter().enumerate() {
        if seen.insert(e.name.clone()) {
            keep_events.push(i);
        } else {
            quality.quarantined.push(Quarantine {
                kind: "event",
                name: e.name.clone(),
                reason: QuarantineReason::DuplicateName,
            });
        }
    }

    // Pass 2: non-finite census per metric and per event (over the
    // surviving axes), quarantining columns that are mostly garbage.
    let nt = profile.thread_count();
    if nt > 0 && !keep_metrics.is_empty() && !keep_events.is_empty() {
        let bad = |m: &crate::Measurement| field_values(m).iter().any(|v| !v.is_finite());
        let count_bad = |p: &Profile, es: &[usize], ms: &[usize], by_metric: bool, axis: usize| {
            let mut n = 0usize;
            for &e in es {
                for &m in ms {
                    if (by_metric && m != axis) || (!by_metric && e != axis) {
                        continue;
                    }
                    n += p
                        .column(EventId(e as u32), MetricId(m as u32))
                        .iter()
                        .filter(|c| bad(c))
                        .count();
                }
            }
            n
        };
        let mut still_metrics: Vec<usize> = Vec::new();
        for &m in &keep_metrics {
            let bad_cells = count_bad(profile, &keep_events, &keep_metrics, true, m);
            let total = keep_events.len() * nt;
            if bad_cells as f64 > config.max_bad_fraction * total as f64 {
                quality.quarantined.push(Quarantine {
                    kind: "metric",
                    name: profile.metrics()[m].name.clone(),
                    reason: QuarantineReason::MostlyNonFinite { bad_cells, total },
                });
            } else {
                still_metrics.push(m);
            }
        }
        keep_metrics = still_metrics;
        let mut still_events: Vec<usize> = Vec::new();
        for &e in &keep_events {
            let bad_cells = count_bad(profile, &keep_events, &keep_metrics, false, e);
            let total = keep_metrics.len() * nt;
            if total > 0 && bad_cells as f64 > config.max_bad_fraction * total as f64 {
                quality.quarantined.push(Quarantine {
                    kind: "event",
                    name: profile.events()[e].name.clone(),
                    reason: QuarantineReason::MostlyNonFinite { bad_cells, total },
                });
            } else {
                still_events.push(e);
            }
        }
        keep_events = still_events;
    }

    if !quality.quarantined.is_empty() {
        *profile = retain_axes(profile, &keep_events, &keep_metrics);
    }

    // Pass 3: cell-by-cell repairs on what survived.
    let metric_names: Vec<String> = profile.metrics().iter().map(|m| m.name.clone()).collect();
    let event_names: Vec<String> = profile.events().iter().map(|e| e.name.clone()).collect();
    for (e, m, col) in profile.columns_mut() {
        let metric = &metric_names[m.0 as usize];
        let event = &event_names[e.0 as usize];
        let is_time = metric == "TIME";
        for (t, cell) in col.iter_mut().enumerate() {
            for (i, field) in FIELDS.iter().enumerate() {
                let v = field_values(cell)[i];
                if !v.is_finite() {
                    quality.repairs.push(Repair {
                        event: event.clone(),
                        metric: metric.clone(),
                        thread: t,
                        action: RepairAction::ReplacedNonFinite {
                            field,
                            was: v.to_string(),
                        },
                    });
                    set_field(cell, i, 0.0);
                } else if v < 0.0 {
                    quality.repairs.push(Repair {
                        event: event.clone(),
                        metric: metric.clone(),
                        thread: t,
                        action: RepairAction::ClampedNegative { field, was: v },
                    });
                    set_field(cell, i, 0.0);
                }
            }
            if cell.exclusive > cell.inclusive {
                quality.repairs.push(Repair {
                    event: event.clone(),
                    metric: metric.clone(),
                    thread: t,
                    action: RepairAction::ClampedExclusive {
                        exclusive: cell.exclusive,
                        inclusive: cell.inclusive,
                    },
                });
                cell.exclusive = cell.inclusive;
            }
            if is_time && cell.calls == 0.0 && cell.inclusive != 0.0 {
                quality.repairs.push(Repair {
                    event: event.clone(),
                    metric: metric.clone(),
                    thread: t,
                    action: RepairAction::RestoredCalls {
                        inclusive: cell.inclusive,
                    },
                });
                cell.calls = 1.0;
            }
        }
    }
    quality
}

fn set_field(m: &mut crate::Measurement, i: usize, v: f64) {
    match i {
        0 => m.inclusive = v,
        1 => m.exclusive = v,
        2 => m.calls = v,
        _ => m.subcalls = v,
    }
}

/// Rebuilds a profile keeping only the given event/metric indices.
fn retain_axes(src: &Profile, keep_events: &[usize], keep_metrics: &[usize]) -> Profile {
    let mut out = Profile::with_capacity(
        src.threads().to_vec(),
        keep_events.len(),
        keep_metrics.len(),
    );
    let mut added_m: Vec<usize> = Vec::new();
    for &m in keep_metrics {
        let metric = src.metrics()[m].clone();
        if out
            .add_metric(Metric {
                name: metric.name,
                derived: metric.derived,
            })
            .is_ok()
        {
            added_m.push(m);
        }
    }
    let mut added_e: Vec<usize> = Vec::new();
    for &e in keep_events {
        if out.add_event(src.events()[e].clone()).is_ok() {
            added_e.push(e);
        }
    }
    for (oe, &e) in added_e.iter().enumerate() {
        for (om, &m) in added_m.iter().enumerate() {
            let src_col = src.column(EventId(e as u32), MetricId(m as u32));
            out.column_mut(EventId(oe as u32), MetricId(om as u32))
                .copy_from_slice(src_col);
        }
    }
    out
}

/// Sanitizes a trial's profile in place.
pub fn sanitize_trial(trial: &mut Trial, config: &QualityConfig) -> DataQuality {
    sanitize_profile(&mut trial.profile, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Measurement, TrialBuilder};

    fn trial() -> Trial {
        let mut b = TrialBuilder::with_flat_threads("t", 2);
        let time = b.metric("TIME");
        let cyc = b.metric("CPU_CYCLES");
        let main = b.event("main");
        let k = b.event("main => k");
        for t in 0..2 {
            b.set(
                main,
                time,
                t,
                Measurement {
                    inclusive: 10.0,
                    exclusive: 4.0,
                    calls: 1.0,
                    subcalls: 1.0,
                },
            );
            b.set(k, time, t, Measurement::leaf(6.0));
            b.set(main, cyc, t, Measurement::leaf(1e6));
            b.set(k, cyc, t, Measurement::leaf(5e5));
        }
        b.build()
    }

    #[test]
    fn clean_profile_is_untouched() {
        let mut t = trial();
        let before = t.clone();
        let q = sanitize_trial(&mut t, &QualityConfig::default());
        assert!(q.is_clean());
        assert_eq!(t, before);
        assert_eq!(q.summary(), "data quality: clean");
    }

    #[test]
    fn nan_cell_is_repaired_and_reported() {
        let mut t = trial();
        let time = t.profile.metric_id("TIME").unwrap();
        let main = t.profile.event_id("main").unwrap();
        t.profile.column_mut(main, time)[1].exclusive = f64::NAN;
        let q = sanitize_trial(&mut t, &QualityConfig::default());
        assert_eq!(q.repairs.len(), 1);
        assert_eq!(
            q.repairs[0],
            Repair {
                event: "main".into(),
                metric: "TIME".into(),
                thread: 1,
                action: RepairAction::ReplacedNonFinite {
                    field: "exclusive",
                    was: "NaN".into(),
                },
            }
        );
        assert_eq!(t.profile.column(main, time)[1].exclusive, 0.0);
        assert!(q.summary().contains("repaired TIME[main] thread 1"));
    }

    #[test]
    fn negative_and_inverted_cells_are_clamped() {
        let mut t = trial();
        let time = t.profile.metric_id("TIME").unwrap();
        let k = t.profile.event_id("main => k").unwrap();
        t.profile.column_mut(k, time)[0] = Measurement {
            inclusive: 2.0,
            exclusive: 5.0,
            calls: -3.0,
            subcalls: 0.0,
        };
        let q = sanitize_trial(&mut t, &QualityConfig::default());
        let cell = t.profile.column(k, time)[0];
        assert_eq!(cell.calls, 1.0); // clamped to 0, then restored for TIME
        assert_eq!(cell.exclusive, 2.0);
        assert!(q.repairs.iter().any(|r| matches!(
            r.action,
            RepairAction::ClampedNegative { field: "calls", .. }
        )));
        assert!(q
            .repairs
            .iter()
            .any(|r| matches!(r.action, RepairAction::ClampedExclusive { .. })));
    }

    #[test]
    fn mostly_nan_metric_is_quarantined() {
        let mut t = trial();
        let cyc = t.profile.metric_id("CPU_CYCLES").unwrap();
        for ei in 0..t.profile.event_count() {
            let col = t.profile.column_mut(crate::EventId(ei as u32), cyc);
            for cell in col.iter_mut() {
                cell.inclusive = f64::NAN;
                cell.exclusive = f64::NAN;
            }
        }
        let q = sanitize_trial(&mut t, &QualityConfig::default());
        assert!(q.quarantined.iter().any(|qq| {
            qq.kind == "metric"
                && qq.name == "CPU_CYCLES"
                && matches!(qq.reason, QuarantineReason::MostlyNonFinite { .. })
        }));
        assert!(t.profile.metric_id("CPU_CYCLES").is_none());
        assert!(t.profile.metric_id("TIME").is_some());
        // TIME survives unrepaired.
        assert!(q.repairs.is_empty());
    }

    #[test]
    fn duplicate_metric_name_is_quarantined() {
        let mut t = trial();
        let cyc = t.profile.metric_id("CPU_CYCLES").unwrap();
        t.profile.corrupt_metric_name(cyc, "TIME");
        let q = sanitize_trial(&mut t, &QualityConfig::default());
        assert_eq!(
            q.quarantined,
            vec![Quarantine {
                kind: "metric",
                name: "TIME".into(),
                reason: QuarantineReason::DuplicateName,
            }]
        );
        assert_eq!(t.profile.metric_count(), 1);
        // The survivor is the original TIME column.
        let time = t.profile.metric_id("TIME").unwrap();
        let main = t.profile.event_id("main").unwrap();
        assert_eq!(t.profile.column(main, time)[0].inclusive, 10.0);
    }

    #[test]
    fn duplicate_event_name_is_quarantined() {
        let mut t = trial();
        let k = t.profile.event_id("main => k").unwrap();
        t.profile.corrupt_event_name(k, "main");
        let q = sanitize_trial(&mut t, &QualityConfig::default());
        assert!(q
            .quarantined
            .iter()
            .any(|qq| qq.kind == "event" && qq.reason == QuarantineReason::DuplicateName));
        assert_eq!(t.profile.event_count(), 1);
    }
}
