//! gprof-style flat profile reader.
//!
//! Represents the family of single-threaded, external profile formats
//! PerfDMF can ingest. The accepted layout is gprof's classic flat
//! profile table:
//!
//! ```text
//! Flat profile:
//!
//! Each sample counts as 0.01 seconds.
//!   %   cumulative   self              self     total
//!  time   seconds   seconds    calls  ms/call  ms/call  name
//!  90.01      9.00     9.00      100    90.00    95.00  compute
//!   9.99      9.99     0.99        1   990.00  9990.00  main
//! ```
//!
//! Each row becomes an event in a single-thread trial with the `TIME`
//! metric: `self seconds` → exclusive, `calls × total ms/call` →
//! inclusive (when per-call figures are present, else exclusive).

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use super::{Diagnostic, LossyTrial};
use crate::model::{Measurement, ThreadId, Trial, TrialBuilder};
use crate::{DmfError, Result};

fn parse_err(line: usize, message: impl Into<String>) -> DmfError {
    DmfError::Parse {
        format: "gprof",
        line: Some(line),
        message: message.into(),
    }
}

/// Parses one flat-profile table row into `(name, measurement)`.
fn parse_table_row(trimmed: &str, line_no: usize) -> Result<(String, Measurement)> {
    let fields: Vec<&str> = trimmed.split_whitespace().collect();
    if fields.len() < 3 {
        return Err(parse_err(line_no, "expected at least 3 columns"));
    }
    let self_seconds: f64 = fields[2]
        .parse()
        .map_err(|_| parse_err(line_no, format!("bad self-seconds {:?}", fields[2])))?;
    // Optional columns: calls, self ms/call, total ms/call. gprof
    // leaves them blank for functions it could not count.
    let (calls, total_ms_per_call, name_start) = if fields.len() >= 7 {
        let calls: f64 = fields[3]
            .parse()
            .map_err(|_| parse_err(line_no, format!("bad call count {:?}", fields[3])))?;
        let total: f64 = fields[5]
            .parse()
            .map_err(|_| parse_err(line_no, format!("bad total ms/call {:?}", fields[5])))?;
        (calls, Some(total), 6)
    } else {
        (0.0, None, 3)
    };
    let name = fields[name_start..].join(" ");
    if name.is_empty() {
        return Err(parse_err(line_no, "missing function name"));
    }
    let inclusive = match total_ms_per_call {
        Some(ms) => calls * ms / 1000.0,
        None => self_seconds,
    };
    Ok((
        name,
        Measurement {
            inclusive: inclusive.max(self_seconds),
            exclusive: self_seconds,
            calls: if calls > 0.0 { calls } else { 1.0 },
            subcalls: 0.0,
        },
    ))
}

/// Parses a gprof flat profile into a single-thread trial.
pub fn parse_flat_profile(trial_name: &str, text: &str) -> Result<Trial> {
    let mut builder = TrialBuilder::with_threads(trial_name, vec![ThreadId::flat(0)]);
    let metric = builder.metric("TIME");

    let mut in_table = false;
    let mut rows = 0usize;
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let trimmed = line.trim();
        if !in_table {
            // The data table starts after the "time seconds ..." header.
            if trimmed.starts_with("time") && trimmed.contains("name") {
                in_table = true;
            }
            continue;
        }
        if trimmed.is_empty() {
            break; // flat profile table ends at the first blank line
        }
        let (name, m) = parse_table_row(trimmed, line_no)?;
        let ev = builder.event(&name);
        builder.set(ev, metric, 0, m);
        rows += 1;
    }
    if rows == 0 {
        return Err(DmfError::Parse {
            format: "gprof",
            line: None,
            message: "no flat profile table found".into(),
        });
    }
    Ok(builder.build())
}

/// Lossy variant of [`parse_flat_profile`]: malformed table rows are
/// skipped with a diagnostic instead of aborting the parse. Returns no
/// trial only when not a single row was usable (including when no table
/// header was found at all).
pub fn parse_flat_profile_lossy(trial_name: &str, text: &str) -> LossyTrial {
    let mut builder = TrialBuilder::with_threads(trial_name, vec![ThreadId::flat(0)]);
    let metric = builder.metric("TIME");
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let diag = |line: Option<usize>, message: String| Diagnostic {
        format: "gprof",
        line,
        message,
    };

    let mut in_table = false;
    let mut rows_kept = 0usize;
    let mut rows_dropped = 0usize;
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let trimmed = line.trim();
        if !in_table {
            if trimmed.starts_with("time") && trimmed.contains("name") {
                in_table = true;
            }
            continue;
        }
        if trimmed.is_empty() {
            break; // flat profile table ends at the first blank line
        }
        match parse_table_row(trimmed, line_no) {
            Ok((name, m)) => {
                let ev = builder.event(&name);
                builder.set(ev, metric, 0, m);
                rows_kept += 1;
            }
            Err(e) => {
                let (line, message) = match e {
                    DmfError::Parse { line, message, .. } => (line, message),
                    other => (Some(line_no), other.to_string()),
                };
                diagnostics.push(diag(line, format!("row skipped: {message}")));
                rows_dropped += 1;
            }
        }
    }
    if rows_kept == 0 {
        diagnostics.push(diag(
            None,
            if in_table {
                "no usable rows in flat profile table".into()
            } else {
                "no flat profile table found".into()
            },
        ));
        return LossyTrial {
            trial: None,
            diagnostics,
            rows_kept,
            rows_dropped,
        };
    }
    LossyTrial {
        trial: Some(builder.build()),
        diagnostics,
        rows_kept,
        rows_dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
Flat profile:

Each sample counts as 0.01 seconds.
  %   cumulative   self              self     total
 time   seconds   seconds    calls  ms/call  ms/call  name
 90.01      9.00     9.00      100    90.00    95.00  compute
  9.99      9.99     0.99        1   990.00  9990.00  main

            some other section
";

    #[test]
    fn parses_sample() {
        let t = parse_flat_profile("gprof", SAMPLE).unwrap();
        assert_eq!(t.profile.thread_count(), 1);
        let time = t.profile.metric_id("TIME").unwrap();
        let compute = t.profile.event_id("compute").unwrap();
        let c = t.profile.get(compute, time, 0).unwrap();
        assert_eq!(c.exclusive, 9.0);
        assert_eq!(c.calls, 100.0);
        assert!((c.inclusive - 9.5).abs() < 1e-9);
        let main = t.profile.event_id("main").unwrap();
        let m = t.profile.get(main, time, 0).unwrap();
        assert!((m.inclusive - 9.99).abs() < 1e-9);
    }

    #[test]
    fn handles_rows_without_call_counts() {
        let text = "\
  %   cumulative   self              self     total
 time   seconds   seconds    calls  ms/call  ms/call  name
 50.00      1.00     1.00  mcount (internal)
";
        let t = parse_flat_profile("g", text).unwrap();
        let time = t.profile.metric_id("TIME").unwrap();
        let e = t.profile.event_id("mcount (internal)").unwrap();
        let c = t.profile.get(e, time, 0).unwrap();
        assert_eq!(c.exclusive, 1.0);
        assert_eq!(c.inclusive, 1.0);
        assert_eq!(c.calls, 1.0);
    }

    #[test]
    fn no_table_is_error() {
        assert!(parse_flat_profile("g", "nothing here\n").is_err());
        assert!(parse_flat_profile("g", "").is_err());
    }

    #[test]
    fn bad_numbers_are_errors() {
        let text = "\
 time   seconds   seconds    calls  ms/call  ms/call  name
 50.00      1.00     abc      100     1.0      1.0    f
";
        assert!(parse_flat_profile("g", text).is_err());
    }

    #[test]
    fn table_ends_at_blank_line() {
        let t = parse_flat_profile("g", SAMPLE).unwrap();
        // "some other section" must not have been parsed as an event.
        assert_eq!(t.profile.events().len(), 2);
    }

    #[test]
    fn lossy_parse_skips_bad_rows() {
        let text = "\
 time   seconds   seconds    calls  ms/call  ms/call  name
 50.00      1.00     abc      100     1.0      1.0    broken
 50.00      1.00     1.00      100     1.0      1.0    good
";
        let out = parse_flat_profile_lossy("g", text);
        let t = out.trial.unwrap();
        assert!(t.profile.event_id("good").is_some());
        assert!(t.profile.event_id("broken").is_none());
        assert_eq!(out.rows_kept, 1);
        assert_eq!(out.rows_dropped, 1);
        assert_eq!(out.diagnostics.len(), 1);
        assert!(out.diagnostics[0].message.contains("bad self-seconds"));
        assert_eq!(out.diagnostics[0].line, Some(2));
    }

    #[test]
    fn lossy_parse_without_table_is_none() {
        let out = parse_flat_profile_lossy("g", "nothing here\n");
        assert!(out.trial.is_none());
        assert!(out.diagnostics[0]
            .message
            .contains("no flat profile table found"));
    }

    #[test]
    fn lossy_parse_of_clean_input_matches_strict() {
        let strict = parse_flat_profile("g", SAMPLE).unwrap();
        let out = parse_flat_profile_lossy("g", SAMPLE);
        assert!(out.is_clean());
        assert_eq!(out.trial.unwrap(), strict);
        assert_eq!(out.rows_kept, 2);
    }
}
