//! TAU text profile format.
//!
//! TAU writes one file per thread per metric, named `profile.N.C.T`.
//! The layout this reader accepts (a faithful subset of TAU's):
//!
//! ```text
//! 2 templated_functions_MULTI_TIME
//! # Name Calls Subrs Excl Incl ProfileCalls
//! "main" 1 1 400 1000 0
//! "main => loop" 1 0 600 600 0
//! ```
//!
//! The first line carries the function count and the metric name after
//! the `templated_functions_MULTI_` prefix; each data line is a quoted
//! event name followed by calls, subcalls, exclusive, inclusive and a
//! trailing (ignored) profile-call count.

use crate::model::{Measurement, ThreadId, Trial, TrialBuilder};
use crate::{DmfError, Result};
use std::collections::HashMap;

/// Parsed contents of a single `profile.N.C.T` file.
#[derive(Debug, Clone, PartialEq)]
pub struct TauThreadProfile {
    /// Metric the file measures (from the header line).
    pub metric: String,
    /// Event rows: `(name, measurement)`.
    pub rows: Vec<(String, Measurement)>,
}

fn parse_err(line: usize, message: impl Into<String>) -> DmfError {
    DmfError::Parse {
        format: "tau",
        line: Some(line),
        message: message.into(),
    }
}

/// Parses one TAU profile file.
pub fn parse_thread_profile(text: &str) -> Result<TauThreadProfile> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| parse_err(1, "empty profile"))?;
    let mut parts = header.split_whitespace();
    let count: usize = parts
        .next()
        .ok_or_else(|| parse_err(1, "missing function count"))?
        .parse()
        .map_err(|_| parse_err(1, "function count is not a number"))?;
    let tag = parts
        .next()
        .ok_or_else(|| parse_err(1, "missing metric tag"))?;
    let metric = tag
        .strip_prefix("templated_functions_MULTI_")
        .ok_or_else(|| parse_err(1, format!("unexpected metric tag {tag:?}")))?
        .to_string();

    let mut rows = Vec::with_capacity(count);
    for (idx, line) in lines {
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if rows.len() == count {
            break; // aggregate/user-event sections follow the function table
        }
        // Quoted name, then numeric fields.
        if !trimmed.starts_with('"') {
            return Err(parse_err(line_no, "expected quoted event name"));
        }
        let close = trimmed[1..]
            .find('"')
            .ok_or_else(|| parse_err(line_no, "unterminated event name"))?;
        let name = trimmed[1..=close].to_string();
        let rest = &trimmed[close + 2..];
        let fields: Vec<&str> = rest.split_whitespace().collect();
        if fields.len() < 4 {
            return Err(parse_err(
                line_no,
                format!("expected at least 4 numeric fields, found {}", fields.len()),
            ));
        }
        let num = |i: usize| -> Result<f64> {
            fields[i]
                .parse::<f64>()
                .map_err(|_| parse_err(line_no, format!("bad numeric field {:?}", fields[i])))
        };
        rows.push((
            name,
            Measurement {
                calls: num(0)?,
                subcalls: num(1)?,
                exclusive: num(2)?,
                inclusive: num(3)?,
            },
        ));
    }
    if rows.len() != count {
        return Err(parse_err(
            0,
            format!("header declared {count} functions, found {}", rows.len()),
        ));
    }
    Ok(TauThreadProfile { metric, rows })
}

/// Writes one thread's rows in TAU text form (the inverse of
/// [`parse_thread_profile`]).
pub fn write_thread_profile(metric: &str, rows: &[(String, Measurement)]) -> String {
    use std::fmt::Write;

    let mut out = format!("{} templated_functions_MULTI_{}\n", rows.len(), metric);
    out.push_str("# Name Calls Subrs Excl Incl ProfileCalls\n");
    for (name, m) in rows {
        writeln!(
            out,
            "\"{}\" {} {} {} {} 0",
            name, m.calls, m.subcalls, m.exclusive, m.inclusive
        )
        .expect("writing to String cannot fail");
    }
    out
}

/// Parses the `N.C.T` suffix of a `profile.N.C.T` filename.
pub fn parse_profile_filename(name: &str) -> Option<ThreadId> {
    let rest = name.strip_prefix("profile.")?;
    let mut it = rest.split('.');
    let node = it.next()?.parse().ok()?;
    let context = it.next()?.parse().ok()?;
    let thread = it.next()?.parse().ok()?;
    if it.next().is_some() {
        return None;
    }
    Some(ThreadId {
        node,
        context,
        thread,
    })
}

/// Assembles a [`Trial`] from per-thread profile texts, e.g. the contents
/// of one TAU profile directory. Multiple metrics may be supplied by
/// including each thread once per metric.
pub fn assemble_trial(trial_name: &str, files: &[(ThreadId, &str)]) -> Result<Trial> {
    if files.is_empty() {
        return Err(DmfError::Parse {
            format: "tau",
            line: None,
            message: "no profile files supplied".into(),
        });
    }
    let mut threads: Vec<ThreadId> = files.iter().map(|(t, _)| *t).collect();
    threads.sort();
    threads.dedup();
    // Intern each tid's index before the vector moves into the builder:
    // per-file placement becomes an O(1) map hit with no threads.clone().
    let thread_index: HashMap<ThreadId, usize> = threads
        .iter()
        .enumerate()
        .map(|(i, &tid)| (tid, i))
        .collect();

    let mut builder = TrialBuilder::with_threads(trial_name, threads);
    for (tid, text) in files {
        let parsed = parse_thread_profile(text)?;
        let metric = builder.metric(&parsed.metric);
        let ti = thread_index[tid];
        for (name, m) in parsed.rows {
            let ev = builder.event(&name);
            builder.set(ev, metric, ti, m);
        }
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
2 templated_functions_MULTI_TIME
# Name Calls Subrs Excl Incl ProfileCalls
\"main\" 1 1 400 1000 0
\"main => loop\" 1 0 600 600 0
";

    #[test]
    fn parses_sample_profile() {
        let p = parse_thread_profile(SAMPLE).unwrap();
        assert_eq!(p.metric, "TIME");
        assert_eq!(p.rows.len(), 2);
        assert_eq!(p.rows[0].0, "main");
        assert_eq!(p.rows[0].1.inclusive, 1000.0);
        assert_eq!(p.rows[0].1.exclusive, 400.0);
        assert_eq!(p.rows[1].0, "main => loop");
    }

    #[test]
    fn roundtrip_write_parse() {
        let p = parse_thread_profile(SAMPLE).unwrap();
        let text = write_thread_profile(&p.metric, &p.rows);
        let again = parse_thread_profile(&text).unwrap();
        assert_eq!(p, again);
    }

    #[test]
    fn rejects_empty_input() {
        assert!(parse_thread_profile("").is_err());
    }

    #[test]
    fn rejects_bad_header() {
        assert!(parse_thread_profile("x templated_functions_MULTI_TIME\n").is_err());
        assert!(parse_thread_profile("2 wrong_tag\n").is_err());
        assert!(parse_thread_profile("2\n").is_err());
    }

    #[test]
    fn rejects_unquoted_name() {
        let bad = "1 templated_functions_MULTI_TIME\nmain 1 0 1 1 0\n";
        assert!(matches!(
            parse_thread_profile(bad),
            Err(DmfError::Parse { format: "tau", .. })
        ));
    }

    #[test]
    fn rejects_missing_fields() {
        let bad = "1 templated_functions_MULTI_TIME\n\"main\" 1 0\n";
        assert!(parse_thread_profile(bad).is_err());
    }

    #[test]
    fn rejects_count_mismatch() {
        let bad = "3 templated_functions_MULTI_TIME\n\"main\" 1 0 1 1 0\n";
        assert!(parse_thread_profile(bad).is_err());
    }

    #[test]
    fn rejects_non_numeric_field() {
        let bad = "1 templated_functions_MULTI_TIME\n\"main\" 1 z 1 1 0\n";
        assert!(parse_thread_profile(bad).is_err());
    }

    #[test]
    fn filename_parsing() {
        assert_eq!(
            parse_profile_filename("profile.3.0.7"),
            Some(ThreadId {
                node: 3,
                context: 0,
                thread: 7
            })
        );
        assert_eq!(parse_profile_filename("profile.3.0"), None);
        assert_eq!(parse_profile_filename("profile.3.0.7.9"), None);
        assert_eq!(parse_profile_filename("prof.1.2.3"), None);
        assert_eq!(parse_profile_filename("profile.a.b.c"), None);
    }

    #[test]
    fn assemble_trial_multiple_threads_and_metrics() {
        let t0_time = "1 templated_functions_MULTI_TIME\n\"main\" 1 0 10 10 0\n";
        let t1_time = "1 templated_functions_MULTI_TIME\n\"main\" 1 0 12 12 0\n";
        let t0_cyc = "1 templated_functions_MULTI_CPU_CYCLES\n\"main\" 1 0 1e6 1e6 0\n";
        let t1_cyc = "1 templated_functions_MULTI_CPU_CYCLES\n\"main\" 1 0 1.2e6 1.2e6 0\n";
        let trial = assemble_trial(
            "1_2",
            &[
                (ThreadId::flat(0), t0_time),
                (ThreadId::flat(1), t1_time),
                (ThreadId::flat(0), t0_cyc),
                (ThreadId::flat(1), t1_cyc),
            ],
        )
        .unwrap();
        assert_eq!(trial.profile.thread_count(), 2);
        assert_eq!(trial.profile.metrics().len(), 2);
        let cyc = trial.profile.metric_id("CPU_CYCLES").unwrap();
        let main = trial.profile.event_id("main").unwrap();
        assert_eq!(trial.profile.get(main, cyc, 1).unwrap().exclusive, 1.2e6);
    }

    #[test]
    fn assemble_trial_empty_is_error() {
        assert!(assemble_trial("x", &[]).is_err());
    }
}
