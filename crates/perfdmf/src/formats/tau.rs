//! TAU text profile format.
//!
//! TAU writes one file per thread per metric, named `profile.N.C.T`.
//! The layout this reader accepts (a faithful subset of TAU's):
//!
//! ```text
//! 2 templated_functions_MULTI_TIME
//! # Name Calls Subrs Excl Incl ProfileCalls
//! "main" 1 1 400 1000 0
//! "main => loop" 1 0 600 600 0
//! ```
//!
//! The first line carries the function count and the metric name after
//! the `templated_functions_MULTI_` prefix; each data line is a quoted
//! event name followed by calls, subcalls, exclusive, inclusive and a
//! trailing (ignored) profile-call count.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use super::{Diagnostic, LossyTrial};
use crate::model::{Measurement, ThreadId, Trial, TrialBuilder};
use crate::{DmfError, Result};
use std::collections::HashMap;

/// Parsed contents of a single `profile.N.C.T` file.
#[derive(Debug, Clone, PartialEq)]
pub struct TauThreadProfile {
    /// Metric the file measures (from the header line).
    pub metric: String,
    /// Event rows: `(name, measurement)`.
    pub rows: Vec<(String, Measurement)>,
}

fn parse_err(line: usize, message: impl Into<String>) -> DmfError {
    DmfError::Parse {
        format: "tau",
        line: Some(line),
        message: message.into(),
    }
}

/// Parses one function-table row: a quoted name, then numeric fields.
fn parse_data_row(trimmed: &str, line_no: usize) -> Result<(String, Measurement)> {
    if !trimmed.starts_with('"') {
        return Err(parse_err(line_no, "expected quoted event name"));
    }
    let close = trimmed[1..]
        .find('"')
        .ok_or_else(|| parse_err(line_no, "unterminated event name"))?;
    let name = trimmed[1..=close].to_string();
    let rest = &trimmed[close + 2..];
    let fields: Vec<&str> = rest.split_whitespace().collect();
    if fields.len() < 4 {
        return Err(parse_err(
            line_no,
            format!("expected at least 4 numeric fields, found {}", fields.len()),
        ));
    }
    let num = |i: usize| -> Result<f64> {
        fields[i]
            .parse::<f64>()
            .map_err(|_| parse_err(line_no, format!("bad numeric field {:?}", fields[i])))
    };
    Ok((
        name,
        Measurement {
            calls: num(0)?,
            subcalls: num(1)?,
            exclusive: num(2)?,
            inclusive: num(3)?,
        },
    ))
}

/// Parses one TAU profile file.
pub fn parse_thread_profile(text: &str) -> Result<TauThreadProfile> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| parse_err(1, "empty profile"))?;
    let mut parts = header.split_whitespace();
    let count: usize = parts
        .next()
        .ok_or_else(|| parse_err(1, "missing function count"))?
        .parse()
        .map_err(|_| parse_err(1, "function count is not a number"))?;
    let tag = parts
        .next()
        .ok_or_else(|| parse_err(1, "missing metric tag"))?;
    let metric = tag
        .strip_prefix("templated_functions_MULTI_")
        .ok_or_else(|| parse_err(1, format!("unexpected metric tag {tag:?}")))?
        .to_string();

    let mut rows = Vec::with_capacity(count);
    for (idx, line) in lines {
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if rows.len() == count {
            break; // aggregate/user-event sections follow the function table
        }
        rows.push(parse_data_row(trimmed, line_no)?);
    }
    if rows.len() != count {
        return Err(parse_err(
            0,
            format!("header declared {count} functions, found {}", rows.len()),
        ));
    }
    Ok(TauThreadProfile { metric, rows })
}

/// Writes one thread's rows in TAU text form (the inverse of
/// [`parse_thread_profile`]).
pub fn write_thread_profile(metric: &str, rows: &[(String, Measurement)]) -> String {
    use std::fmt::Write;

    let mut out = format!("{} templated_functions_MULTI_{}\n", rows.len(), metric);
    out.push_str("# Name Calls Subrs Excl Incl ProfileCalls\n");
    for (name, m) in rows {
        writeln!(
            out,
            "\"{}\" {} {} {} {} 0",
            name, m.calls, m.subcalls, m.exclusive, m.inclusive
        )
        .unwrap_or(()); // writing to String cannot fail
    }
    out
}

/// Lossy variant of [`parse_thread_profile`]: malformed rows are
/// skipped with a diagnostic, and a row count short of the header's
/// declaration is reported rather than fatal. Returns `None` only when
/// the header itself is unreadable (there is no metric to file rows
/// under).
pub fn parse_thread_profile_lossy(text: &str) -> (Option<TauThreadProfile>, Vec<Diagnostic>) {
    let mut diagnostics = Vec::new();
    let diag = |line: Option<usize>, message: String| Diagnostic {
        format: "tau",
        line,
        message,
    };

    let mut lines = text.lines().enumerate();
    let header = lines.next().map(|(_, h)| h).unwrap_or("");
    let mut parts = header.split_whitespace();
    let count: Option<usize> = parts.next().and_then(|w| w.parse().ok());
    let metric = parts
        .next()
        .and_then(|tag| tag.strip_prefix("templated_functions_MULTI_"));
    let (Some(count), Some(metric)) = (count, metric) else {
        diagnostics.push(diag(
            Some(1),
            format!("unreadable header {header:?}; file skipped"),
        ));
        return (None, diagnostics);
    };
    let metric = metric.to_string();

    let mut rows = Vec::with_capacity(count);
    for (idx, line) in lines {
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if rows.len() == count {
            break; // aggregate/user-event sections follow the function table
        }
        match parse_data_row(trimmed, line_no) {
            Ok(row) => rows.push(row),
            Err(e) => {
                let (line, message) = match e {
                    DmfError::Parse { line, message, .. } => (line, message),
                    other => (Some(line_no), other.to_string()),
                };
                diagnostics.push(diag(line, format!("row skipped: {message}")));
            }
        }
    }
    if rows.len() != count {
        diagnostics.push(diag(
            None,
            format!(
                "header declared {count} functions, found {} (keeping partial profile)",
                rows.len()
            ),
        ));
    }
    (Some(TauThreadProfile { metric, rows }), diagnostics)
}

/// Parses the `N.C.T` suffix of a `profile.N.C.T` filename.
pub fn parse_profile_filename(name: &str) -> Option<ThreadId> {
    let rest = name.strip_prefix("profile.")?;
    let mut it = rest.split('.');
    let node = it.next()?.parse().ok()?;
    let context = it.next()?.parse().ok()?;
    let thread = it.next()?.parse().ok()?;
    if it.next().is_some() {
        return None;
    }
    Some(ThreadId {
        node,
        context,
        thread,
    })
}

/// Assembles a [`Trial`] from per-thread profile texts, e.g. the contents
/// of one TAU profile directory. Multiple metrics may be supplied by
/// including each thread once per metric.
pub fn assemble_trial(trial_name: &str, files: &[(ThreadId, &str)]) -> Result<Trial> {
    if files.is_empty() {
        return Err(DmfError::Parse {
            format: "tau",
            line: None,
            message: "no profile files supplied".into(),
        });
    }
    let mut threads: Vec<ThreadId> = files.iter().map(|(t, _)| *t).collect();
    threads.sort();
    threads.dedup();
    // Intern each tid's index before the vector moves into the builder:
    // per-file placement becomes an O(1) map hit with no threads.clone().
    let thread_index: HashMap<ThreadId, usize> = threads
        .iter()
        .enumerate()
        .map(|(i, &tid)| (tid, i))
        .collect();

    let mut builder = TrialBuilder::with_threads(trial_name, threads);
    for (tid, text) in files {
        let parsed = parse_thread_profile(text)?;
        let metric = builder.metric(&parsed.metric);
        let ti = thread_index.get(tid).copied().unwrap_or(0);
        for (name, m) in parsed.rows {
            let ev = builder.event(&name);
            builder.set(ev, metric, ti, m);
        }
    }
    Ok(builder.build())
}

/// Lossy variant of [`assemble_trial`]: files that fail to parse are
/// skipped (with per-file diagnostics), partially readable files
/// contribute their good rows, and the trial covers whatever threads
/// supplied any data. Returns no trial only when every file was
/// unusable.
pub fn assemble_trial_lossy(trial_name: &str, files: &[(ThreadId, &str)]) -> LossyTrial {
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    if files.is_empty() {
        diagnostics.push(Diagnostic {
            format: "tau",
            line: None,
            message: "no profile files supplied".into(),
        });
        return LossyTrial {
            trial: None,
            diagnostics,
            rows_kept: 0,
            rows_dropped: 0,
        };
    }

    // Parse every file first: only threads that produced something
    // usable become part of the trial, so a rank that never flushed
    // its file does not appear as a column of zeros.
    let mut parsed_files: Vec<(ThreadId, TauThreadProfile)> = Vec::new();
    let mut rows_dropped = 0usize;
    for (i, (tid, text)) in files.iter().enumerate() {
        let (parsed, file_diags) = parse_thread_profile_lossy(text);
        rows_dropped += file_diags
            .iter()
            .filter(|d| d.message.starts_with("row skipped"))
            .count();
        for d in file_diags {
            diagnostics.push(Diagnostic {
                format: "tau",
                line: d.line,
                message: format!("file {i} (thread {tid:?}): {}", d.message),
            });
        }
        if let Some(p) = parsed {
            parsed_files.push((*tid, p));
        }
    }
    if parsed_files.is_empty() {
        diagnostics.push(Diagnostic {
            format: "tau",
            line: None,
            message: "no usable profile files".into(),
        });
        return LossyTrial {
            trial: None,
            diagnostics,
            rows_kept: 0,
            rows_dropped,
        };
    }

    let mut threads: Vec<ThreadId> = parsed_files.iter().map(|(t, _)| *t).collect();
    threads.sort();
    threads.dedup();
    let thread_index: HashMap<ThreadId, usize> = threads
        .iter()
        .enumerate()
        .map(|(i, &tid)| (tid, i))
        .collect();
    let mut builder = TrialBuilder::with_threads(trial_name, threads);
    let mut rows_kept = 0usize;
    for (tid, parsed) in parsed_files {
        let metric = builder.metric(&parsed.metric);
        let ti = thread_index.get(&tid).copied().unwrap_or(0);
        for (name, m) in parsed.rows {
            let ev = builder.event(&name);
            builder.set(ev, metric, ti, m);
            rows_kept += 1;
        }
    }
    LossyTrial {
        trial: Some(builder.build()),
        diagnostics,
        rows_kept,
        rows_dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
2 templated_functions_MULTI_TIME
# Name Calls Subrs Excl Incl ProfileCalls
\"main\" 1 1 400 1000 0
\"main => loop\" 1 0 600 600 0
";

    #[test]
    fn parses_sample_profile() {
        let p = parse_thread_profile(SAMPLE).unwrap();
        assert_eq!(p.metric, "TIME");
        assert_eq!(p.rows.len(), 2);
        assert_eq!(p.rows[0].0, "main");
        assert_eq!(p.rows[0].1.inclusive, 1000.0);
        assert_eq!(p.rows[0].1.exclusive, 400.0);
        assert_eq!(p.rows[1].0, "main => loop");
    }

    #[test]
    fn roundtrip_write_parse() {
        let p = parse_thread_profile(SAMPLE).unwrap();
        let text = write_thread_profile(&p.metric, &p.rows);
        let again = parse_thread_profile(&text).unwrap();
        assert_eq!(p, again);
    }

    #[test]
    fn rejects_empty_input() {
        assert!(parse_thread_profile("").is_err());
    }

    #[test]
    fn rejects_bad_header() {
        assert!(parse_thread_profile("x templated_functions_MULTI_TIME\n").is_err());
        assert!(parse_thread_profile("2 wrong_tag\n").is_err());
        assert!(parse_thread_profile("2\n").is_err());
    }

    #[test]
    fn rejects_unquoted_name() {
        let bad = "1 templated_functions_MULTI_TIME\nmain 1 0 1 1 0\n";
        assert!(matches!(
            parse_thread_profile(bad),
            Err(DmfError::Parse { format: "tau", .. })
        ));
    }

    #[test]
    fn rejects_missing_fields() {
        let bad = "1 templated_functions_MULTI_TIME\n\"main\" 1 0\n";
        assert!(parse_thread_profile(bad).is_err());
    }

    #[test]
    fn rejects_count_mismatch() {
        let bad = "3 templated_functions_MULTI_TIME\n\"main\" 1 0 1 1 0\n";
        assert!(parse_thread_profile(bad).is_err());
    }

    #[test]
    fn rejects_non_numeric_field() {
        let bad = "1 templated_functions_MULTI_TIME\n\"main\" 1 z 1 1 0\n";
        assert!(parse_thread_profile(bad).is_err());
    }

    #[test]
    fn filename_parsing() {
        assert_eq!(
            parse_profile_filename("profile.3.0.7"),
            Some(ThreadId {
                node: 3,
                context: 0,
                thread: 7
            })
        );
        assert_eq!(parse_profile_filename("profile.3.0"), None);
        assert_eq!(parse_profile_filename("profile.3.0.7.9"), None);
        assert_eq!(parse_profile_filename("prof.1.2.3"), None);
        assert_eq!(parse_profile_filename("profile.a.b.c"), None);
    }

    #[test]
    fn assemble_trial_multiple_threads_and_metrics() {
        let t0_time = "1 templated_functions_MULTI_TIME\n\"main\" 1 0 10 10 0\n";
        let t1_time = "1 templated_functions_MULTI_TIME\n\"main\" 1 0 12 12 0\n";
        let t0_cyc = "1 templated_functions_MULTI_CPU_CYCLES\n\"main\" 1 0 1e6 1e6 0\n";
        let t1_cyc = "1 templated_functions_MULTI_CPU_CYCLES\n\"main\" 1 0 1.2e6 1.2e6 0\n";
        let trial = assemble_trial(
            "1_2",
            &[
                (ThreadId::flat(0), t0_time),
                (ThreadId::flat(1), t1_time),
                (ThreadId::flat(0), t0_cyc),
                (ThreadId::flat(1), t1_cyc),
            ],
        )
        .unwrap();
        assert_eq!(trial.profile.thread_count(), 2);
        assert_eq!(trial.profile.metrics().len(), 2);
        let cyc = trial.profile.metric_id("CPU_CYCLES").unwrap();
        let main = trial.profile.event_id("main").unwrap();
        assert_eq!(trial.profile.get(main, cyc, 1).unwrap().exclusive, 1.2e6);
    }

    #[test]
    fn assemble_trial_empty_is_error() {
        assert!(assemble_trial("x", &[]).is_err());
    }

    #[test]
    fn lossy_parse_skips_bad_rows_and_keeps_partial() {
        let text = "\
3 templated_functions_MULTI_TIME
# Name Calls Subrs Excl Incl ProfileCalls
\"main\" 1 1 400 1000 0
garbage row without quotes
\"main => loop\" 1 0 600 600 0
";
        let (parsed, diags) = parse_thread_profile_lossy(text);
        let p = parsed.unwrap();
        assert_eq!(p.metric, "TIME");
        assert_eq!(p.rows.len(), 2);
        // One skipped row plus the count-mismatch notice.
        assert_eq!(diags.len(), 2);
        assert!(diags[0].message.starts_with("row skipped"));
        assert_eq!(diags[0].line, Some(4));
        assert!(diags[1].message.contains("keeping partial profile"));
    }

    #[test]
    fn lossy_parse_unreadable_header_is_none() {
        let (parsed, diags) = parse_thread_profile_lossy("not a header\n\"main\" 1 0 1 1 0\n");
        assert!(parsed.is_none());
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("unreadable header"));
    }

    #[test]
    fn lossy_parse_of_clean_input_matches_strict() {
        let strict = parse_thread_profile(SAMPLE).unwrap();
        let (lossy, diags) = parse_thread_profile_lossy(SAMPLE);
        assert_eq!(lossy.unwrap(), strict);
        assert!(diags.is_empty());
    }

    #[test]
    fn assemble_lossy_skips_unusable_files() {
        let good = "1 templated_functions_MULTI_TIME\n\"main\" 1 0 10 10 0\n";
        let bad = "truncated junk";
        let out = assemble_trial_lossy(
            "partial",
            &[(ThreadId::flat(0), good), (ThreadId::flat(1), bad)],
        );
        let trial = out.trial.unwrap();
        // The dead rank contributes no thread, so statistics are not
        // diluted by a column of zeros.
        assert_eq!(trial.profile.thread_count(), 1);
        assert_eq!(out.rows_kept, 1);
        assert!(out
            .diagnostics
            .iter()
            .any(|d| d.message.contains("unreadable header")));
    }

    #[test]
    fn assemble_lossy_all_bad_is_none() {
        let out = assemble_trial_lossy("none", &[(ThreadId::flat(0), "junk")]);
        assert!(out.trial.is_none());
        assert!(out
            .diagnostics
            .iter()
            .any(|d| d.message.contains("no usable profile files")));
    }

    #[test]
    fn assemble_lossy_clean_matches_strict() {
        let t0 = "1 templated_functions_MULTI_TIME\n\"main\" 1 0 10 10 0\n";
        let t1 = "1 templated_functions_MULTI_TIME\n\"main\" 1 0 12 12 0\n";
        let files = [(ThreadId::flat(0), t0), (ThreadId::flat(1), t1)];
        let strict = assemble_trial("t", &files).unwrap();
        let lossy = assemble_trial_lossy("t", &files);
        assert!(lossy.is_clean());
        assert_eq!(lossy.trial.unwrap(), strict);
    }
}
