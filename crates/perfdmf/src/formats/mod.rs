//! On-disk profile format readers and writers.
//!
//! PerfDMF "includes support for nearly a dozen performance profile
//! formats". This module provides the formats the workspace needs:
//!
//! * [`tau`] — the TAU text profile format (`profile.N.C.T` files, one
//!   per thread per metric), the paper's primary measurement source;
//! * [`csv`] — a flat tabular interchange format, convenient for
//!   spreadsheet export and for the benchmark harness;
//! * [`gprof`] — a gprof-style flat profile reader, representing the
//!   class of single-threaded external formats PerfDMF ingests.
//!
//! All readers produce the same in-memory [`crate::Trial`] model, so the
//! analysis layer is format-agnostic.
//!
//! Every format has two entry points: a *strict* parser that fails on
//! the first malformed construct (the right behaviour for data the
//! caller just wrote), and a *lossy* variant (`*_lossy`) that keeps
//! every parseable row, skips the rest, and reports each skip as a
//! [`Diagnostic`] — the right behaviour for an unattended pipeline
//! ingesting profile collections it does not control. The parser
//! modules deny `unwrap`/`expect` outside tests, so malformed input can
//! only surface as a typed [`crate::DmfError`] or a diagnostic.

pub mod csv;
pub mod gprof;
pub mod tau;

use crate::Trial;

/// One recoverable problem a lossy parse stepped over.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Format that produced the diagnostic ("csv", "tau", "gprof").
    pub format: &'static str,
    /// 1-based line number, when attributable to one line.
    pub line: Option<usize>,
    /// What was wrong and what the parser did about it.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.line {
            Some(n) => write!(f, "{} line {}: {}", self.format, n, self.message),
            None => write!(f, "{}: {}", self.format, self.message),
        }
    }
}

/// Outcome of a lossy parse: a partial trial (when anything at all was
/// usable) plus the full diagnostic record.
#[derive(Debug, Clone, PartialEq)]
pub struct LossyTrial {
    /// The assembled trial, or `None` when nothing was usable.
    pub trial: Option<Trial>,
    /// Every problem stepped over, in input order.
    pub diagnostics: Vec<Diagnostic>,
    /// Data rows that made it into the trial.
    pub rows_kept: usize,
    /// Data rows dropped by diagnostics.
    pub rows_dropped: usize,
}

impl LossyTrial {
    /// Whether the parse was lossless.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}
