//! On-disk profile format readers and writers.
//!
//! PerfDMF "includes support for nearly a dozen performance profile
//! formats". This module provides the formats the workspace needs:
//!
//! * [`tau`] — the TAU text profile format (`profile.N.C.T` files, one
//!   per thread per metric), the paper's primary measurement source;
//! * [`csv`] — a flat tabular interchange format, convenient for
//!   spreadsheet export and for the benchmark harness;
//! * [`gprof`] — a gprof-style flat profile reader, representing the
//!   class of single-threaded external formats PerfDMF ingests.
//!
//! All readers produce the same in-memory [`crate::Trial`] model, so the
//! analysis layer is format-agnostic.

pub mod csv;
pub mod gprof;
pub mod tau;
