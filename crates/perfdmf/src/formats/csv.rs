//! Flat CSV interchange format.
//!
//! One row per `(event, metric, thread)` cell:
//!
//! ```text
//! event,metric,node,context,thread,inclusive,exclusive,calls,subcalls
//! main,TIME,0,0,0,10.5,4.5,1,2
//! ```
//!
//! Event names containing commas or quotes are double-quoted with `""`
//! escaping, per RFC 4180.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use super::{Diagnostic, LossyTrial};
use crate::model::{Measurement, ThreadId, Trial, TrialBuilder};
use crate::{DmfError, Result};
use std::collections::{BTreeSet, HashMap};

const HEADER: &str = "event,metric,node,context,thread,inclusive,exclusive,calls,subcalls";

fn parse_err(line: usize, message: impl Into<String>) -> DmfError {
    DmfError::Parse {
        format: "csv",
        line: Some(line),
        message: message.into(),
    }
}

fn quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Splits one CSV record, honouring RFC 4180 quoting.
fn split_record(line: &str, line_no: usize) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            }
            '"' if cur.is_empty() => in_quotes = true,
            '"' => return Err(parse_err(line_no, "quote inside unquoted field")),
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if in_quotes {
        return Err(parse_err(line_no, "unterminated quoted field"));
    }
    fields.push(cur);
    Ok(fields)
}

/// Serialises a trial to CSV.
pub fn write_trial(trial: &Trial) -> String {
    use std::fmt::Write;

    let p = &trial.profile;
    // Quote each axis name once, not once per row.
    let event_names: Vec<String> = p.events().iter().map(|e| quote(&e.name)).collect();
    let metric_names: Vec<String> = p.metrics().iter().map(|m| quote(&m.name)).collect();
    let mut out = String::from(HEADER);
    out.push('\n');
    // columns() yields event-major, metric-inner order — the same row
    // order the nested loops produced.
    for (e, m, col) in p.columns() {
        let event = &event_names[e.0 as usize];
        let metric = &metric_names[m.0 as usize];
        for (tid, cell) in p.threads().iter().zip(col) {
            writeln!(
                out,
                "{},{},{},{},{},{},{},{},{}",
                event,
                metric,
                tid.node,
                tid.context,
                tid.thread,
                cell.inclusive,
                cell.exclusive,
                cell.calls,
                cell.subcalls
            )
            .unwrap_or(()); // writing to String cannot fail
        }
    }
    out
}

/// One parsed data row. Event/metric names are moved out of the field
/// vector rather than cloned per row.
struct Row {
    event: String,
    metric: String,
    tid: ThreadId,
    m: Measurement,
}

/// Parses one data record (header excluded).
fn parse_row(line: &str, line_no: usize) -> Result<Row> {
    let f = split_record(line, line_no)?;
    if f.len() != 9 {
        return Err(parse_err(
            line_no,
            format!("expected 9 fields, found {}", f.len()),
        ));
    }
    let int = |i: usize| -> Result<u32> {
        f[i].trim()
            .parse()
            .map_err(|_| parse_err(line_no, format!("bad integer {:?}", f[i])))
    };
    let num = |i: usize| -> Result<f64> {
        f[i].trim()
            .parse()
            .map_err(|_| parse_err(line_no, format!("bad number {:?}", f[i])))
    };
    let tid = ThreadId {
        node: int(2)?,
        context: int(3)?,
        thread: int(4)?,
    };
    let m = Measurement {
        inclusive: num(5)?,
        exclusive: num(6)?,
        calls: num(7)?,
        subcalls: num(8)?,
    };
    let mut f = f.into_iter();
    let (Some(event), Some(metric)) = (f.next(), f.next()) else {
        // Unreachable: the field count was checked above.
        return Err(parse_err(line_no, "missing event/metric fields"));
    };
    Ok(Row {
        event,
        metric,
        tid,
        m,
    })
}

/// Builds the trial from collected rows; thread ordering is the sorted
/// `BTreeSet` order, with each tid's index interned once so per-row
/// placement is an O(1) map hit, not a binary search.
fn build_trial(trial_name: &str, rows: Vec<Row>, thread_set: BTreeSet<ThreadId>) -> Trial {
    let threads: Vec<ThreadId> = thread_set.into_iter().collect();
    let thread_index: HashMap<ThreadId, usize> = threads
        .iter()
        .enumerate()
        .map(|(i, &tid)| (tid, i))
        .collect();
    let mut builder = TrialBuilder::with_threads(trial_name, threads);
    for row in rows {
        let e = builder.event(&row.event);
        let m = builder.metric(&row.metric);
        let ti = thread_index.get(&row.tid).copied().unwrap_or(0);
        builder.set(e, m, ti, row.m);
    }
    builder.build()
}

/// Parses a trial from CSV produced by [`write_trial`] (or compatible),
/// strictly: the first malformed construct is an error.
pub fn parse_trial(trial_name: &str, text: &str) -> Result<Trial> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| parse_err(1, "empty input"))?;
    if header.trim() != HEADER {
        return Err(parse_err(1, format!("unexpected header {header:?}")));
    }

    let mut rows: Vec<Row> = Vec::new();
    let mut thread_set: BTreeSet<ThreadId> = BTreeSet::new();
    for (idx, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let row = parse_row(line, idx + 1)?;
        thread_set.insert(row.tid);
        rows.push(row);
    }
    if rows.is_empty() {
        return Err(parse_err(0, "no data rows"));
    }
    Ok(build_trial(trial_name, rows, thread_set))
}

/// Parses as much of a CSV trial as possible: malformed rows are
/// skipped and reported as diagnostics instead of aborting the parse.
/// A wrong header is reported but the rows are still attempted.
pub fn parse_trial_lossy(trial_name: &str, text: &str) -> LossyTrial {
    let mut diagnostics = Vec::new();
    let diag = |diagnostics: &mut Vec<Diagnostic>, line: Option<usize>, message: String| {
        diagnostics.push(Diagnostic {
            format: "csv",
            line,
            message,
        });
    };

    let mut lines = text.lines().enumerate();
    match lines.next() {
        None => {
            diag(&mut diagnostics, Some(1), "empty input".to_string());
            return LossyTrial {
                trial: None,
                diagnostics,
                rows_kept: 0,
                rows_dropped: 0,
            };
        }
        Some((_, header)) if header.trim() != HEADER => {
            diag(
                &mut diagnostics,
                Some(1),
                format!("unexpected header {header:?}; attempting rows anyway"),
            );
        }
        Some(_) => {}
    }

    let mut rows: Vec<Row> = Vec::new();
    let mut thread_set: BTreeSet<ThreadId> = BTreeSet::new();
    let mut rows_dropped = 0usize;
    for (idx, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        match parse_row(line, idx + 1) {
            Ok(row) => {
                thread_set.insert(row.tid);
                rows.push(row);
            }
            Err(e) => {
                rows_dropped += 1;
                let (line_no, message) = match e {
                    DmfError::Parse { line, message, .. } => (line, message),
                    other => (Some(idx + 1), other.to_string()),
                };
                diag(&mut diagnostics, line_no, format!("row skipped: {message}"));
            }
        }
    }
    let rows_kept = rows.len();
    if rows.is_empty() {
        diag(&mut diagnostics, None, "no usable data rows".to_string());
        return LossyTrial {
            trial: None,
            diagnostics,
            rows_kept: 0,
            rows_dropped,
        };
    }
    LossyTrial {
        trial: Some(build_trial(trial_name, rows, thread_set)),
        diagnostics,
        rows_kept,
        rows_dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Event, Metric, Profile};

    fn sample_trial() -> Trial {
        let mut p = Profile::new(vec![ThreadId::flat(0), ThreadId::flat(1)]);
        let m = p.add_metric(Metric::measured("TIME")).unwrap();
        let e = p.add_event(Event::new("main")).unwrap();
        let f = p.add_event(Event::new("weird, \"name\"")).unwrap();
        p.set(
            e,
            m,
            0,
            Measurement {
                inclusive: 10.0,
                exclusive: 4.0,
                calls: 1.0,
                subcalls: 2.0,
            },
        )
        .unwrap();
        p.set(
            e,
            m,
            1,
            Measurement {
                inclusive: 11.0,
                exclusive: 5.0,
                calls: 1.0,
                subcalls: 2.0,
            },
        )
        .unwrap();
        p.set(f, m, 0, Measurement::leaf(1.0)).unwrap();
        p.set(f, m, 1, Measurement::leaf(2.0)).unwrap();
        Trial::new("t", p)
    }

    #[test]
    fn roundtrip_preserves_profile() {
        let t = sample_trial();
        let csv = write_trial(&t);
        let back = parse_trial("t", &csv).unwrap();
        assert_eq!(t.profile, back.profile);
    }

    #[test]
    fn quoting_of_special_names() {
        let t = sample_trial();
        let csv = write_trial(&t);
        assert!(csv.contains("\"weird, \"\"name\"\"\""));
    }

    #[test]
    fn rejects_wrong_header() {
        assert!(parse_trial("t", "a,b,c\n1,2,3\n").is_err());
    }

    #[test]
    fn rejects_short_rows() {
        let text = format!("{HEADER}\nmain,TIME,0,0,0,1,1\n");
        assert!(parse_trial("t", &text).is_err());
    }

    #[test]
    fn rejects_bad_numbers() {
        let text = format!("{HEADER}\nmain,TIME,0,0,0,x,1,1,0\n");
        assert!(parse_trial("t", &text).is_err());
        let text2 = format!("{HEADER}\nmain,TIME,zero,0,0,1,1,1,0\n");
        assert!(parse_trial("t", &text2).is_err());
    }

    #[test]
    fn rejects_empty_and_header_only() {
        assert!(parse_trial("t", "").is_err());
        assert!(parse_trial("t", &format!("{HEADER}\n")).is_err());
    }

    #[test]
    fn rejects_unterminated_quote() {
        let text = format!("{HEADER}\n\"main,TIME,0,0,0,1,1,1,0\n");
        assert!(parse_trial("t", &text).is_err());
    }

    #[test]
    fn split_record_handles_escaped_quotes() {
        let f = split_record("\"a\"\"b\",c", 1).unwrap();
        assert_eq!(f, vec!["a\"b", "c"]);
    }

    #[test]
    fn lossy_parse_skips_bad_rows_and_reports_each() {
        let text = format!(
            "{HEADER}\n\
             main,TIME,0,0,0,1,1,1,0\n\
             main,TIME,0,0,zero,2,2,1,0\n\
             main,TIME,0,0,1,2,2\n\
             main,TIME,0,0,1,3,3,1,0\n"
        );
        let r = parse_trial_lossy("t", &text);
        let t = r.trial.expect("two good rows survive");
        assert_eq!(r.rows_kept, 2);
        assert_eq!(r.rows_dropped, 2);
        assert_eq!(r.diagnostics.len(), 2);
        assert_eq!(r.diagnostics[0].line, Some(3));
        assert!(r.diagnostics[0].message.contains("bad integer"));
        assert_eq!(r.diagnostics[1].line, Some(4));
        assert!(r.diagnostics[1].message.contains("expected 9 fields"));
        assert_eq!(t.profile.thread_count(), 2);
    }

    #[test]
    fn lossy_parse_tolerates_wrong_header() {
        let text = "not,a,header\nmain,TIME,0,0,0,1,1,1,0\n";
        let r = parse_trial_lossy("t", text);
        assert!(r.trial.is_some());
        assert!(r.diagnostics[0].message.contains("unexpected header"));
        assert_eq!(r.rows_kept, 1);
    }

    #[test]
    fn lossy_parse_of_garbage_returns_none_with_diagnostics() {
        let r = parse_trial_lossy("t", "");
        assert!(r.trial.is_none());
        assert!(!r.diagnostics.is_empty());
        let r = parse_trial_lossy("t", &format!("{HEADER}\nnot a row at all\n"));
        assert!(r.trial.is_none());
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.message.contains("no usable data rows")));
    }

    #[test]
    fn lossy_parse_of_clean_input_matches_strict() {
        let t = sample_trial();
        let csv = write_trial(&t);
        let strict = parse_trial("t", &csv).unwrap();
        let lossy = parse_trial_lossy("t", &csv);
        assert!(lossy.is_clean());
        assert_eq!(lossy.trial.unwrap().profile, strict.profile);
    }

    #[test]
    fn threads_are_sorted_regardless_of_row_order() {
        let text = format!("{HEADER}\nmain,TIME,0,0,1,2,2,1,0\nmain,TIME,0,0,0,1,1,1,0\n");
        let t = parse_trial("t", &text).unwrap();
        assert_eq!(t.profile.threads(), &[ThreadId::flat(0), ThreadId::flat(1)]);
        let m = t.profile.metric_id("TIME").unwrap();
        let e = t.profile.event_id("main").unwrap();
        assert_eq!(t.profile.get(e, m, 0).unwrap().inclusive, 1.0);
        assert_eq!(t.profile.get(e, m, 1).unwrap().inclusive, 2.0);
    }
}
