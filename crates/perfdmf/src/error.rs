//! Error type for profile data management.

use std::fmt;

/// Errors produced by the profile store, formats and algebra.
#[derive(Debug)]
pub enum DmfError {
    /// Lookup failed: the named entity does not exist.
    NotFound {
        /// Kind of entity: "application", "experiment", "trial", ...
        kind: &'static str,
        /// Name that was looked up.
        name: String,
    },
    /// An entity with this name already exists.
    Duplicate {
        /// Kind of entity.
        kind: &'static str,
        /// Conflicting name.
        name: String,
    },
    /// A profile file or text stream failed to parse.
    Parse {
        /// Format being parsed ("tau", "csv", "mpip", "json").
        format: &'static str,
        /// Line number (1-based) where the problem was found, if known.
        line: Option<usize>,
        /// Explanation.
        message: String,
    },
    /// Two trials/profiles are structurally incompatible for an
    /// algebra operation (different metrics, events or thread counts).
    Incompatible(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// JSON (de)serialisation failure.
    Json(serde_json::Error),
}

impl fmt::Display for DmfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DmfError::NotFound { kind, name } => write!(f, "{kind} not found: {name:?}"),
            DmfError::Duplicate { kind, name } => write!(f, "duplicate {kind}: {name:?}"),
            DmfError::Parse {
                format,
                line,
                message,
            } => match line {
                Some(n) => write!(f, "{format} parse error at line {n}: {message}"),
                None => write!(f, "{format} parse error: {message}"),
            },
            DmfError::Incompatible(msg) => write!(f, "incompatible profiles: {msg}"),
            DmfError::Io(e) => write!(f, "io error: {e}"),
            DmfError::Json(e) => write!(f, "json error: {e}"),
        }
    }
}

impl std::error::Error for DmfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DmfError::Io(e) => Some(e),
            DmfError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DmfError {
    fn from(e: std::io::Error) -> Self {
        DmfError::Io(e)
    }
}

impl From<serde_json::Error> for DmfError {
    fn from(e: serde_json::Error) -> Self {
        DmfError::Json(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_not_found() {
        let e = DmfError::NotFound {
            kind: "trial",
            name: "1_8".into(),
        };
        assert_eq!(e.to_string(), "trial not found: \"1_8\"");
    }

    #[test]
    fn display_parse_with_line() {
        let e = DmfError::Parse {
            format: "tau",
            line: Some(7),
            message: "bad field count".into(),
        };
        assert!(e.to_string().contains("line 7"));
        assert!(e.to_string().contains("tau"));
    }

    #[test]
    fn io_error_chains_source() {
        let e = DmfError::from(std::io::Error::other("boom"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
