//! PDB1 — the versioned binary columnar on-disk repository format.
//!
//! JSON stays the interchange format; PDB1 is the *storage* format: a
//! repository open should cost a header read and a manifest parse, not
//! a full JSON parse + re-intern + re-layout pass. The layout is
//! designed so the measurement data can be consumed in place:
//!
//! ```text
//! offset 0    header        magic "PDB1", version, section table offset
//! offset 32   section table 3 × 32-byte entries {kind, offset, len, crc32}
//! aligned     string table  interned names: u32 count, then (u32 len, bytes)*
//! aligned     manifest      application → experiment → trial records
//! 8-aligned   column pages  per trial: 4 × f64 planes, metric-major
//! ```
//!
//! * Every integer and float is **little-endian**; planes are raw
//!   `f64::to_le_bytes`.
//! * Each trial's page holds four *field planes* (inclusive, exclusive,
//!   calls, subcalls), each a `metrics × events × threads` array in
//!   metric-major order — so a fixed `(metric, field)` pair is one
//!   contiguous row-major `events × threads` matrix, exactly the shape
//!   [`statistics::MatrixView`] wraps zero-copy.
//! * The column-pages section and every trial page start 8-byte
//!   aligned, so a page mapped into memory can be reinterpreted as
//!   `&[f64]` directly.
//! * Every section carries a CRC32 in the section table; every trial
//!   page additionally carries its own CRC32 in the manifest, so the
//!   mmap path ([`crate::mapped`]) can defer data validation per trial
//!   while still checking the cheap sections eagerly.
//!
//! Three read paths share one parser: [`read_repository`] (strict — any
//! checksum or structure error fails the load), [`salvage`] (lenient —
//! reports *which* section is corrupt as typed [`Diagnostic`]s and
//! loads every trial whose page still checks out), and the zero-copy
//! [`crate::mapped::MappedRepository`].

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::formats::Diagnostic;
use crate::metadata::{MetaValue, Metadata};
use crate::model::{Event, EventId, Measurement, Metric, MetricId, Profile, ThreadId, Trial};
use crate::repo::Repository;
use crate::{DmfError, Result};
use std::collections::HashMap;

/// The four magic bytes every PDB1 file starts with.
pub const MAGIC: [u8; 4] = *b"PDB1";
/// Current format version.
pub const VERSION: u32 = 1;

const HEADER_LEN: usize = 32;
const SECTION_ENTRY_LEN: usize = 32;
const SECTION_COUNT: usize = 3;

/// Section kinds, in file order.
const SEC_STRINGS: u32 = 1;
const SEC_MANIFEST: u32 = 2;
const SEC_PAGES: u32 = 3;

fn section_name(kind: u32) -> &'static str {
    match kind {
        SEC_STRINGS => "string table",
        SEC_MANIFEST => "manifest",
        SEC_PAGES => "column pages",
        _ => "unknown",
    }
}

/// One of the four measurement fields stored as a column plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Field {
    /// Inclusive value (includes children).
    Inclusive,
    /// Exclusive value (excludes children).
    Exclusive,
    /// Call count.
    Calls,
    /// Child-call count.
    Subcalls,
}

impl Field {
    /// All fields, in plane order.
    pub const ALL: [Field; 4] = [
        Field::Inclusive,
        Field::Exclusive,
        Field::Calls,
        Field::Subcalls,
    ];

    /// Plane index of the field (0..4).
    pub fn index(self) -> usize {
        match self {
            Field::Inclusive => 0,
            Field::Exclusive => 1,
            Field::Calls => 2,
            Field::Subcalls => 3,
        }
    }

    /// The field's value in a measurement cell.
    pub fn of(self, m: &Measurement) -> f64 {
        match self {
            Field::Inclusive => m.inclusive,
            Field::Exclusive => m.exclusive,
            Field::Calls => m.calls,
            Field::Subcalls => m.subcalls,
        }
    }
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected), table-driven.
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of a byte slice — the checksum used by every PDB1
/// section and trial page.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn pad8(out: &mut Vec<u8>) {
    while !out.len().is_multiple_of(8) {
        out.push(0);
    }
}

#[derive(Default)]
struct Interner {
    ids: HashMap<String, u32>,
    strings: Vec<String>,
}

impl Interner {
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.ids.get(s) {
            return id;
        }
        let id = self.strings.len() as u32;
        self.ids.insert(s.to_string(), id);
        self.strings.push(s.to_string());
        id
    }

    fn id(&self, s: &str) -> u32 {
        self.ids.get(s).copied().unwrap_or(u32::MAX)
    }
}

/// Encodes a repository into PDB1 bytes.
///
/// The encoding is deterministic: the same repository always produces
/// the same bytes (strings are interned in first-encounter order over
/// the name-sorted hierarchy), so re-encoding a decoded file is
/// byte-stable.
pub fn write_repository(repo: &Repository) -> Vec<u8> {
    // Pass 1: intern every name in deterministic walk order.
    let mut interner = Interner::default();
    for_each_trial(repo, |app, exp, trial| {
        interner.intern(app);
        interner.intern(exp);
        interner.intern(&trial.name);
        for m in trial.profile.metrics() {
            interner.intern(&m.name);
        }
        for e in trial.profile.events() {
            interner.intern(&e.name);
            if let Some(k) = &e.kind {
                interner.intern(k);
            }
        }
        for (k, v) in trial.metadata.iter() {
            interner.intern(k);
            if let MetaValue::Str(s) = v {
                interner.intern(s);
            }
        }
    });

    // Pass 2: build the pages and manifest sections side by side. Page
    // offsets are relative to the pages-section start, which itself is
    // 8-aligned in the file, so buffer-relative alignment is absolute
    // alignment.
    let mut pages: Vec<u8> = Vec::new();
    let mut manifest: Vec<u8> = Vec::new();

    let apps: Vec<&str> = repo.application_names().collect();
    put_u32(&mut manifest, apps.len() as u32);
    for app in apps {
        put_u32(&mut manifest, interner.id(app));
        let exps: Vec<&str> = repo
            .application(app)
            .map(|a| a.experiment_names().collect())
            .unwrap_or_default();
        put_u32(&mut manifest, exps.len() as u32);
        for exp in exps {
            put_u32(&mut manifest, interner.id(exp));
            let trials: Vec<&Trial> = repo
                .experiment(app, exp)
                .map(|e| e.trials().collect())
                .unwrap_or_default();
            put_u32(&mut manifest, trials.len() as u32);
            for trial in trials {
                pad8(&mut pages);
                let rel = pages.len() as u64;
                write_planes(&mut pages, &trial.profile);
                let page = &pages[rel as usize..];
                let crc = crc32(page);

                let p = &trial.profile;
                put_u32(&mut manifest, interner.id(&trial.name));
                put_u32(&mut manifest, p.metric_count() as u32);
                put_u32(&mut manifest, p.event_count() as u32);
                put_u32(&mut manifest, p.thread_count() as u32);
                put_u64(&mut manifest, rel);
                put_u32(&mut manifest, crc);
                for m in p.metrics() {
                    put_u32(&mut manifest, interner.id(&m.name));
                    manifest.push(m.derived as u8);
                }
                for e in p.events() {
                    put_u32(&mut manifest, interner.id(&e.name));
                    match &e.kind {
                        Some(k) => {
                            manifest.push(1);
                            put_u32(&mut manifest, interner.id(k));
                        }
                        None => manifest.push(0),
                    }
                }
                for t in p.threads() {
                    put_u32(&mut manifest, t.node);
                    put_u32(&mut manifest, t.context);
                    put_u32(&mut manifest, t.thread);
                }
                put_u32(&mut manifest, trial.metadata.len() as u32);
                for (k, v) in trial.metadata.iter() {
                    put_u32(&mut manifest, interner.id(k));
                    match v {
                        MetaValue::Str(s) => {
                            manifest.push(0);
                            put_u32(&mut manifest, interner.id(s));
                        }
                        MetaValue::Num(n) => {
                            manifest.push(1);
                            put_f64(&mut manifest, *n);
                        }
                        MetaValue::Bool(b) => {
                            manifest.push(2);
                            manifest.push(*b as u8);
                        }
                    }
                }
            }
        }
    }

    // Assemble: header + section table placeholders, then the sections.
    let mut out = vec![0u8; HEADER_LEN + SECTION_COUNT * SECTION_ENTRY_LEN];

    let strings_off = out.len();
    put_u32(&mut out, interner.strings.len() as u32);
    for s in &interner.strings {
        put_u32(&mut out, s.len() as u32);
        out.extend_from_slice(s.as_bytes());
    }
    let strings_len = out.len() - strings_off;
    let strings_crc = crc32(&out[strings_off..]);

    let manifest_off = out.len();
    out.extend_from_slice(&manifest);
    let manifest_crc = crc32(&manifest);

    pad8(&mut out);
    let pages_off = out.len();
    out.extend_from_slice(&pages);
    let pages_crc = crc32(&pages);

    let file_len = out.len() as u64;

    // Section table.
    let entries = [
        (SEC_STRINGS, strings_off, strings_len, strings_crc),
        (SEC_MANIFEST, manifest_off, manifest.len(), manifest_crc),
        (SEC_PAGES, pages_off, pages.len(), pages_crc),
    ];
    for (i, (kind, off, len, crc)) in entries.iter().enumerate() {
        let mut entry = Vec::with_capacity(SECTION_ENTRY_LEN);
        put_u32(&mut entry, *kind);
        put_u32(&mut entry, 0);
        put_u64(&mut entry, *off as u64);
        put_u64(&mut entry, *len as u64);
        put_u32(&mut entry, *crc);
        put_u32(&mut entry, 0);
        let at = HEADER_LEN + i * SECTION_ENTRY_LEN;
        out[at..at + SECTION_ENTRY_LEN].copy_from_slice(&entry);
    }

    // Header.
    let mut header = Vec::with_capacity(HEADER_LEN);
    header.extend_from_slice(&MAGIC);
    put_u32(&mut header, VERSION);
    put_u32(&mut header, SECTION_COUNT as u32);
    put_u32(&mut header, 0);
    put_u64(&mut header, HEADER_LEN as u64);
    put_u64(&mut header, file_len);
    out[..HEADER_LEN].copy_from_slice(&header);

    out
}

fn for_each_trial<'a>(repo: &'a Repository, mut f: impl FnMut(&'a str, &'a str, &'a Trial)) {
    for app in repo.application_names() {
        let Ok(application) = repo.application(app) else {
            continue;
        };
        for exp in application.experiment_names() {
            let Ok(experiment) = repo.experiment(app, exp) else {
                continue;
            };
            for trial in experiment.trials() {
                f(app, exp, trial);
            }
        }
    }
}

/// Writes one trial's column page: four field planes, each metric-major
/// `(metric, event, thread)`.
fn write_planes(out: &mut Vec<u8>, p: &Profile) {
    for field in Field::ALL {
        for m in 0..p.metric_count() {
            for e in 0..p.event_count() {
                for cell in p.column(EventId(e as u32), MetricId(m as u32)) {
                    put_f64(out, field.of(cell));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

fn perr(message: impl Into<String>) -> DmfError {
    DmfError::Parse {
        format: "pdb1",
        line: None,
        message: message.into(),
    }
}

fn diag(message: impl Into<String>) -> Diagnostic {
    Diagnostic {
        format: "pdb1",
        line: None,
        message: message.into(),
    }
}

struct Rd<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn new(b: &'a [u8]) -> Self {
        Rd { b, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.b.len())
            .ok_or_else(|| perr(format!("truncated while reading {what}")))?;
        let s = &self.b[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32> {
        let s = self.take(4, what)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        let s = self.take(8, what)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(s);
        Ok(u64::from_le_bytes(a))
    }

    fn f64(&mut self, what: &str) -> Result<f64> {
        Ok(f64::from_bits(self.u64(what)?))
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Header {
    pub version: u32,
    pub section_count: u32,
    pub table_off: u64,
    pub file_len: u64,
}

pub(crate) fn parse_header(bytes: &[u8]) -> Result<Header> {
    if bytes.len() < HEADER_LEN {
        return Err(perr(format!(
            "file too short for a PDB1 header ({} bytes)",
            bytes.len()
        )));
    }
    if bytes[..4] != MAGIC {
        return Err(perr("bad magic: not a PDB1 file"));
    }
    let mut r = Rd::new(&bytes[4..HEADER_LEN]);
    let version = r.u32("version")?;
    if version != VERSION {
        return Err(perr(format!(
            "unsupported PDB1 version {version} (expected {VERSION})"
        )));
    }
    let section_count = r.u32("section count")?;
    let _reserved = r.u32("reserved")?;
    let table_off = r.u64("section table offset")?;
    let file_len = r.u64("file length")?;
    if section_count as usize > 64 {
        return Err(perr(format!("implausible section count {section_count}")));
    }
    Ok(Header {
        version,
        section_count,
        table_off,
        file_len,
    })
}

#[derive(Debug, Clone)]
pub(crate) struct SectionEntry {
    pub kind: u32,
    pub off: u64,
    pub len: u64,
    pub crc: u32,
    /// File offset of this table entry (fault-injection targets it).
    pub entry_off: usize,
}

pub(crate) fn parse_section_table(bytes: &[u8], header: &Header) -> Result<Vec<SectionEntry>> {
    let start = header.table_off as usize;
    let need = header.section_count as usize * SECTION_ENTRY_LEN;
    let end = start
        .checked_add(need)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| perr("section table out of bounds"))?;
    let mut out = Vec::with_capacity(header.section_count as usize);
    let mut r = Rd::new(&bytes[start..end]);
    for i in 0..header.section_count as usize {
        let kind = r.u32("section kind")?;
        let _ = r.u32("section reserved")?;
        let off = r.u64("section offset")?;
        let len = r.u64("section length")?;
        let crc = r.u32("section crc")?;
        let _ = r.u32("section reserved")?;
        out.push(SectionEntry {
            kind,
            off,
            len,
            crc,
            entry_off: start + i * SECTION_ENTRY_LEN,
        });
    }
    Ok(out)
}

fn find_section(sections: &[SectionEntry], kind: u32) -> Result<&SectionEntry> {
    sections
        .iter()
        .find(|s| s.kind == kind)
        .ok_or_else(|| perr(format!("missing {} section", section_name(kind))))
}

fn section_bytes<'a>(bytes: &'a [u8], s: &SectionEntry) -> Result<&'a [u8]> {
    let start = s.off as usize;
    let end = start
        .checked_add(s.len as usize)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| perr(format!("{} section out of bounds", section_name(s.kind))))?;
    Ok(&bytes[start..end])
}

fn parse_strings(b: &[u8]) -> Result<Vec<String>> {
    let mut r = Rd::new(b);
    let count = r.u32("string count")? as usize;
    // Each string needs at least its 4-byte length prefix, so an
    // implausible count is rejected before any allocation.
    if count > b.len() / 4 {
        return Err(perr(format!("implausible string count {count}")));
    }
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let len = r.u32("string length")? as usize;
        let raw = r.take(len, "string bytes")?;
        let s =
            std::str::from_utf8(raw).map_err(|_| perr(format!("string {i} is not valid UTF-8")))?;
        out.push(s.to_string());
    }
    Ok(out)
}

/// One trial record out of the manifest, with its page location.
#[derive(Debug, Clone)]
pub(crate) struct TrialRec {
    pub app: String,
    pub exp: String,
    pub name: String,
    pub metrics: Vec<Metric>,
    pub events: Vec<Event>,
    pub threads: Vec<ThreadId>,
    pub metadata: Metadata,
    /// Page offset relative to the column-pages section start.
    pub page_off: u64,
    pub page_crc: u32,
}

impl TrialRec {
    /// `app/exp/name`, the diagnostic path.
    pub fn path(&self) -> String {
        format!("{}/{}/{}", self.app, self.exp, self.name)
    }

    /// Cells per plane.
    pub fn cells(&self) -> usize {
        self.metrics.len() * self.events.len() * self.threads.len()
    }

    /// Page length in bytes: four f64 planes.
    pub fn page_len(&self) -> usize {
        4 * self.cells() * 8
    }
}

fn parse_manifest(b: &[u8], strings: &[String]) -> Result<Vec<TrialRec>> {
    let s = |id: u32| -> Result<String> {
        strings
            .get(id as usize)
            .cloned()
            .ok_or_else(|| perr(format!("string id {id} out of range")))
    };
    let mut r = Rd::new(b);
    let mut out = Vec::new();
    let app_count = r.u32("application count")?;
    for _ in 0..app_count {
        let app = s(r.u32("application name")?)?;
        let exp_count = r.u32("experiment count")?;
        for _ in 0..exp_count {
            let exp = s(r.u32("experiment name")?)?;
            let trial_count = r.u32("trial count")?;
            for _ in 0..trial_count {
                let name = s(r.u32("trial name")?)?;
                let nm = r.u32("metric count")? as usize;
                let ne = r.u32("event count")? as usize;
                let nt = r.u32("thread count")? as usize;
                let page_off = r.u64("page offset")?;
                let page_crc = r.u32("page crc")?;
                // Plausibility before allocation: each metric/event
                // needs ≥ 5 manifest bytes, each thread 12.
                let remaining = b.len() - r.pos;
                if nm * 5 + ne * 5 + nt * 12 > remaining {
                    return Err(perr(format!(
                        "trial {app}/{exp}/{name}: axis counts exceed manifest size"
                    )));
                }
                let mut metrics = Vec::with_capacity(nm);
                for _ in 0..nm {
                    let mname = s(r.u32("metric name")?)?;
                    let derived = r.u8("metric derived flag")? != 0;
                    metrics.push(Metric {
                        name: mname,
                        derived,
                    });
                }
                let mut events = Vec::with_capacity(ne);
                for _ in 0..ne {
                    let ename = s(r.u32("event name")?)?;
                    let kind = match r.u8("event kind flag")? {
                        0 => None,
                        _ => Some(s(r.u32("event kind")?)?),
                    };
                    events.push(Event { name: ename, kind });
                }
                let mut threads = Vec::with_capacity(nt);
                for _ in 0..nt {
                    threads.push(ThreadId {
                        node: r.u32("thread node")?,
                        context: r.u32("thread context")?,
                        thread: r.u32("thread id")?,
                    });
                }
                let meta_count = r.u32("metadata count")?;
                let mut metadata = Metadata::new();
                for _ in 0..meta_count {
                    let key = s(r.u32("metadata key")?)?;
                    let value = match r.u8("metadata tag")? {
                        0 => MetaValue::Str(s(r.u32("metadata string")?)?),
                        1 => MetaValue::Num(r.f64("metadata number")?),
                        2 => MetaValue::Bool(r.u8("metadata bool")? != 0),
                        t => return Err(perr(format!("unknown metadata tag {t}"))),
                    };
                    metadata.set(&key, value);
                }
                out.push(TrialRec {
                    app: app.clone(),
                    exp: exp.clone(),
                    name,
                    metrics,
                    events,
                    threads,
                    metadata,
                    page_off,
                    page_crc,
                });
            }
        }
    }
    Ok(out)
}

/// The parsed skeleton of a PDB1 file: everything except the column
/// pages, which stay untouched byte ranges until a trial is read.
#[derive(Debug)]
pub(crate) struct Doc {
    pub trials: Vec<TrialRec>,
    /// Column-pages section range within the file (clamped to the file
    /// in lenient mode).
    pub pages_off: usize,
    pub pages_len: usize,
}

impl Doc {
    /// The byte range of one trial's page, bounds-checked against the
    /// pages section.
    pub fn page_bytes<'a>(&self, bytes: &'a [u8], rec: &TrialRec) -> Result<&'a [u8]> {
        let start = (self.pages_off as u64)
            .checked_add(rec.page_off)
            .ok_or_else(|| perr(format!("trial {}: page offset overflow", rec.path())))?
            as usize;
        let end = start
            .checked_add(rec.page_len())
            .filter(|&e| e <= self.pages_off + self.pages_len && e <= bytes.len())
            .ok_or_else(|| perr(format!("trial {}: column page out of bounds", rec.path())))?;
        Ok(&bytes[start..end])
    }
}

/// Parses header, section table, string table and manifest.
///
/// In strict mode (`lenient == false`) any checksum mismatch or
/// structural problem is an error. In lenient mode, problems that still
/// leave the file navigable are demoted to diagnostics naming the
/// corrupt section, and parsing continues.
pub(crate) fn parse_doc(bytes: &[u8], lenient: bool) -> Result<(Doc, Vec<Diagnostic>)> {
    let header = parse_header(bytes)?;
    let sections = parse_section_table(bytes, &header)?;
    let mut diags = Vec::new();

    if header.file_len != bytes.len() as u64 {
        let msg = format!(
            "file length mismatch: header says {}, found {} (truncated or padded)",
            header.file_len,
            bytes.len()
        );
        if !lenient {
            return Err(perr(msg));
        }
        diags.push(diag(msg));
    }

    let strings_sec = find_section(&sections, SEC_STRINGS)?;
    let strings_bytes = section_bytes(bytes, strings_sec)?;
    if crc32(strings_bytes) != strings_sec.crc {
        let msg = "string table section checksum mismatch".to_string();
        if !lenient {
            return Err(perr(msg));
        }
        diags.push(diag(format!("{msg}; parsing anyway")));
    }
    let strings = parse_strings(strings_bytes)?;

    let manifest_sec = find_section(&sections, SEC_MANIFEST)?;
    let manifest_bytes = section_bytes(bytes, manifest_sec)?;
    if crc32(manifest_bytes) != manifest_sec.crc {
        let msg = "manifest section checksum mismatch".to_string();
        if !lenient {
            return Err(perr(msg));
        }
        diags.push(diag(format!("{msg}; parsing anyway")));
    }
    let trials = parse_manifest(manifest_bytes, &strings)?;

    let (pages_off, pages_len) = match find_section(&sections, SEC_PAGES) {
        Ok(sec) => {
            let off = sec.off as usize;
            let aligned = off.is_multiple_of(8);
            if !aligned {
                let msg = format!("column pages section misaligned (offset {off})");
                if !lenient {
                    return Err(perr(msg));
                }
                diags.push(diag(msg));
            }
            match section_bytes(bytes, sec) {
                Ok(b) => (off, b.len()),
                Err(e) => {
                    if !lenient {
                        return Err(e);
                    }
                    diags.push(diag(format!("{e}; clamping to file end")));
                    let len = bytes.len().saturating_sub(off.min(bytes.len()));
                    (off.min(bytes.len()), len)
                }
            }
        }
        Err(e) => {
            if !lenient {
                return Err(e);
            }
            diags.push(diag(e.to_string()));
            (bytes.len(), 0)
        }
    };

    Ok((
        Doc {
            trials,
            pages_off,
            pages_len,
        },
        diags,
    ))
}

/// Verifies the stored CRC of the column-pages section.
pub(crate) fn pages_section_ok(bytes: &[u8]) -> Result<bool> {
    let header = parse_header(bytes)?;
    let sections = parse_section_table(bytes, &header)?;
    let sec = find_section(&sections, SEC_PAGES)?;
    let b = section_bytes(bytes, sec)?;
    Ok(crc32(b) == sec.crc)
}

/// Rebuilds a trial from its manifest record and raw page bytes.
///
/// Reads field by field with `from_le_bytes`, so it works on any
/// alignment and any host endianness (the zero-copy path in
/// [`crate::mapped`] is the one that needs alignment).
pub(crate) fn materialize_trial(rec: &TrialRec, page: &[u8]) -> Result<Trial> {
    let nm = rec.metrics.len();
    let ne = rec.events.len();
    let nt = rec.threads.len();
    let cells = nm * ne * nt;
    if page.len() != 4 * cells * 8 {
        return Err(perr(format!(
            "trial {}: page length {} does not match dimensions",
            rec.path(),
            page.len()
        )));
    }
    let f64_at = |i: usize| -> f64 {
        let mut a = [0u8; 8];
        a.copy_from_slice(&page[i * 8..i * 8 + 8]);
        f64::from_le_bytes(a)
    };
    let mut data = vec![Measurement::default(); cells];
    for (f, field) in Field::ALL.iter().enumerate() {
        for m in 0..nm {
            for e in 0..ne {
                for t in 0..nt {
                    let src = ((f * nm + m) * ne + e) * nt + t;
                    let dst = (e * nm + m) * nt + t;
                    let v = f64_at(src);
                    let cell = &mut data[dst];
                    match field {
                        Field::Inclusive => cell.inclusive = v,
                        Field::Exclusive => cell.exclusive = v,
                        Field::Calls => cell.calls = v,
                        Field::Subcalls => cell.subcalls = v,
                    }
                }
            }
        }
    }
    let profile = Profile::from_parts(
        rec.metrics.clone(),
        rec.events.clone(),
        rec.threads.clone(),
        data,
    )?;
    Ok(Trial {
        name: rec.name.clone(),
        profile,
        metadata: rec.metadata.clone(),
    })
}

/// Decodes a PDB1 file strictly: any checksum mismatch, truncation or
/// structural problem fails the load.
pub fn read_repository(bytes: &[u8]) -> Result<Repository> {
    let (doc, _diags) = parse_doc(bytes, false)?;
    if !pages_section_ok(bytes)? {
        return Err(perr("column pages section checksum mismatch"));
    }
    let mut repo = Repository::new();
    for rec in &doc.trials {
        let page = doc.page_bytes(bytes, rec)?;
        let trial = materialize_trial(rec, page)?;
        repo.upsert_trial(&rec.app, &rec.exp, trial);
    }
    Ok(repo)
}

/// Decodes as much of a possibly corrupt PDB1 file as possible.
///
/// Section-level corruption is reported as a [`Diagnostic`] naming the
/// section ("string table", "manifest", "column pages"); trials whose
/// own page checksum still verifies are loaded, the rest are dropped
/// with an `app/exp/name: cause` diagnostic. Fails only when the file
/// cannot be navigated at all (bad magic, unreadable section table,
/// unreadable string table or manifest).
pub fn salvage(bytes: &[u8]) -> Result<(Repository, Vec<Diagnostic>)> {
    let (doc, mut diags) = parse_doc(bytes, true)?;
    match pages_section_ok(bytes) {
        Ok(true) => {}
        Ok(false) => diags.push(diag(
            "column pages section checksum mismatch; validating per-trial pages",
        )),
        Err(e) => diags.push(diag(e.to_string())),
    }
    let mut repo = Repository::new();
    for rec in &doc.trials {
        let page = match doc.page_bytes(bytes, rec) {
            Ok(p) => p,
            Err(e) => {
                diags.push(diag(e.to_string()));
                continue;
            }
        };
        if crc32(page) != rec.page_crc {
            diags.push(diag(format!(
                "{}: column page checksum mismatch",
                rec.path()
            )));
            continue;
        }
        match materialize_trial(rec, page) {
            Ok(trial) => repo.upsert_trial(&rec.app, &rec.exp, trial),
            Err(e) => diags.push(diag(format!("{}: {e}", rec.path()))),
        }
    }
    Ok((repo, diags))
}

// ---------------------------------------------------------------------------
// Inspection
// ---------------------------------------------------------------------------

/// One section's health in an [`InspectReport`].
#[derive(Debug, Clone)]
pub struct SectionReport {
    /// Section name ("string table", "manifest", "column pages").
    pub name: &'static str,
    /// File offset.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
    /// The CRC32 stored in the section table.
    pub crc_stored: u32,
    /// Whether the section's bytes match the stored CRC (`None` when
    /// the section lies outside the file).
    pub crc_ok: Option<bool>,
}

/// Structural summary of a PDB1 file, for `repo inspect`.
#[derive(Debug, Clone)]
pub struct InspectReport {
    /// Format version.
    pub version: u32,
    /// File length claimed by the header.
    pub declared_len: u64,
    /// Actual byte length.
    pub actual_len: u64,
    /// Interned string count.
    pub strings: usize,
    /// Section health, in table order.
    pub sections: Vec<SectionReport>,
    /// Total trial records in the manifest.
    pub trials: usize,
    /// Trials whose page checksum verifies.
    pub pages_ok: usize,
    /// Trials whose page is out of bounds or fails its checksum.
    pub pages_bad: usize,
}

/// Inspects a PDB1 file: header, per-section checksum health, trial and
/// page counts. Tolerates checksum mismatches (they are what it
/// reports) but requires a navigable header, section table, string
/// table and manifest.
pub fn inspect(bytes: &[u8]) -> Result<InspectReport> {
    let header = parse_header(bytes)?;
    let sections = parse_section_table(bytes, &header)?;
    let reports: Vec<SectionReport> = sections
        .iter()
        .map(|s| SectionReport {
            name: section_name(s.kind),
            offset: s.off,
            len: s.len,
            crc_stored: s.crc,
            crc_ok: section_bytes(bytes, s).ok().map(|b| crc32(b) == s.crc),
        })
        .collect();
    let (doc, _diags) = parse_doc(bytes, true)?;
    let mut pages_ok = 0;
    let mut pages_bad = 0;
    for rec in &doc.trials {
        match doc.page_bytes(bytes, rec) {
            Ok(p) if crc32(p) == rec.page_crc => pages_ok += 1,
            _ => pages_bad += 1,
        }
    }
    let strings_sec = find_section(&sections, SEC_STRINGS)?;
    let strings = parse_strings(section_bytes(bytes, strings_sec)?)?.len();
    Ok(InspectReport {
        version: header.version,
        declared_len: header.file_len,
        actual_len: bytes.len() as u64,
        strings,
        sections: reports,
        trials: doc.trials.len(),
        pages_ok,
        pages_bad,
    })
}

// ---------------------------------------------------------------------------
// Fault-injection support (the `faultsim` crate)
// ---------------------------------------------------------------------------

/// Fault-injection support: overwrites the magic bytes so the file no
/// longer identifies as PDB1. Returns a description, or `None` when the
/// buffer is too short.
pub fn corrupt_magic(bytes: &mut [u8], garbage: [u8; 4]) -> Option<String> {
    if bytes.len() < 4 || garbage == MAGIC {
        return None;
    }
    bytes[..4].copy_from_slice(&garbage);
    Some(format!("magic overwritten with {garbage:?}"))
}

/// Fault-injection support: truncates the file inside section
/// `section_index` (mod the section count) at fraction `frac` of the
/// section's span — the mid-write crash shape. Returns `None` when the
/// file is not navigable PDB1.
pub fn truncate_in_section(bytes: &mut Vec<u8>, section_index: usize, frac: f64) -> Option<String> {
    let header = parse_header(bytes).ok()?;
    let sections = parse_section_table(bytes, &header).ok()?;
    if sections.is_empty() {
        return None;
    }
    let s = &sections[section_index % sections.len()];
    if s.len == 0 {
        return None;
    }
    let span = s.len as f64;
    let cut = s.off + (span * frac.clamp(0.0, 0.999)) as u64;
    let cut = (cut as usize).min(bytes.len().saturating_sub(1));
    if cut >= bytes.len() {
        return None;
    }
    let name = section_name(s.kind);
    bytes.truncate(cut);
    Some(format!("truncated inside {name} section at byte {cut}"))
}

/// Fault-injection support: flips one bit of a section's *stored* CRC32
/// in the section table, so the data no longer matches its checksum.
pub fn flip_section_checksum(bytes: &mut [u8], section_index: usize, bit: u32) -> Option<String> {
    let header = parse_header(bytes).ok()?;
    let sections = parse_section_table(bytes, &header).ok()?;
    if sections.is_empty() {
        return None;
    }
    let s = &sections[section_index % sections.len()];
    let crc_field = s.entry_off + 24 + (bit as usize / 8) % 4;
    if crc_field >= bytes.len() {
        return None;
    }
    bytes[crc_field] ^= 1 << (bit % 8);
    Some(format!(
        "flipped checksum bit {bit} of {} section",
        section_name(s.kind)
    ))
}

/// Fault-injection support: shifts the column-pages section offset by
/// `delta` bytes (1..=7 breaks the 8-byte alignment guarantee), the
/// shape a corrupted section table exhibits.
pub fn misalign_pages_offset(bytes: &mut [u8], delta: u64) -> Option<String> {
    let header = parse_header(bytes).ok()?;
    let sections = parse_section_table(bytes, &header).ok()?;
    let s = sections.iter().find(|s| s.kind == SEC_PAGES)?;
    let new_off = s.off.checked_add(delta)?;
    let at = s.entry_off + 8;
    if at + 8 > bytes.len() {
        return None;
    }
    bytes[at..at + 8].copy_from_slice(&new_off.to_le_bytes());
    Some(format!(
        "column pages offset shifted by {delta} (now {new_off})"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TrialBuilder;

    fn trial(name: &str, threads: usize, with_kind: bool) -> Trial {
        let mut b = TrialBuilder::with_flat_threads(name, threads);
        let time = b.metric("TIME");
        let cyc = b.metric("CPU_CYCLES");
        for (i, ename) in ["main", "main => compute", "main => exchange"]
            .iter()
            .enumerate()
        {
            let e = if with_kind && i > 0 {
                b.event_with_kind(ename, "loop")
            } else {
                b.event(ename)
            };
            for t in 0..threads {
                b.set(e, time, t, Measurement::leaf(10.0 + (t + i) as f64));
                b.set(e, cyc, t, Measurement::leaf(1e6 + t as f64));
            }
        }
        b.meta("threads", threads);
        b.meta("machine", "Altix 300");
        b.meta("optimized", true);
        b.build()
    }

    fn sample_repo() -> Repository {
        let mut repo = Repository::new();
        repo.add_trial("app", "exp", trial("t1", 4, false)).unwrap();
        repo.add_trial("app", "exp", trial("t2", 2, true)).unwrap();
        repo.add_trial("other", "scaling", trial("1_8", 8, false))
            .unwrap();
        repo
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_preserves_repository() {
        let repo = sample_repo();
        let bytes = write_repository(&repo);
        assert_eq!(&bytes[..4], &MAGIC);
        let back = read_repository(&bytes).unwrap();
        assert_eq!(repo, back);
    }

    #[test]
    fn empty_repository_roundtrips() {
        let repo = Repository::new();
        let bytes = write_repository(&repo);
        let back = read_repository(&bytes).unwrap();
        assert_eq!(repo, back);
        assert_eq!(back.trial_count(), 0);
    }

    #[test]
    fn reencode_is_byte_stable() {
        let repo = sample_repo();
        let bytes = write_repository(&repo);
        let again = write_repository(&read_repository(&bytes).unwrap());
        assert_eq!(bytes, again);
    }

    #[test]
    fn pages_are_eight_byte_aligned() {
        let repo = sample_repo();
        let bytes = write_repository(&repo);
        let (doc, diags) = parse_doc(&bytes, false).unwrap();
        assert!(diags.is_empty());
        assert_eq!(doc.pages_off % 8, 0);
        for rec in &doc.trials {
            assert_eq!(rec.page_off % 8, 0, "trial {} misaligned", rec.path());
        }
    }

    #[test]
    fn nan_cells_survive_binary_roundtrip() {
        let mut repo = Repository::new();
        let mut t = trial("nan", 2, false);
        let e = t.profile.event_id("main").unwrap();
        let m = t.profile.metric_id("TIME").unwrap();
        t.profile.get_mut(e, m, 0).unwrap().exclusive = f64::NAN;
        repo.add_trial("a", "e", t).unwrap();
        let back = read_repository(&write_repository(&repo)).unwrap();
        let cell = back
            .trial("a", "e", "nan")
            .unwrap()
            .profile
            .get(e, m, 0)
            .unwrap();
        assert!(cell.exclusive.is_nan());
    }

    #[test]
    fn bad_magic_is_typed_error() {
        let mut bytes = write_repository(&sample_repo());
        corrupt_magic(&mut bytes, *b"XXXX").unwrap();
        let err = read_repository(&bytes).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
        assert!(salvage(&bytes).is_err());
    }

    #[test]
    fn flipped_strings_checksum_salvages_with_section_diagnostic() {
        let mut bytes = write_repository(&sample_repo());
        flip_section_checksum(&mut bytes, 0, 3).unwrap();
        assert!(read_repository(&bytes).is_err());
        let (repo, diags) = salvage(&bytes).unwrap();
        // Data untouched: everything loads, the diagnostic names the
        // corrupt section.
        assert_eq!(repo.trial_count(), 3);
        assert!(
            diags.iter().any(|d| d.message.contains("string table")),
            "{diags:?}"
        );
    }

    #[test]
    fn flipped_pages_checksum_salvages_via_per_trial_crcs() {
        let mut bytes = write_repository(&sample_repo());
        flip_section_checksum(&mut bytes, 2, 17).unwrap();
        assert!(read_repository(&bytes).is_err());
        let (repo, diags) = salvage(&bytes).unwrap();
        assert_eq!(repo.trial_count(), 3);
        assert!(
            diags.iter().any(|d| d.message.contains("column pages")),
            "{diags:?}"
        );
    }

    #[test]
    fn truncation_in_pages_drops_tail_trials_keeps_head() {
        let repo = sample_repo();
        let mut bytes = write_repository(&repo);
        // Cut deep into the pages section: early trials survive.
        truncate_in_section(&mut bytes, 2, 0.9).unwrap();
        assert!(read_repository(&bytes).is_err());
        let (salvaged, diags) = salvage(&bytes).unwrap();
        assert!(salvaged.trial_count() >= 1, "head trials must survive");
        assert!(salvaged.trial_count() < 3, "tail trial must be dropped");
        assert!(!diags.is_empty());
        // Dropped-trial diagnostics carry the trial path.
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains('/') && d.format == "pdb1"),
            "{diags:?}"
        );
    }

    #[test]
    fn misaligned_pages_degrades_to_diagnostics_not_panic() {
        let mut bytes = write_repository(&sample_repo());
        misalign_pages_offset(&mut bytes, 3).unwrap();
        assert!(read_repository(&bytes).is_err());
        let (repo, diags) = salvage(&bytes).unwrap();
        // Every page now reads shifted garbage; nothing verifies.
        assert_eq!(repo.trial_count(), 0);
        assert!(
            diags.iter().any(|d| d.message.contains("misaligned")),
            "{diags:?}"
        );
    }

    #[test]
    fn corrupted_page_byte_drops_only_that_trial() {
        let repo = sample_repo();
        let mut bytes = write_repository(&repo);
        let (doc, _) = parse_doc(&bytes, false).unwrap();
        // Flip one byte inside the *first* trial's page.
        let rec = &doc.trials[0];
        let at = doc.pages_off + rec.page_off as usize + 5;
        bytes[at] ^= 0x40;
        let (salvaged, diags) = salvage(&bytes).unwrap();
        assert_eq!(salvaged.trial_count(), 2);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains(&rec.path()) && d.message.contains("checksum")),
            "{diags:?}"
        );
    }

    #[test]
    fn inspect_reports_sections_and_page_health() {
        let repo = sample_repo();
        let bytes = write_repository(&repo);
        let report = inspect(&bytes).unwrap();
        assert_eq!(report.version, VERSION);
        assert_eq!(report.trials, 3);
        assert_eq!(report.pages_ok, 3);
        assert_eq!(report.pages_bad, 0);
        assert_eq!(report.sections.len(), 3);
        assert!(report.sections.iter().all(|s| s.crc_ok == Some(true)));

        let mut corrupt = bytes.clone();
        flip_section_checksum(&mut corrupt, 1, 0).unwrap();
        let report = inspect(&corrupt).unwrap();
        assert!(report
            .sections
            .iter()
            .any(|s| s.name == "manifest" && s.crc_ok == Some(false)));
    }

    #[test]
    fn garbage_is_not_pdb1() {
        assert!(read_repository(b"not a pdb1 file at all").is_err());
        assert!(salvage(&[0u8; 64]).is_err());
        assert!(inspect(b"PDB1").is_err()); // magic alone, no header
    }
}
