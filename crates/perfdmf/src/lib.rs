//! Parallel performance profile data management.
//!
//! This crate reimplements the role PerfDMF plays in the paper's pipeline:
//! a data management framework that stores parallel performance profiles
//! from many experiments and makes them queryable by the analysis layer.
//!
//! The data model follows the TAU/PerfDMF hierarchy:
//!
//! ```text
//! Application ─▶ Experiment ─▶ Trial ─▶ (metric × event × thread) ─▶ Measurement
//! ```
//!
//! * an **application** is a program under study (e.g. `"Fluid Dynamic"`),
//! * an **experiment** groups trials of one configuration family
//!   (e.g. `"rib 45"`),
//! * a **trial** is one run, storing measurements for every *metric*
//!   (e.g. `CPU_CYCLES`), *event* (an instrumented code region, possibly a
//!   callpath like `main => outer_loop => inner_loop`) and *thread*
//!   (node/context/thread triple),
//! * **metadata** records the performance context — machine, schedule,
//!   problem size — that inference rules use to justify conclusions.
//!
//! Besides the in-memory store and JSON persistence, the crate provides
//! readers for several on-disk profile formats ([`formats`]) and a
//! CUBE-style profile [`algebra`] (difference / merge / aggregation),
//! mirroring PerfDMF's support for "nearly a dozen performance profile
//! formats" and PerfExplorer's cross-experiment operations.

#![warn(missing_docs)]

pub mod algebra;
pub mod error;
pub mod formats;
pub mod mapped;
pub mod metadata;
pub mod model;
pub mod pdb1;
pub mod quality;
pub mod repo;
pub mod shared;
pub mod streaming;
pub mod validate;
pub mod wal;

pub use error::DmfError;
pub use mapped::{MappedRepository, TrialView};
pub use metadata::{MetaValue, Metadata};
pub use model::{
    Event, EventId, Measurement, Metric, MetricId, Profile, ThreadId, Trial, TrialBuilder,
    MAIN_EVENT,
};
pub use pdb1::Field;
pub use quality::{sanitize_profile, sanitize_trial, DataQuality, QualityConfig};
pub use repo::{Format, RecoveredRepository, Repository};
pub use shared::SharedRepository;
pub use streaming::{AppliedChunk, ChunkBatch, ColumnDelta, StreamingTrial, TouchedColumn};
pub use wal::{FsyncPolicy, Journal, WalRecord, WalReplay};

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, DmfError>;
