//! Profile algebra: difference, merge, and thread aggregation.
//!
//! CUBE's "Performance Algebra" (referenced in the paper's related work)
//! defines difference, merge and aggregation operations on parallel
//! profiles; PerfExplorer performs the same cross-experiment comparisons.
//! These operations are the building blocks of "optimized vs unoptimized"
//! and "MPI vs OpenMP" comparisons in the case studies.

//! All three operations stream the profiles' contiguous columns
//! ([`Profile::columns`] / [`Profile::column_mut`]) instead of probing
//! cell-by-cell, and resolve cross-profile names through the interned
//! O(1) lookups once per axis rather than once per cell.

use crate::model::{EventId, Measurement, MetricId, Profile, ThreadId};
use crate::{DmfError, Result};
use serde::{Deserialize, Serialize};

/// Thread-aggregation modes for [`aggregate_threads`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Aggregation {
    /// Arithmetic mean across threads (the paper's `TrialMeanResult`).
    Mean,
    /// Sum across threads (total resource consumption).
    Total,
    /// Maximum across threads (critical path).
    Max,
    /// Minimum across threads.
    Min,
}

fn check_compatible(a: &Profile, b: &Profile) -> Result<()> {
    if a.thread_count() != b.thread_count() {
        return Err(DmfError::Incompatible(format!(
            "thread counts differ: {} vs {}",
            a.thread_count(),
            b.thread_count()
        )));
    }
    Ok(())
}

/// Computes `a - b` cell-wise over the events and metrics they share.
///
/// Events or metrics present in only one input are ignored (a missing
/// region after optimisation is expected, not an error); thread counts
/// must match.
pub fn difference(a: &Profile, b: &Profile) -> Result<Profile> {
    check_compatible(a, b)?;
    let mut out = Profile::new(a.threads().to_vec());
    // Register shared metrics before any event so the arena is laid out
    // once (add_metric after events would rebuild it per metric).
    let metric_map: Vec<Option<(MetricId, MetricId)>> = a
        .metrics()
        .iter()
        .map(|metric| {
            b.metric_id(&metric.name)
                .map(|mb| Ok((out.add_metric(metric.clone())?, mb)))
                .transpose()
        })
        .collect::<Result<_>>()?;
    if out.metric_count() == 0 {
        return Ok(out);
    }
    let event_map: Vec<Option<(EventId, EventId)>> = a
        .events()
        .iter()
        .map(|event| {
            b.event_id(&event.name)
                .map(|eb| Ok((out.add_event(event.clone())?, eb)))
                .transpose()
        })
        .collect::<Result<_>>()?;
    for (ea, ma, col_a) in a.columns() {
        let (Some((eo, eb)), Some((mo, mb))) =
            (event_map[ea.0 as usize], metric_map[ma.0 as usize])
        else {
            continue;
        };
        let col_b = b.column(eb, mb);
        for (cell, (ca, cb)) in out
            .column_mut(eo, mo)
            .iter_mut()
            .zip(col_a.iter().zip(col_b))
        {
            *cell = Measurement {
                inclusive: ca.inclusive - cb.inclusive,
                exclusive: ca.exclusive - cb.exclusive,
                calls: ca.calls - cb.calls,
                subcalls: ca.subcalls - cb.subcalls,
            };
        }
    }
    Ok(out)
}

/// Merges two profiles over the same thread set: the union of events and
/// metrics, with overlapping cells summed.
pub fn merge(a: &Profile, b: &Profile) -> Result<Profile> {
    check_compatible(a, b)?;
    let mut out = Profile::new(a.threads().to_vec());
    // Union the metric axis first: events appended afterwards get their
    // full-width blocks in one arena append each.
    for src in [a, b] {
        for metric in src.metrics() {
            if out.metric_id(&metric.name).is_none() {
                out.add_metric(metric.clone())?;
            }
        }
    }
    for src in [a, b] {
        for event in src.events() {
            if out.event_id(&event.name).is_none() {
                out.add_event(event.clone())?;
            }
        }
    }
    for src in [a, b] {
        // Resolve each axis to out's ids once, then stream columns.
        let metric_map: Vec<MetricId> = src
            .metrics()
            .iter()
            .map(|m| out.metric_id(&m.name).expect("metrics unioned above"))
            .collect();
        let event_map: Vec<EventId> = src
            .events()
            .iter()
            .map(|e| out.event_id(&e.name).expect("events unioned above"))
            .collect();
        for (es, ms, col) in src.columns() {
            let eo = event_map[es.0 as usize];
            let mo = metric_map[ms.0 as usize];
            for (cell, c) in out.column_mut(eo, mo).iter_mut().zip(col) {
                cell.inclusive += c.inclusive;
                cell.exclusive += c.exclusive;
                cell.calls += c.calls;
                cell.subcalls += c.subcalls;
            }
        }
    }
    Ok(out)
}

/// Collapses the thread dimension with the given aggregation, producing a
/// single-thread profile.
pub fn aggregate_threads(p: &Profile, how: Aggregation) -> Result<Profile> {
    if p.thread_count() == 0 {
        return Err(DmfError::Incompatible("profile has no threads".into()));
    }
    let mut out = Profile::new(vec![ThreadId::flat(0)]);
    for metric in p.metrics() {
        out.add_metric(metric.clone())?;
    }
    for event in p.events() {
        out.add_event(event.clone())?;
    }
    let n = p.thread_count() as f64;
    // `out` mirrors p's axes in order, so source ids are valid out ids.
    for (e, m, cells) in p.columns() {
        let fold = |f: fn(&Measurement) -> f64| -> f64 {
            match how {
                Aggregation::Mean => cells.iter().map(f).sum::<f64>() / n,
                Aggregation::Total => cells.iter().map(f).sum::<f64>(),
                Aggregation::Max => cells.iter().map(f).fold(f64::NEG_INFINITY, f64::max),
                Aggregation::Min => cells.iter().map(f).fold(f64::INFINITY, f64::min),
            }
        };
        let agg = Measurement {
            inclusive: fold(|c| c.inclusive),
            exclusive: fold(|c| c.exclusive),
            calls: fold(|c| c.calls),
            subcalls: fold(|c| c.subcalls),
        };
        out.set(e, m, 0, agg)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Event, Metric};

    fn profile(threads: usize, events: &[(&str, &[f64])]) -> Profile {
        let mut p = Profile::new((0..threads as u32).map(ThreadId::flat).collect());
        let m = p.add_metric(Metric::measured("TIME")).unwrap();
        for (name, values) in events {
            let e = p.add_event(Event::new(*name)).unwrap();
            for (t, &v) in values.iter().enumerate() {
                p.set(e, m, t, Measurement::leaf(v)).unwrap();
            }
        }
        p
    }

    #[test]
    fn difference_subtracts_shared_cells() {
        let a = profile(2, &[("main", &[10.0, 12.0]), ("loop", &[5.0, 7.0])]);
        let b = profile(2, &[("main", &[4.0, 5.0])]);
        let d = difference(&a, &b).unwrap();
        let m = d.metric_id("TIME").unwrap();
        let e = d.event_id("main").unwrap();
        assert_eq!(d.get(e, m, 0).unwrap().exclusive, 6.0);
        assert_eq!(d.get(e, m, 1).unwrap().exclusive, 7.0);
        // "loop" exists only in a, so it is absent from the difference.
        assert!(d.event_id("loop").is_none());
    }

    #[test]
    fn difference_requires_same_thread_count() {
        let a = profile(2, &[("main", &[1.0, 2.0])]);
        let b = profile(3, &[("main", &[1.0, 2.0, 3.0])]);
        assert!(matches!(difference(&a, &b), Err(DmfError::Incompatible(_))));
    }

    #[test]
    fn merge_unions_events_and_sums_overlap() {
        let a = profile(2, &[("main", &[1.0, 2.0]), ("a_only", &[3.0, 4.0])]);
        let b = profile(2, &[("main", &[10.0, 20.0]), ("b_only", &[5.0, 6.0])]);
        let m = merge(&a, &b).unwrap();
        let t = m.metric_id("TIME").unwrap();
        let main = m.event_id("main").unwrap();
        assert_eq!(m.get(main, t, 0).unwrap().exclusive, 11.0);
        assert_eq!(m.get(main, t, 1).unwrap().exclusive, 22.0);
        assert!(m.event_id("a_only").is_some());
        assert!(m.event_id("b_only").is_some());
    }

    #[test]
    fn merge_then_difference_recovers_original() {
        let a = profile(2, &[("main", &[1.0, 2.0])]);
        let b = profile(2, &[("main", &[10.0, 20.0])]);
        let merged = merge(&a, &b).unwrap();
        let back = difference(&merged, &b).unwrap();
        let t = back.metric_id("TIME").unwrap();
        let main = back.event_id("main").unwrap();
        assert_eq!(back.get(main, t, 0).unwrap().exclusive, 1.0);
        assert_eq!(back.get(main, t, 1).unwrap().exclusive, 2.0);
    }

    #[test]
    fn aggregate_mean_total_max_min() {
        let p = profile(4, &[("main", &[1.0, 2.0, 3.0, 6.0])]);
        let t = p.metric_id("TIME").unwrap();

        let mean = aggregate_threads(&p, Aggregation::Mean).unwrap();
        let e = mean.event_id("main").unwrap();
        assert_eq!(mean.get(e, t, 0).unwrap().exclusive, 3.0);
        assert_eq!(mean.thread_count(), 1);

        let total = aggregate_threads(&p, Aggregation::Total).unwrap();
        assert_eq!(total.get(e, t, 0).unwrap().exclusive, 12.0);

        let max = aggregate_threads(&p, Aggregation::Max).unwrap();
        assert_eq!(max.get(e, t, 0).unwrap().exclusive, 6.0);

        let min = aggregate_threads(&p, Aggregation::Min).unwrap();
        assert_eq!(min.get(e, t, 0).unwrap().exclusive, 1.0);
    }

    #[test]
    fn aggregate_empty_profile_is_error() {
        let p = Profile::new(vec![]);
        assert!(aggregate_threads(&p, Aggregation::Mean).is_err());
    }
}
