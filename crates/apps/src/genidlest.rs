//! The GenIDLEST case study (§III-B): a multiblock structured-grid
//! incompressible-flow solver model.
//!
//! The model reproduces the paper's two test problems and the structural
//! causes of its findings:
//!
//! * **45rib** — 128×80×64 grid in 8 blocks of 128×80×8, run on up to
//!   8 processors; **90rib** — 128×128×128 in 32 blocks of 128×128×4,
//!   run on up to 32 processors.
//! * The solver's kernels (`bicgstab`, `diff_coeff`, `matxvec`, `pc`,
//!   `pc_jac_glb`) stream over per-block arrays; their times come from
//!   the processor + memory models.
//! * **First-touch placement**: the unoptimised version initialises all
//!   arrays sequentially, homing every page on node 0 — threads on other
//!   nodes then pay remote latency *and* contend for node 0's memory.
//!   The optimised version parallelises initialisation so pages land on
//!   the touching thread's node.
//! * **Ghost-cell exchange** (`exchange_var`): MPI ranks overlap
//!   nonblocking sends/receives; the unoptimised OpenMP version performs
//!   all on-processor copies *sequentially on the master thread*
//!   (30 copies for 45rib, 126 for 90rib) through the serial
//!   `mpi_send_recv_ko` path, while the optimised version distributes
//!   direct copies across the team.

use perfdmf::Trial;
use simulator::machine::MachineConfig;
use simulator::memory::{memory_costs, AccessProfile, PlacementStats};
use simulator::mpi::{ExchangeSpec, MpiCostModel};
use simulator::profiling::Recorder;
use simulator::{Counter, CounterSet};

/// Which test problem to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Problem {
    /// 45-degree rib: 128×80×64, 8 blocks of 128×80×8 (DES).
    Rib45,
    /// 90-degree rib: 128×128×128, 32 blocks of 128×128×4 (LES).
    Rib90,
}

impl Problem {
    /// Block count.
    pub fn blocks(&self) -> usize {
        match self {
            Problem::Rib45 => 8,
            Problem::Rib90 => 32,
        }
    }

    /// Cells per block.
    pub fn cells_per_block(&self) -> f64 {
        match self {
            Problem::Rib45 => 128.0 * 80.0 * 8.0,
            Problem::Rib90 => 128.0 * 128.0 * 4.0,
        }
    }

    /// Ghost-face cells exchanged per inter-block boundary.
    pub fn face_cells(&self) -> f64 {
        match self {
            Problem::Rib45 => 128.0 * 80.0,
            Problem::Rib90 => 128.0 * 128.0,
        }
    }

    /// On-processor boundary copies in the standalone OpenMP version
    /// (from the paper: 30 for 45rib, 126 for 90rib).
    pub fn shared_memory_copies(&self) -> usize {
        match self {
            Problem::Rib45 => 30,
            Problem::Rib90 => 126,
        }
    }

    /// Experiment name used in the repository.
    pub fn experiment_name(&self) -> &'static str {
        match self {
            Problem::Rib45 => "rib 45",
            Problem::Rib90 => "rib 90",
        }
    }
}

/// Parallel programming paradigm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Paradigm {
    /// One MPI rank per processor; all data local by construction.
    Mpi,
    /// One OpenMP thread per processor in one address space.
    OpenMp,
}

impl Paradigm {
    /// Lower-case tag for metadata.
    pub fn tag(&self) -> &'static str {
        match self {
            Paradigm::Mpi => "mpi",
            Paradigm::OpenMp => "openmp",
        }
    }
}

/// Unoptimised vs optimised code versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodeVersion {
    /// Sequential initialisation (bad first-touch under OpenMP) and
    /// serial master-thread boundary copies.
    Unoptimized,
    /// Parallel initialisation and team-distributed direct copies.
    Optimized,
}

impl CodeVersion {
    /// Lower-case tag for metadata.
    pub fn tag(&self) -> &'static str {
        match self {
            CodeVersion::Unoptimized => "unoptimized",
            CodeVersion::Optimized => "optimized",
        }
    }
}

/// One run's configuration.
#[derive(Debug, Clone)]
pub struct GenIdlestConfig {
    /// Test problem.
    pub problem: Problem,
    /// Paradigm.
    pub paradigm: Paradigm,
    /// Code version.
    pub version: CodeVersion,
    /// Processor (rank/thread) count.
    pub procs: usize,
    /// Solver time steps to simulate.
    pub timesteps: usize,
    /// Machine.
    pub machine: MachineConfig,
}

impl GenIdlestConfig {
    /// A standard configuration with 10 time steps on the Altix 300.
    pub fn new(problem: Problem, paradigm: Paradigm, version: CodeVersion, procs: usize) -> Self {
        GenIdlestConfig {
            problem,
            paradigm,
            version,
            procs,
            timesteps: 10,
            machine: MachineConfig::altix300(),
        }
    }
}

/// A compute kernel's static characteristics (per cell, per invocation).
#[derive(Debug, Clone, Copy)]
struct Kernel {
    name: &'static str,
    /// Instructions per grid cell.
    instructions: f64,
    /// FP fraction of those instructions.
    fp_fraction: f64,
    /// Exploitable ILP.
    ilp: f64,
    /// Bytes touched per cell.
    bytes_per_cell: f64,
    /// Passes over the block data per invocation.
    traversals: f64,
    /// Invocations per time step (BiCGSTAB iterations etc.).
    invocations: f64,
    /// Whether the kernel blocks its working set into "virtual cache
    /// blocks" (the two-level Schwarz preconditioner), capping it at L2.
    cache_blocked: bool,
}

/// The solver's kernel set — the events Figure 5(a) plots.
fn kernels() -> [Kernel; 5] {
    [
        Kernel {
            name: "bicgstab",
            instructions: 18.0,
            fp_fraction: 0.55,
            ilp: 2.2,
            bytes_per_cell: 40.0,
            traversals: 1.0,
            invocations: 20.0,
            cache_blocked: false,
        },
        Kernel {
            name: "diff_coeff",
            instructions: 42.0,
            fp_fraction: 0.65,
            ilp: 2.6,
            bytes_per_cell: 56.0,
            traversals: 1.0,
            invocations: 1.0,
            cache_blocked: false,
        },
        Kernel {
            name: "matxvec",
            instructions: 30.0,
            fp_fraction: 0.70,
            ilp: 2.4,
            bytes_per_cell: 64.0,
            traversals: 1.0,
            invocations: 20.0,
            cache_blocked: false,
        },
        Kernel {
            name: "pc",
            instructions: 26.0,
            fp_fraction: 0.60,
            ilp: 2.0,
            bytes_per_cell: 32.0,
            traversals: 2.0,
            invocations: 20.0,
            cache_blocked: true,
        },
        Kernel {
            name: "pc_jac_glb",
            instructions: 22.0,
            fp_fraction: 0.60,
            ilp: 2.0,
            bytes_per_cell: 32.0,
            traversals: 1.0,
            invocations: 20.0,
            cache_blocked: false,
        },
    ]
}

/// FP stall cycles per floating-point operation (Itanium feeds FP
/// registers from L2, so FP codes stall on the L2 path).
const FP_STALL_PER_OP: f64 = 0.35;

/// Per-thread cost of one kernel invocation over this thread's blocks.
struct KernelCost {
    seconds: f64,
    counters: CounterSet,
}

fn kernel_cost(
    kernel: &Kernel,
    config: &GenIdlestConfig,
    thread: usize,
    blocks_per_proc: f64,
) -> KernelCost {
    let machine = &config.machine;
    let cells = config.problem.cells_per_block() * blocks_per_proc;
    let instructions = kernel.instructions * cells * kernel.invocations;
    let fp_ops = instructions * kernel.fp_fraction;

    // NUMA placement as seen by this thread.
    let node = machine.node_of_cpu(thread);
    let placement = match (config.paradigm, config.version) {
        // MPI: every rank touches only its own arrays.
        (Paradigm::Mpi, _) => PlacementStats::all_local(),
        // Unoptimised OpenMP: sequential init homed all pages on node 0.
        (Paradigm::OpenMp, CodeVersion::Unoptimized) => {
            if node == 0 {
                PlacementStats::all_local()
            } else {
                PlacementStats {
                    remote_fraction: 1.0,
                    mean_remote_hops: machine.hops_between(node, 0) as f64,
                }
            }
        }
        // Optimised OpenMP: parallel init; only shared boundary pages
        // remain remote.
        (Paradigm::OpenMp, CodeVersion::Optimized) => PlacementStats {
            remote_fraction: 0.04,
            mean_remote_hops: 2.0,
        },
    };
    let contending = match (config.paradigm, config.version) {
        (Paradigm::OpenMp, CodeVersion::Unoptimized) => config.procs as f64,
        _ => 1.0,
    };

    let working_set = if kernel.cache_blocked {
        // Virtual cache blocks keep the preconditioner's footprint small.
        (machine.l2.capacity * 0.75).min(cells * kernel.bytes_per_cell)
    } else {
        config.problem.cells_per_block() * kernel.bytes_per_cell
    };
    // The solver cycles through many arrays and kernels each iteration;
    // their aggregate footprint far exceeds L3, so every invocation
    // starts cold (kernels evict each other). Cost one invocation over
    // one block, then scale by invocations × blocks. Cache-blocked
    // kernels keep their small working set resident across traversals
    // within an invocation.
    let per_invocation = AccessProfile {
        refs: config.problem.cells_per_block() * kernel.bytes_per_cell / 8.0,
        working_set,
        traversals: kernel.traversals,
    };
    let mut mem = memory_costs(&per_invocation, &placement, machine, contending);
    let scale = kernel.invocations * blocks_per_proc;
    mem.l1d_misses *= scale;
    mem.l2_references *= scale;
    mem.l2_misses *= scale;
    mem.l3_misses *= scale;
    mem.tlb_misses *= scale;
    mem.local_refs *= scale;
    mem.remote_refs *= scale;
    mem.stall_cycles *= scale;

    let compute_cycles = instructions / kernel.ilp.min(machine.issue_width);
    let fp_stalls = fp_ops * FP_STALL_PER_OP;
    let cycles = compute_cycles + fp_stalls + mem.stall_cycles;

    let mut counters = CounterSet::new();
    counters.set(Counter::CpuCycles, cycles);
    counters.set(Counter::BackEndBubbleAll, fp_stalls + mem.stall_cycles);
    counters.set(Counter::FpStalls, fp_stalls);
    counters.set(Counter::FpOps, fp_ops);
    counters.set(Counter::InstCompleted, instructions);
    counters.set(Counter::InstIssued, instructions * 1.3);
    counters.set(Counter::L1dMisses, mem.l1d_misses);
    counters.set(Counter::L2References, mem.l2_references);
    counters.set(Counter::L2Misses, mem.l2_misses);
    counters.set(Counter::L3Misses, mem.l3_misses);
    counters.set(Counter::TlbMisses, mem.tlb_misses);
    counters.set(Counter::LocalMemoryRefs, mem.local_refs);
    counters.set(Counter::RemoteMemoryRefs, mem.remote_refs);

    KernelCost {
        seconds: machine.cycles_to_seconds(cycles),
        counters,
    }
}

/// Cost of the ghost-cell exchange for one time step, per thread.
///
/// Returns `(exchange_seconds, serial_child_seconds)` where the child is
/// the `mpi_send_recv_ko` portion (serial in the unoptimised OpenMP
/// code).
fn exchange_cost(config: &GenIdlestConfig, thread: usize) -> (f64, f64) {
    let mpi = MpiCostModel::default();
    let bytes = config.problem.face_cells() * 8.0;
    // BiCGSTAB exchanges boundaries every iteration.
    let exchanges_per_step = 20.0;
    match config.paradigm {
        Paradigm::Mpi => {
            // 2 Isend + 2 Irecv per rank with 2 on-processor copies,
            // overlapped.
            let net = mpi.exchange_time(&ExchangeSpec {
                neighbors: 2,
                bytes_per_neighbor: bytes,
                overlap: 0.6,
            });
            let copies = mpi.sequential_copy_time(2, bytes);
            ((net + copies) * exchanges_per_step, 0.0)
        }
        Paradigm::OpenMp => {
            let copies = config.problem.shared_memory_copies();
            match config.version {
                CodeVersion::Unoptimized => {
                    // Master thread does every copy through the
                    // intermediate send/receive buffers (3 passes over
                    // the data, strided); everyone else waits.
                    let serial = mpi.sequential_strided_copy_time(copies * 3, bytes);
                    let t = serial * exchanges_per_step;
                    if thread == 0 {
                        (t, t)
                    } else {
                        (t, 0.0) // waiting inside exchange_var
                    }
                }
                CodeVersion::Optimized => {
                    // Direct copies distributed across the team.
                    let t = mpi.parallel_strided_copy_time(copies, bytes, config.procs)
                        * exchanges_per_step;
                    (t, 0.0)
                }
            }
        }
    }
}

/// Simulates one GenIDLEST run and records the trial.
pub fn run(config: &GenIdlestConfig) -> Trial {
    let procs = config.procs.max(1);
    let blocks_per_proc = config.problem.blocks() as f64 / procs as f64;
    let mut rec = match config.paradigm {
        Paradigm::Mpi => Recorder::new_ranks(&trial_name(config), procs),
        Paradigm::OpenMp => Recorder::new(&trial_name(config), procs),
    };

    for t in 0..procs {
        rec.enter(t, "main");
        let mut main_counters = CounterSet::new();
        for _step in 0..config.timesteps {
            for kernel in kernels() {
                let cost = kernel_cost(&kernel, config, t, blocks_per_proc);
                rec.enter(t, kernel.name);
                rec.advance(t, cost.seconds);
                rec.exit(t);
                rec.record_counters(t, &format!("main => {}", kernel.name), &cost.counters);
                main_counters.merge(&cost.counters);
            }
            let (exchange_s, serial_s) = exchange_cost(config, t);
            rec.enter(t, "exchange_var");
            if serial_s > 0.0 {
                rec.enter(t, "mpi_send_recv_ko");
                rec.advance(t, serial_s);
                rec.exit(t);
                rec.advance(t, exchange_s - serial_s);
            } else {
                rec.advance(t, exchange_s);
            }
            rec.exit(t);
            // The exchange is memory traffic, mostly remote for the
            // unoptimised OpenMP version.
            let mut ex = CounterSet::new();
            let ex_cycles = config.machine.clock_hz * exchange_s;
            ex.set(Counter::CpuCycles, ex_cycles);
            ex.set(Counter::BackEndBubbleAll, ex_cycles * 0.9);
            let refs = config.problem.face_cells() * 2.0;
            match (config.paradigm, config.version) {
                (Paradigm::OpenMp, CodeVersion::Unoptimized) => {
                    // The copies move data between *pairs* of blocks, so
                    // even from node 0 one side of most copies is another
                    // block's pages — the exchange shows the lowest
                    // local-to-remote ratio of any event, the signature
                    // the paper's analysis keyed on.
                    ex.set(Counter::RemoteMemoryRefs, refs * 0.97);
                    ex.set(Counter::LocalMemoryRefs, refs * 0.03);
                    ex.set(Counter::L3Misses, refs);
                }
                _ => {
                    ex.set(Counter::RemoteMemoryRefs, refs * 0.1);
                    ex.set(Counter::LocalMemoryRefs, refs * 0.9);
                    ex.set(Counter::L3Misses, refs * 0.6);
                }
            }
            rec.record_counters(t, "main => exchange_var", &ex);
            main_counters.merge(&ex);
        }
        rec.exit(t); // main
        rec.roll_up_counters(t, "main", &main_counters);
    }

    rec.meta("application", "Fluid Dynamic");
    rec.meta("machine", config.machine.name.clone());
    rec.meta("paradigm", config.paradigm.tag());
    rec.meta("version", config.version.tag());
    rec.meta("procs", procs);
    rec.meta("problem", config.problem.experiment_name());
    rec.meta("timesteps", config.timesteps);
    rec.finish()
}

/// Trial naming convention: `<paradigm>_<version>_<procs>`.
pub fn trial_name(config: &GenIdlestConfig) -> String {
    format!(
        "{}_{}_{}",
        config.paradigm.tag(),
        config.version.tag(),
        config.procs
    )
}

/// Whole-program elapsed seconds (max inclusive `main`).
pub fn elapsed_seconds(trial: &Trial) -> f64 {
    let p = &trial.profile;
    let time = p.metric_id("TIME").expect("TIME metric");
    let main = p.event_id("main").expect("main event");
    p.max_inclusive(main, time)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(paradigm: Paradigm, version: CodeVersion, procs: usize) -> GenIdlestConfig {
        let mut c = GenIdlestConfig::new(Problem::Rib90, paradigm, version, procs);
        c.timesteps = 2;
        c
    }

    #[test]
    fn trial_contains_paper_events() {
        let trial = run(&cfg(Paradigm::OpenMp, CodeVersion::Unoptimized, 4));
        let p = &trial.profile;
        for ev in [
            "main",
            "main => bicgstab",
            "main => diff_coeff",
            "main => matxvec",
            "main => pc",
            "main => pc_jac_glb",
            "main => exchange_var",
            "main => exchange_var => mpi_send_recv_ko",
        ] {
            assert!(p.event_id(ev).is_some(), "missing {ev}");
        }
    }

    #[test]
    fn mpi_scales_unoptimized_openmp_does_not() {
        let t1 = elapsed_seconds(&run(&cfg(Paradigm::Mpi, CodeVersion::Optimized, 1)));
        let t16 = elapsed_seconds(&run(&cfg(Paradigm::Mpi, CodeVersion::Optimized, 16)));
        let mpi_speedup = t1 / t16;
        assert!(mpi_speedup > 8.0, "MPI speedup at 16 = {mpi_speedup}");

        let o1 = elapsed_seconds(&run(&cfg(Paradigm::OpenMp, CodeVersion::Unoptimized, 1)));
        let o16 = elapsed_seconds(&run(&cfg(Paradigm::OpenMp, CodeVersion::Unoptimized, 16)));
        let omp_speedup = o1 / o16;
        assert!(
            omp_speedup < 2.0,
            "unoptimized OpenMP speedup at 16 = {omp_speedup}"
        );
    }

    #[test]
    fn unoptimized_openmp_lags_mpi_by_an_order_of_magnitude() {
        // The paper: ×11.16 for 90rib at 16 procs.
        let mpi = elapsed_seconds(&run(&cfg(Paradigm::Mpi, CodeVersion::Optimized, 16)));
        let omp = elapsed_seconds(&run(&cfg(Paradigm::OpenMp, CodeVersion::Unoptimized, 16)));
        let ratio = omp / mpi;
        assert!(
            (5.0..25.0).contains(&ratio),
            "90rib OpenMP/MPI ratio = {ratio}"
        );
    }

    #[test]
    fn optimized_openmp_closes_most_of_the_gap() {
        // The paper: within ~15% for 90rib after optimisation.
        let mpi = elapsed_seconds(&run(&cfg(Paradigm::Mpi, CodeVersion::Optimized, 16)));
        let omp = elapsed_seconds(&run(&cfg(Paradigm::OpenMp, CodeVersion::Optimized, 16)));
        let gap = (omp - mpi) / mpi;
        assert!(
            (-0.05..0.40).contains(&gap),
            "optimized OpenMP vs MPI gap = {gap}"
        );
    }

    #[test]
    fn remote_refs_dominate_in_unoptimized_openmp_only() {
        let unopt = run(&cfg(Paradigm::OpenMp, CodeVersion::Unoptimized, 8));
        let mpi = run(&cfg(Paradigm::Mpi, CodeVersion::Optimized, 8));
        let remote_ratio = |t: &Trial| {
            let p = &t.profile;
            let remote = p.metric_id("REMOTE_MEMORY_REFS").unwrap();
            let local = p.metric_id("LOCAL_MEMORY_REFS").unwrap();
            let e = p.event_id("main => matxvec").unwrap();
            // Thread 7 lives on node 3 — away from node 0's memory.
            let r = p.get(e, remote, 7).unwrap().exclusive;
            let l = p.get(e, local, 7).unwrap().exclusive;
            r / (r + l).max(1.0)
        };
        assert!(remote_ratio(&unopt) > 0.9);
        assert!(remote_ratio(&mpi) < 0.1);
    }

    #[test]
    fn serial_exchange_grows_with_problem_copies() {
        let mut c45 = GenIdlestConfig::new(
            Problem::Rib45,
            Paradigm::OpenMp,
            CodeVersion::Unoptimized,
            8,
        );
        c45.timesteps = 1;
        let (e45, s45) = exchange_cost(&c45, 0);
        let mut c90 = cfg(Paradigm::OpenMp, CodeVersion::Unoptimized, 8);
        c90.timesteps = 1;
        let (e90, s90) = exchange_cost(&c90, 0);
        assert!(e90 > e45, "126 copies cost more than 30");
        assert_eq!(e45, s45, "fully serial on the master");
        assert_eq!(e90, s90);
        // Non-master threads wait the same elapsed time.
        let (e90_w, s90_w) = exchange_cost(&c90, 3);
        assert_eq!(e90, e90_w);
        assert_eq!(s90_w, 0.0);
    }

    #[test]
    fn optimized_exchange_is_parallel() {
        let unopt = exchange_cost(&cfg(Paradigm::OpenMp, CodeVersion::Unoptimized, 16), 0).0;
        let opt = exchange_cost(&cfg(Paradigm::OpenMp, CodeVersion::Optimized, 16), 0).0;
        assert!(opt < unopt / 8.0, "unopt {unopt} vs opt {opt}");
    }

    #[test]
    fn cache_blocked_kernel_has_fewer_l3_misses() {
        let config = cfg(Paradigm::Mpi, CodeVersion::Optimized, 8);
        let pc = kernel_cost(&kernels()[3], &config, 0, 4.0);
        let matxvec = kernel_cost(&kernels()[2], &config, 0, 4.0);
        assert!(pc.counters.get(Counter::L3Misses) < matxvec.counters.get(Counter::L3Misses));
    }

    #[test]
    fn metadata_identifies_the_run() {
        let trial = run(&cfg(Paradigm::OpenMp, CodeVersion::Optimized, 4));
        assert_eq!(trial.metadata.get_str("paradigm"), Some("openmp"));
        assert_eq!(trial.metadata.get_str("version"), Some("optimized"));
        assert_eq!(trial.metadata.get_num("procs"), Some(4.0));
        assert_eq!(trial.name, "openmp_optimized_4");
    }

    #[test]
    fn problem_geometry() {
        assert_eq!(Problem::Rib45.blocks(), 8);
        assert_eq!(Problem::Rib90.blocks(), 32);
        assert_eq!(Problem::Rib45.cells_per_block(), 128.0 * 80.0 * 8.0);
        assert_eq!(Problem::Rib90.cells_per_block(), 128.0 * 128.0 * 4.0);
        assert_eq!(Problem::Rib45.shared_memory_copies(), 30);
        assert_eq!(Problem::Rib90.shared_memory_copies(), 126);
    }
}
