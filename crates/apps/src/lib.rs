//! The paper's case-study applications, modelled end to end.
//!
//! * [`align`] — a real Smith–Waterman local alignment implementation
//!   (the ClustalW distance-matrix kernel), used both to do actual work
//!   in the examples and to derive the per-pair iteration costs the
//!   scheduling study needs.
//! * [`msa`] — the multiple-sequence-alignment case study (§III-A):
//!   the distance-matrix stage parallelised with simulated OpenMP under
//!   configurable schedules, producing TAU-like trials.
//! * [`genidlest`] — the GenIDLEST case study (§III-B): a multiblock
//!   structured-grid solver model with the paper's kernels (`bicgstab`,
//!   `diff_coeff`, `matxvec`, `pc`, `pc_jac_glb`, `exchange_var`,
//!   `mpi_send_recv_ko`), MPI and OpenMP paradigms, and the
//!   unoptimised/optimised variants whose difference the locality rules
//!   diagnose.
//! * [`power_study`] — the power-modeling case study (§III-C): GenIDLEST
//!   at O0–O3 on 16 MPI ranks, emitting the counters the power model
//!   (paper Eq. 1–2) consumes.
//! * [`sweep`] — a crossbeam-based parallel driver for the parametric
//!   studies the paper motivates (grids of configurations filling a
//!   repository).

#![warn(missing_docs)]

pub mod align;
pub mod genidlest;
pub mod msa;
pub mod power_study;
pub mod sweep;

pub use genidlest::{CodeVersion, GenIdlestConfig, Paradigm, Problem};
pub use msa::MsaConfig;
pub use power_study::PowerStudyConfig;
