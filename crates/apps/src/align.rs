//! Smith–Waterman local alignment.
//!
//! ClustalW's first stage — ~90% of single-processor runtime in the
//! paper's profiling — computes a distance matrix with the
//! Smith–Waterman dynamic program. This is a real implementation (affine
//! gap penalties, 20-letter protein alphabet) so the examples do genuine
//! work; its cell count (`m × n`) is also the iteration cost model for
//! the scheduling study, since "the time and space complexities for MSA
//! are in the order of the product of the lengths of the sequences".

use rand::prelude::*;
use rand::rngs::StdRng;

/// The 20 standard amino acids.
pub const AMINO_ACIDS: &[u8; 20] = b"ACDEFGHIKLMNPQRSTVWY";

/// Scoring parameters for the alignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scoring {
    /// Score for an exact residue match.
    pub match_score: i32,
    /// Score for a mismatch.
    pub mismatch: i32,
    /// Cost to open a gap (negative contribution).
    pub gap_open: i32,
    /// Cost to extend a gap.
    pub gap_extend: i32,
}

impl Default for Scoring {
    fn default() -> Self {
        Scoring {
            match_score: 5,
            mismatch: -4,
            gap_open: 10,
            gap_extend: 1,
        }
    }
}

/// Result of one pairwise alignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Alignment {
    /// Optimal local alignment score.
    pub score: i32,
    /// DP cells computed (`m × n`), the work measure.
    pub cells: u64,
}

/// Computes the optimal Smith–Waterman local alignment score with affine
/// gaps (Gotoh's formulation), in O(m·n) time and O(n) space.
pub fn smith_waterman(a: &[u8], b: &[u8], scoring: &Scoring) -> Alignment {
    let n = b.len();
    if a.is_empty() || b.is_empty() {
        return Alignment { score: 0, cells: 0 };
    }
    // h: best score ending anywhere; e: gap in a; f: gap in b.
    let mut h_prev = vec![0i32; n + 1];
    let mut e_row = vec![0i32; n + 1];
    let mut best = 0i32;
    for &ca in a {
        let mut h_curr = vec![0i32; n + 1];
        let mut f = 0i32;
        for j in 1..=n {
            let cb = b[j - 1];
            let sub = if ca == cb {
                scoring.match_score
            } else {
                scoring.mismatch
            };
            e_row[j] = (e_row[j] - scoring.gap_extend)
                .max(h_prev[j] - scoring.gap_open - scoring.gap_extend);
            f = (f - scoring.gap_extend).max(h_curr[j - 1] - scoring.gap_open - scoring.gap_extend);
            let h = 0.max(h_prev[j - 1] + sub).max(e_row[j]).max(f);
            h_curr[j] = h;
            if h > best {
                best = h;
            }
        }
        h_prev = h_curr;
    }
    Alignment {
        score: best,
        cells: a.len() as u64 * b.len() as u64,
    }
}

/// Normalised distance in `[0, 1]`: 1 − score / max_possible_score.
pub fn distance(a: &[u8], b: &[u8], scoring: &Scoring) -> f64 {
    let aln = smith_waterman(a, b, scoring);
    let max_possible = a.len().min(b.len()) as f64 * scoring.match_score as f64;
    if max_possible <= 0.0 {
        return 1.0;
    }
    (1.0 - aln.score as f64 / max_possible).clamp(0.0, 1.0)
}

/// Generates `count` synthetic protein sequences with lengths uniform in
/// `[min_len, max_len]`, deterministically from `seed`.
///
/// Length variation is what skews the pairwise work distribution — the
/// mechanism behind the static-schedule load imbalance of Figure 4(a).
pub fn generate_sequences(count: usize, min_len: usize, max_len: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let len = rng.random_range(min_len..=max_len.max(min_len));
            (0..len)
                .map(|_| AMINO_ACIDS[rng.random_range(0..AMINO_ACIDS.len())])
                .collect()
        })
        .collect()
}

/// A family of related sequences: a common ancestor plus point
/// mutations, so alignments find real similarity (used by the
/// quickstart example to show meaningful distances).
pub fn generate_family(
    count: usize,
    ancestor_len: usize,
    mutation_rate: f64,
    seed: u64,
) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let ancestor: Vec<u8> = (0..ancestor_len)
        .map(|_| AMINO_ACIDS[rng.random_range(0..AMINO_ACIDS.len())])
        .collect();
    (0..count)
        .map(|_| {
            ancestor
                .iter()
                .map(|&c| {
                    if rng.random::<f64>() < mutation_rate {
                        AMINO_ACIDS[rng.random_range(0..AMINO_ACIDS.len())]
                    } else {
                        c
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(text: &str) -> Vec<u8> {
        text.as_bytes().to_vec()
    }

    #[test]
    fn identical_sequences_score_full_match() {
        let seq = s("ACDEFGHIKL");
        let aln = smith_waterman(&seq, &seq, &Scoring::default());
        assert_eq!(aln.score, 50); // 10 residues × match 5
        assert_eq!(aln.cells, 100);
    }

    #[test]
    fn local_alignment_finds_embedded_motif() {
        let motif = "MNPQRSTVWY";
        let a = s(&format!("AAAA{motif}CCCC"));
        let b = s(motif);
        let aln = smith_waterman(&a, &b, &Scoring::default());
        assert_eq!(aln.score, 50, "motif aligns fully regardless of flanks");
    }

    #[test]
    fn unrelated_sequences_score_low() {
        let a = s("AAAAAAAAAA");
        let b = s("WWWWWWWWWW");
        let aln = smith_waterman(&a, &b, &Scoring::default());
        assert_eq!(aln.score, 0, "local alignment floors at zero");
    }

    #[test]
    fn gap_allows_bridging_insertions() {
        // b equals a with one insertion; affine gap should still align.
        let a = s("ACDEFGHIKL");
        let b = s("ACDEFXGHIKL");
        let gapped = smith_waterman(&a, &b, &Scoring::default());
        // 10 matches − (gap_open + extend) = 50 − 11 = 39.
        assert_eq!(gapped.score, 39);
    }

    #[test]
    fn score_is_symmetric() {
        let a = s("ACDEFGHIKLMNPQ");
        let b = s("ACDFGHIKLMNQ");
        let sc = Scoring::default();
        assert_eq!(
            smith_waterman(&a, &b, &sc).score,
            smith_waterman(&b, &a, &sc).score
        );
    }

    #[test]
    fn empty_inputs() {
        let sc = Scoring::default();
        assert_eq!(smith_waterman(b"", b"ACD", &sc).score, 0);
        assert_eq!(smith_waterman(b"ACD", b"", &sc).cells, 0);
    }

    #[test]
    fn distance_zero_for_identical_one_for_unrelated() {
        let sc = Scoring::default();
        let a = s("ACDEFGHIKL");
        assert_eq!(distance(&a, &a, &sc), 0.0);
        let b = s("WWWWWWWWWW");
        assert_eq!(distance(&a, &b, &sc), 1.0);
        // Related family members land strictly between.
        let family = generate_family(2, 60, 0.1, 7);
        let d = distance(&family[0], &family[1], &sc);
        assert!(d > 0.0 && d < 0.7, "family distance = {d}");
    }

    #[test]
    fn generated_sequences_are_deterministic_and_in_range() {
        let a = generate_sequences(20, 50, 150, 42);
        let b = generate_sequences(20, 50, 150, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 20);
        for seq in &a {
            assert!(seq.len() >= 50 && seq.len() <= 150);
            assert!(seq.iter().all(|c| AMINO_ACIDS.contains(c)));
        }
        let c = generate_sequences(20, 50, 150, 43);
        assert_ne!(a, c, "different seeds differ");
    }

    #[test]
    fn family_members_share_ancestry() {
        let family = generate_family(4, 100, 0.05, 1);
        assert_eq!(family.len(), 4);
        for m in &family {
            assert_eq!(m.len(), 100);
        }
        // Low mutation rate ⇒ high pairwise identity.
        let same: usize = family[0]
            .iter()
            .zip(&family[1])
            .filter(|(a, b)| a == b)
            .count();
        assert!(same > 80);
    }
}

/// Computes the full pairwise distance matrix in parallel with Rayon —
/// the *real* computation the paper's MSA stage performs (the simulated
/// runs only model its cost). Returns a flat symmetric `n × n`
/// [`DenseMatrix`](statistics::DenseMatrix) with zero diagonal, so the
/// result feeds the flat statistics kernels (clustering, PCA) without a
/// gather.
pub fn distance_matrix(sequences: &[Vec<u8>], scoring: &Scoring) -> statistics::DenseMatrix {
    use rayon::prelude::*;
    let n = sequences.len();
    // Each strict-upper-triangle pair is one independent alignment —
    // exactly the iteration space the OpenMP case study schedules —
    // flattened into a single work list so no per-row Vec is built.
    let pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
        .collect();
    let upper: Vec<f64> = pairs
        .par_iter()
        .map(|&(i, j)| distance(&sequences[i], &sequences[j], scoring))
        .collect();
    let mut m = statistics::DenseMatrix::zeros(n, n);
    for (&(i, j), &d) in pairs.iter().zip(&upper) {
        m.set(i, j, d);
        m.set(j, i, d);
    }
    m
}

#[cfg(test)]
mod matrix_tests {
    use super::*;

    #[test]
    #[allow(clippy::needless_range_loop)] // (i, j) symmetry reads better
    fn distance_matrix_is_symmetric_with_zero_diagonal() {
        let seqs = generate_family(6, 80, 0.15, 3);
        let m = distance_matrix(&seqs, &Scoring::default());
        assert_eq!(m.rows(), 6);
        assert_eq!(m.cols(), 6);
        for i in 0..6 {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..6 {
                assert_eq!(m.get(i, j), m.get(j, i));
                assert!((0.0..=1.0).contains(&m.get(i, j)));
            }
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let seqs = generate_sequences(8, 30, 60, 11);
        let sc = Scoring::default();
        let par = distance_matrix(&seqs, &sc);
        for i in 0..8 {
            for j in (i + 1)..8 {
                let seq = distance(&seqs[i], &seqs[j], &sc);
                assert_eq!(par.get(i, j), seq, "pair ({i}, {j})");
            }
        }
    }

    #[test]
    fn related_sequences_are_closer_than_unrelated() {
        let mut seqs = generate_family(3, 100, 0.05, 5);
        seqs.extend(generate_sequences(1, 100, 100, 99));
        let m = distance_matrix(&seqs, &Scoring::default());
        // Family pair distance well below family-to-random distance.
        assert!(m.get(0, 1) < m.get(0, 3));
        assert!(m.get(1, 2) < m.get(2, 3));
    }
}
