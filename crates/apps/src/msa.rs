//! The multiple-sequence-alignment case study (§III-A).
//!
//! ClustalW's distance-matrix stage is parallelised over the outer loop:
//! iteration `i` aligns sequence `i` against every sequence `j > i`, so
//! iteration costs *decrease* with `i` (and vary with sequence length) —
//! under `schedule(static)` the first threads receive far more work and
//! the loop is imbalanced, which is exactly what the paper's Figure 4(a)
//! shows and its load-imbalance rule detects.
//!
//! [`run`] simulates one execution on the machine model and produces a
//! TAU-like trial with the callpath events the analysis layer expects:
//!
//! ```text
//! main
//! main => init                      (serial, thread 0)
//! main => distance_matrix           (outer loop: barrier waits)
//! main => distance_matrix => sw_align   (inner loop: alignment work)
//! main => guide_tree                (serial, thread 0)
//! ```

use crate::align;
use perfdmf::Trial;
use simulator::machine::MachineConfig;
use simulator::openmp::{parallel_for, OpenMpConfig, Schedule};
use simulator::profiling::Recorder;
use simulator::{Counter, CounterSet};

/// Configuration of one MSA run.
#[derive(Debug, Clone)]
pub struct MsaConfig {
    /// Number of protein sequences.
    pub sequences: usize,
    /// Minimum sequence length.
    pub min_len: usize,
    /// Maximum sequence length.
    pub max_len: usize,
    /// RNG seed for sequence generation.
    pub seed: u64,
    /// OpenMP thread count.
    pub threads: usize,
    /// Loop schedule for the distance-matrix outer loop.
    pub schedule: Schedule,
    /// Machine to run on.
    pub machine: MachineConfig,
}

impl MsaConfig {
    /// The paper's 400-sequence problem on the Altix 300.
    pub fn paper_400(threads: usize, schedule: Schedule) -> Self {
        MsaConfig {
            sequences: 400,
            min_len: 60,
            max_len: 140,
            seed: 0x6d7361,
            threads,
            schedule,
            machine: MachineConfig::altix300(),
        }
    }

    /// The paper's 1000-sequence problem on the Altix 3600 (used for the
    /// 128-thread scaling check).
    pub fn paper_1000(threads: usize, schedule: Schedule) -> Self {
        MsaConfig {
            sequences: 1000,
            min_len: 60,
            max_len: 140,
            seed: 0x6d7361,
            threads,
            schedule,
            machine: MachineConfig::altix3600(),
        }
    }
}

/// Cycles per Smith–Waterman DP cell (a handful of max/add operations on
/// a wide-issue core).
const CYCLES_PER_CELL: f64 = 8.0;
/// Instructions per DP cell.
const INSTRUCTIONS_PER_CELL: f64 = 14.0;
/// Serial work factor: guide-tree and bookkeeping cycles per pair of
/// sequences (the unparallelised stages 2–3 of ClustalW).
const SERIAL_CYCLES_PER_PAIR: f64 = 220.0;

/// Per-outer-iteration DP cell counts: `cells[i] = Σ_{j>i} len_i · len_j`.
pub fn iteration_cells(lengths: &[usize]) -> Vec<f64> {
    let n = lengths.len();
    // Suffix sums of lengths for O(n) evaluation.
    let mut suffix = vec![0.0; n + 1];
    for i in (0..n).rev() {
        suffix[i] = suffix[i + 1] + lengths[i] as f64;
    }
    (0..n).map(|i| lengths[i] as f64 * suffix[i + 1]).collect()
}

/// Simulates one MSA distance-matrix execution, returning the recorded
/// trial.
pub fn run(config: &MsaConfig) -> Trial {
    let sequences = align::generate_sequences(
        config.sequences,
        config.min_len,
        config.max_len,
        config.seed,
    );
    let lengths: Vec<usize> = sequences.iter().map(Vec::len).collect();
    let cells = iteration_cells(&lengths);
    let costs_cycles: Vec<f64> = cells.iter().map(|c| c * CYCLES_PER_CELL).collect();

    let omp = OpenMpConfig::default();
    let sched = parallel_for(&costs_cycles, config.schedule, config.threads, &omp);

    let machine = &config.machine;
    let threads = config.threads.max(1);

    // Serial stages (thread 0): input parsing + guide tree.
    let pairs = (config.sequences * (config.sequences - 1) / 2) as f64;
    let init_s = machine.cycles_to_seconds(pairs * SERIAL_CYCLES_PER_PAIR * 0.25);
    let tree_s = machine.cycles_to_seconds(pairs * SERIAL_CYCLES_PER_PAIR * 0.75);

    let mut rec = Recorder::new(&trial_name(config), threads);
    for t in 0..threads {
        rec.enter(t, "main");

        // Serial init: thread 0 works, the team waits at the fork.
        rec.enter(t, "init");
        rec.advance(t, init_s);
        rec.exit(t);

        // The work-sharing outer loop.
        let times = &sched.per_thread[t];
        let busy_s = machine.cycles_to_seconds(times.busy);
        let wait_s = machine.cycles_to_seconds(times.barrier_wait);
        rec.enter(t, "distance_matrix");
        rec.enter(t, "sw_align");
        rec.advance(t, busy_s);
        rec.exit(t);
        // Barrier wait is exclusive time in the *outer* loop: a thread
        // that finished its inner work early sits here — the negative
        // correlation the paper's rule tests for.
        rec.advance(t, wait_s);
        rec.exit(t);

        // Serial guide tree (thread 0; others wait in main).
        rec.enter(t, "guide_tree");
        rec.advance(t, tree_s);
        rec.exit(t);

        rec.exit(t); // main

        // Counters: integer-dominated workload.
        let mut c = CounterSet::new();
        // Attribute DP cells proportionally to executed busy cycles.
        let total_cells: f64 = cells.iter().sum();
        let total_busy: f64 = sched.total_busy().max(1.0);
        let thread_cells = total_cells * (times.busy / total_busy);
        c.set(Counter::CpuCycles, times.busy + times.barrier_wait);
        c.set(Counter::InstCompleted, thread_cells * INSTRUCTIONS_PER_CELL);
        c.set(
            Counter::InstIssued,
            thread_cells * INSTRUCTIONS_PER_CELL * 1.25,
        );
        c.set(Counter::BackEndBubbleAll, times.barrier_wait);
        rec.record_counters(t, "main => distance_matrix => sw_align", &c);
    }

    rec.meta("application", "msap");
    rec.meta("machine", machine.name.clone());
    rec.meta("threads", threads);
    rec.meta("schedule", config.schedule.to_string());
    rec.meta("sequences", config.sequences);
    rec.meta("problem", format!("{} sequences", config.sequences));
    rec.finish()
}

/// Trial naming convention `<threads>_<schedule>`.
fn trial_name(config: &MsaConfig) -> String {
    format!("{}_{}", config.threads, config.schedule)
}

/// Whole-program elapsed seconds of a recorded MSA trial (max inclusive
/// `main` across threads).
pub fn elapsed_seconds(trial: &Trial) -> f64 {
    let p = &trial.profile;
    let time = p.metric_id("TIME").expect("TIME metric");
    let main = p.event_id("main").expect("main event");
    p.max_inclusive(main, time)
}

/// Relative efficiency of a scaling series: `E(p) = T(1) / (p · T(p))`.
pub fn relative_efficiency(t1: f64, tp: f64, p: usize) -> f64 {
    if tp <= 0.0 || p == 0 {
        return 0.0;
    }
    t1 / (p as f64 * tp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_costs_decrease_overall() {
        let lengths = vec![100; 50];
        let cells = iteration_cells(&lengths);
        assert_eq!(cells.len(), 50);
        // Equal lengths: strictly decreasing.
        for w in cells.windows(2) {
            assert!(w[0] > w[1]);
        }
        // Last iteration has no partners.
        assert_eq!(cells[49], 0.0);
        // Total = Σ_{i<j} len_i·len_j = C(50,2) · 100².
        let total: f64 = cells.iter().sum();
        assert_eq!(total, 1225.0 * 10_000.0);
    }

    fn small(threads: usize, schedule: Schedule) -> MsaConfig {
        MsaConfig {
            sequences: 64,
            min_len: 40,
            max_len: 80,
            seed: 1,
            threads,
            schedule,
            machine: MachineConfig::altix300(),
        }
    }

    #[test]
    fn trial_has_expected_callpath_events() {
        let trial = run(&small(4, Schedule::Static));
        let p = &trial.profile;
        for name in [
            "main",
            "main => init",
            "main => distance_matrix",
            "main => distance_matrix => sw_align",
            "main => guide_tree",
        ] {
            assert!(p.event_id(name).is_some(), "missing {name}");
        }
        assert_eq!(p.thread_count(), 4);
        assert_eq!(trial.metadata.get_str("schedule"), Some("static"));
    }

    #[test]
    fn static_schedule_shows_imbalance_dynamic_does_not() {
        let stat = run(&small(8, Schedule::Static));
        let dyn1 = run(&small(8, Schedule::Dynamic(1)));
        let imbalance = |t: &Trial| {
            let p = &t.profile;
            let time = p.metric_id("TIME").unwrap();
            let inner = p.event_id("main => distance_matrix => sw_align").unwrap();
            let v = p.exclusive_across_threads(inner, time);
            let s = statistics::Summary::of(&v).unwrap();
            s.coefficient_of_variation().unwrap()
        };
        assert!(imbalance(&stat) > 0.25, "static cov = {}", imbalance(&stat));
        assert!(
            imbalance(&dyn1) < 0.10,
            "dynamic cov = {}",
            imbalance(&dyn1)
        );
    }

    #[test]
    fn inner_work_and_outer_wait_are_negatively_correlated() {
        let trial = run(&small(8, Schedule::Static));
        let p = &trial.profile;
        let time = p.metric_id("TIME").unwrap();
        let inner = p.event_id("main => distance_matrix => sw_align").unwrap();
        let outer = p.event_id("main => distance_matrix").unwrap();
        let inner_t = p.exclusive_across_threads(inner, time);
        let outer_t = p.exclusive_across_threads(outer, time);
        let r = statistics::pearson(&inner_t, &outer_t).unwrap();
        assert!(r < -0.9, "correlation = {r}");
    }

    #[test]
    fn dynamic_one_beats_static_elapsed() {
        let stat = elapsed_seconds(&run(&small(8, Schedule::Static)));
        let dyn1 = elapsed_seconds(&run(&small(8, Schedule::Dynamic(1))));
        assert!(dyn1 < stat);
    }

    #[test]
    fn efficiency_declines_with_large_chunks() {
        // "Larger chunk sizes tend to change the scheduling behavior to
        // be more like the static even behavior."
        let t1 = elapsed_seconds(&run(&small(1, Schedule::Dynamic(1))));
        let e_small = relative_efficiency(
            t1,
            elapsed_seconds(&run(&small(8, Schedule::Dynamic(1)))),
            8,
        );
        let e_large = relative_efficiency(
            t1,
            elapsed_seconds(&run(&small(8, Schedule::Dynamic(16)))),
            8,
        );
        assert!(e_small > e_large);
        assert!(e_small > 0.8, "dynamic-1 efficiency = {e_small}");
    }

    #[test]
    fn trials_are_deterministic() {
        let a = run(&small(4, Schedule::Dynamic(1)));
        let b = run(&small(4, Schedule::Dynamic(1)));
        assert_eq!(a.profile, b.profile);
    }

    #[test]
    fn efficiency_helper_edge_cases() {
        assert_eq!(relative_efficiency(1.0, 0.0, 4), 0.0);
        assert_eq!(relative_efficiency(1.0, 1.0, 0), 0.0);
        assert!((relative_efficiency(8.0, 1.0, 8) - 1.0).abs() < 1e-12);
    }
}
