//! The power-modeling case study (§III-C).
//!
//! GenIDLEST (90rib) is "compiled" at O0–O3 with the compiler model and
//! executed on 16 MPI ranks of the Altix 300; each run records the
//! counters the power model (paper Eq. 1–2) consumes: cycles,
//! instructions completed/issued, FP operations and cache activity.
//! The analysis layer then derives Table I: relative time, instruction
//! counts, IPC, watts, joules and FLOP/joule across levels.

use openuh::ir::{Program, RegionAttrs, RegionKind};
use openuh::optimize::{compile, OptLevel};
use perfdmf::Trial;
use simulator::machine::MachineConfig;
use simulator::memory::{memory_costs, AccessProfile, PlacementStats};
use simulator::profiling::Recorder;
use simulator::{Counter, CounterSet};

/// Configuration of the O-level sweep.
#[derive(Debug, Clone)]
pub struct PowerStudyConfig {
    /// MPI rank count (the paper uses 16).
    pub ranks: usize,
    /// Solver time steps.
    pub timesteps: usize,
    /// Machine.
    pub machine: MachineConfig,
}

impl Default for PowerStudyConfig {
    fn default() -> Self {
        PowerStudyConfig {
            ranks: 16,
            timesteps: 10,
            machine: MachineConfig::altix300(),
        }
    }
}

/// Builds the GenIDLEST 90rib region IR as the compiler sees it at O0:
/// unoptimised code is instruction-bloated (no register allocation, no
/// redundancy elimination) and exposes little ILP.
pub fn genidlest_program(ranks: usize) -> Program {
    let blocks_per_rank = 32.0 / ranks.max(1) as f64;
    let cells = 128.0 * 128.0 * 4.0 * blocks_per_rank;
    let mut p = Program::new();
    let main = p.add_procedure(
        "main",
        RegionAttrs {
            instructions: 1e6,
            ilp: 1.0,
            ..Default::default()
        },
    );
    // Kernel attrs at O0: ~17× the instructions a tuned binary needs
    // (matching the Table I O2/O0 instruction ratio of ~0.059).
    let o0_bloat = 17.0;
    for (name, base_inst, fp, refs_per_cell, traversals, invocations) in [
        ("bicgstab", 18.0, 0.55, 5.0, 1.0, 20.0),
        ("diff_coeff", 42.0, 0.65, 7.0, 1.0, 1.0),
        ("matxvec", 30.0, 0.70, 8.0, 1.0, 20.0),
        ("pc", 26.0, 0.60, 4.0, 2.0, 20.0),
        ("pc_jac_glb", 22.0, 0.60, 4.0, 1.0, 20.0),
    ] {
        p.add_child(
            main,
            name,
            RegionKind::Loop,
            RegionAttrs {
                instructions: base_inst * o0_bloat * cells,
                fp_fraction: fp,
                ilp: 1.1,
                invocations,
                trip_count: cells,
                // Per-invocation resident slice: BiCGSTAB reuses its
                // vectors across inner iterations, so the streamed
                // footprint is one array, not the whole block set.
                working_set: cells * 8.0,
                memory_refs: refs_per_cell * cells,
                traversals,
                ..Default::default()
            },
        );
    }
    p
}

/// Runs the study at one optimisation level, returning the trial.
pub fn run_level(config: &PowerStudyConfig, level: OptLevel) -> Trial {
    let program = compile(&genidlest_program(config.ranks), level);
    let machine = &config.machine;
    let effect = level.effect();
    let ranks = config.ranks.max(1);

    let mut rec = Recorder::new_ranks(&format!("{level}"), ranks);
    for r in 0..ranks {
        rec.enter(r, "main");
        let mut totals = CounterSet::new();
        for _step in 0..config.timesteps {
            for &root in program.roots() {
                for &child in &program.region(root).children {
                    let region = program.region(child);
                    let a = &region.attrs;
                    let instructions = a.instructions * a.invocations;
                    let fp_ops = instructions * a.fp_fraction;
                    // FP op count is work, not instruction encoding: it
                    // does not shrink with optimisation.
                    let fp_ops_o0 = fp_ops / effect.instruction_scale;

                    let mem = memory_costs(
                        &AccessProfile {
                            refs: a.memory_refs * a.invocations,
                            working_set: a.working_set,
                            traversals: a.traversals * a.invocations,
                        },
                        &PlacementStats::all_local(),
                        machine,
                        1.0,
                    );
                    let compute = instructions / a.ilp.min(machine.issue_width);
                    let cycles = compute + mem.stall_cycles;

                    let mut c = CounterSet::new();
                    c.set(Counter::CpuCycles, cycles);
                    c.set(Counter::InstCompleted, instructions);
                    c.set(Counter::InstIssued, instructions * effect.issue_ratio);
                    c.set(Counter::FpOps, fp_ops_o0);
                    c.set(Counter::BackEndBubbleAll, mem.stall_cycles);
                    c.set(Counter::L1dMisses, mem.l1d_misses);
                    c.set(Counter::L2References, mem.l2_references);
                    c.set(Counter::L2Misses, mem.l2_misses);
                    c.set(Counter::L3Misses, mem.l3_misses);

                    rec.enter(r, region.name.as_str());
                    rec.advance(r, machine.cycles_to_seconds(cycles));
                    rec.exit(r);
                    rec.record_counters(r, &format!("main => {}", region.name), &c);
                    totals.merge(&c);
                }
            }
        }
        rec.exit(r);
        rec.roll_up_counters(r, "main", &totals);
    }

    rec.meta("application", "Fluid Dynamic");
    rec.meta("machine", machine.name.clone());
    rec.meta("problem", "rib 90");
    rec.meta("paradigm", "mpi");
    rec.meta("procs", ranks);
    rec.meta("opt_level", level.flag());
    rec.finish()
}

/// Runs all four levels: `(level, trial)` in ascending order.
pub fn run_all(config: &PowerStudyConfig) -> Vec<(OptLevel, Trial)> {
    OptLevel::all()
        .into_iter()
        .map(|l| (l, run_level(config, l)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> PowerStudyConfig {
        PowerStudyConfig {
            ranks: 4,
            timesteps: 1,
            machine: MachineConfig::altix300(),
        }
    }

    fn main_counter(trial: &Trial, metric: &str) -> f64 {
        let p = &trial.profile;
        let m = p.metric_id(metric).unwrap();
        let main = p.event_id("main").unwrap();
        p.mean_inclusive(main, m)
    }

    fn elapsed(trial: &Trial) -> f64 {
        let p = &trial.profile;
        let time = p.metric_id("TIME").unwrap();
        let main = p.event_id("main").unwrap();
        p.max_inclusive(main, time)
    }

    #[test]
    fn time_decreases_monotonically_with_level() {
        let runs = run_all(&quick());
        let times: Vec<f64> = runs.iter().map(|(_, t)| elapsed(t)).collect();
        for w in times.windows(2) {
            assert!(w[1] < w[0], "times: {times:?}");
        }
        // O3 is dramatically faster than O0 (paper reports ~20×; the
        // memory-stall floor in this model keeps it nearer ~10×).
        assert!(
            times[3] < times[0] * 0.15,
            "O3/O0 = {}",
            times[3] / times[0]
        );
    }

    #[test]
    fn instruction_counts_follow_table_one_shape() {
        let runs = run_all(&quick());
        let inst: Vec<f64> = runs
            .iter()
            .map(|(_, t)| main_counter(t, "INST_COMPLETED"))
            .collect();
        let rel: Vec<f64> = inst.iter().map(|i| i / inst[0]).collect();
        assert!((rel[1] - 0.47).abs() < 0.05, "O1 rel = {}", rel[1]);
        assert!((rel[2] - 0.059).abs() < 0.02, "O2 rel = {}", rel[2]);
        assert!((rel[3] - 0.055).abs() < 0.02, "O3 rel = {}", rel[3]);
    }

    #[test]
    fn ipc_dips_at_o2_recovers_at_o3() {
        let runs = run_all(&quick());
        let ipc: Vec<f64> = runs
            .iter()
            .map(|(_, t)| main_counter(t, "INST_COMPLETED") / main_counter(t, "CPU_CYCLES"))
            .collect();
        let rel: Vec<f64> = ipc.iter().map(|i| i / ipc[0]).collect();
        assert!(rel[1] > 1.0, "O1 IPC rel = {}", rel[1]);
        assert!(rel[2] < rel[1], "O2 dips below O1");
        assert!(rel[3] > rel[2], "O3 recovers");
    }

    #[test]
    fn fp_work_is_invariant_across_levels() {
        let runs = run_all(&quick());
        let fp: Vec<f64> = runs
            .iter()
            .map(|(_, t)| main_counter(t, "FP_OPS"))
            .collect();
        for v in &fp[1..] {
            assert!(
                (v / fp[0] - 1.0).abs() < 0.05,
                "FLOP count must not change with O-level: {fp:?}"
            );
        }
    }

    #[test]
    fn trials_are_named_and_tagged_by_level() {
        let t = run_level(&quick(), OptLevel::O2);
        assert_eq!(t.name, "O2");
        assert_eq!(t.metadata.get_str("opt_level"), Some("-O2"));
        assert_eq!(t.profile.thread_count(), 4);
    }
}
