//! Parallel parameter-sweep driver.
//!
//! The paper's motivation is "parametric studies … requiring large
//! amounts of data to be collected": entire grids of (schedule × thread
//! count × problem) configurations. This driver runs such sweeps across
//! worker threads with crossbeam's scoped threads and a work channel,
//! so the figure harness and the CLI can fill a repository in parallel
//! wall-clock time. The simulations themselves are deterministic, so
//! the sweep's *results* are identical regardless of worker count or
//! completion order.

use crate::genidlest::{self, GenIdlestConfig};
use crate::msa::{self, MsaConfig};
use perfdmf::Trial;

/// A unit of sweep work: any simulation producing a trial.
pub enum SweepJob {
    /// One MSA configuration.
    Msa(MsaConfig),
    /// One GenIDLEST configuration.
    GenIdlest(GenIdlestConfig),
}

impl SweepJob {
    fn run(&self) -> Trial {
        match self {
            SweepJob::Msa(c) => msa::run(c),
            SweepJob::GenIdlest(c) => genidlest::run(c),
        }
    }
}

/// Runs every job, using up to `workers` OS threads, and returns the
/// trials in job order (results are reordered after parallel execution,
/// so callers see a deterministic sequence).
pub fn run_sweep(jobs: Vec<SweepJob>, workers: usize) -> Vec<Trial> {
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    if workers == 1 {
        return jobs.iter().map(SweepJob::run).collect();
    }

    let (job_tx, job_rx) = crossbeam::channel::unbounded::<(usize, &SweepJob)>();
    let (result_tx, result_rx) = crossbeam::channel::unbounded::<(usize, Trial)>();
    for (i, job) in jobs.iter().enumerate() {
        job_tx.send((i, job)).expect("open channel");
    }
    drop(job_tx);

    crossbeam::scope(|scope| {
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let result_tx = result_tx.clone();
            scope.spawn(move |_| {
                while let Ok((i, job)) = job_rx.recv() {
                    let trial = job.run();
                    if result_tx.send((i, trial)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(result_tx);
    })
    .expect("sweep worker panicked");

    let mut slots: Vec<Option<Trial>> = (0..n).map(|_| None).collect();
    while let Ok((i, trial)) = result_rx.recv() {
        slots[i] = Some(trial);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every job produces a trial"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genidlest::{CodeVersion, Paradigm, Problem};
    use simulator::openmp::Schedule;

    fn msa_job(threads: usize) -> SweepJob {
        let mut c = MsaConfig::paper_400(threads, Schedule::Dynamic(1));
        c.sequences = 48;
        SweepJob::Msa(c)
    }

    #[test]
    fn parallel_sweep_matches_sequential_results() {
        let mk = || {
            vec![
                msa_job(1),
                msa_job(2),
                msa_job(4),
                SweepJob::GenIdlest({
                    let mut c = GenIdlestConfig::new(
                        Problem::Rib45,
                        Paradigm::Mpi,
                        CodeVersion::Optimized,
                        4,
                    );
                    c.timesteps = 1;
                    c
                }),
            ]
        };
        let sequential = run_sweep(mk(), 1);
        let parallel = run_sweep(mk(), 4);
        assert_eq!(sequential.len(), parallel.len());
        for (a, b) in sequential.iter().zip(&parallel) {
            assert_eq!(a.name, b.name, "order preserved");
            assert_eq!(a.profile, b.profile, "determinism across workers");
        }
    }

    #[test]
    fn results_keep_job_order() {
        let trials = run_sweep(vec![msa_job(4), msa_job(1), msa_job(2)], 3);
        let names: Vec<&str> = trials.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["4_dynamic,1", "1_dynamic,1", "2_dynamic,1"]);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(run_sweep(Vec::new(), 4).is_empty());
        let one = run_sweep(vec![msa_job(2)], 16);
        assert_eq!(one.len(), 1);
    }
}
