//! Regenerates Figure 4(a): load imbalance in inner and outer loops,
//! 16 threads, 400-sequence MSA problem.
//!
//! The paper's figure shows per-thread time in the inner loop (alignment
//! work) and outer loop (barrier wait) under the default static
//! schedule: uneven bars, anti-correlated. This binary prints the same
//! two per-thread series for static and for the fixed dynamic,1
//! schedule.

use bench::{banner, bar, msa_trial};
use perfexplorer::TrialResult;
use simulator::openmp::Schedule;

fn print_per_thread(trial: &perfdmf::Trial, label: &str) {
    let r = TrialResult::new(trial);
    let inner = r
        .exclusive("main => distance_matrix => sw_align", "TIME")
        .expect("inner loop present");
    let outer = r
        .exclusive("main => distance_matrix", "TIME")
        .expect("outer loop present");
    let max = inner
        .iter()
        .chain(outer.iter())
        .copied()
        .fold(0.0, f64::max);
    println!("\n--- {label} ---");
    println!(
        "{:>6} {:>12} {:>26} {:>12} {:>26}",
        "thread", "inner (s)", "inner work", "outer (s)", "outer (barrier wait)"
    );
    for t in 0..inner.len() {
        println!(
            "{:>6} {:>12.4} {:>26} {:>12.4} {:>26}",
            t,
            inner[t],
            bar(inner[t], max, 24),
            outer[t],
            bar(outer[t], max, 24),
        );
    }
    let cov = statistics::Summary::of(&inner)
        .and_then(|s| s.coefficient_of_variation())
        .unwrap_or(0.0);
    let corr = statistics::pearson(&inner, &outer).unwrap_or(0.0);
    println!("inner stddev/mean = {cov:.3}   inner↔outer correlation = {corr:.3}");
}

fn main() {
    println!(
        "{}",
        banner(
            "FIG4A",
            "MSA load imbalance, inner & outer loops, 16 threads (400 sequences)"
        )
    );
    println!("paper: static scheduling distributes uneven tasks; dynamic,1 removes the imbalance");

    let stat = msa_trial(400, 16, Schedule::Static);
    print_per_thread(&stat, "schedule(static) — the paper's Fig. 4(a) condition");

    let dynamic = msa_trial(400, 16, Schedule::Dynamic(1));
    print_per_thread(&dynamic, "schedule(dynamic,1) — the paper's fix");

    // The automated diagnosis the figure motivated.
    let result =
        perfexplorer::workflow::analyze_load_balance(&stat, "TIME").expect("analysis runs");
    println!("\n--- automated diagnosis on the static run ---");
    print!("{}", result.rendered);
}
