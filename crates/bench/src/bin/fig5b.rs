//! Regenerates Figure 5(b): whole-application speedup of unoptimised
//! OpenMP, optimised OpenMP, and optimised MPI on the 90rib problem —
//! plus the paper's headline ratios (OpenMP lags MPI ×11.16 unoptimised
//! at 16 procs on 90rib, ×3.48 on 45rib; ≤ ~15% after optimisation).

use apps::genidlest::{elapsed_seconds, CodeVersion, Paradigm};
use bench::{banner, genidlest_trial, genidlest_trial_45, FIG5_PROCS};
use perfdmf::Trial;
use perfexplorer::scalability::whole_program;

fn series_for(paradigm: Paradigm, version: CodeVersion) -> Vec<(usize, Trial)> {
    FIG5_PROCS
        .iter()
        .map(|&p| (p, genidlest_trial(paradigm, version, p)))
        .collect()
}

fn main() {
    println!(
        "{}",
        banner(
            "FIG5B",
            "Whole-app speedup: OpenMP (unopt/opt) vs MPI, 90rib problem"
        )
    );
    println!("paper: unoptimized OpenMP does not scale at all; after optimization the\nOpenMP version scales nearly as well as MPI (gap ~15%)\n");

    let variants: [(&str, Paradigm, CodeVersion); 3] = [
        (
            "OpenMP unoptimized",
            Paradigm::OpenMp,
            CodeVersion::Unoptimized,
        ),
        ("OpenMP optimized", Paradigm::OpenMp, CodeVersion::Optimized),
        ("MPI optimized", Paradigm::Mpi, CodeVersion::Optimized),
    ];

    print!("{:>22}", "variant");
    for &p in FIG5_PROCS {
        print!("{:>9}", format!("p={p}"));
    }
    println!();

    let mut elapsed_at_16 = std::collections::BTreeMap::new();
    for (label, paradigm, version) in variants {
        let trials = series_for(paradigm, version);
        let series: Vec<(usize, &Trial)> = trials.iter().map(|(p, t)| (*p, t)).collect();
        let s = whole_program(&series, "TIME").expect("series");
        print!("{:>22}", label);
        for point in &s.points {
            print!("{:>9.2}", point.speedup);
        }
        println!();
        if let Some((_, t16)) = trials.iter().find(|(p, _)| *p == 16) {
            elapsed_at_16.insert(label, elapsed_seconds(t16));
        }
    }

    println!("\n--- headline ratios at 16 processors ---");
    let mpi = elapsed_at_16["MPI optimized"];
    let unopt = elapsed_at_16["OpenMP unoptimized"];
    let opt = elapsed_at_16["OpenMP optimized"];
    println!(
        "90rib unoptimized OpenMP / MPI : {:>6.2}x   (paper: 11.16x)",
        unopt / mpi
    );
    println!(
        "90rib optimized   OpenMP / MPI : {:>6.2}x   (paper: ~1.15x)",
        opt / mpi
    );

    // 45rib at 8 processors (its block count).
    let mpi45 = elapsed_seconds(&genidlest_trial_45(
        Paradigm::Mpi,
        CodeVersion::Optimized,
        8,
    ));
    let unopt45 = elapsed_seconds(&genidlest_trial_45(
        Paradigm::OpenMp,
        CodeVersion::Unoptimized,
        8,
    ));
    let opt45 = elapsed_seconds(&genidlest_trial_45(
        Paradigm::OpenMp,
        CodeVersion::Optimized,
        8,
    ));
    println!(
        "45rib unoptimized OpenMP / MPI : {:>6.2}x   (paper: 3.48x)",
        unopt45 / mpi45
    );
    println!(
        "45rib optimized   OpenMP / MPI : {:>6.2}x   (paper: ~1.17x)",
        opt45 / mpi45
    );
}
