//! Regenerates Figure 4(b): relative efficiency of the MSA application
//! per schedule, up to 16 threads (400 sequences), plus the paper's
//! 128-thread / 1000-sequence check.

use apps::msa::{self, elapsed_seconds, relative_efficiency, MsaConfig};
use bench::{banner, msa_trial, FIG4B_THREADS};
use simulator::openmp::Schedule;

fn main() {
    println!(
        "{}",
        banner(
            "FIG4B",
            "Relative efficiency of MSAP per schedule (400 sequences)"
        )
    );
    println!("paper: dynamic,1 is nearly 93% efficient at 16 processors; larger chunks\nbehave like static\n");

    let schedules = [
        Schedule::Static,
        Schedule::StaticChunk(8),
        Schedule::Dynamic(1),
        Schedule::Dynamic(4),
        Schedule::Dynamic(16),
        Schedule::Dynamic(64),
        Schedule::Guided(1),
    ];

    print!("{:>14}", "schedule");
    for &t in FIG4B_THREADS {
        print!("{:>9}", format!("p={t}"));
    }
    println!();

    for schedule in schedules {
        let t1 = elapsed_seconds(&msa_trial(400, 1, schedule));
        print!("{:>14}", schedule.to_string());
        for &threads in FIG4B_THREADS {
            let tp = elapsed_seconds(&msa_trial(400, threads, schedule));
            let eff = relative_efficiency(t1, tp, threads);
            print!("{:>9.3}", eff);
        }
        println!();
    }

    // The production-scale check: 1000 sequences, 128 threads, chunk 1.
    println!("\n--- 1000-sequence production check (Altix 3600) ---");
    let schedule = Schedule::Dynamic(1);
    let base = {
        let mut c = MsaConfig::paper_1000(1, schedule);
        c.sequences = 1000;
        elapsed_seconds(&msa::run(&c))
    };
    for threads in [16usize, 64, 128] {
        let mut c = MsaConfig::paper_1000(threads, schedule);
        c.sequences = 1000;
        let tp = elapsed_seconds(&msa::run(&c));
        let eff = relative_efficiency(base, tp, threads);
        println!(
            "dynamic,1 @ {threads:>3} threads: efficiency {:>6.3}   (paper: ~0.80 at 128)",
            eff
        );
    }
}
