//! Regenerates Figure 5(a): speedup per event of the *unoptimised*
//! OpenMP GenIDLEST on the 90rib problem.
//!
//! The paper's figure shows the main computation procedures (`bicgstab`,
//! `diff_coeff`, `matxvec`, `pc`, `pc_jac_glb`) failing to scale, and
//! `exchange_var` scaling worst of all because its boundary copies are
//! serialised on the master thread.

use apps::genidlest::{CodeVersion, Paradigm};
use bench::{banner, genidlest_trial, FIG5_PROCS};
use perfdmf::Trial;
use perfexplorer::scalability::per_event_total;

const EVENTS: &[&str] = &[
    "main => bicgstab",
    "main => diff_coeff",
    "main => matxvec",
    "main => pc",
    "main => pc_jac_glb",
    "main => exchange_var",
];

fn main() {
    println!(
        "{}",
        banner(
            "FIG5A",
            "Speedup per event, unoptimized OpenMP, 90rib problem"
        )
    );
    println!("paper: the main computation procedures do not scale; exchange_var is\nsequential and limits the application\n");

    let trials: Vec<(usize, Trial)> = FIG5_PROCS
        .iter()
        .map(|&p| {
            (
                p,
                genidlest_trial(Paradigm::OpenMp, CodeVersion::Unoptimized, p),
            )
        })
        .collect();
    let series: Vec<(usize, &Trial)> = trials.iter().map(|(p, t)| (*p, t)).collect();

    print!("{:>24}", "event");
    for &p in FIG5_PROCS {
        print!("{:>9}", format!("p={p}"));
    }
    println!("   (ideal speedup = p)");

    for event in EVENTS {
        let s = per_event_total(&series, "TIME", event).expect("event present");
        print!("{:>24}", event.trim_start_matches("main => "));
        for point in &s.points {
            print!("{:>9.2}", point.speedup);
        }
        println!();
    }

    // Whole-program line for context.
    let whole = perfexplorer::scalability::whole_program(&series, "TIME").unwrap();
    print!("{:>24}", "(whole program)");
    for point in &whole.points {
        print!("{:>9.2}", point.speedup);
    }
    println!();
}
