//! Regenerates Table I: GenIDLEST relative differences for optimisation
//! levels O0–O3, 16 MPI ranks, 90rib problem, with the paper's values
//! alongside.

use apps::power_study::{run_all, PowerStudyConfig};
use bench::banner;
use perfdmf::Trial;
use perfexplorer::powerenergy::{relative_table, render_table, trial_power};
use perfexplorer::workflow::analyze_power;
use simulator::machine::MachineConfig;

/// The paper's Table I, for side-by-side comparison.
const PAPER: &[(&str, [f64; 4])] = &[
    ("Time", [1.0, 0.338, 0.071, 0.049]),
    ("Instructions Completed", [1.0, 0.471, 0.059, 0.056]),
    ("Instructions Issued", [1.0, 0.472, 0.063, 0.061]),
    (
        "Instructions Completed Per Cycle",
        [1.0, 1.397, 0.857, 1.209],
    ),
    ("Instructions Issued Per Cycle", [1.0, 1.400, 0.909, 1.316]),
    ("Watts", [1.0, 1.025, 1.001, 1.029]),
    ("Joules", [1.0, 0.346, 0.071, 0.050]),
    ("FLOP/Joule", [1.0, 2.867, 13.684, 19.305]),
];

fn main() {
    println!(
        "{}",
        banner(
            "TABLE1",
            "GenIDLEST relative differences at O0-O3, 16 MPI ranks, 90rib"
        )
    );

    let machine = MachineConfig::altix300();
    let config = PowerStudyConfig {
        ranks: 16,
        timesteps: 10,
        machine: machine.clone(),
    };
    let runs = run_all(&config);
    let readings = runs
        .iter()
        .map(|(_, t)| trial_power(t, &machine).expect("counters present"))
        .collect::<Vec<_>>();
    let table = relative_table(&readings).expect("non-empty series");

    println!("\n--- measured (this reproduction) ---");
    print!("{}", render_table(&table));

    println!("\n--- paper (Table I) ---");
    print!("{:<34}", "Metric");
    for l in ["O0", "O1", "O2", "O3"] {
        print!("{l:>9}");
    }
    println!();
    for (name, values) in PAPER {
        print!("{name:<34}");
        for v in values {
            print!("{v:>9.3}");
        }
        println!();
    }

    // The power rulebase's recommendations.
    let trials: Vec<&Trial> = runs.iter().map(|(_, t)| t).collect();
    let (_, result) = analyze_power(&trials, &machine).expect("workflow runs");
    println!("\n--- automated recommendations ---");
    print!("{}", result.rendered);
}
