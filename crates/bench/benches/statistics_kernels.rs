//! Flat-matrix statistics kernel microbenchmarks.
//!
//! Compares the flat [`DenseMatrix`](statistics::DenseMatrix) kernels
//! (`kmeans_flat`, `covariance_matrix_flat`,
//! `principal_components_flat`) against the nested `Vec<Vec<f64>>`
//! reference implementations in `statistics::reference` — the seed's
//! layout, kept as the executable spec — at 64–4096 points × 8–64
//! dimensions. The `*/reference` and `*/flat` pairs are the numbers
//! recorded in EXPERIMENTS.md; the differential proptests in
//! `crates/statistics/tests/flat_equivalence.rs` pin the two sides to
//! identical results, so these pairs measure layout and kernel cost
//! only.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use statistics::cluster::KMeansConfig;
use statistics::matrix::DenseMatrix;
use statistics::{covariance_matrix_flat, kmeans_flat, principal_components_flat, reference};
use std::hint::black_box;

/// `(points, dims)` shapes; the mid shape is the ISSUE's ≥3x kmeans
/// acceptance point.
const SHAPES: [(usize, usize); 3] = [(64, 8), (1024, 32), (4096, 64)];

/// Deterministic synthetic observations with loose cluster structure:
/// four blobs plus per-coordinate jitter, so k-means does realistic
/// (non-degenerate, multi-iteration) work.
fn dataset(n: usize, d: usize) -> Vec<Vec<f64>> {
    let mut state = 0x9e37_79b9_7f4a_7c15u64 ^ ((n as u64) << 8) ^ (d as u64);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|i| {
            let blob = (i % 4) as f64 * 10.0;
            (0..d).map(|_| blob + next()).collect()
        })
        .collect()
}

fn flatten(points: &[Vec<f64>]) -> DenseMatrix {
    DenseMatrix::from_rows(points).unwrap()
}

/// Columns-of-samples view of the same data, the shape the reference
/// covariance/PCA entry points take.
fn columns(points: &[Vec<f64>], d: usize) -> Vec<Vec<f64>> {
    (0..d)
        .map(|j| points.iter().map(|p| p[j]).collect())
        .collect()
}

fn bench_kmeans(c: &mut Criterion) {
    let mut g = c.benchmark_group("statistics_kernels/kmeans");
    for (n, d) in SHAPES {
        let points = dataset(n, d);
        let flat = flatten(&points);
        let cfg = KMeansConfig {
            k: 8,
            max_iterations: 50,
            ..Default::default()
        };
        g.throughput(Throughput::Elements((n * d) as u64));
        g.bench_function(&format!("reference/{n}x{d}"), |b| {
            b.iter(|| reference::kmeans(black_box(&points), black_box(&cfg)).unwrap())
        });
        g.bench_function(&format!("flat/{n}x{d}"), |b| {
            b.iter(|| kmeans_flat(black_box(flat.view()), black_box(&cfg)).unwrap())
        });
    }
    g.finish();
}

fn bench_covariance(c: &mut Criterion) {
    let mut g = c.benchmark_group("statistics_kernels/covariance");
    for (n, d) in SHAPES {
        let points = dataset(n, d);
        let flat = flatten(&points);
        let cols = columns(&points, d);
        g.throughput(Throughput::Elements((n * d * d) as u64));
        g.bench_function(&format!("reference/{n}x{d}"), |b| {
            b.iter(|| reference::covariance_matrix(black_box(&cols)).unwrap())
        });
        g.bench_function(&format!("flat/{n}x{d}"), |b| {
            b.iter(|| covariance_matrix_flat(black_box(flat.view())).unwrap())
        });
    }
    g.finish();
}

fn bench_pca(c: &mut Criterion) {
    let mut g = c.benchmark_group("statistics_kernels/pca");
    for (n, d) in SHAPES {
        let points = dataset(n, d);
        let flat = flatten(&points);
        let cols = columns(&points, d);
        g.throughput(Throughput::Elements((n * d) as u64));
        g.bench_function(&format!("reference/{n}x{d}"), |b| {
            b.iter(|| reference::principal_components(black_box(&cols)).unwrap())
        });
        g.bench_function(&format!("flat/{n}x{d}"), |b| {
            b.iter(|| principal_components_flat(black_box(flat.view())).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_kmeans, bench_covariance, bench_pca);
criterion_main!(benches);
