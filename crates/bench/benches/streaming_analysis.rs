//! Streaming-analysis microbenchmarks: O(Δ) update vs batch recompute.
//!
//! Measures the cost of keeping a load-balance diagnosis current while a
//! trial streams in, at 64 / 1 000 / 10 000 interned events:
//!
//! * `update/{E}` — apply one [`ChunkBatch`] touching a single event to a
//!   [`StreamingTrial`] and fold it into a live
//!   [`AnalysisState`](perfexplorer::AnalysisState) with
//!   `loadbalance::update` (dirty-row recompute + fact retract/assert).
//! * `recompute/{E}` — apply the same chunk shape and rerun the batch
//!   `loadbalance::analyze` over the whole trial, the pre-streaming
//!   serving path.
//!
//! The differential proptests in
//! `crates/core/tests/streaming_differential.rs` pin both sides to
//! bitwise-identical analyses, so these pairs measure maintenance cost
//! only. The speedup at 1 000 events is the ISSUE's ≥5x acceptance
//! number, recorded in EXPERIMENTS.md and `BENCH_streaming.json`.
//!
//! Besides the normal Criterion harness (which honours `--test` for the
//! CI single-pass smoke), setting `BENCH_JSON=<path>` switches the
//! binary to a self-timed single-pass mode that writes the
//! machine-readable `BENCH_streaming.json` summary, folding in headline
//! numbers from the `repo_open` and `statistics_kernels` suites so one
//! artifact carries the repo's performance story.

use criterion::{criterion_group, Criterion};
use perfdmf::{ChunkBatch, ColumnDelta, Measurement, StreamingTrial};
use perfexplorer::{loadbalance, AnalysisState};
use serde_json::Value;
use statistics::cluster::KMeansConfig;
use statistics::{kmeans_flat, matrix::DenseMatrix, reference};
use std::hint::black_box;
use std::time::Instant;

/// Event counts; the middle size is the ISSUE's acceptance point.
const SIZES: [usize; 3] = [64, 1_000, 10_000];
/// Threads per trial — wide enough that per-row summaries do real work.
const THREADS: usize = 32;
/// Metric under analysis.
const METRIC: &str = "TIME";

/// Deterministic per-(event, thread, round) sample in [0, 1).
fn jitter(event: usize, thread: usize, round: u64) -> f64 {
    let mut s = 0x9e37_79b9_7f4a_7c15u64
        ^ ((event as u64) << 32)
        ^ ((thread as u64) << 16)
        ^ round.wrapping_mul(0x517c_c1b7_2722_0a95);
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    (s >> 11) as f64 / (1u64 << 53) as f64
}

/// Callpath name for event `i`: `main` plus flat children of `main`.
fn event_name(i: usize) -> String {
    if i == 0 {
        perfdmf::MAIN_EVENT.to_string()
    } else {
        format!("main => region_{i:05}")
    }
}

/// Full column for event `i`: mildly imbalanced exclusive values, plus
/// a large inclusive total on `main` so runtime fractions are sane.
fn column(i: usize, events: usize, round: u64) -> ColumnDelta {
    ColumnDelta {
        metric: METRIC.to_string(),
        event: event_name(i),
        event_kind: None,
        cells: (0..THREADS)
            .map(|t| {
                let base = 40.0 + (i % 7) as f64 * 12.0;
                let skew = 1.0 + (t % 5) as f64 * 0.07;
                let value = base * skew + jitter(i, t, round) * 6.0;
                let m = if i == 0 {
                    Measurement {
                        inclusive: value * events as f64,
                        exclusive: value,
                        calls: 1.0,
                        subcalls: events as f64,
                    }
                } else {
                    Measurement::leaf(value)
                };
                (t as u32, m)
            })
            .collect(),
    }
}

/// A fully-populated stream of `events` events, delivered as one batch.
fn seeded_stream(events: usize) -> StreamingTrial {
    let batch = ChunkBatch {
        seq: 0,
        threads: THREADS as u32,
        deltas: (0..events).map(|i| column(i, events, 0)).collect(),
    };
    let (stream, _) =
        StreamingTrial::from_batch(format!("stream-{events}"), &batch).expect("seed batch applies");
    stream
}

/// The per-iteration delta: one non-main event's column refreshed.
fn delta_chunk(events: usize, seq: u64) -> ChunkBatch {
    let target = 1 + (seq as usize % (events - 1));
    ChunkBatch {
        seq,
        threads: THREADS as u32,
        deltas: vec![column(target, events, seq)],
    }
}

fn bench_streaming(c: &mut Criterion) {
    let mut g = c.benchmark_group("streaming_analysis");
    for events in SIZES {
        let mut stream = seeded_stream(events);
        let mut state = AnalysisState::new(stream.trial(), METRIC).expect("seeded stream analyzes");
        let mut seq = 0u64;
        g.bench_function(&format!("update/{events}"), |b| {
            b.iter(|| {
                seq += 1;
                let chunk = delta_chunk(events, seq);
                let applied = stream.apply_chunk(&chunk).expect("chunk applies");
                black_box(
                    loadbalance::update(&mut state, stream.trial(), &applied)
                        .expect("update succeeds"),
                );
            })
        });
        let mut stream = seeded_stream(events);
        let mut seq = 0u64;
        g.bench_function(&format!("recompute/{events}"), |b| {
            b.iter(|| {
                seq += 1;
                let chunk = delta_chunk(events, seq);
                stream.apply_chunk(&chunk).expect("chunk applies");
                black_box(loadbalance::analyze(stream.trial(), METRIC).expect("analyze succeeds"));
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_streaming);

// ---------------------------------------------------------------------
// BENCH_JSON single-pass mode
// ---------------------------------------------------------------------

/// Median wall time of `iters` runs of `f`, in nanoseconds, after
/// `warmup` unmeasured runs.
fn median_nanos(warmup: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// One `update`-vs-`recompute` pair measured by hand.
fn measure_pair(events: usize) -> (f64, f64) {
    let iters = if events >= 10_000 { 12 } else { 30 };
    let mut stream = seeded_stream(events);
    let mut state = AnalysisState::new(stream.trial(), METRIC).expect("seeded stream analyzes");
    let mut seq = 0u64;
    let update = median_nanos(3, iters, || {
        seq += 1;
        let applied = stream
            .apply_chunk(&delta_chunk(events, seq))
            .expect("chunk applies");
        black_box(
            loadbalance::update(&mut state, stream.trial(), &applied).expect("update succeeds"),
        );
    });
    let mut stream = seeded_stream(events);
    let mut seq = 0u64;
    let recompute = median_nanos(3, iters, || {
        seq += 1;
        stream
            .apply_chunk(&delta_chunk(events, seq))
            .expect("chunk applies");
        black_box(loadbalance::analyze(stream.trial(), METRIC).expect("analyze succeeds"));
    });
    (update, recompute)
}

/// Headline `statistics_kernels` pair at the 1024x32 acceptance shape.
fn measure_kmeans() -> (f64, f64) {
    let (n, d) = (1024usize, 32usize);
    let points: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..d)
                .map(|j| (i % 4) as f64 * 10.0 + jitter(i, j, 7))
                .collect()
        })
        .collect();
    let flat = DenseMatrix::from_rows(&points).unwrap();
    let cfg = KMeansConfig {
        k: 8,
        max_iterations: 50,
        ..Default::default()
    };
    let reference = median_nanos(1, 5, || {
        black_box(reference::kmeans(black_box(&points), black_box(&cfg)).unwrap());
    });
    let flat_ns = median_nanos(1, 5, || {
        black_box(kmeans_flat(black_box(flat.view()), black_box(&cfg)).unwrap());
    });
    (reference, flat_ns)
}

/// Headline `repo_open` pair: eager JSON parse vs zero-copy PDB1 open
/// of the same repository.
fn measure_repo_open() -> (f64, f64, usize) {
    let mut repo = perfdmf::Repository::new();
    let trials = 256usize;
    for i in 0..trials {
        let stream = seeded_stream(64);
        let mut trial = stream.trial().clone();
        trial.name = format!("trial-{i:04}");
        repo.add_trial("bench", "streaming", trial).expect("insert");
    }
    let json = repo.to_json().expect("serialize json");
    let bytes = repo.to_pdb1();
    let json_ns = median_nanos(1, 5, || {
        black_box(perfdmf::Repository::from_json(black_box(&json)).expect("parse"));
    });
    let mmap_ns = median_nanos(1, 5, || {
        black_box(perfdmf::MappedRepository::from_bytes(black_box(&bytes)).expect("open"));
    });
    (json_ns, mmap_ns, trials)
}

/// Builds an object [`Value`] from `(key, value)` pairs.
fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Rounds to one decimal place for the JSON summary.
fn round1(x: f64) -> Value {
    Value::Float((x * 10.0).round() / 10.0)
}

fn emit_json(path: &str) {
    let mut sizes = Vec::new();
    for events in SIZES {
        let (update, recompute) = measure_pair(events);
        let speedup = recompute / update;
        eprintln!(
            "streaming_analysis: {events:>6} events  update {update:>12.0} ns  \
             recompute {recompute:>14.0} ns  speedup {speedup:.1}x"
        );
        sizes.push(obj(vec![
            ("events", Value::Int(events as i64)),
            ("threads", Value::Int(THREADS as i64)),
            ("update_ns", round1(update)),
            ("recompute_ns", round1(recompute)),
            ("speedup", round1(speedup)),
        ]));
    }
    let (kref, kflat) = measure_kmeans();
    let (json_ns, mmap_ns, trials) = measure_repo_open();
    let doc = obj(vec![
        (
            "_generated_by",
            Value::Str("BENCH_JSON=<path> cargo bench -p bench --bench streaming_analysis".into()),
        ),
        (
            "_note",
            Value::Str(
                "Medians of self-timed single-pass runs; see EXPERIMENTS.md for the \
                 full Criterion suites these headline numbers summarize."
                    .into(),
            ),
        ),
        (
            "streaming_analysis",
            obj(vec![
                ("metric", Value::Str(METRIC.into())),
                (
                    "delta_shape",
                    Value::Str("one event column x 32 threads per chunk".into()),
                ),
                ("sizes", Value::Array(sizes)),
            ]),
        ),
        (
            "statistics_kernels",
            obj(vec![
                ("shape", Value::Str("1024x32, k=8".into())),
                ("kmeans_reference_ns", round1(kref)),
                ("kmeans_flat_ns", round1(kflat)),
                ("speedup", round1(kref / kflat)),
            ]),
        ),
        (
            "repo_open",
            obj(vec![
                ("trials", Value::Int(trials as i64)),
                ("json_parse_ns", round1(json_ns)),
                ("pdb1_mmap_open_ns", round1(mmap_ns)),
                ("speedup", round1(json_ns / mmap_ns)),
            ]),
        ),
    ]);
    std::fs::write(
        path,
        serde_json::to_string_pretty(&doc).expect("render") + "\n",
    )
    .expect("write BENCH_JSON");
    eprintln!("streaming_analysis: wrote {path}");
}

/// One unmeasured update + recompute round per size: the CI smoke mode
/// (`-- --test`), proving the harness runs end to end without paying
/// for full sampling.
fn smoke() {
    for events in SIZES {
        let mut stream = seeded_stream(events);
        let mut state = AnalysisState::new(stream.trial(), METRIC).expect("seeded stream analyzes");
        let applied = stream
            .apply_chunk(&delta_chunk(events, 1))
            .expect("chunk applies");
        let stats =
            loadbalance::update(&mut state, stream.trial(), &applied).expect("update succeeds");
        assert_eq!(stats.dirty_events, 1, "one-column delta dirties one row");
        black_box(loadbalance::analyze(stream.trial(), METRIC).expect("analyze succeeds"));
        println!("streaming_analysis/smoke/{events}: ok");
    }
}

fn main() {
    if let Ok(path) = std::env::var("BENCH_JSON") {
        emit_json(&path);
        return;
    }
    if std::env::args().any(|a| a == "--test") {
        smoke();
        return;
    }
    benches();
}
