//! Columnar profile store microbenchmarks.
//!
//! Compares the flat-arena `perfdmf::Profile` (interned O(1) name
//! lookups, contiguous column views) against a faithful replica of the
//! seed's storage layout — one `Vec` per event holding one `Vec` per
//! metric holding one `Vec` per thread, with linear name scans and
//! per-cell checked access — at the paper-scale shape of 500 events ×
//! 4 metrics × 128 threads. The `*/seed` and `*/columnar` pairs are the
//! numbers recorded in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use perfdmf::algebra::merge;
use perfdmf::{Event, Measurement, Metric, Profile, ThreadId, Trial, TrialBuilder};
use perfexplorer::derive::{derive_metric, DeriveOp};
use std::hint::black_box;

const EVENTS: usize = 500;
const METRICS: usize = 4;
const THREADS: usize = 128;

const METRIC_NAMES: [&str; METRICS] = ["TIME", "CPU_CYCLES", "FP_OPS", "BACK_END_BUBBLE_ALL"];

// Realistic TAU callpath names: deep paths sharing a long prefix, the
// shape that makes linear name scans expensive on real profiles.
fn event_name(e: usize) -> String {
    format!("main => timestep => diff_coeff => exchange_var => region_{e:03}")
}

fn cell(e: usize, m: usize, t: usize) -> Measurement {
    let v = ((e * 31 + m * 17 + t * 7) % 1000) as f64 + 1.0;
    Measurement {
        inclusive: v * 2.0,
        exclusive: v,
        calls: 1.0,
        subcalls: 0.0,
    }
}

/// The seed's event record: a name plus an optional kind tag, scanned
/// as a struct (48-byte stride) exactly as the seed's `Vec<Event>` was.
struct SeedEvent {
    name: String,
    #[allow(dead_code)]
    kind: Option<String>,
}

/// The seed's nested storage layout: names resolved by linear scan,
/// cells reached through three levels of checked indexing.
struct SeedProfile {
    metric_names: Vec<String>,
    events: Vec<SeedEvent>,
    data: Vec<Vec<Vec<Measurement>>>,
}

impl SeedProfile {
    fn build() -> Self {
        SeedProfile {
            metric_names: METRIC_NAMES.iter().map(|s| s.to_string()).collect(),
            events: (0..EVENTS)
                .map(|e| SeedEvent {
                    name: event_name(e),
                    kind: None,
                })
                .collect(),
            data: (0..EVENTS)
                .map(|e| {
                    (0..METRICS)
                        .map(|m| (0..THREADS).map(|t| cell(e, m, t)).collect())
                        .collect()
                })
                .collect(),
        }
    }

    /// The seed's `TrialResult::event_names`: a fresh `Vec<String>` of
    /// cloned names, the list its analysis loops iterated.
    fn event_names(&self) -> Vec<String> {
        self.events.iter().map(|e| e.name.clone()).collect()
    }

    fn metric_id(&self, name: &str) -> Option<usize> {
        self.metric_names.iter().position(|m| m == name)
    }

    fn event_id(&self, name: &str) -> Option<usize> {
        self.events.iter().position(|e| e.name == name)
    }

    fn get(&self, e: usize, m: usize, t: usize) -> Option<&Measurement> {
        self.data.get(e)?.get(m)?.get(t)
    }

    /// The seed's analysis-layer column accessor
    /// (`TrialResult::exclusive`): names resolved by linear scan, the
    /// column copied into a fresh `Vec<f64>` per call.
    fn exclusive(&self, event: &str, metric: &str) -> Option<Vec<f64>> {
        let e = self.event_id(event)?;
        let m = self.metric_id(metric)?;
        Some(self.data[e][m].iter().map(|c| c.exclusive).collect())
    }
}

fn columnar_profile() -> Profile {
    let mut p = Profile::new((0..THREADS as u32).map(ThreadId::flat).collect());
    let metrics: Vec<_> = METRIC_NAMES
        .iter()
        .map(|n| p.add_metric(Metric::measured(*n)).unwrap())
        .collect();
    for e in 0..EVENTS {
        let ev = p.add_event(Event::new(event_name(e))).unwrap();
        for (m, &mid) in metrics.iter().enumerate() {
            for t in 0..THREADS {
                p.set(ev, mid, t, cell(e, m, t)).unwrap();
            }
        }
    }
    p
}

fn columnar_trial() -> Trial {
    let mut b = TrialBuilder::with_flat_threads("bench", THREADS);
    let metrics: Vec<_> = METRIC_NAMES.iter().map(|n| b.metric(n)).collect();
    let main = b.event("main");
    for (m, &mid) in metrics.iter().enumerate() {
        for t in 0..THREADS {
            b.set(main, mid, t, cell(0, m, t));
        }
    }
    for e in 0..EVENTS {
        let ev = b.event(&event_name(e));
        for (m, &mid) in metrics.iter().enumerate() {
            for t in 0..THREADS {
                b.set(ev, mid, t, cell(e, m, t));
            }
        }
    }
    b.build()
}

/// Name-lookup-in-loop: resolve every event name and read one cell, the
/// access pattern of pre-refactor analysis loops.
fn bench_lookup(c: &mut Criterion) {
    let names: Vec<String> = (0..EVENTS).map(event_name).collect();
    let seed = SeedProfile::build();
    let columnar = columnar_profile();

    let mut g = c.benchmark_group("profile_store/name_lookup_in_loop");
    g.throughput(Throughput::Elements(EVENTS as u64));
    g.bench_function("seed", |b| {
        b.iter(|| {
            let m = seed.metric_id("TIME").unwrap();
            let mut acc = 0.0;
            for name in &names {
                let e = seed.event_id(black_box(name)).unwrap();
                acc += seed.get(e, m, 0).unwrap().exclusive;
            }
            acc
        })
    });
    g.bench_function("columnar", |b| {
        b.iter(|| {
            let m = columnar.metric_id("TIME").unwrap();
            let mut acc = 0.0;
            for name in &names {
                let e = columnar.event_id(black_box(name)).unwrap();
                acc += columnar.get(e, m, 0).unwrap().exclusive;
            }
            acc
        })
    });
    g.finish();
}

/// Four-accumulator sums, used identically on both sides of the column
/// scan so the serial f64 add chain does not mask the extraction cost.
fn fold4_f64(values: &[f64]) -> f64 {
    let (mut a0, mut a1, mut a2, mut a3) = (0.0, 0.0, 0.0, 0.0);
    let chunks = values.chunks_exact(4);
    let rem: f64 = chunks.remainder().iter().sum();
    for c in chunks {
        a0 += c[0];
        a1 += c[1];
        a2 += c[2];
        a3 += c[3];
    }
    a0 + a1 + a2 + a3 + rem
}

fn fold4_exclusive(col: &[Measurement]) -> f64 {
    let (mut a0, mut a1, mut a2, mut a3) = (0.0, 0.0, 0.0, 0.0);
    let chunks = col.chunks_exact(4);
    let rem: f64 = chunks.remainder().iter().map(|c| c.exclusive).sum();
    for c in chunks {
        a0 += c[0].exclusive;
        a1 += c[1].exclusive;
        a2 += c[2].exclusive;
        a3 += c[3].exclusive;
    }
    a0 + a1 + a2 + a3 + rem
}

/// Column scan: reduce every event's TIME column — the feature
/// extraction loop of the load-balance and clustering analyses. The
/// seed's only analysis-layer column API resolved both names by linear
/// scan and copied the column into a fresh `Vec<f64>` per event; the
/// columnar store reads each contiguous column in place.
fn bench_column_scan(c: &mut Criterion) {
    let seed = SeedProfile::build();
    let columnar = columnar_profile();

    let mut g = c.benchmark_group("profile_store/column_scan");
    g.throughput(Throughput::Elements((EVENTS * THREADS) as u64));
    g.bench_function("seed", |b| {
        b.iter(|| {
            // The seed's analysis loops cloned the event-name list, then
            // re-resolved every name by linear scan inside the loop.
            let names = seed.event_names();
            let mut acc = 0.0;
            for name in &names {
                let values = seed.exclusive(black_box(name), "TIME").unwrap();
                acc += fold4_f64(&values);
            }
            acc
        })
    });
    g.bench_function("columnar", |b| {
        b.iter(|| {
            // The columnar analysis loops drive ids directly — no name
            // resolution, no per-column copy.
            let m = columnar.metric_id("TIME").unwrap();
            let mut acc = 0.0;
            for ei in 0..black_box(columnar.event_count()) {
                let e = perfdmf::EventId(ei as u32);
                acc += fold4_exclusive(columnar.column(e, m));
            }
            acc
        })
    });
    g.finish();
}

/// Derived metric over the full profile (real API; rayon over events).
fn bench_derive(c: &mut Criterion) {
    let trial = columnar_trial();
    let mut g = c.benchmark_group("profile_store/derive_metric");
    g.throughput(Throughput::Elements((EVENTS * THREADS) as u64));
    g.bench_function("columnar", |b| {
        b.iter_batched(
            || trial.clone(),
            |mut t| {
                derive_metric(
                    &mut t,
                    "BACK_END_BUBBLE_ALL",
                    DeriveOp::Divide,
                    "CPU_CYCLES",
                )
                .unwrap();
                t
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

/// Profile algebra merge of two full-size profiles (real API).
fn bench_merge(c: &mut Criterion) {
    let a = columnar_profile();
    let b = columnar_profile();
    let mut g = c.benchmark_group("profile_store/algebra_merge");
    g.throughput(Throughput::Elements((EVENTS * METRICS * THREADS) as u64));
    g.bench_function("columnar", |bench| {
        bench.iter(|| merge(black_box(&a), black_box(&b)).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_lookup,
    bench_column_scan,
    bench_derive,
    bench_merge
);
criterion_main!(benches);
