//! Criterion benchmarks for the analysis math and profile algebra —
//! the "heavy lifting" operations PerfExplorer applies per script step.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use perfdmf::algebra::{aggregate_threads, difference, Aggregation};
use perfdmf::{Measurement, Profile, TrialBuilder};
use perfexplorer::derive::{derive_metric, DeriveOp};
use statistics::{
    cluster::{kmeans, KMeansConfig},
    correlation::pearson,
    descriptive::Summary,
    pca::principal_components,
};
use std::hint::black_box;

fn series(n: usize, seed: u64) -> Vec<f64> {
    // Deterministic pseudo-random series without pulling in an RNG.
    let mut x = seed.max(1);
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % 10_000) as f64 / 100.0
        })
        .collect()
}

fn profile_with(threads: usize, events: usize) -> Profile {
    let mut b = TrialBuilder::with_flat_threads("bench", threads);
    let time = b.metric("TIME");
    let cycles = b.metric("CPU_CYCLES");
    for e in 0..events {
        let ev = b.event(&format!("main => e{e}"));
        for t in 0..threads {
            let v = ((e * 31 + t * 7) % 100) as f64 + 1.0;
            b.set(ev, time, t, Measurement::leaf(v));
            b.set(ev, cycles, t, Measurement::leaf(v * 1e6));
        }
    }
    b.build().profile
}

fn bench_statistics(c: &mut Criterion) {
    let a = series(512, 42);
    let b = series(512, 43);
    c.bench_function("statistics/summary_512", |bench| {
        bench.iter(|| Summary::of(black_box(&a)).unwrap())
    });
    c.bench_function("statistics/pearson_512", |bench| {
        bench.iter(|| pearson(black_box(&a), black_box(&b)).unwrap())
    });
    let points: Vec<Vec<f64>> = (0..128)
        .map(|i| vec![(i % 16) as f64, (i / 16) as f64])
        .collect();
    c.bench_function("statistics/kmeans_128x2_k4", |bench| {
        let cfg = KMeansConfig {
            k: 4,
            ..Default::default()
        };
        bench.iter(|| kmeans(black_box(&points), &cfg).unwrap())
    });
    let cols: Vec<Vec<f64>> = (0..8).map(|i| series(256, 100 + i)).collect();
    c.bench_function("statistics/pca_256x8", |bench| {
        bench.iter(|| principal_components(black_box(&cols)).unwrap())
    });
}

fn bench_algebra(c: &mut Criterion) {
    let p = profile_with(64, 64);
    c.bench_function("algebra/difference_64x64", |bench| {
        bench.iter(|| difference(black_box(&p), black_box(&p)).unwrap())
    });
    c.bench_function("algebra/aggregate_mean_64x64", |bench| {
        bench.iter(|| aggregate_threads(black_box(&p), Aggregation::Mean).unwrap())
    });
}

fn bench_derive(c: &mut Criterion) {
    let profile = profile_with(64, 64);
    c.bench_function("derive/divide_64x64", |bench| {
        bench.iter_batched(
            || perfdmf::Trial::new("b", profile.clone()),
            |mut trial| derive_metric(&mut trial, "TIME", DeriveOp::Divide, "CPU_CYCLES").unwrap(),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_statistics, bench_algebra, bench_derive);
criterion_main!(benches);
