//! Repository open-path benchmarks: JSON parse-open vs PDB1 strict
//! decode vs PDB1 mmap-open, at 100 / 1 000 / 10 000 trials.
//!
//! The mmap numbers are the PDB1 design's headline: an open should cost
//! a header read and a manifest parse, not a full parse + re-intern +
//! re-layout pass over every measurement. Each trial here is a small
//! but realistic shape (6 events × 2 metrics × 8 threads), so the JSON
//! cost scales with total cell count while the mmap cost scales with
//! the manifest alone.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use perfdmf::{MappedRepository, Measurement, Repository, TrialBuilder};
use std::hint::black_box;

const EVENTS: usize = 6;
const METRICS: usize = 2;
const THREADS: usize = 8;

fn repo_with_trials(n: usize) -> Repository {
    let mut repo = Repository::new();
    for i in 0..n {
        let mut b = TrialBuilder::with_flat_threads(format!("t{i}"), THREADS);
        let metrics: Vec<_> = (0..METRICS).map(|m| b.metric(&format!("M{m}"))).collect();
        let events: Vec<_> = (0..EVENTS)
            .map(|e| {
                if e == 0 {
                    b.event("main")
                } else {
                    b.event(&format!("main => e{e}"))
                }
            })
            .collect();
        for (mi, &m) in metrics.iter().enumerate() {
            for (ei, &e) in events.iter().enumerate() {
                for t in 0..THREADS {
                    let v = (i * 31 + mi * 17 + ei * 7 + t) as f64 + 1.0;
                    b.set(
                        e,
                        m,
                        t,
                        Measurement {
                            inclusive: v,
                            exclusive: v * 0.5,
                            calls: 1.0,
                            subcalls: 0.0,
                        },
                    );
                }
            }
        }
        // Spread trials over a few experiments like a real sweep.
        repo.add_trial("bench", &format!("exp{}", i % 8), b.build())
            .unwrap();
    }
    repo
}

fn bench_repo_open(c: &mut Criterion) {
    for &trials in &[100usize, 1_000, 10_000] {
        let repo = repo_with_trials(trials);
        let json = repo.to_json().unwrap();
        let pdb1 = repo.to_pdb1();

        let dir = std::env::temp_dir().join("perfknow_repo_open_bench");
        std::fs::create_dir_all(&dir).unwrap();
        let pdb_path = dir.join(format!("open_{trials}.pdb"));
        std::fs::write(&pdb_path, &pdb1).unwrap();

        let mut g = c.benchmark_group("repo_open");
        g.throughput(Throughput::Elements(trials as u64));
        g.bench_with_input(BenchmarkId::new("json_parse", trials), &json, |b, json| {
            b.iter(|| Repository::from_json(black_box(json)).unwrap())
        });
        g.bench_with_input(
            BenchmarkId::new("pdb1_strict", trials),
            &pdb1,
            |b, bytes| b.iter(|| Repository::from_pdb1(black_box(bytes)).unwrap()),
        );
        g.bench_with_input(
            BenchmarkId::new("pdb1_mmap", trials),
            &pdb_path,
            |b, path| b.iter(|| MappedRepository::open(black_box(path)).unwrap()),
        );
        // Open + one zero-copy analysis touch, the realistic "query one
        // trial out of a big store" pattern.
        g.bench_with_input(
            BenchmarkId::new("pdb1_mmap_first_view", trials),
            &pdb_path,
            |b, path| {
                b.iter(|| {
                    let mapped = MappedRepository::open(black_box(path)).unwrap();
                    let view = mapped.view("bench", "exp0", "t0").unwrap();
                    black_box(view.max_inclusive_of_main(0).unwrap())
                })
            },
        );
        g.finish();

        std::fs::remove_file(&pdb_path).ok();
    }
}

criterion_group!(benches, bench_repo_open);
criterion_main!(benches);
