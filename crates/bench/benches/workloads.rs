//! Criterion benchmarks for the workload substrates: the real
//! Smith–Waterman kernel, the OpenMP schedule simulator (including the
//! per-chunk accounting ablation), and the end-to-end
//! trial → facts → rules → diagnosis pipeline.

use apps::align::{generate_sequences, smith_waterman, Scoring};
use apps::genidlest::{self, CodeVersion, GenIdlestConfig, Paradigm, Problem};
use apps::msa::{self, MsaConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simulator::openmp::{parallel_for, OpenMpConfig, Schedule};
use std::hint::black_box;

fn bench_smith_waterman(c: &mut Criterion) {
    let seqs = generate_sequences(2, 200, 200, 7);
    let scoring = Scoring::default();
    c.bench_function("workload/smith_waterman_200x200", |bench| {
        bench.iter(|| black_box(smith_waterman(&seqs[0], &seqs[1], &scoring)))
    });
}

fn bench_openmp_sim(c: &mut Criterion) {
    let costs: Vec<f64> = (0..4096)
        .map(|i| ((4096 - i) * (4096 - i)) as f64)
        .collect();
    let cfg = OpenMpConfig::default();
    let mut group = c.benchmark_group("workload/openmp_sim_4096");
    // Ablation: per-iteration (chunk 1) vs chunked accounting.
    for (label, schedule) in [
        ("dynamic_1", Schedule::Dynamic(1)),
        ("dynamic_64", Schedule::Dynamic(64)),
        ("static", Schedule::Static),
        ("guided", Schedule::Guided(1)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &schedule, |b, &s| {
            b.iter(|| black_box(parallel_for(&costs, s, 16, &cfg)))
        });
    }
    group.finish();
}

fn bench_apps(c: &mut Criterion) {
    c.bench_function("workload/msa_run_64seq_8thr", |bench| {
        let mut config = MsaConfig::paper_400(8, Schedule::Dynamic(1));
        config.sequences = 64;
        bench.iter(|| black_box(msa::run(&config)))
    });
    c.bench_function("workload/genidlest_run_16proc", |bench| {
        let mut config = GenIdlestConfig::new(
            Problem::Rib90,
            Paradigm::OpenMp,
            CodeVersion::Unoptimized,
            16,
        );
        config.timesteps = 2;
        bench.iter(|| black_box(genidlest::run(&config)))
    });
}

fn bench_pipeline(c: &mut Criterion) {
    // End-to-end: simulate, analyse, diagnose.
    c.bench_function("pipeline/msa_diagnose_end_to_end", |bench| {
        let mut config = MsaConfig::paper_400(8, Schedule::Static);
        config.sequences = 64;
        bench.iter(|| {
            let trial = msa::run(&config);
            black_box(perfexplorer::workflow::analyze_load_balance(&trial, "TIME").unwrap())
        })
    });
}

criterion_group!(
    benches,
    bench_smith_waterman,
    bench_openmp_sim,
    bench_apps,
    bench_pipeline
);
criterion_main!(benches);
