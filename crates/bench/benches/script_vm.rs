//! Script-VM microbenchmarks: tree-walking reference vs the PR 4 stack
//! VM vs the register VM, plus `par_foreach_trial` sweep scaling.
//!
//! Four program shapes:
//!
//! * `fib_15` — recursion-heavy; exercises call frames.
//! * `loop_sum_10k` — arithmetic-heavy loop; the ISSUE's ≥2x
//!   register-vs-stack acceptance point.
//! * `call_heavy` — a tight loop through a three-argument user
//!   function; exercises argument passing and register windows.
//! * `sweep_64` — one `par_foreach_trial` over 64 items, each body a
//!   compute loop, run inline (no executor installed — the sequential
//!   path) and on the rayon pool (the executor the analysis layer and
//!   service install). The same script runs in both modes, so the pair
//!   isolates sweep scheduling; near-linear speedup over ≥64 trials is
//!   the ISSUE's acceptance number.
//! * `repo_sweep_64` — end to end: the same sweep shape through
//!   [`PerfExplorerScript`] over a real 64-trial repository
//!   (`list_trials` + `load_trial` + `elapsed` per body).
//!
//! The differential proptests in `crates/script/tests/differential.rs`
//! pin all three engines to identical values/output/steps, so these
//! pairs measure dispatch cost only. Besides the Criterion harness
//! (which honours `--test` for the CI smoke), `BENCH_JSON=<path>`
//! switches to a self-timed single-pass mode that writes the
//! machine-readable `BENCH_script.json` summary.

use criterion::{criterion_group, Criterion};
use perfdmf::{Measurement, Repository, TrialBuilder};
use perfexplorer::scripting::PerfExplorerScript;
use rayon::prelude::*;
use script::{Engine, Interpreter, Value};
use serde_json::Value as Json;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const FIB: &str = "fn fib(n) { if n < 2 { return n; } return fib(n-1) + fib(n-2); } fib(15)";
const LOOP: &str = "let t = 0; let i = 0; while i < 10000 { t = t + i; i = i + 1; } t";
const CALLS: &str = "fn acc(t, i, step) { return t + i * step; } \
                     let t = 0; let i = 0; \
                     while i < 3000 { t = acc(t, i, 2); i = i + 1; } t";
/// 64 bodies, each a compute loop — heavy enough that scheduling
/// overhead is a small fraction of a body.
const SWEEP: &str = "let r = par_foreach_trial t in range(64) { \
                       let s = 0; let j = 0; \
                       while j < 4000 { s = s + j * (t + 1); j = j + 1; } s \
                     }; len(r)";
/// The end-to-end shape: every body opens its trial and reads it.
const REPO_SWEEP: &str = r#"
    let r = par_foreach_trial t in list_trials("bench", "sweep") {
        let trial = load_trial("bench", "sweep", t);
        elapsed(trial, "TIME")
    };
    len(r)
"#;

const PROGRAMS: [(&str, &str); 3] = [
    ("fib_15", FIB),
    ("loop_sum_10k", LOOP),
    ("call_heavy", CALLS),
];

/// A fresh VM interpreter; `parallel` installs the rayon executor the
/// analysis layer uses, absent means sweeps run inline on one thread.
fn vm(engine: Engine, parallel: bool) -> Interpreter {
    let mut interp = Interpreter::new().with_engine(engine);
    if parallel {
        interp.set_parallel_executor(Arc::new(|runner: &script::ParRunner, items: Vec<Value>| {
            items
                .into_par_iter()
                .map(|item| {
                    let mut host =
                        |name: &str, _: &mut Vec<Value>| Err(format!("unknown function {name:?}"));
                    runner.run_one(item, &mut host)
                })
                .collect()
        }));
    }
    interp
}

/// A repository with 64 four-thread trials under `bench/sweep`.
fn sweep_repo() -> Repository {
    let mut repo = Repository::new();
    for i in 0..64 {
        let mut b = TrialBuilder::with_flat_threads(format!("trial-{i:02}"), 4);
        let m = b.metric("TIME");
        let e = b.event("main");
        for th in 0..4 {
            b.set(
                e,
                m,
                th,
                Measurement::leaf(1.0 + (i * 4 + th) as f64 * 0.25),
            );
        }
        repo.add_trial("bench", "sweep", b.build()).unwrap();
    }
    repo
}

fn bench_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("script_vm");
    for (name, src) in PROGRAMS {
        g.bench_function(&format!("reference/{name}"), |b| {
            b.iter(|| {
                let mut interp = script::reference::Interpreter::new();
                black_box(interp.run(src).unwrap())
            })
        });
        for (engine, label) in [(Engine::Stack, "stack"), (Engine::Register, "register")] {
            g.bench_function(&format!("{label}/{name}"), |b| {
                let mut interp = vm(engine, false);
                let program = interp.compile(src).unwrap();
                b.iter(|| black_box(interp.run_compiled(&program).unwrap()))
            });
        }
    }
    g.finish();
}

fn bench_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("script_vm");
    for (label, parallel) in [("sweep_64/inline", false), ("sweep_64/parallel", true)] {
        g.bench_function(label, |b| {
            let mut interp = vm(Engine::Register, parallel);
            let program = interp.compile(SWEEP).unwrap();
            b.iter(|| black_box(interp.run_compiled(&program).unwrap()))
        });
    }
    g.bench_function("repo_sweep_64/parallel", |b| {
        let mut session = PerfExplorerScript::new(sweep_repo());
        let program = session.compile(REPO_SWEEP).unwrap();
        b.iter(|| black_box(session.run_compiled(&program).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_engines, bench_sweep);

// ---------------------------------------------------------------------
// BENCH_JSON single-pass mode
// ---------------------------------------------------------------------

/// Median wall time of `iters` runs of `f`, in nanoseconds, after
/// `warmup` unmeasured runs.
fn median_nanos(warmup: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn measure_engine(engine: Engine, src: &str) -> f64 {
    let mut interp = vm(engine, false);
    let program = interp.compile(src).unwrap();
    median_nanos(3, 15, || {
        black_box(interp.run_compiled(&program).unwrap());
    })
}

fn measure_reference(src: &str) -> f64 {
    median_nanos(2, 9, || {
        let mut interp = script::reference::Interpreter::new();
        black_box(interp.run(src).unwrap());
    })
}

fn measure_sweep(parallel: bool) -> f64 {
    let mut interp = vm(Engine::Register, parallel);
    let program = interp.compile(SWEEP).unwrap();
    median_nanos(2, 9, || {
        black_box(interp.run_compiled(&program).unwrap());
    })
}

/// Builds an object [`Json`] from `(key, value)` pairs.
fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Rounds to one decimal place for the JSON summary.
fn round1(x: f64) -> Json {
    Json::Float((x * 10.0).round() / 10.0)
}

fn emit_json(path: &str) {
    let mut programs = Vec::new();
    for (name, src) in PROGRAMS {
        let reference = measure_reference(src);
        let stack = measure_engine(Engine::Stack, src);
        let register = measure_engine(Engine::Register, src);
        eprintln!(
            "script_vm: {name:<14} reference {reference:>12.0} ns  stack {stack:>10.0} ns  \
             register {register:>10.0} ns  register/stack {:.2}x",
            stack / register
        );
        programs.push(obj(vec![
            ("program", Json::Str(name.into())),
            ("reference_ns", round1(reference)),
            ("stack_ns", round1(stack)),
            ("register_ns", round1(register)),
            ("register_vs_stack", round1(stack / register)),
            ("register_vs_reference", round1(reference / register)),
        ]));
    }
    let inline = measure_sweep(false);
    let parallel = measure_sweep(true);
    eprintln!(
        "script_vm: sweep_64       inline {inline:>13.0} ns  parallel {parallel:>12.0} ns  \
         speedup {:.2}x over {} workers",
        inline / parallel,
        rayon::concurrency_budget()
    );
    let doc = obj(vec![
        (
            "_generated_by",
            Json::Str("BENCH_JSON=<path> cargo bench -p bench --bench script_vm".into()),
        ),
        (
            "_note",
            Json::Str(
                "Medians of self-timed single-pass runs on precompiled programs; the \
                 differential suite pins all engines to identical semantics."
                    .into(),
            ),
        ),
        ("engines", Json::Array(programs)),
        (
            "sweep_64",
            obj(vec![
                ("bodies", Json::Int(64)),
                ("workers", Json::Int(rayon::concurrency_budget() as i64)),
                ("inline_ns", round1(inline)),
                ("parallel_ns", round1(parallel)),
                ("speedup", round1(inline / parallel)),
            ]),
        ),
    ]);
    std::fs::write(
        path,
        serde_json::to_string_pretty(&doc).expect("render") + "\n",
    )
    .expect("write BENCH_JSON");
    eprintln!("script_vm: wrote {path}");
}

/// One run of every engine per program, asserting value agreement — the
/// CI smoke mode (`-- --test`).
fn smoke() {
    for (name, src) in PROGRAMS {
        let mut reference = script::reference::Interpreter::new();
        let expected = reference.run(src).unwrap();
        for engine in [Engine::Stack, Engine::Register] {
            let got = vm(engine, false).run(src).unwrap();
            assert_eq!(got, expected, "{name} diverged on {engine:?}");
        }
        println!("script_vm/smoke/{name}: ok");
    }
    let inline = vm(Engine::Register, false).run(SWEEP).unwrap();
    let parallel = vm(Engine::Register, true).run(SWEEP).unwrap();
    assert_eq!(inline, parallel, "sweep outcomes diverged across modes");
    let mut session = PerfExplorerScript::new(sweep_repo());
    assert_eq!(session.run(REPO_SWEEP).unwrap(), Value::Num(64.0));
    println!("script_vm/smoke/sweep_64: ok");
}

fn main() {
    if let Ok(path) = std::env::var("BENCH_JSON") {
        emit_json(&path);
        return;
    }
    if std::env::args().any(|a| a == "--test") {
        smoke();
        return;
    }
    benches();
}
