//! Criterion benchmarks for the scripting layer: raw interpreter speed
//! and the Figure-1-style analysis workflow end to end.

use apps::msa::{self, MsaConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use perfdmf::Repository;
use perfexplorer::scripting::PerfExplorerScript;
use script::Interpreter;
use simulator::openmp::Schedule;
use std::hint::black_box;

fn bench_interpreter(c: &mut Criterion) {
    c.bench_function("script/fib_15", |bench| {
        bench.iter(|| {
            let mut interp = Interpreter::new();
            black_box(
                interp
                    .run("fn fib(n) { if n < 2 { return n; } return fib(n-1) + fib(n-2); } fib(15)")
                    .unwrap(),
            )
        })
    });
    c.bench_function("script/loop_sum_10k", |bench| {
        bench.iter(|| {
            let mut interp = Interpreter::new();
            black_box(
                interp
                    .run("let t = 0; let i = 0; while i < 10000 { t = t + i; i = i + 1; } t")
                    .unwrap(),
            )
        })
    });
    c.bench_function("script/parse_only", |bench| {
        let src = "let xs = range(100); let t = 0; for x in xs { t = t + x * 2; } t";
        bench.iter(|| black_box(script::parser::parse(src).unwrap()))
    });
    // Precompiled variant: the compile-once / run-many path a cached
    // workflow script takes after its first execution.
    c.bench_function("script/fib_15_precompiled", |bench| {
        let mut interp = Interpreter::new();
        let program = interp
            .compile("fn fib(n) { if n < 2 { return n; } return fib(n-1) + fib(n-2); } fib(15)")
            .unwrap();
        bench.iter(|| black_box(interp.run_compiled(&program).unwrap()))
    });
}

/// Ablation: the tree-walking reference interpreter on the same
/// programs, to measure the bytecode VM's speedup.
fn bench_reference(c: &mut Criterion) {
    c.bench_function("script_reference/fib_15", |bench| {
        bench.iter(|| {
            let mut interp = script::reference::Interpreter::new();
            black_box(
                interp
                    .run("fn fib(n) { if n < 2 { return n; } return fib(n-1) + fib(n-2); } fib(15)")
                    .unwrap(),
            )
        })
    });
    c.bench_function("script_reference/loop_sum_10k", |bench| {
        bench.iter(|| {
            let mut interp = script::reference::Interpreter::new();
            black_box(
                interp
                    .run("let t = 0; let i = 0; while i < 10000 { t = t + i; i = i + 1; } t")
                    .unwrap(),
            )
        })
    });
}

fn bench_workflow_script(c: &mut Criterion) {
    let mut repo = Repository::new();
    let mut config = MsaConfig::paper_400(8, Schedule::Static);
    config.sequences = 64;
    repo.add_trial("msap", "scheduling", msa::run(&config))
        .unwrap();

    c.bench_function("script/figure1_workflow", |bench| {
        bench.iter(|| {
            let mut session = PerfExplorerScript::new(repo.clone());
            black_box(
                session
                    .run(
                        r#"
                        load_rules("load_balance");
                        let trial = load_trial("msap", "scheduling", "8_static");
                        assert_balance_facts(trial, "TIME");
                        let report = process_rules();
                        report["diagnoses"]
                        "#,
                    )
                    .unwrap(),
            )
        })
    });
}

criterion_group!(
    benches,
    bench_interpreter,
    bench_reference,
    bench_workflow_script
);
criterion_main!(benches);
