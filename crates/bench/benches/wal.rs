//! Write-ahead journal benchmarks: per-record append cost under each
//! fsync policy, and replay throughput for crash recovery.
//!
//! Append cost is what every acknowledged streaming chunk pays before
//! its ack (DESIGN.md §3.12) — the fsync policy is the knob that trades
//! durability against that tax, so the three policies are measured side
//! by side on an identical record. Replay throughput bounds restart
//! time after a crash: a journal of N records is read, checksum-checked
//! and decoded end to end, which is exactly the startup path
//! `ShardedRepository::attach_wal` takes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use perfdmf::wal::{replay_path, Journal};
use perfdmf::{ChunkBatch, ColumnDelta, FsyncPolicy, Measurement, WalRecord};
use std::hint::black_box;
use std::path::PathBuf;

const THREADS: u32 = 8;
const COLUMNS: usize = 4;

/// One realistic journal record: a chunk refreshing `COLUMNS` columns
/// of an 8-thread trial — the shape the loadgen streaming smoke sends.
fn chunk_record(seq: u64) -> WalRecord {
    WalRecord::Chunk {
        app: "bench".into(),
        experiment: "exp".into(),
        trial: "stream".into(),
        batch: ChunkBatch {
            seq,
            threads: THREADS,
            deltas: (0..COLUMNS)
                .map(|c| ColumnDelta {
                    metric: "TIME".into(),
                    event: format!("main => e{c}"),
                    event_kind: None,
                    cells: (0..THREADS)
                        .map(|t| (t, Measurement::leaf(seq as f64 + c as f64 + t as f64)))
                        .collect(),
                })
                .collect(),
        },
    }
}

fn bench_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pwal-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench dir");
    dir
}

fn bench_append(c: &mut Criterion) {
    let dir = bench_dir();
    let record = chunk_record(0);
    let mut group = c.benchmark_group("wal_append");
    group.throughput(Throughput::Elements(1));
    for (name, policy) in [
        ("never", FsyncPolicy::Never),
        ("every64", FsyncPolicy::EveryN(64)),
        ("always", FsyncPolicy::Always),
    ] {
        let path = dir.join(format!("append-{name}.wal"));
        std::fs::remove_file(&path).ok();
        let (mut journal, _) = Journal::open(&path, policy).expect("open journal");
        group.bench_function(name, |b| {
            b.iter(|| journal.append(black_box(&record)).expect("append"))
        });
        std::fs::remove_file(&path).ok();
    }
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_replay(c: &mut Criterion) {
    let dir = bench_dir();
    let mut group = c.benchmark_group("wal_replay");
    for &records in &[1_000u64, 10_000] {
        let path = dir.join(format!("replay-{records}.wal"));
        std::fs::remove_file(&path).ok();
        let (mut journal, _) = Journal::open(&path, FsyncPolicy::Never).expect("open journal");
        for seq in 0..records {
            journal.append(&chunk_record(seq)).expect("append");
        }
        journal.sync().expect("sync");
        drop(journal);

        group.throughput(Throughput::Elements(records));
        group.bench_with_input(BenchmarkId::from_parameter(records), &path, |b, path| {
            b.iter(|| {
                let replay = replay_path(black_box(path)).expect("replay");
                assert_eq!(replay.records.len() as u64, records);
                assert_eq!(replay.torn_bytes, 0);
                replay
            })
        });
        std::fs::remove_file(&path).ok();
    }
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_append, bench_replay);
criterion_main!(benches);
