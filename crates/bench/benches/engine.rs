//! Criterion benchmarks for the inference engine: matching throughput
//! vs working-memory size, join cost, and rule-language parsing.
//!
//! The working-memory sweep is the ablation DESIGN.md calls out: the
//! engine matches linearly over working memory, so activation cost grows
//! with fact count — these benches quantify that design choice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rules::{drl, Comparator, Engine, Fact, Pattern, Rule};
use std::hint::black_box;

fn engine_with_threshold_rule() -> Engine {
    let mut e = Engine::new();
    e.add_rule(
        Rule::builder("threshold")
            .when(
                Pattern::new("MeanEventFact")
                    .constrain("severity", Comparator::Gt, 0.5)
                    .bind("e", "eventName"),
            )
            .then(|_| {}),
    )
    .unwrap();
    e
}

fn bench_match_fire(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/match_fire");
    for &n in &[16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            bench.iter(|| {
                let mut engine = engine_with_threshold_rule();
                for i in 0..n {
                    engine.assert_fact(
                        Fact::new("MeanEventFact")
                            .with("severity", (i % 100) as f64 / 100.0)
                            .with("eventName", format!("e{i}")),
                    );
                }
                black_box(engine.run().unwrap())
            })
        });
    }
    group.finish();
}

fn bench_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/two_pattern_join");
    for &n in &[8usize, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            bench.iter(|| {
                let mut engine = Engine::new();
                engine
                    .add_rule(
                        Rule::builder("join")
                            .when(Pattern::new("Parent").bind("name", "name"))
                            .when(Pattern::new("Child").constrain_var(
                                "parent",
                                Comparator::Eq,
                                "name",
                            ))
                            .then(|_| {}),
                    )
                    .unwrap();
                for i in 0..n {
                    engine.assert_fact(Fact::new("Parent").with("name", format!("p{i}")));
                    engine.assert_fact(
                        Fact::new("Child")
                            .with("parent", format!("p{}", i % 4))
                            .with("i", i),
                    );
                }
                black_box(engine.run().unwrap())
            })
        });
    }
    group.finish();
}

fn bench_parse(c: &mut Criterion) {
    let source = perfexplorer::rulebase::LOCALITY_RULES;
    c.bench_function("engine/parse_locality_rulebase", |bench| {
        bench.iter(|| drl::parse(black_box(source)).unwrap())
    });
}

criterion_group!(benches, bench_match_fire, bench_join, bench_parse);
criterion_main!(benches);
