//! Criterion benchmarks for the inference engine: matching throughput
//! vs working-memory size, join cost, rule-language parsing, and the
//! incremental-vs-rematch ablation.
//!
//! `engine/incremental_vs_rematch` drives the production engine (alpha
//! indexes + persistent agenda) and `rules::reference::ReferenceEngine`
//! (full conflict-set rebuild before every firing) through the same
//! rulebase and fact load, quantifying what the indexed agenda buys.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rules::reference::ReferenceEngine;
use rules::{drl, Comparator, Engine, Fact, Pattern, Rule};
use std::hint::black_box;

fn engine_with_threshold_rule() -> Engine {
    let mut e = Engine::new();
    e.add_rule(
        Rule::builder("threshold")
            .when(
                Pattern::new("MeanEventFact")
                    .constrain("severity", Comparator::Gt, 0.5)
                    .bind("e", "eventName"),
            )
            .then(|_| {}),
    )
    .unwrap();
    e
}

fn bench_match_fire(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/match_fire");
    for &n in &[16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            bench.iter(|| {
                let mut engine = engine_with_threshold_rule();
                for i in 0..n {
                    engine.assert_fact(
                        Fact::new("MeanEventFact")
                            .with("severity", (i % 100) as f64 / 100.0)
                            .with("eventName", format!("e{i}")),
                    );
                }
                black_box(engine.run().unwrap())
            })
        });
    }
    group.finish();
}

fn bench_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/two_pattern_join");
    for &n in &[8usize, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            bench.iter(|| {
                let mut engine = Engine::new();
                engine
                    .add_rule(
                        Rule::builder("join")
                            .when(Pattern::new("Parent").bind("name", "name"))
                            .when(Pattern::new("Child").constrain_var(
                                "parent",
                                Comparator::Eq,
                                "name",
                            ))
                            .then(|_| {}),
                    )
                    .unwrap();
                for i in 0..n {
                    engine.assert_fact(Fact::new("Parent").with("name", format!("p{i}")));
                    engine.assert_fact(
                        Fact::new("Child")
                            .with("parent", format!("p{}", i % 4))
                            .with("i", i),
                    );
                }
                black_box(engine.run().unwrap())
            })
        });
    }
    group.finish();
}

/// Twenty single-pattern rules with distinct severity bands and
/// distinct saliences — every band fires on its slice of the facts, and
/// the distinct priorities defeat the reference engine's equal-salience
/// rule pruning so it pays the full rebuild cost it would in general.
fn banded_rules() -> Vec<Rule> {
    (0..20)
        .map(|j| {
            let lo = j as f64 * 0.05;
            Rule::builder(format!("band{j}"))
                .salience(j)
                .when(
                    Pattern::new("MeanEventFact")
                        .constrain("severity", Comparator::Gt, lo)
                        .constrain("severity", Comparator::Le, lo + 0.011)
                        .bind("e", "eventName"),
                )
                .then(|_| {})
        })
        .collect()
}

fn band_fact(i: usize) -> Fact {
    Fact::new("MeanEventFact")
        .with("severity", (i % 100) as f64 / 100.0)
        .with("eventName", format!("e{i}"))
}

fn bench_incremental_vs_rematch(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/incremental_vs_rematch");
    for &n in &[100usize, 1000] {
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |bench, &n| {
            bench.iter(|| {
                let mut engine = Engine::new();
                engine.add_rules(banded_rules()).unwrap();
                for i in 0..n {
                    engine.assert_fact(band_fact(i));
                }
                black_box(engine.run().unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("rematch", n), &n, |bench, &n| {
            bench.iter(|| {
                let mut engine = ReferenceEngine::new();
                engine.add_rules(banded_rules()).unwrap();
                for i in 0..n {
                    engine.assert_fact(band_fact(i));
                }
                black_box(engine.run().unwrap())
            })
        });
    }
    group.finish();
}

fn bench_parse(c: &mut Criterion) {
    let source = perfexplorer::rulebase::LOCALITY_RULES;
    c.bench_function("engine/parse_locality_rulebase", |bench| {
        bench.iter(|| drl::parse(black_box(source)).unwrap())
    });
}

criterion_group!(
    benches,
    bench_match_fire,
    bench_join,
    bench_incremental_vs_rematch,
    bench_parse
);
criterion_main!(benches);
