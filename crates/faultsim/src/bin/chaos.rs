//! Chaos harness: drive the whole pipeline through seeded corruption.
//!
//! For every seed in the matrix this binary
//!
//! 1. builds clean trials from the simulated applications,
//! 2. corrupts them in-memory with every profile-domain fault,
//!    sanitizes them, and runs all supervised case-study workflows,
//! 3. corrupts each serialized text form (csv / tau / gprof) with every
//!    text-domain fault and runs the lossy parsers,
//! 4. corrupts the repository JSON and runs the salvage path,
//!
//! all under `catch_unwind`. Any panic that escapes a supervised entry
//! point is a bug: it is reported per seed and turns into a non-zero
//! exit code, which is what the CI `chaos` job gates on.
//!
//! The `crash-restart` stage is the service-lifecycle side of the same
//! story: for every seed it streams chunks into a WAL-backed service
//! under a seeded unreliable delivery plan (reordered, duplicated,
//! dropped-then-retried, stalled), kills the service at a chosen
//! [`KillPoint`] in a chunk's `append -> apply -> ack` lifecycle
//! (simulating mid-append deaths by leaving a torn frame at the journal
//! tail), restarts it over the same journal directory, redelivers
//! everything, and gates on three invariants: the replayed chunk count
//! is exactly the journaled set, no acknowledged chunk is lost, and the
//! recovered report is byte-identical to an uninterrupted run.
//!
//! ```text
//! chaos [--stage all|corruption|crash-restart] [--seeds N] [--base-seed B]
//!       [--kill-point before-append|mid-append|after-append|after-apply]
//!       [--fsync always|never] [--verbose]
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};

use apps::msa::{self, MsaConfig};
use apps::power_study::{self, PowerStudyConfig};
use faultsim::{DeliveryOp, DeliveryPlan, Fault, FaultPlan, KillPoint};
use perfdmf::formats::{csv, gprof, tau};
use perfdmf::wal::{FsyncPolicy, Journal, WalRecord};
use perfdmf::{sanitize_trial, ChunkBatch, QualityConfig, Repository, Trial};
use perfexplorer::workflow::{
    analyze_load_balance_supervised, analyze_locality_supervised, analyze_power_supervised,
};
use perfexplorer::SupervisorConfig;
use simulator::machine::MachineConfig;
use simulator::openmp::Schedule;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Stage {
    All,
    Corruption,
    CrashRestart,
}

struct Args {
    stage: Stage,
    seeds: u64,
    base_seed: u64,
    kill_points: Vec<KillPoint>,
    fsync: FsyncPolicy,
    verbose: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        stage: Stage::All,
        seeds: 8,
        base_seed: 0,
        kill_points: KillPoint::MATRIX.to_vec(),
        fsync: FsyncPolicy::Always,
        verbose: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--stage" => {
                args.stage = match it.next().as_deref() {
                    Some("all") => Stage::All,
                    Some("corruption") => Stage::Corruption,
                    Some("crash-restart") => Stage::CrashRestart,
                    _ => usage("--stage needs all|corruption|crash-restart"),
                };
            }
            "--seeds" => {
                args.seeds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seeds needs a number"));
            }
            "--base-seed" => {
                args.base_seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--base-seed needs a number"));
            }
            "--kill-point" => {
                args.kill_points = match it.next().as_deref() {
                    Some("all") => KillPoint::MATRIX.to_vec(),
                    Some(s) => vec![KillPoint::parse(s).unwrap_or_else(|| {
                        usage(
                            "--kill-point needs before-append|mid-append|after-append|after-apply",
                        )
                    })],
                    None => usage("--kill-point needs a value"),
                };
            }
            "--fsync" => {
                args.fsync = match it.next().as_deref() {
                    Some("always") => FsyncPolicy::Always,
                    Some("never") => FsyncPolicy::Never,
                    _ => usage("--fsync needs always|never"),
                };
            }
            "--verbose" => args.verbose = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other:?}")),
        }
    }
    args
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: chaos [--stage all|corruption|crash-restart] [--seeds N] [--base-seed B]\n\
         \x20            [--kill-point KP|all] [--fsync always|never] [--verbose]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

/// Outcome of one seed's run.
#[derive(Default)]
struct SeedOutcome {
    faults_applied: usize,
    stages_degraded: usize,
    diagnostics: usize,
    repairs: usize,
    quarantined: usize,
    salvage_dropped: usize,
    panics: Vec<String>,
}

/// Splits a trial into one [`ChunkBatch`] per event, every metric's
/// column in full — the flush shape the simulator's profiling layer
/// produces. Chunk `i` carries event `i`; the chunk carrying
/// [`perfdmf::MAIN_EVENT`] bootstraps the stream.
fn chunk_trial(trial: &Trial) -> Vec<ChunkBatch> {
    use perfdmf::{ColumnDelta, EventId, MetricId};
    let profile = &trial.profile;
    let threads = profile.thread_count();
    profile
        .events()
        .iter()
        .enumerate()
        .map(|(ei, event)| ChunkBatch {
            seq: ei as u64,
            threads: threads as u32,
            deltas: profile
                .metrics()
                .iter()
                .enumerate()
                .map(|(mi, metric)| ColumnDelta {
                    metric: metric.name.clone(),
                    event: event.name.clone(),
                    event_kind: event.kind.clone(),
                    cells: (0..threads)
                        .map(|t| {
                            (
                                t as u32,
                                *profile
                                    .get(EventId(ei as u32), MetricId(mi as u32), t)
                                    .expect("in-range cell"),
                            )
                        })
                        .collect(),
                })
                .collect(),
        })
        .collect()
}

fn clean_trials() -> Vec<Trial> {
    let mut msa_config = MsaConfig::paper_400(8, Schedule::Static);
    msa_config.sequences = 48;
    let mut out = vec![msa::run(&msa_config)];
    let power = PowerStudyConfig {
        ranks: 4,
        timesteps: 1,
        machine: MachineConfig::altix300(),
    };
    out.extend(power_study::run_all(&power).into_iter().map(|(_, t)| t));
    out
}

/// Runs `f` under panic isolation; a panic is recorded against `what`.
fn guarded(outcome: &mut SeedOutcome, what: &str, f: impl FnOnce(&mut SeedOutcome)) {
    match catch_unwind(AssertUnwindSafe(|| {
        let mut scratch = SeedOutcome::default();
        f(&mut scratch);
        scratch
    })) {
        Ok(scratch) => {
            outcome.faults_applied += scratch.faults_applied;
            outcome.stages_degraded += scratch.stages_degraded;
            outcome.diagnostics += scratch.diagnostics;
            outcome.repairs += scratch.repairs;
            outcome.quarantined += scratch.quarantined;
            outcome.salvage_dropped += scratch.salvage_dropped;
            outcome.panics.extend(scratch.panics);
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic".into());
            outcome.panics.push(format!("{what}: {msg}"));
        }
    }
}

fn run_seed(seed: u64, verbose: bool) -> SeedOutcome {
    let machine = MachineConfig::altix300();
    let supervisor = SupervisorConfig::default();
    let quality = QualityConfig::default();
    let mut outcome = SeedOutcome::default();

    // --- profile-domain: corrupt, sanitize, analyze ---
    let mut trials = clean_trials();
    let plan = FaultPlan::new(seed).with_all(&Fault::PROFILE_FAULTS);
    for trial in &mut trials {
        let applied = plan.apply_to_trial(trial);
        outcome.faults_applied += applied.len();
        if verbose {
            for a in &applied {
                eprintln!("seed {seed}: [{}] {}", a.fault, a.detail);
            }
        }
        let report = sanitize_trial(trial, &quality);
        outcome.repairs += report.repairs.len();
        outcome.quarantined += report.quarantined.len();
    }

    guarded(&mut outcome, "load-balance workflow", |o| {
        let r = analyze_load_balance_supervised(&trials[0], "TIME", &supervisor);
        o.stages_degraded += r.degraded.len();
    });
    guarded(&mut outcome, "locality workflow", |o| {
        let series: Vec<(usize, &Trial)> = trials.iter().enumerate().collect();
        let r = analyze_locality_supervised(&series, &machine, &supervisor);
        o.stages_degraded += r.degraded.len();
    });
    guarded(&mut outcome, "power workflow", |o| {
        let refs: Vec<&Trial> = trials.iter().skip(1).collect();
        let (_, r) = analyze_power_supervised(&refs, &machine, &supervisor);
        o.stages_degraded += r.degraded.len();
    });

    // --- text-domain: corrupt serialized forms, lossy-parse ---
    let text_plan = FaultPlan::new(seed ^ 0x5eed).with_all(&Fault::TEXT_FAULTS);

    guarded(&mut outcome, "csv lossy parse", |o| {
        let clean = clean_trials();
        let (corrupt, applied) = text_plan.apply_to_text(&csv::write_trial(&clean[0]));
        o.faults_applied += applied.len();
        let parsed = csv::parse_trial_lossy("chaos-csv", &corrupt);
        o.diagnostics += parsed.diagnostics.len();
    });
    guarded(&mut outcome, "tau lossy parse", |o| {
        let tau_text = "3 templated_functions_MULTI_TIME\n\
             # Name Calls Subrs Excl Incl ProfileCalls\n\
             \"main\" 1 2 400 1000 0\n\
             \"main => compute\" 10 0 500 500 0\n\
             \"main => exchange\" 10 0 100 100 0\n";
        let (corrupt, applied) = text_plan.apply_to_text(tau_text);
        o.faults_applied += applied.len();
        let (_, diags) = tau::parse_thread_profile_lossy(&corrupt);
        o.diagnostics += diags.len();
    });
    guarded(&mut outcome, "gprof lossy parse", |o| {
        let gprof_text = "  %   cumulative   self              self     total\n \
             time   seconds   seconds    calls  ms/call  ms/call  name\n \
             90.01      9.00     9.00      100    90.00    95.00  compute\n  \
             9.99      9.99     0.99        1   990.00  9990.00  main\n";
        let (corrupt, applied) = text_plan.apply_to_text(gprof_text);
        o.faults_applied += applied.len();
        let parsed = gprof::parse_flat_profile_lossy("chaos-gprof", &corrupt);
        o.diagnostics += parsed.diagnostics.len();
    });

    // --- binary-domain: corrupt PDB1 bytes, strict + salvage + mmap ---
    guarded(&mut outcome, "pdb1 salvage", |o| {
        let mut repo = Repository::new();
        for (i, t) in clean_trials().into_iter().enumerate() {
            repo.add_trial("chaos", if i == 0 { "msa" } else { "power" }, t)
                .expect("clean trials insert");
        }
        let bytes = repo.to_pdb1();
        let binary_plan = FaultPlan::new(seed ^ 0xb1a5).with_all(&Fault::BINARY_FAULTS);
        let (corrupt, applied) = binary_plan.apply_to_bytes(&bytes);
        o.faults_applied += applied.len();
        if verbose {
            for a in &applied {
                eprintln!("seed {seed}: [{}] {}", a.fault, a.detail);
            }
        }
        // The strict reader must reject or load — never panic.
        let _ = Repository::from_pdb1(&corrupt);
        // Salvage must degrade to a partial report with diagnostics.
        if let Ok((_, dropped)) = perfdmf::pdb1::salvage(&corrupt) {
            o.salvage_dropped += dropped.len();
        }
        // The mmap path shares the strict parser plus lazy page
        // checks; every surviving view must materialize cleanly.
        if let Ok(mapped) = perfdmf::MappedRepository::from_bytes(&corrupt) {
            for view in mapped.views().flatten() {
                let _ = view.to_trial();
            }
        }
    });

    // --- service-domain: corrupt uploads through the worker pool ---
    guarded(&mut outcome, "analysis service", |o| {
        use service::{AnalysisService, Outcome, Request, ServiceConfig};
        let svc = AnalysisService::start(ServiceConfig {
            workers: 2,
            shards: 4,
            ..ServiceConfig::default()
        });
        let client = svc.client();
        let clean = &clean_trials()[0];
        let document = serde_json::to_string(clean).expect("clean trial serializes");

        // A corrupted upload into the same tenant as a clean sibling
        // must degrade alone. Corrupt goes first: if the fault left the
        // JSON parseable under the same trial name, the clean upload
        // below wins the upsert and the analyzed trial is pristine.
        let (corrupt_doc, applied) = text_plan.apply_to_text(&document);
        o.faults_applied += applied.len();
        let corrupt_resp = client
            .call(Request::Ingest {
                app: "chaos".into(),
                experiment: "svc".into(),
                document: corrupt_doc,
            })
            .expect("service alive");
        // A text fault may leave the JSON parseable; only count real
        // degradations.
        o.stages_degraded += corrupt_resp.degraded.len();
        let clean_resp = client
            .call(Request::Ingest {
                app: "chaos".into(),
                experiment: "svc".into(),
                document,
            })
            .expect("service alive");
        assert!(clean_resp.is_clean(), "clean upload must stay clean");

        // The clean sibling analyzes clean after the corrupt upload.
        let analysis = client
            .call(Request::AnalyzeBalance {
                app: "chaos".into(),
                experiment: "svc".into(),
                trial: clean.name.clone(),
                metric: "TIME".into(),
            })
            .expect("service alive");
        assert!(
            analysis.is_clean(),
            "sibling analysis degraded by a corrupt upload: {:?}",
            analysis.degraded
        );
        assert!(matches!(analysis.outcome, Outcome::Report { .. }));
        let stats = svc.stats();
        assert_eq!(stats.panics_isolated, 0, "panic escaped a service handler");
        svc.shutdown();
    });

    // --- streaming-domain: torn, replayed, out-of-order chunk streams ---
    guarded(&mut outcome, "streaming chunks", |o| {
        use service::{AnalysisService, Outcome, Request, ServiceConfig};

        let clean = &clean_trials()[0];
        let profile = &clean.profile;
        let chunks = chunk_trial(clean);

        let svc = AnalysisService::start(ServiceConfig {
            workers: 2,
            shards: 2,
            ..ServiceConfig::default()
        });
        let client = svc.client();
        let send = |chunk_doc: String| {
            client
                .call(Request::IngestChunk {
                    app: "chaos".into(),
                    experiment: "stream".into(),
                    trial: clean.name.clone(),
                    chunk: chunk_doc,
                })
                .expect("service alive")
        };

        // Bootstrap cleanly (the chunk carrying `main` first), then
        // deliver the rest out of order, each preceded by a corrupted
        // (often truncated) copy and followed by a verbatim replay,
        // analyzing after every delivery. Every response must be a
        // report or a clean rejection — never a panic.
        let main_idx = profile
            .events()
            .iter()
            .position(|e| e.name == perfdmf::MAIN_EVENT)
            .expect("clean trial has main");
        let mut order: Vec<usize> = (0..chunks.len()).filter(|&i| i != main_idx).collect();
        // Seeded shuffle: deterministic out-of-order delivery.
        let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
        for i in (1..order.len()).rev() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            order.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let first = serde_json::to_string(&chunks[main_idx]).expect("chunk serializes");
        assert!(send(first.clone()).is_clean(), "clean bootstrap chunk");
        for &i in &order {
            let doc = serde_json::to_string(&chunks[i]).expect("chunk serializes");
            let (corrupt_doc, applied) = text_plan.apply_to_text(&doc);
            o.faults_applied += applied.len();
            let r = send(corrupt_doc);
            o.stages_degraded += r.degraded.len();
            let r = send(doc.clone());
            o.stages_degraded += r.degraded.len();
            // Replay: must dedup by sequence number, not double-apply.
            let r = send(doc);
            o.stages_degraded += r.degraded.len();

            let analysis = client
                .call(Request::AnalyzeBalance {
                    app: "chaos".into(),
                    experiment: "stream".into(),
                    trial: clean.name.clone(),
                    metric: "TIME".into(),
                })
                .expect("service alive");
            assert!(
                matches!(
                    analysis.outcome,
                    Outcome::Report { .. } | Outcome::Rejected { .. }
                ),
                "mid-stream analysis must report or reject, got {:?}",
                analysis.outcome
            );
        }
        // With every clean chunk delivered the partial report is whole.
        let final_analysis = client
            .call(Request::AnalyzeBalance {
                app: "chaos".into(),
                experiment: "stream".into(),
                trial: clean.name.clone(),
                metric: "TIME".into(),
            })
            .expect("service alive");
        assert!(
            matches!(final_analysis.outcome, Outcome::Report { .. }),
            "fully-streamed trial must analyze: {:?}",
            final_analysis.outcome
        );
        let stats = svc.stats();
        assert_eq!(stats.panics_isolated, 0, "panic escaped a chunk handler");
        svc.shutdown();
    });

    // --- repository salvage ---
    guarded(&mut outcome, "repository salvage", |o| {
        let mut repo = Repository::new();
        for (i, t) in clean_trials().into_iter().enumerate() {
            repo.add_trial("chaos", if i == 0 { "msa" } else { "power" }, t)
                .expect("clean trials insert");
        }
        let json = repo.to_json().expect("clean repo serializes");
        let (corrupt, applied) = text_plan.apply_to_text(&json);
        o.faults_applied += applied.len();
        if let Ok((_, dropped)) = Repository::salvage_json(&corrupt) {
            o.salvage_dropped += dropped.len();
        }
    });

    // --- script-sweep: corrupt trials under par_foreach_trial ---
    guarded(&mut outcome, "script sweep", |o| {
        use perfexplorer::scripting::{PerfExplorerScript, Value};
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        // Corrupted trials enter the repository *unsanitized*; the
        // sweep must still visit every body, containing any failure
        // (including a panic) to the body that hit it.
        let mut corrupted = clean_trials();
        let plan = FaultPlan::new(seed ^ 0x5c12).with_all(&Fault::PROFILE_FAULTS);
        let mut repo = Repository::new();
        for trial in &mut corrupted {
            o.faults_applied += plan.apply_to_trial(trial).len();
        }
        for trial in corrupted {
            // A fault may rename trials into collision; upserts and
            // rejections at the door are both acceptable — the sweep
            // covers whatever got in.
            let _ = repo.add_trial("chaos", "sweep", trial);
        }
        let mut pristine = clean_trials().remove(0);
        pristine.name = "pristine-sibling".to_string();
        repo.add_trial("chaos", "sweep", pristine)
            .expect("clean sibling inserts");

        let mut session = PerfExplorerScript::new(repo);
        let bodies = Arc::new(AtomicU64::new(0));
        let failed = Arc::new(AtomicU64::new(0));
        {
            let bodies = Arc::clone(&bodies);
            let failed = Arc::clone(&failed);
            session.set_sweep_observer(Arc::new(move |n, nf| {
                bodies.fetch_add(n as u64, Ordering::Relaxed);
                failed.fetch_add(nf as u64, Ordering::Relaxed);
            }));
        }
        let run = session.run_supervised(
            r#"
            let r = par_foreach_trial t in list_trials("chaos", "sweep") {
                let trial = load_trial("chaos", "sweep", t);
                elapsed(trial, "TIME")
            };
            let ok = 0;
            let i = 0;
            while i < len(r) {
                if r[i]["ok"] { ok = ok + 1; }
                i = i + 1;
            }
            ok
            "#,
        );
        o.stages_degraded += run.degraded.len();
        let total = bodies.load(Ordering::Relaxed);
        let bad = failed.load(Ordering::Relaxed);
        // The sweep itself must finish — corrupt bodies degrade alone,
        // and the pristine sibling's body must have succeeded in the
        // same pool.
        let oks = match run.value {
            Some(Value::Num(n)) => n,
            other => panic!("sweep did not complete: {other:?} / {:?}", run.degraded),
        };
        assert!(oks >= 1.0, "pristine body failed alongside corrupt ones");
        assert!(total >= 1 && bad < total, "bodies {total}, failed {bad}");
    });

    outcome
}

// ---------------------------------------------------------------------------
// crash-restart stage: kill -> restart -> replay -> verify
// ---------------------------------------------------------------------------

/// Result of one seeded kill-restart cycle.
struct CrashOutcome {
    /// Chunks acknowledged before the kill.
    acked: usize,
    /// Chunks the restarted service replayed from the journal.
    replayed: u64,
    /// Durable chunks correctly deduplicated on redelivery.
    duplicates: usize,
    /// Acknowledged chunks the recovery lost — must be zero.
    lost_acks: usize,
    /// The recovered report matched the uninterrupted run byte for
    /// byte.
    identical: bool,
    /// Everything that went wrong, human-readable.
    failures: Vec<String>,
}

/// Finds the journal file carrying the tenant's records (the service
/// shards journals per shard; every chunk of one tenant lands in one).
fn busiest_journal(dir: &std::path::Path) -> Option<std::path::PathBuf> {
    let mut best: Option<(usize, std::path::PathBuf)> = None;
    for entry in std::fs::read_dir(dir).ok()?.flatten() {
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "wal") {
            let count = perfdmf::wal::replay_path(&path)
                .map(|r| r.records.len())
                .unwrap_or(0);
            if best.as_ref().is_none_or(|(c, _)| count > *c) {
                best = Some((count, path));
            }
        }
    }
    best.map(|(_, p)| p)
}

/// One kill-restart cycle: stream chunks under an unreliable delivery
/// plan into a WAL-backed service, kill it at `kill`, restart over the
/// same journal directory, redeliver everything, and verify the three
/// recovery invariants (exact replay count, zero lost acks, report
/// byte-identical to an uninterrupted run).
fn run_crash_restart(
    seed: u64,
    kill: KillPoint,
    fsync: FsyncPolicy,
    verbose: bool,
) -> CrashOutcome {
    use rand::{Rng, SeedableRng, StdRng};
    use service::{AnalysisService, Outcome, Request, ServiceClient, ServiceConfig};

    let mut out = CrashOutcome {
        acked: 0,
        replayed: 0,
        duplicates: 0,
        lost_acks: 0,
        identical: false,
        failures: Vec::new(),
    };

    let clean = &clean_trials()[0];
    let chunks = chunk_trial(clean);
    let n = chunks.len();
    let main_idx = clean
        .profile
        .events()
        .iter()
        .position(|e| e.name == perfdmf::MAIN_EVENT)
        .expect("clean trial has main");
    let trial_name = clean.name.clone();

    let config = |wal_dir: Option<std::path::PathBuf>| ServiceConfig {
        workers: 2,
        shards: 2,
        wal_dir,
        wal_fsync: fsync,
        ..ServiceConfig::default()
    };
    let send = |client: &ServiceClient, batch: &ChunkBatch| {
        client
            .call(Request::IngestChunk {
                app: "chaos".into(),
                experiment: "crash".into(),
                trial: trial_name.clone(),
                chunk: serde_json::to_string(batch).expect("chunk serializes"),
            })
            .expect("service alive")
    };
    let analyze = |client: &ServiceClient| {
        client
            .call(Request::AnalyzeBalance {
                app: "chaos".into(),
                experiment: "crash".into(),
                trial: trial_name.clone(),
                metric: "TIME".into(),
            })
            .expect("service alive")
    };

    // Reference: the same stream delivered in order, never interrupted,
    // no journal. Recovery must reproduce this report byte for byte.
    let reference = {
        let svc = AnalysisService::start(config(None));
        let client = svc.client();
        for chunk in std::iter::once(main_idx).chain((0..n).filter(|&i| i != main_idx)) {
            assert!(
                send(&client, &chunks[chunk]).is_clean(),
                "reference delivery of chunk {chunk} failed"
            );
        }
        let resp = analyze(&client);
        let rendered = match resp.outcome {
            Outcome::Report { rendered, .. } => rendered,
            other => panic!("reference analysis failed: {other:?}"),
        };
        svc.shutdown();
        rendered
    };

    // Where the kill lands: after `kill_nth` acknowledged first
    // deliveries — always at least the bootstrap chunk acked, always at
    // least one chunk still pending.
    let plan = DeliveryPlan::generate(seed, n, Some(main_idx));
    let delivers = plan.deliveries().len();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6b11);
    let kill_nth = 1 + rng.random_range(0..delivers as u64 - 1) as usize;

    let wal_dir = std::env::temp_dir().join(format!(
        "chaos-crash-{}-{}-{}",
        std::process::id(),
        seed,
        kill
    ));
    let _ = std::fs::remove_dir_all(&wal_dir);

    let mut acked = vec![false; n];
    let mut victim = None;
    {
        let svc = AnalysisService::start(config(Some(wal_dir.clone())));
        let client = svc.client();
        let mut nth = 0usize;
        'ops: for op in plan.ops() {
            match *op {
                DeliveryOp::Deliver { chunk } => {
                    if nth == kill_nth {
                        victim = Some(chunk);
                        if kill == KillPoint::AfterApply {
                            let r = send(&client, &chunks[chunk]);
                            if !r.is_clean() {
                                out.failures
                                    .push(format!("victim delivery failed: {:?}", r.outcome));
                            }
                            acked[chunk] = true;
                        }
                        break 'ops;
                    }
                    let r = send(&client, &chunks[chunk]);
                    match r.outcome {
                        Outcome::ChunkIngested { duplicate, .. } => {
                            if duplicate {
                                out.failures
                                    .push(format!("first delivery of {chunk} flagged duplicate"));
                            }
                            acked[chunk] = true;
                        }
                        other => out
                            .failures
                            .push(format!("delivery of chunk {chunk} failed: {other:?}")),
                    }
                    nth += 1;
                }
                DeliveryOp::Redeliver { chunk } => {
                    if acked[chunk] {
                        let r = send(&client, &chunks[chunk]);
                        if !matches!(
                            r.outcome,
                            Outcome::ChunkIngested {
                                duplicate: true,
                                ..
                            }
                        ) {
                            out.failures.push(format!(
                                "pre-crash redelivery of {chunk} not deduped: {:?}",
                                r.outcome
                            ));
                        }
                    }
                }
                DeliveryOp::Stall { millis } => {
                    std::thread::sleep(std::time::Duration::from_millis(millis))
                }
            }
        }
        if svc.stats().panics_isolated != 0 {
            out.failures.push("panic escaped pre-crash service".into());
        }
        // The kill: the pre-crash process goes away and only the
        // journal directory survives; the restarted service below
        // rebuilds from the WAL alone.
        svc.shutdown();
    }
    out.acked = acked.iter().filter(|&&a| a).count();
    let victim_chunk = victim.expect("kill lands before the plan is exhausted");

    // Kill points that die inside the append leave their mark directly
    // in the journal file, exactly as the dying process would have.
    if matches!(kill, KillPoint::MidAppend | KillPoint::AfterAppend) {
        let record = WalRecord::Chunk {
            app: "chaos".into(),
            experiment: "crash".into(),
            trial: trial_name.clone(),
            batch: chunks[victim_chunk].clone(),
        };
        match busiest_journal(&wal_dir) {
            Some(path) => match Journal::open(&path, FsyncPolicy::Always) {
                Ok((mut journal, _)) => {
                    let result = match kill {
                        KillPoint::MidAppend => {
                            let keep = 1 + (seed as usize % 40);
                            journal.append_torn(&record, keep).map(|torn| {
                                if verbose {
                                    eprintln!(
                                        "seed {seed} {kill}: tore frame at {keep}/{torn} bytes"
                                    );
                                }
                            })
                        }
                        _ => journal.append(&record),
                    };
                    if let Err(e) = result {
                        out.failures.push(format!("post-mortem append failed: {e}"));
                    }
                }
                Err(e) => out
                    .failures
                    .push(format!("post-mortem journal open failed: {e}")),
            },
            None => out.failures.push("no journal file written".into()),
        }
    }

    // Restart over the same journal directory. Replay must resurrect
    // exactly the durable set: every acked chunk, plus the victim when
    // its append landed before the crash, and nothing from a torn tail.
    let expected_replayed = out.acked as u64 + u64::from(kill == KillPoint::AfterAppend);
    let svc = AnalysisService::start(config(Some(wal_dir.clone())));
    out.replayed = svc.stats().wal_replayed_chunks;
    if out.replayed != expected_replayed {
        out.failures.push(format!(
            "replayed {} chunks, expected {expected_replayed}",
            out.replayed
        ));
    }
    let client = svc.client();
    // Redeliver the full stream (a recovering client replays its send
    // window): durable chunks must dedup — an ack is a durability
    // promise — and never-delivered ones must apply fresh.
    for chunk in std::iter::once(main_idx).chain((0..n).filter(|&i| i != main_idx)) {
        let durable = acked[chunk] || (kill == KillPoint::AfterAppend && chunk == victim_chunk);
        let r = send(&client, &chunks[chunk]);
        match r.outcome {
            Outcome::ChunkIngested { duplicate, .. } => {
                if durable && !duplicate {
                    out.lost_acks += 1;
                    out.failures
                        .push(format!("acked chunk {chunk} was lost across the crash"));
                } else if duplicate {
                    out.duplicates += 1;
                    if !durable {
                        out.failures
                            .push(format!("unacked chunk {chunk} claims duplicate"));
                    }
                }
            }
            other => out.failures.push(format!(
                "recovery delivery of chunk {chunk} failed: {other:?}"
            )),
        }
    }
    let resp = analyze(&client);
    match resp.outcome {
        Outcome::Report { rendered, .. } => {
            out.identical = rendered == reference;
            if !out.identical {
                out.failures
                    .push("recovered report differs from uninterrupted run".into());
            }
        }
        other => out
            .failures
            .push(format!("recovered analysis failed: {other:?}")),
    }
    if svc.stats().panics_isolated != 0 {
        out.failures.push("panic escaped recovered service".into());
    }
    svc.shutdown();
    let _ = std::fs::remove_dir_all(&wal_dir);
    out
}

fn run_corruption_stage(args: &Args) -> bool {
    println!(
        "chaos: {} seed(s) starting at {}",
        args.seeds, args.base_seed
    );
    println!("seed     faults  degraded  diags  repairs  quarantined  dropped  panics");

    let mut total_panics = 0usize;
    for i in 0..args.seeds {
        let seed = args.base_seed + i;
        let o = run_seed(seed, args.verbose);
        println!(
            "{:<8} {:<7} {:<9} {:<6} {:<8} {:<12} {:<8} {}",
            seed,
            o.faults_applied,
            o.stages_degraded,
            o.diagnostics,
            o.repairs,
            o.quarantined,
            o.salvage_dropped,
            o.panics.len()
        );
        for p in &o.panics {
            eprintln!("seed {seed}: PANIC ESCAPED: {p}");
        }
        total_panics += o.panics.len();
    }

    if total_panics > 0 {
        eprintln!("chaos: {total_panics} panic(s) escaped supervised entry points");
        return true;
    }
    println!("chaos: no panics escaped");
    false
}

fn run_crash_restart_stage(args: &Args) -> bool {
    println!(
        "crash-restart: {} seed(s) x {} kill point(s), fsync {:?}",
        args.seeds,
        args.kill_points.len(),
        args.fsync
    );
    println!("seed     kill-point     acked  replayed  dups  lost  identical  failures");

    let mut failed = false;
    for i in 0..args.seeds {
        let seed = args.base_seed + i;
        for &kp in &args.kill_points {
            match catch_unwind(AssertUnwindSafe(|| {
                run_crash_restart(seed, kp, args.fsync, args.verbose)
            })) {
                Ok(o) => {
                    println!(
                        "{:<8} {:<14} {:<6} {:<9} {:<5} {:<5} {:<10} {}",
                        seed,
                        kp.to_string(),
                        o.acked,
                        o.replayed,
                        o.duplicates,
                        o.lost_acks,
                        o.identical,
                        o.failures.len()
                    );
                    for f in &o.failures {
                        eprintln!("seed {seed} {kp}: FAILED: {f}");
                    }
                    if !o.failures.is_empty() || !o.identical || o.lost_acks > 0 {
                        failed = true;
                    }
                }
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic".into());
                    eprintln!("seed {seed} {kp}: PANIC ESCAPED: {msg}");
                    failed = true;
                }
            }
        }
    }
    if !failed {
        println!("crash-restart: every recovery byte-identical, no acked chunk lost");
    }
    failed
}

fn main() {
    let args = parse_args();
    let mut failed = false;
    if matches!(args.stage, Stage::All | Stage::Corruption) {
        failed |= run_corruption_stage(&args);
    }
    if matches!(args.stage, Stage::All | Stage::CrashRestart) {
        failed |= run_crash_restart_stage(&args);
    }
    if failed {
        std::process::exit(1);
    }
}
