//! Seeded fault injection over performance profiles.
//!
//! An unattended analysis service sees every kind of broken input real
//! profile collections produce: counters that went non-finite, threads
//! that never flushed their files, repositories truncated mid-write,
//! bit rot on archival storage. This crate is the corruption side of the
//! robustness story: a deterministic, composable engine that applies
//! those faults to in-memory [`Trial`]s and to their serialized text
//! forms, so tests, proptests and the `chaos` CLI can drive the whole
//! pipeline through them and assert graceful degradation instead of
//! panics.
//!
//! Everything is seeded: the same [`FaultPlan`] over the same input
//! always produces the same corruption, so a failing chaos seed is a
//! reproducible bug report.

#![warn(missing_docs)]

use perfdmf::{EventId, Measurement, Metric, MetricId, Profile, ThreadId, Trial};
use rand::{Rng, SeedableRng, StdRng};

/// One corruption kind. Parameters (which cell, which thread, skew
/// factors, flip positions) are drawn from the plan's seeded generator
/// at application time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Set one measurement field of a random cell to NaN.
    NanCell,
    /// Set one measurement field of a random cell to +/- infinity.
    InfCell,
    /// Negate one measurement field of a random cell.
    NegativeCell,
    /// Zero the call count of a random cell that carries time.
    DroppedCalls,
    /// Remove one thread from the profile (a rank that never wrote its
    /// file).
    DropThread,
    /// Remove one event from the profile.
    DropEvent,
    /// Remove one metric from the profile.
    DropMetric,
    /// Rename one metric to the name of another *without* updating the
    /// interned lookup index — the duplicate-key/stale-index shape a
    /// hand-edited or bit-rotted store exhibits.
    DuplicateMetricName,
    /// Scale one thread's `TIME` columns by a skew factor, as
    /// unsynchronised node clocks do.
    ClockSkew,
    /// Cut the serialized text at a random fraction of its length.
    TruncateText,
    /// Flip a handful of random bits in the serialized bytes.
    BitFlip,
    /// Duplicate a random line of the serialized text (duplicate keys
    /// in row-oriented formats).
    DuplicateLine,
    /// Replace a random line with binary garbage.
    GarbageLine,
    /// Overwrite a PDB1 file's magic bytes with garbage.
    BadMagic,
    /// Cut the PDB1 bytes partway through a random section.
    TruncatedSection,
    /// Flip one bit of a random PDB1 section's stored checksum.
    FlippedChecksum,
    /// Knock the column-pages section offset off 8-byte alignment.
    MisalignedPage,
}

impl Fault {
    /// Faults that act on an in-memory [`Trial`].
    pub const PROFILE_FAULTS: [Fault; 9] = [
        Fault::NanCell,
        Fault::InfCell,
        Fault::NegativeCell,
        Fault::DroppedCalls,
        Fault::DropThread,
        Fault::DropEvent,
        Fault::DropMetric,
        Fault::DuplicateMetricName,
        Fault::ClockSkew,
    ];

    /// Faults that act on serialized text.
    pub const TEXT_FAULTS: [Fault; 4] = [
        Fault::TruncateText,
        Fault::BitFlip,
        Fault::DuplicateLine,
        Fault::GarbageLine,
    ];

    /// Faults that act on PDB1 binary bytes — the crash/bit-rot shapes
    /// a binary container exhibits, matched to `perfdmf::pdb1`'s
    /// corruption helpers.
    pub const BINARY_FAULTS: [Fault; 4] = [
        Fault::BadMagic,
        Fault::TruncatedSection,
        Fault::FlippedChecksum,
        Fault::MisalignedPage,
    ];

    /// Whether this fault applies to an in-memory profile.
    pub fn is_profile_fault(self) -> bool {
        Fault::PROFILE_FAULTS.contains(&self)
    }

    /// Whether this fault applies to serialized text.
    pub fn is_text_fault(self) -> bool {
        Fault::TEXT_FAULTS.contains(&self)
    }

    /// Whether this fault applies to PDB1 binary bytes.
    pub fn is_binary_fault(self) -> bool {
        Fault::BINARY_FAULTS.contains(&self)
    }
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Record of one corruption actually performed — what the plan did, so
/// a test can assert the pipeline noticed it.
#[derive(Debug, Clone, PartialEq)]
pub struct AppliedFault {
    /// The fault kind.
    pub fault: Fault,
    /// Human-readable description of the concrete corruption
    /// (`"TIME[compute] thread 3 inclusive -> NaN"`).
    pub detail: String,
}

/// A seeded, composable corruption plan.
///
/// Apply it to a trial with [`FaultPlan::apply_to_trial`] or to a
/// serialized form with [`FaultPlan::apply_to_text`]; faults of the
/// wrong domain are skipped. Faults that cannot apply to the given
/// input (e.g. dropping a thread from a one-thread profile) are also
/// skipped, so matrix runs never fabricate empty inputs themselves —
/// parsers and workflows own that case separately.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Adds one fault to the plan (builder style).
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Adds several faults.
    pub fn with_all(mut self, faults: &[Fault]) -> Self {
        self.faults.extend_from_slice(faults);
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The faults in application order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Applies every profile-domain fault to the trial in order,
    /// returning a record of each corruption performed.
    pub fn apply_to_trial(&self, trial: &mut Trial) -> Vec<AppliedFault> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut applied = Vec::new();
        for &fault in &self.faults {
            if !fault.is_profile_fault() {
                continue;
            }
            if let Some(detail) = apply_profile_fault(fault, &mut trial.profile, &mut rng) {
                applied.push(AppliedFault { fault, detail });
            }
        }
        applied
    }

    /// Applies every text-domain fault to the serialized form in order.
    pub fn apply_to_text(&self, text: &str) -> (String, Vec<AppliedFault>) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = text.to_string();
        let mut applied = Vec::new();
        for &fault in &self.faults {
            if !fault.is_text_fault() {
                continue;
            }
            if let Some(detail) = apply_text_fault(fault, &mut out, &mut rng) {
                applied.push(AppliedFault { fault, detail });
            }
        }
        (out, applied)
    }

    /// Applies every binary-domain fault to PDB1 bytes in order.
    ///
    /// Faults of other domains are skipped, and the PDB1 helpers refuse
    /// non-PDB1 input themselves, so feeding JSON bytes through a
    /// binary plan returns them unchanged (except [`Fault::BadMagic`],
    /// which by definition needs no valid container to scribble on).
    pub fn apply_to_bytes(&self, bytes: &[u8]) -> (Vec<u8>, Vec<AppliedFault>) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = bytes.to_vec();
        let mut applied = Vec::new();
        for &fault in &self.faults {
            if !fault.is_binary_fault() {
                continue;
            }
            if let Some(detail) = apply_binary_fault(fault, &mut out, &mut rng) {
                applied.push(AppliedFault { fault, detail });
            }
        }
        (out, applied)
    }
}

// ---------------------------------------------------------------------------
// Lifecycle faults: crashes, stalls, and unreliable chunk delivery.
// ---------------------------------------------------------------------------

/// Where in a chunk's ingest lifecycle a simulated crash lands.
///
/// The streaming ingest path is `journal append -> apply -> ack`; each
/// kill point exercises one distinct durability obligation of that
/// ordering:
///
/// * [`KillPoint::BeforeAppend`] — the chunk never reached the journal
///   and was never acked; the client must redeliver it.
/// * [`KillPoint::MidAppend`] — the process died inside the append,
///   leaving a torn frame at the journal tail; replay must truncate it
///   and the (unacked) chunk must be redelivered.
/// * [`KillPoint::AfterAppend`] — the frame is durable but the apply
///   (and ack) never happened; replay must resurrect the chunk and a
///   client retry must dedup against it.
/// * [`KillPoint::AfterApply`] — the chunk was applied and acked;
///   recovery must preserve it (an acked chunk is never lost) and a
///   replayed delivery must dedup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillPoint {
    /// Crash before the journal append of the victim chunk.
    BeforeAppend,
    /// Crash partway through writing the victim chunk's journal frame.
    MidAppend,
    /// Crash after the append is durable, before apply and ack.
    AfterAppend,
    /// Crash after the chunk was applied and acknowledged.
    AfterApply,
}

impl KillPoint {
    /// Every kill point, in lifecycle order — the CI chaos matrix.
    pub const MATRIX: [KillPoint; 4] = [
        KillPoint::BeforeAppend,
        KillPoint::MidAppend,
        KillPoint::AfterAppend,
        KillPoint::AfterApply,
    ];

    /// Parses the CLI spelling (`before-append`, `mid-append`,
    /// `after-append`, `after-apply`).
    pub fn parse(s: &str) -> Option<KillPoint> {
        match s {
            "before-append" => Some(KillPoint::BeforeAppend),
            "mid-append" => Some(KillPoint::MidAppend),
            "after-append" => Some(KillPoint::AfterAppend),
            "after-apply" => Some(KillPoint::AfterApply),
            _ => None,
        }
    }
}

impl std::fmt::Display for KillPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            KillPoint::BeforeAppend => "before-append",
            KillPoint::MidAppend => "mid-append",
            KillPoint::AfterAppend => "after-append",
            KillPoint::AfterApply => "after-apply",
        })
    }
}

/// One step of an unreliable delivery schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryOp {
    /// First delivery of a chunk. A `Deliver` whose position in the
    /// plan is later than the chunk's natural order models a *dropped*
    /// earlier delivery that the client retried.
    Deliver {
        /// Index of the chunk to send.
        chunk: usize,
    },
    /// A duplicated delivery of an already-sent chunk (network replay
    /// or an over-eager client retry); the ingest path must dedup it
    /// by sequence number.
    Redeliver {
        /// Index of the chunk to send again.
        chunk: usize,
    },
    /// A worker/client stall: the sender goes quiet for a few
    /// milliseconds mid-stream, exercising timing gaps between
    /// deliveries.
    Stall {
        /// How long to stall.
        millis: u64,
    },
}

/// A seeded, unreliable delivery schedule over `n` chunks: reordered,
/// with duplicated deliveries, dropped-then-retried chunks, and stalls.
///
/// Invariant: every chunk index in `0..n` appears **exactly once** as
/// [`DeliveryOp::Deliver`] — nothing is silently lost, because a real
/// client retries dropped sends. Duplicates and stalls are extra.
#[derive(Debug, Clone)]
pub struct DeliveryPlan {
    seed: u64,
    ops: Vec<DeliveryOp>,
    duplicated: usize,
    deferred: usize,
    stalls: usize,
}

impl DeliveryPlan {
    /// Builds the schedule for `chunks` chunks. `bootstrap`, when
    /// given, is delivered first (streaming trials bootstrap from the
    /// chunk that carries the root event); the rest are shuffled.
    pub fn generate(seed: u64, chunks: usize, bootstrap: Option<usize>) -> DeliveryPlan {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x11fe_c7c1e);
        let mut order: Vec<usize> = (0..chunks).filter(|&i| Some(i) != bootstrap).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.random_range(0..i + 1));
        }

        // A slice of the stream gets "dropped" in flight and retried
        // after everything else — the reordering an unreliable network
        // plus client retry produces.
        let mut deferred = Vec::new();
        let mut first_pass = Vec::new();
        for &c in &order {
            if order.len() > 1 && rng.random::<f64>() < 0.2 {
                deferred.push(c);
            } else {
                first_pass.push(c);
            }
        }

        let mut plan = DeliveryPlan {
            seed,
            ops: Vec::new(),
            duplicated: 0,
            deferred: deferred.len(),
            stalls: 0,
        };
        let push_deliver = |plan: &mut DeliveryPlan, rng: &mut StdRng, chunk: usize| {
            plan.ops.push(DeliveryOp::Deliver { chunk });
            if rng.random::<f64>() < 0.25 {
                plan.ops.push(DeliveryOp::Redeliver { chunk });
                plan.duplicated += 1;
            }
            if rng.random::<f64>() < 0.15 {
                plan.ops.push(DeliveryOp::Stall {
                    millis: 1 + rng.random_range(0..3u64),
                });
                plan.stalls += 1;
            }
        };
        if let Some(b) = bootstrap {
            push_deliver(&mut plan, &mut rng, b);
        }
        for c in first_pass {
            push_deliver(&mut plan, &mut rng, c);
        }
        for c in deferred {
            push_deliver(&mut plan, &mut rng, c);
        }
        plan
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The delivery steps in order.
    pub fn ops(&self) -> &[DeliveryOp] {
        &self.ops
    }

    /// How many duplicated deliveries the plan injects.
    pub fn duplicated(&self) -> usize {
        self.duplicated
    }

    /// How many chunks were dropped in flight and retried at the tail.
    pub fn deferred(&self) -> usize {
        self.deferred
    }

    /// How many stalls the plan injects.
    pub fn stalls(&self) -> usize {
        self.stalls
    }

    /// The positions (op indices) of first deliveries, in op order —
    /// the schedule a crash harness counts acks against.
    pub fn deliveries(&self) -> Vec<usize> {
        self.ops
            .iter()
            .enumerate()
            .filter_map(|(i, op)| matches!(op, DeliveryOp::Deliver { .. }).then_some(i))
            .collect()
    }
}

/// Picks a random `(event, metric, thread)` cell, or `None` on an empty
/// profile.
fn pick_cell(p: &Profile, rng: &mut StdRng) -> Option<(EventId, MetricId, usize)> {
    if p.event_count() == 0 || p.metric_count() == 0 || p.thread_count() == 0 {
        return None;
    }
    Some((
        EventId(rng.random_range(0..p.event_count() as u32)),
        MetricId(rng.random_range(0..p.metric_count() as u32)),
        rng.random_range(0..p.thread_count()),
    ))
}

/// Field names of a [`Measurement`], indexable for random choice.
const FIELDS: [&str; 4] = ["inclusive", "exclusive", "calls", "subcalls"];

fn field_mut(m: &mut Measurement, i: usize) -> &mut f64 {
    match i {
        0 => &mut m.inclusive,
        1 => &mut m.exclusive,
        2 => &mut m.calls,
        _ => &mut m.subcalls,
    }
}

fn cell_detail(p: &Profile, e: EventId, m: MetricId, t: usize, field: usize, to: &str) -> String {
    format!(
        "{}[{}] thread {} {} -> {}",
        p.metric(m).name,
        p.event(e).name,
        t,
        FIELDS[field],
        to
    )
}

fn apply_profile_fault(fault: Fault, p: &mut Profile, rng: &mut StdRng) -> Option<String> {
    match fault {
        Fault::NanCell | Fault::InfCell | Fault::NegativeCell => {
            let (e, m, t) = pick_cell(p, rng)?;
            let field = rng.random_range(0..4usize);
            let value = match fault {
                Fault::NanCell => f64::NAN,
                Fault::InfCell => {
                    if rng.random::<bool>() {
                        f64::INFINITY
                    } else {
                        f64::NEG_INFINITY
                    }
                }
                _ => -(rng.random::<f64>() * 1e6 + 1.0),
            };
            let detail = cell_detail(p, e, m, t, field, &value.to_string());
            *field_mut(&mut p.column_mut(e, m)[t], field) = value;
            Some(detail)
        }
        Fault::DroppedCalls => {
            let time = p.metric_id("TIME")?;
            if p.event_count() == 0 || p.thread_count() == 0 {
                return None;
            }
            let e = EventId(rng.random_range(0..p.event_count() as u32));
            let t = rng.random_range(0..p.thread_count());
            let detail = cell_detail(p, e, time, t, 2, "0");
            p.column_mut(e, time)[t].calls = 0.0;
            Some(detail)
        }
        Fault::DropThread => {
            if p.thread_count() < 2 {
                return None;
            }
            let drop = rng.random_range(0..p.thread_count());
            let detail = format!("dropped thread {:?}", p.threads()[drop]);
            *p = rebuild_without(p, Axis::Thread(drop));
            Some(detail)
        }
        Fault::DropEvent => {
            if p.event_count() < 2 {
                return None;
            }
            let drop = rng.random_range(0..p.event_count());
            let detail = format!("dropped event {:?}", p.events()[drop].name);
            *p = rebuild_without(p, Axis::Event(drop));
            Some(detail)
        }
        Fault::DropMetric => {
            if p.metric_count() < 2 {
                return None;
            }
            let drop = rng.random_range(0..p.metric_count());
            let detail = format!("dropped metric {:?}", p.metrics()[drop].name);
            *p = rebuild_without(p, Axis::Metric(drop));
            Some(detail)
        }
        Fault::DuplicateMetricName => {
            if p.metric_count() < 2 {
                return None;
            }
            let victim = rng.random_range(0..p.metric_count() as u32);
            let donor = (victim + 1 + rng.random_range(0..p.metric_count() as u32 - 1))
                % p.metric_count() as u32;
            let name = p.metric(MetricId(donor)).name.clone();
            let detail = format!(
                "metric {:?} renamed to duplicate {:?} (index left stale)",
                p.metric(MetricId(victim)).name,
                name
            );
            p.corrupt_metric_name(MetricId(victim), name);
            Some(detail)
        }
        Fault::ClockSkew => {
            let time = p.metric_id("TIME")?;
            if p.thread_count() == 0 {
                return None;
            }
            let t = rng.random_range(0..p.thread_count());
            let factor = 1.0 + rng.random::<f64>() * 4.0;
            for ei in 0..p.event_count() {
                let cell = &mut p.column_mut(EventId(ei as u32), time)[t];
                cell.inclusive *= factor;
                cell.exclusive *= factor;
            }
            Some(format!("thread {t} TIME skewed by {factor:.3}"))
        }
        _ => None,
    }
}

enum Axis {
    Thread(usize),
    Event(usize),
    Metric(usize),
}

/// Rebuilds a profile with one element of one axis removed, copying all
/// surviving cells.
fn rebuild_without(src: &Profile, drop: Axis) -> Profile {
    let keep_t: Vec<usize> = (0..src.thread_count())
        .filter(|&t| !matches!(drop, Axis::Thread(d) if d == t))
        .collect();
    let keep_e: Vec<usize> = (0..src.event_count())
        .filter(|&e| !matches!(drop, Axis::Event(d) if d == e))
        .collect();
    let keep_m: Vec<usize> = (0..src.metric_count())
        .filter(|&m| !matches!(drop, Axis::Metric(d) if d == m))
        .collect();

    let threads: Vec<ThreadId> = keep_t.iter().map(|&t| src.threads()[t]).collect();
    let mut out = Profile::with_capacity(threads, keep_e.len(), keep_m.len());
    // A prior fault may have introduced duplicate names; keep the first
    // occurrence of a name and drop shadowed copies, remembering which
    // source columns actually made it in.
    let mut added_m: Vec<usize> = Vec::new();
    for &m in &keep_m {
        let metric = src.metrics()[m].clone();
        if out
            .add_metric(Metric {
                name: metric.name,
                derived: metric.derived,
            })
            .is_ok()
        {
            added_m.push(m);
        }
    }
    let mut added_e: Vec<usize> = Vec::new();
    for &e in &keep_e {
        if out.add_event(src.events()[e].clone()).is_ok() {
            added_e.push(e);
        }
    }
    for (oe, &e) in added_e.iter().enumerate() {
        for (om, &m) in added_m.iter().enumerate() {
            let src_col = src.column(EventId(e as u32), MetricId(m as u32));
            let dst = out.column_mut(EventId(oe as u32), MetricId(om as u32));
            for (oi, &t) in keep_t.iter().enumerate() {
                dst[oi] = src_col[t];
            }
        }
    }
    out
}

fn apply_binary_fault(fault: Fault, bytes: &mut Vec<u8>, rng: &mut StdRng) -> Option<String> {
    use perfdmf::pdb1;
    match fault {
        Fault::BadMagic => {
            // Two fixed garbage bytes keep the result from ever being a
            // valid magic; two random ones vary the corruption by seed.
            let garbage = [
                0xDE,
                0xAD,
                rng.random_range(0..256u32) as u8,
                rng.random_range(0..256u32) as u8,
            ];
            pdb1::corrupt_magic(bytes, garbage)
        }
        Fault::TruncatedSection => {
            let section = rng.random_range(0..3usize);
            let frac = rng.random::<f64>();
            pdb1::truncate_in_section(bytes, section, frac)
        }
        Fault::FlippedChecksum => {
            let section = rng.random_range(0..3usize);
            let bit = rng.random_range(0..32u32);
            pdb1::flip_section_checksum(bytes, section, bit)
        }
        Fault::MisalignedPage => pdb1::misalign_pages_offset(bytes, 1 + rng.random_range(0..7u64)),
        _ => None,
    }
}

fn apply_text_fault(fault: Fault, text: &mut String, rng: &mut StdRng) -> Option<String> {
    match fault {
        Fault::TruncateText => {
            if text.is_empty() {
                return None;
            }
            let mut cut = rng.random_range(0..text.len());
            while !text.is_char_boundary(cut) {
                cut -= 1;
            }
            text.truncate(cut);
            Some(format!("truncated to {cut} bytes"))
        }
        Fault::BitFlip => {
            if text.is_empty() {
                return None;
            }
            let mut bytes = text.clone().into_bytes();
            let flips = rng.random_range(1..4usize);
            let mut positions = Vec::with_capacity(flips);
            for _ in 0..flips {
                let at = rng.random_range(0..bytes.len());
                let bit = rng.random_range(0..8u32);
                bytes[at] ^= 1 << bit;
                positions.push(format!("byte {at} bit {bit}"));
            }
            *text = String::from_utf8_lossy(&bytes).into_owned();
            Some(format!("flipped {}", positions.join(", ")))
        }
        Fault::DuplicateLine => {
            let lines: Vec<&str> = text.lines().collect();
            if lines.is_empty() {
                return None;
            }
            let at = rng.random_range(0..lines.len());
            let dup = lines[at].to_string();
            let mut out: Vec<String> = lines.iter().map(|s| s.to_string()).collect();
            out.insert(at, dup);
            *text = out.join("\n");
            text.push('\n');
            Some(format!("duplicated line {}", at + 1))
        }
        Fault::GarbageLine => {
            let lines: Vec<&str> = text.lines().collect();
            if lines.is_empty() {
                return None;
            }
            let at = rng.random_range(0..lines.len());
            let mut out: Vec<String> = lines.iter().map(|s| s.to_string()).collect();
            let garbage: String = (0..rng.random_range(4..24usize))
                .map(|_| (rng.random_range(0x21..0x7fu32)) as u8 as char)
                .collect();
            out[at] = garbage;
            *text = out.join("\n");
            text.push('\n');
            Some(format!("replaced line {} with garbage", at + 1))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfdmf::TrialBuilder;

    fn trial() -> Trial {
        let mut b = TrialBuilder::with_flat_threads("t", 4);
        let time = b.metric("TIME");
        let cyc = b.metric("CPU_CYCLES");
        for name in ["main", "main => compute", "main => exchange"] {
            let e = b.event(name);
            for t in 0..4 {
                b.set(e, time, t, Measurement::leaf(10.0 + t as f64));
                b.set(e, cyc, t, Measurement::leaf(1e6));
            }
        }
        b.build()
    }

    #[test]
    fn plans_are_deterministic() {
        let plan = FaultPlan::new(7).with_all(&Fault::PROFILE_FAULTS);
        let mut a = trial();
        let mut b = trial();
        let ra = plan.apply_to_trial(&mut a);
        let rb = plan.apply_to_trial(&mut b);
        assert_eq!(ra, rb);
        assert_eq!(a.profile, b.profile);
        assert!(!ra.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        // Same fault, different seed: hits a different cell/field (the
        // fixed seeds here are chosen to differ and stay stable).
        let da = FaultPlan::new(1)
            .with(Fault::NanCell)
            .apply_to_trial(&mut trial());
        let db = FaultPlan::new(2)
            .with(Fault::NanCell)
            .apply_to_trial(&mut trial());
        assert_ne!(da[0].detail, db[0].detail);
    }

    #[test]
    fn nan_fault_lands_in_profile() {
        let mut t = trial();
        let applied = FaultPlan::new(3)
            .with(Fault::NanCell)
            .apply_to_trial(&mut t);
        assert_eq!(applied.len(), 1);
        let any_nan = t.profile.arena().iter().any(|c| {
            c.inclusive.is_nan() || c.exclusive.is_nan() || c.calls.is_nan() || c.subcalls.is_nan()
        });
        assert!(any_nan);
    }

    #[test]
    fn drop_faults_shrink_axes() {
        let mut t = trial();
        FaultPlan::new(5)
            .with(Fault::DropThread)
            .with(Fault::DropEvent)
            .with(Fault::DropMetric)
            .apply_to_trial(&mut t);
        assert_eq!(t.profile.thread_count(), 3);
        assert_eq!(t.profile.event_count(), 2);
        assert_eq!(t.profile.metric_count(), 1);
        // The arena stays consistent with the shrunken axes.
        assert_eq!(t.profile.arena().len(), 3 * 2);
    }

    #[test]
    fn duplicate_metric_creates_stale_index() {
        let mut t = trial();
        let applied = FaultPlan::new(11)
            .with(Fault::DuplicateMetricName)
            .apply_to_trial(&mut t);
        assert_eq!(applied.len(), 1);
        let names: Vec<&str> = t
            .profile
            .metrics()
            .iter()
            .map(|m| m.name.as_str())
            .collect();
        assert_eq!(names, vec!["TIME", "TIME"]);
        // Both original names still resolve through the stale index.
        assert!(t.profile.metric_id("TIME").is_some());
        assert!(t.profile.metric_id("CPU_CYCLES").is_some());
    }

    #[test]
    fn text_faults_change_text_deterministically() {
        let text = "header\nrow one\nrow two\nrow three\n";
        let plan = FaultPlan::new(9).with_all(&Fault::TEXT_FAULTS);
        let (a, ra) = plan.apply_to_text(text);
        let (b, rb) = plan.apply_to_text(text);
        assert_eq!(a, b);
        assert_eq!(ra, rb);
        assert_ne!(a, text);
        assert_eq!(ra.len(), 4);
    }

    #[test]
    fn profile_faults_skip_text_and_vice_versa() {
        let mut t = trial();
        let (txt, applied_text) = FaultPlan::new(1)
            .with(Fault::NanCell)
            .apply_to_text("abc\n");
        assert_eq!(txt, "abc\n");
        assert!(applied_text.is_empty());
        let applied = FaultPlan::new(1)
            .with(Fault::TruncateText)
            .apply_to_trial(&mut t);
        assert!(applied.is_empty());
    }

    #[test]
    fn binary_faults_corrupt_pdb1_deterministically() {
        let mut repo = perfdmf::Repository::new();
        repo.add_trial("app", "exp", trial()).unwrap();
        let bytes = repo.to_pdb1();

        let plan = FaultPlan::new(17).with_all(&Fault::BINARY_FAULTS);
        let (a, ra) = plan.apply_to_bytes(&bytes);
        let (b, rb) = plan.apply_to_bytes(&bytes);
        assert_eq!(a, b);
        assert_eq!(ra, rb);
        assert_ne!(a, bytes);
        assert!(!ra.is_empty());
        // Every applied corruption defeats the strict reader.
        assert!(perfdmf::Repository::from_pdb1(&a).is_err());
    }

    #[test]
    fn binary_faults_skip_other_domains_and_non_pdb1_input() {
        // A binary plan leaves text and trials alone.
        let plan = FaultPlan::new(1).with_all(&Fault::BINARY_FAULTS);
        let (txt, applied) = plan.apply_to_text("abc\n");
        assert_eq!(txt, "abc\n");
        assert!(applied.is_empty());
        let mut t = trial();
        assert!(plan.apply_to_trial(&mut t).is_empty());

        // Structural binary faults refuse JSON bytes; only BadMagic —
        // a blind scribble over the first four bytes — still lands.
        let json = b"{\"applications\": {}}".to_vec();
        let (out, applied) = FaultPlan::new(1)
            .with(Fault::TruncatedSection)
            .with(Fault::FlippedChecksum)
            .with(Fault::MisalignedPage)
            .apply_to_bytes(&json);
        assert_eq!(out, json);
        assert!(applied.is_empty());

        // And text plans skip binary bytes-domain faults.
        let (txt2, applied2) = FaultPlan::new(2)
            .with(Fault::BadMagic)
            .apply_to_text("abcdef\n");
        assert_eq!(txt2, "abcdef\n");
        assert!(applied2.is_empty());
    }

    #[test]
    fn every_binary_fault_kind_applies_to_a_real_file() {
        let mut repo = perfdmf::Repository::new();
        repo.add_trial("app", "exp", trial()).unwrap();
        let bytes = repo.to_pdb1();
        for fault in Fault::BINARY_FAULTS {
            let (out, applied) = FaultPlan::new(23).with(fault).apply_to_bytes(&bytes);
            assert_eq!(applied.len(), 1, "{fault} did not apply");
            assert_eq!(applied[0].fault, fault);
            assert_ne!(out, bytes, "{fault} left the bytes unchanged");
        }
    }

    #[test]
    fn delivery_plans_are_deterministic_and_complete() {
        for seed in 0..32u64 {
            let a = DeliveryPlan::generate(seed, 9, Some(4));
            let b = DeliveryPlan::generate(seed, 9, Some(4));
            assert_eq!(a.ops(), b.ops());
            // Every chunk is first-delivered exactly once; nothing is
            // silently lost no matter how hostile the plan.
            let mut seen = vec![0usize; 9];
            for op in a.ops() {
                if let DeliveryOp::Deliver { chunk } = op {
                    seen[*chunk] += 1;
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "seed {seed}: {seen:?}");
            // The bootstrap chunk leads the schedule.
            assert_eq!(a.ops()[0], DeliveryOp::Deliver { chunk: 4 });
            // Duplicated deliveries only follow their first delivery.
            let mut delivered = std::collections::HashSet::new();
            for op in a.ops() {
                match op {
                    DeliveryOp::Deliver { chunk } => {
                        delivered.insert(*chunk);
                    }
                    DeliveryOp::Redeliver { chunk } => {
                        assert!(delivered.contains(chunk), "seed {seed}: early redeliver")
                    }
                    DeliveryOp::Stall { .. } => {}
                }
            }
            assert_eq!(a.deliveries().len(), 9);
        }
    }

    #[test]
    fn delivery_plans_vary_by_seed_and_inject_lifecycle_faults() {
        let plans: Vec<DeliveryPlan> = (0..16)
            .map(|s| DeliveryPlan::generate(s, 12, None))
            .collect();
        assert!(
            plans.windows(2).any(|w| w[0].ops() != w[1].ops()),
            "16 seeds produced identical schedules"
        );
        // Across a modest seed range every lifecycle fault kind shows up.
        assert!(plans.iter().any(|p| p.duplicated() > 0));
        assert!(plans.iter().any(|p| p.deferred() > 0));
        assert!(plans.iter().any(|p| p.stalls() > 0));
    }

    #[test]
    fn kill_point_parse_round_trips() {
        for kp in KillPoint::MATRIX {
            assert_eq!(KillPoint::parse(&kp.to_string()), Some(kp));
        }
        assert_eq!(KillPoint::parse("nope"), None);
    }

    #[test]
    fn inapplicable_faults_are_skipped() {
        let mut b = TrialBuilder::with_flat_threads("tiny", 1);
        let time = b.metric("TIME");
        let e = b.event("main");
        b.set(e, time, 0, Measurement::leaf(1.0));
        let mut t = b.build();
        let applied = FaultPlan::new(1)
            .with(Fault::DropThread)
            .with(Fault::DropEvent)
            .with(Fault::DropMetric)
            .with(Fault::DuplicateMetricName)
            .apply_to_trial(&mut t);
        assert!(applied.is_empty());
        assert_eq!(t.profile.thread_count(), 1);
    }
}
