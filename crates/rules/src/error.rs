//! Error type for the rule engine and rule language.

use crate::engine::RunReport;
use std::fmt;

/// Errors produced by rule parsing and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum RuleError {
    /// The textual rule source failed to parse.
    Parse {
        /// 1-based line where the problem was found.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// A rule's RHS referenced a variable that its LHS never bound.
    UnboundVariable {
        /// Rule name.
        rule: String,
        /// Variable name.
        variable: String,
    },
    /// The match–act cycle exceeded its iteration budget, indicating a
    /// rule set that asserts facts in an unbounded loop.
    CycleLimit {
        /// The configured limit.
        limit: usize,
        /// Everything the run produced before hitting the limit: printed
        /// lines, diagnoses and firing records are carried here rather
        /// than discarded, so callers can still inspect or render the
        /// partial analysis.
        report: Box<RunReport>,
    },
    /// A duplicate rule name was added to an engine.
    DuplicateRule(String),
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleError::Parse { line, message } => {
                write!(f, "rule parse error at line {line}: {message}")
            }
            RuleError::UnboundVariable { rule, variable } => {
                write!(f, "rule {rule:?} uses unbound variable ${variable}")
            }
            RuleError::CycleLimit { limit, report } => {
                write!(
                    f,
                    "inference did not settle within {limit} cycles ({} firings recorded)",
                    report.firings.len()
                )
            }
            RuleError::DuplicateRule(name) => write!(f, "duplicate rule name {name:?}"),
        }
    }
}

impl std::error::Error for RuleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = RuleError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));
        assert!(RuleError::CycleLimit {
            limit: 10,
            report: Box::default()
        }
        .to_string()
        .contains("10"));
        assert!(RuleError::DuplicateRule("r".into())
            .to_string()
            .contains("r"));
        let u = RuleError::UnboundVariable {
            rule: "r".into(),
            variable: "v".into(),
        };
        assert!(u.to_string().contains("$v"));
    }
}
