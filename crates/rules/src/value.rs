//! Dynamically-typed field values.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A fact field value: string, number or boolean.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// String value.
    Str(String),
    /// Numeric value (all numbers are `f64`, as in the source data).
    Num(f64),
    /// Boolean value.
    Bool(bool),
}

impl Value {
    /// String view, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Boolean view, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Total ordering comparison within a type; `None` across types.
    pub fn partial_cmp_same_type(&self, other: &Value) -> Option<std::cmp::Ordering> {
        match (self, other) {
            (Value::Num(a), Value::Num(b)) => a.partial_cmp(b),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s}"),
            Value::Num(n) => {
                // Print integers without a trailing ".0" for readability
                // in rule output.
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Num(n)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Num(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Num(n as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_views() {
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from(2.5).as_num(), Some(2.5));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from("x").as_num(), None);
        assert_eq!(Value::from(1.0).as_bool(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::from(16.0).to_string(), "16");
        assert_eq!(Value::from(0.25).to_string(), "0.25");
        assert_eq!(Value::from("abc").to_string(), "abc");
        assert_eq!(Value::from(false).to_string(), "false");
    }

    #[test]
    fn same_type_ordering() {
        use std::cmp::Ordering::*;
        assert_eq!(
            Value::from(1.0).partial_cmp_same_type(&Value::from(2.0)),
            Some(Less)
        );
        assert_eq!(
            Value::from("b").partial_cmp_same_type(&Value::from("a")),
            Some(Greater)
        );
        assert_eq!(
            Value::from(true).partial_cmp_same_type(&Value::from(true)),
            Some(Equal)
        );
        assert_eq!(
            Value::from(1.0).partial_cmp_same_type(&Value::from("1")),
            None
        );
    }
}
