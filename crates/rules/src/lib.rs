//! A forward-chaining production-rule engine.
//!
//! This crate plays the role JBoss Rules (Drools) plays in the paper: an
//! inference engine whose rules "interpret the performance results" and
//! from which "an expert system for explaining parallel performance data
//! can be constructed".
//!
//! The model is a classic production system:
//!
//! * **facts** ([`Fact`]) are typed bags of named, dynamically-typed
//!   fields — the analysis layer asserts facts like `MeanEventFact`
//!   with fields `metric`, `severity`, `eventName`, …;
//! * **rules** ([`Rule`]) pair a `when` part (a conjunction of
//!   [`Pattern`]s with field constraints and variable bindings, joined
//!   across patterns by binding consistency) with a `then` part (an
//!   [`Action`]: print, assert new facts, retract matched facts, or run
//!   native Rust);
//! * the **engine** ([`Engine`]) runs the match–resolve–act cycle with
//!   salience-ordered conflict resolution and refraction (an activation
//!   fires at most once), and records a full firing trace for
//!   explanation.
//!
//! Rules can be built programmatically ([`RuleBuilder`]) or parsed from a
//! Drools-flavoured textual language ([`drl`]), so performance knowledge
//! can be captured in files that ship alongside an application — the
//! paper's `openuh/OpenUHRules.drl`.
//!
//! ```
//! use rules::{Engine, Fact, drl};
//!
//! let source = r#"
//! rule "High stall rate"
//! when
//!     f : MeanEventFact( metric == "stall_per_cycle", severity > 0.10,
//!                        e : eventName, v : severity )
//! then
//!     diagnose("stalls", "Event " + e + " has a high stall rate");
//! end
//! "#;
//! let mut engine = Engine::new();
//! engine.add_rules(drl::parse(source).unwrap());
//! engine.assert_fact(
//!     Fact::new("MeanEventFact")
//!         .with("metric", "stall_per_cycle")
//!         .with("severity", 0.25)
//!         .with("eventName", "matxvec"),
//! );
//! let report = engine.run().unwrap();
//! assert_eq!(report.diagnoses.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod condition;
pub mod drl;
pub mod engine;
pub mod error;
pub mod fact;
pub mod reference;
pub mod rule;
pub mod value;

pub use condition::{Comparator, Constraint, Operand, Pattern};
pub use engine::{Diagnosis, Engine, FiringRecord, RunReport};
pub use error::RuleError;
pub use fact::{Fact, FactHandle};
pub use rule::{Action, RhsContext, RhsExpr, RhsStatement, Rule, RuleBuilder};
pub use value::Value;

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, RuleError>;
