//! Parser for the textual rule language.
//!
//! The syntax is a Drools-flavoured subset sufficient for the paper's
//! knowledge bases (compare Figure 2 of the paper):
//!
//! ```text
//! rule "Stalls per Cycle"
//! salience 10
//! when
//!     f : MeanEventFact( metric == "(BACK_END_BUBBLE_ALL / CPU_CYCLES)",
//!                        severity > 0.10,
//!                        e : eventName, a : mainValue, v : eventValue )
//! then
//!     print("Event " + e + " has a higher than average stall / cycle rate");
//!     print("\tAverage stall / cycle: " + a);
//!     diagnose("stalls", "Event " + e + " stalls often", v);
//!     assert Followup( eventName : e );
//!     retract(f);
//! end
//! ```
//!
//! * A constraint is `field <op> literal` or `field <op> variable`.
//! * A lone `var : field` inside the parentheses binds a variable.
//! * `f : Type( ... )` binds the fact itself, enabling `retract(f)`.
//! * RHS statements: `print(expr)`, `assert Type(field : expr, ...)`,
//!   `retract(var)` and `diagnose(category, message [, severity [, recommendation]])`.
//! * Expressions are literals and variables joined with `+`.
//! * `//` line comments are allowed anywhere.

use crate::condition::{Comparator, Constraint, Operand, Pattern};
use crate::rule::{Action, RhsExpr, RhsStatement, Rule};
use crate::value::Value;
use crate::{Result, RuleError};

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Num(f64),
    Sym(String),
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn error(&self, message: impl Into<String>) -> RuleError {
        RuleError::Parse {
            line: self.line,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            if c == b'\n' {
                self.line += 1;
                self.pos += 1;
            } else if c.is_ascii_whitespace() {
                self.pos += 1;
            } else if c == b'/' && self.src.get(self.pos + 1) == Some(&b'/') {
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    /// Produces the next token, or `None` at end of input.
    fn next(&mut self) -> Result<Option<(Tok, usize)>> {
        self.skip_ws();
        if self.pos >= self.src.len() {
            return Ok(None);
        }
        let line = self.line;
        let c = self.src[self.pos];
        if c == b'"' {
            self.pos += 1;
            let mut s = String::new();
            loop {
                if self.pos >= self.src.len() {
                    return Err(self.error("unterminated string"));
                }
                let c = self.src[self.pos];
                self.pos += 1;
                match c {
                    b'"' => break,
                    b'\\' => {
                        let esc = *self
                            .src
                            .get(self.pos)
                            .ok_or_else(|| self.error("dangling escape"))?;
                        self.pos += 1;
                        s.push(match esc {
                            b'n' => '\n',
                            b't' => '\t',
                            b'"' => '"',
                            b'\\' => '\\',
                            other => {
                                return Err(
                                    self.error(format!("unknown escape \\{}", other as char))
                                )
                            }
                        });
                    }
                    b'\n' => return Err(self.error("newline in string")),
                    other => s.push(other as char),
                }
            }
            return Ok(Some((Tok::Str(s), line)));
        }
        if c.is_ascii_digit()
            || (c == b'-' && self.src.get(self.pos + 1).is_some_and(u8::is_ascii_digit))
        {
            let start = self.pos;
            self.pos += 1;
            while self.pos < self.src.len()
                && (self.src[self.pos].is_ascii_digit()
                    || self.src[self.pos] == b'.'
                    || self.src[self.pos] == b'e'
                    || self.src[self.pos] == b'E'
                    || (matches!(self.src[self.pos], b'+' | b'-')
                        && matches!(self.src[self.pos - 1], b'e' | b'E')))
            {
                self.pos += 1;
            }
            let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
            let n: f64 = text
                .parse()
                .map_err(|_| self.error(format!("bad number {text:?}")))?;
            return Ok(Some((Tok::Num(n), line)));
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = self.pos;
            while self.pos < self.src.len()
                && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
            {
                self.pos += 1;
            }
            let text = std::str::from_utf8(&self.src[start..self.pos])
                .expect("ascii")
                .to_string();
            return Ok(Some((Tok::Ident(text), line)));
        }
        // Symbols, longest first.
        for sym in [
            "==", "!=", "<=", ">=", "(", ")", ",", ":", ";", "+", "<", ">",
        ] {
            if self.src[self.pos..].starts_with(sym.as_bytes()) {
                self.pos += sym.len();
                return Ok(Some((Tok::Sym(sym.to_string()), line)));
            }
        }
        Err(self.error(format!("unexpected character {:?}", c as char)))
    }
}

struct Parser {
    tokens: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn error_at(&self, message: impl Into<String>) -> RuleError {
        let line = self
            .tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|(_, l)| *l)
            .unwrap_or(0);
        RuleError::Parse {
            line,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn next(&mut self) -> Result<Tok> {
        let t = self
            .tokens
            .get(self.pos)
            .map(|(t, _)| t.clone())
            .ok_or_else(|| self.error_at("unexpected end of input"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect_sym(&mut self, sym: &str) -> Result<()> {
        match self.next()? {
            Tok::Sym(s) if s == sym => Ok(()),
            other => Err(self.error_at(format!("expected {sym:?}, found {other:?}"))),
        }
    }

    fn expect_ident(&mut self, word: &str) -> Result<()> {
        match self.next()? {
            Tok::Ident(s) if s == word => Ok(()),
            other => Err(self.error_at(format!("expected {word:?}, found {other:?}"))),
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => Err(self.error_at(format!("expected identifier, found {other:?}"))),
        }
    }

    fn at_sym(&self, sym: &str) -> bool {
        matches!(self.peek(), Some(Tok::Sym(s)) if s == sym)
    }

    fn at_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s == word)
    }

    /// `rule "Name" [salience N] when <patterns> then <stmts> end`
    fn rule(&mut self) -> Result<Rule> {
        self.expect_ident("rule")?;
        let name = match self.next()? {
            Tok::Str(s) => s,
            other => return Err(self.error_at(format!("expected rule name, found {other:?}"))),
        };
        let mut salience = 0i32;
        if self.at_ident("salience") {
            self.next()?;
            match self.next()? {
                Tok::Num(n) => salience = n as i32,
                other => {
                    return Err(self.error_at(format!("expected salience number, found {other:?}")))
                }
            }
        }
        self.expect_ident("when")?;
        let mut patterns = Vec::new();
        while !self.at_ident("then") {
            patterns.push(self.pattern()?);
        }
        self.expect_ident("then")?;
        let mut statements = Vec::new();
        while !self.at_ident("end") {
            statements.push(self.statement()?);
        }
        self.expect_ident("end")?;
        if patterns.is_empty() {
            return Err(self.error_at(format!("rule {name:?} has no patterns")));
        }
        Ok(Rule {
            name,
            salience,
            patterns,
            action: Action::Interpreted(statements),
        })
    }

    /// `[not] [binding :] Type ( item, item, ... )`
    fn pattern(&mut self) -> Result<Pattern> {
        let negated = self.at_ident("not");
        if negated {
            self.next()?;
        }
        let first = self.ident()?;
        let (fact_binding, fact_type) = if self.at_sym(":") {
            self.next()?;
            (Some(first), self.ident()?)
        } else {
            (None, first)
        };
        let mut pattern = Pattern::new(fact_type);
        pattern.fact_binding = fact_binding;
        self.expect_sym("(")?;
        if !self.at_sym(")") {
            loop {
                self.pattern_item(&mut pattern)?;
                if self.at_sym(",") {
                    self.next()?;
                } else {
                    break;
                }
            }
        }
        self.expect_sym(")")?;
        pattern.negated = negated;
        if negated && pattern.fact_binding.is_some() {
            return Err(self.error_at("a negated pattern cannot bind the fact"));
        }
        Ok(pattern)
    }

    /// Either `var : field` (binding) or `field <op> operand` (constraint).
    fn pattern_item(&mut self, pattern: &mut Pattern) -> Result<()> {
        let first = self.ident()?;
        if self.at_sym(":") {
            self.next()?;
            let field = self.ident()?;
            pattern.bindings.push((first, field));
            return Ok(());
        }
        let cmp = match self.next()? {
            Tok::Sym(s) => match s.as_str() {
                "==" => Comparator::Eq,
                "!=" => Comparator::Ne,
                "<" => Comparator::Lt,
                "<=" => Comparator::Le,
                ">" => Comparator::Gt,
                ">=" => Comparator::Ge,
                other => return Err(self.error_at(format!("unknown comparator {other:?}"))),
            },
            Tok::Ident(w) => match w.as_str() {
                "contains" => Comparator::Contains,
                "startsWith" => Comparator::StartsWith,
                other => return Err(self.error_at(format!("unknown comparator {other:?}"))),
            },
            other => return Err(self.error_at(format!("expected comparator, found {other:?}"))),
        };
        let rhs = match self.next()? {
            Tok::Str(s) => Operand::Literal(Value::Str(s)),
            Tok::Num(n) => Operand::Literal(Value::Num(n)),
            Tok::Ident(w) if w == "true" => Operand::Literal(Value::Bool(true)),
            Tok::Ident(w) if w == "false" => Operand::Literal(Value::Bool(false)),
            Tok::Ident(var) => Operand::Binding(var),
            other => return Err(self.error_at(format!("expected operand, found {other:?}"))),
        };
        pattern.constraints.push(Constraint {
            field: first,
            cmp,
            rhs,
        });
        Ok(())
    }

    /// `lit | var (+ lit | var)*`
    fn expr(&mut self) -> Result<RhsExpr> {
        let mut acc = self.expr_atom()?;
        while self.at_sym("+") {
            self.next()?;
            let rhs = self.expr_atom()?;
            acc = RhsExpr::Add(Box::new(acc), Box::new(rhs));
        }
        Ok(acc)
    }

    fn expr_atom(&mut self) -> Result<RhsExpr> {
        match self.next()? {
            Tok::Str(s) => Ok(RhsExpr::Literal(Value::Str(s))),
            Tok::Num(n) => Ok(RhsExpr::Literal(Value::Num(n))),
            Tok::Ident(w) if w == "true" => Ok(RhsExpr::Literal(Value::Bool(true))),
            Tok::Ident(w) if w == "false" => Ok(RhsExpr::Literal(Value::Bool(false))),
            Tok::Ident(var) => Ok(RhsExpr::Var(var)),
            other => Err(self.error_at(format!("expected expression, found {other:?}"))),
        }
    }

    /// One RHS statement, semicolon-terminated.
    fn statement(&mut self) -> Result<RhsStatement> {
        let word = self.ident()?;
        let stmt = match word.as_str() {
            "print" => {
                self.expect_sym("(")?;
                let e = self.expr()?;
                self.expect_sym(")")?;
                RhsStatement::Print(vec![e])
            }
            "retract" => {
                self.expect_sym("(")?;
                let var = self.ident()?;
                self.expect_sym(")")?;
                RhsStatement::Retract(var)
            }
            "diagnose" => {
                self.expect_sym("(")?;
                let category = self.expr()?;
                self.expect_sym(",")?;
                let message = self.expr()?;
                let severity = if self.at_sym(",") {
                    self.next()?;
                    Some(self.expr()?)
                } else {
                    None
                };
                let recommendation = if self.at_sym(",") {
                    self.next()?;
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect_sym(")")?;
                RhsStatement::Diagnose {
                    category,
                    message,
                    severity,
                    recommendation,
                }
            }
            "assert" => {
                let fact_type = self.ident()?;
                self.expect_sym("(")?;
                let mut fields = Vec::new();
                if !self.at_sym(")") {
                    loop {
                        let name = self.ident()?;
                        self.expect_sym(":")?;
                        let e = self.expr()?;
                        fields.push((name, e));
                        if self.at_sym(",") {
                            self.next()?;
                        } else {
                            break;
                        }
                    }
                }
                self.expect_sym(")")?;
                RhsStatement::Assert { fact_type, fields }
            }
            other => {
                return Err(self.error_at(format!("unknown statement {other:?}")));
            }
        };
        self.expect_sym(";")?;
        Ok(stmt)
    }
}

/// Parses a rule file into its rules.
pub fn parse(source: &str) -> Result<Vec<Rule>> {
    let mut lexer = Lexer::new(source);
    let mut tokens = Vec::new();
    while let Some(tok) = lexer.next()? {
        tokens.push(tok);
    }
    let mut parser = Parser { tokens, pos: 0 };
    let mut rules = Vec::new();
    while parser.peek().is_some() {
        rules.push(parser.rule()?);
    }
    Ok(rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::fact::Fact;

    const STALLS_RULE: &str = r#"
// Derived from the paper's Figure 2.
rule "Stalls per Cycle"
when
    f : MeanEventFact( metric == "(BACK_END_BUBBLE_ALL / CPU_CYCLES)",
                       higherLower == "higher",
                       severity > 0.10,
                       e : eventName, a : mainValue, v : eventValue,
                       factType == "Compared to Main" )
then
    print("Event " + e + " has a higher than average stall / cycle rate");
    print("\tAverage stall / cycle: " + a);
    print("\tEvent stall / cycle: " + v);
    print("\tPercentage of total runtime: " + s_unused_placeholder_not_used);
end
"#;

    #[test]
    fn parses_paper_figure_two_shape() {
        // Trim the last print which references an unbound var on purpose
        // in the constant above; parse a corrected version here.
        let src = STALLS_RULE.replace(
            "print(\"\\tPercentage of total runtime: \" + s_unused_placeholder_not_used);",
            "",
        );
        let rules = parse(&src).unwrap();
        assert_eq!(rules.len(), 1);
        let r = &rules[0];
        assert_eq!(r.name, "Stalls per Cycle");
        assert_eq!(r.patterns.len(), 1);
        let p = &r.patterns[0];
        assert_eq!(p.fact_type, "MeanEventFact");
        assert_eq!(p.fact_binding.as_deref(), Some("f"));
        assert_eq!(p.constraints.len(), 4);
        assert_eq!(p.bindings.len(), 3);
    }

    #[test]
    fn unbound_rhs_variable_is_runtime_error() {
        let rules = parse(STALLS_RULE).unwrap();
        let mut engine = Engine::new();
        engine.add_rules(rules).unwrap();
        engine.assert_fact(
            Fact::new("MeanEventFact")
                .with("metric", "(BACK_END_BUBBLE_ALL / CPU_CYCLES)")
                .with("higherLower", "higher")
                .with("severity", 0.31)
                .with("eventName", "matxvec")
                .with("mainValue", 0.2)
                .with("eventValue", 0.6)
                .with("factType", "Compared to Main"),
        );
        assert!(matches!(
            engine.run(),
            Err(RuleError::UnboundVariable { .. })
        ));
    }

    #[test]
    fn end_to_end_fire_and_print() {
        let src = r#"
rule "hot"
when
    MeanEventFact( severity > 0.1, e : eventName, v : severity )
then
    print("hot: " + e + " at " + v);
    diagnose("hotspot", "region " + e + " is hot", v, "optimize " + e);
end
"#;
        let mut engine = Engine::new();
        engine.add_rules(parse(src).unwrap()).unwrap();
        engine.assert_fact(
            Fact::new("MeanEventFact")
                .with("severity", 0.5)
                .with("eventName", "pc_jac_glb"),
        );
        let report = engine.run().unwrap();
        assert_eq!(report.printed, vec!["hot: pc_jac_glb at 0.5"]);
        assert_eq!(report.diagnoses.len(), 1);
        let d = &report.diagnoses[0];
        assert_eq!(d.category, "hotspot");
        assert_eq!(d.severity, Some(0.5));
        assert_eq!(d.recommendation.as_deref(), Some("optimize pc_jac_glb"));
        assert_eq!(d.rule, "hot");
    }

    #[test]
    fn assert_and_retract_statements() {
        let src = r#"
rule "promote" salience 10
when
    t : Token( v : value )
then
    assert Promoted( value : v, doubled : v + v );
    retract(t);
end

rule "consume"
when
    Promoted( d : doubled )
then
    print("got " + d);
end
"#;
        let mut engine = Engine::new();
        engine.add_rules(parse(src).unwrap()).unwrap();
        engine.assert_fact(Fact::new("Token").with("value", 21.0));
        let report = engine.run().unwrap();
        assert_eq!(report.printed, vec!["got 42"]);
        // Token was retracted; only Promoted remains.
        assert_eq!(engine.fact_count(), 1);
        let remaining: Vec<_> = engine.facts().map(|(_, f)| f.fact_type.clone()).collect();
        assert_eq!(remaining, vec!["Promoted"]);
    }

    #[test]
    fn join_via_shared_variable() {
        let src = r#"
rule "parent child"
when
    Region( kind == "outer", name : n )
    Region( kind == "inner", parent == n, inner_name : m )
then
    print(m + " inside " + n);
end
"#;
        // NOTE: `name : n` binds var `name` to field `n`? No — syntax is
        // `var : field`, so `name : n` binds variable "name" to field "n".
        // Use the right orientation in this test.
        let src = src
            .replace("name : n", "n : name")
            .replace("inner_name : m", "m : name");
        let mut engine = Engine::new();
        engine.add_rules(parse(&src).unwrap()).unwrap();
        engine.assert_fact(Fact::new("Region").with("kind", "outer").with("name", "A"));
        engine.assert_fact(
            Fact::new("Region")
                .with("kind", "inner")
                .with("name", "B")
                .with("parent", "A"),
        );
        engine.assert_fact(
            Fact::new("Region")
                .with("kind", "inner")
                .with("name", "C")
                .with("parent", "X"),
        );
        let report = engine.run().unwrap();
        assert_eq!(report.printed, vec!["B inside A"]);
    }

    #[test]
    fn salience_is_parsed() {
        let rules = parse("rule \"r\" salience 42 when T( ) then end").unwrap();
        assert_eq!(rules[0].salience, 42);
        let neg = parse("rule \"r\" salience -3 when T( ) then end").unwrap();
        assert_eq!(neg[0].salience, -3);
    }

    #[test]
    fn comment_and_multiple_rules() {
        let src = r#"
// knowledge base
rule "a" when T( ) then end
rule "b" when T( ) then end
"#;
        let rules = parse(src).unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].name, "a");
        assert_eq!(rules[1].name, "b");
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let src = "rule \"x\"\nwhen\n  T( field !!! 3 )\nthen\nend";
        match parse(src) {
            Err(RuleError::Parse { line, .. }) => assert!(line >= 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_empty_when() {
        assert!(parse("rule \"x\" when then end").is_err());
    }

    #[test]
    fn rejects_unterminated_string_and_bad_tokens() {
        assert!(parse("rule \"x").is_err());
        assert!(parse("rule \"x\" when T( a == @ ) then end").is_err());
        assert!(parse("rule \"x\" when T( ) then frobnicate(); end").is_err());
    }

    #[test]
    fn string_escapes() {
        let rules = parse("rule \"r\" when T( ) then print(\"a\\tb\\n\\\"q\\\"\"); end").unwrap();
        let mut engine = Engine::new();
        engine.add_rules(rules).unwrap();
        engine.assert_fact(Fact::new("T"));
        let report = engine.run().unwrap();
        assert_eq!(report.printed, vec!["a\tb\n\"q\""]);
    }

    #[test]
    fn boolean_and_comparator_variants() {
        let src = r#"
rule "flags"
when
    F( enabled == true, count >= 2, name startsWith "pc_", tag contains "glb" )
then
    print("ok");
end
"#;
        let mut engine = Engine::new();
        engine.add_rules(parse(src).unwrap()).unwrap();
        engine.assert_fact(
            Fact::new("F")
                .with("enabled", true)
                .with("count", 2.0)
                .with("name", "pc_jac")
                .with("tag", "x_glb_y"),
        );
        let report = engine.run().unwrap();
        assert_eq!(report.printed, vec!["ok"]);
    }
}

/// Renders a value as DRL source.
fn value_to_drl(v: &Value) -> String {
    match v {
        Value::Str(s) => format!(
            "\"{}\"",
            s.replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n")
                .replace('\t', "\\t")
        ),
        Value::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            }
        }
        Value::Bool(b) => b.to_string(),
    }
}

fn expr_to_drl(e: &RhsExpr) -> String {
    match e {
        RhsExpr::Literal(v) => value_to_drl(v),
        RhsExpr::Var(name) => name.clone(),
        RhsExpr::Add(a, b) => format!("{} + {}", expr_to_drl(a), expr_to_drl(b)),
    }
}

fn comparator_to_drl(c: Comparator) -> &'static str {
    match c {
        Comparator::Eq => "==",
        Comparator::Ne => "!=",
        Comparator::Lt => "<",
        Comparator::Le => "<=",
        Comparator::Gt => ">",
        Comparator::Ge => ">=",
        Comparator::Contains => "contains",
        Comparator::StartsWith => "startsWith",
    }
}

/// Renders rules back to the textual language — the inverse of
/// [`parse`] for rules with interpreted actions. Native-action rules
/// cannot be rendered and produce an error.
pub fn to_drl(rules: &[Rule]) -> Result<String> {
    let mut out = String::new();
    for rule in rules {
        let Action::Interpreted(statements) = &rule.action else {
            return Err(RuleError::Parse {
                line: 0,
                message: format!("rule {:?} has a native action", rule.name),
            });
        };
        out.push_str(&format!("rule \"{}\"", rule.name));
        if rule.salience != 0 {
            out.push_str(&format!(" salience {}", rule.salience));
        }
        out.push_str("\nwhen\n");
        for p in &rule.patterns {
            out.push_str("    ");
            if p.negated {
                out.push_str("not ");
            }
            if let Some(b) = &p.fact_binding {
                out.push_str(&format!("{b} : "));
            }
            out.push_str(&p.fact_type);
            out.push_str("( ");
            let mut items: Vec<String> = Vec::new();
            for c in &p.constraints {
                let rhs = match &c.rhs {
                    Operand::Literal(v) => value_to_drl(v),
                    Operand::Binding(var) => var.clone(),
                };
                items.push(format!("{} {} {}", c.field, comparator_to_drl(c.cmp), rhs));
            }
            for (var, field) in &p.bindings {
                items.push(format!("{var} : {field}"));
            }
            out.push_str(&items.join(", "));
            out.push_str(" )\n");
        }
        out.push_str("then\n");
        for stmt in statements {
            out.push_str("    ");
            match stmt {
                RhsStatement::Print(parts) => {
                    let text = parts
                        .iter()
                        .map(expr_to_drl)
                        .collect::<Vec<_>>()
                        .join(" + ");
                    out.push_str(&format!("print({text});"));
                }
                RhsStatement::Retract(var) => out.push_str(&format!("retract({var});")),
                RhsStatement::Assert { fact_type, fields } => {
                    let inner = fields
                        .iter()
                        .map(|(n, e)| format!("{n} : {}", expr_to_drl(e)))
                        .collect::<Vec<_>>()
                        .join(", ");
                    out.push_str(&format!("assert {fact_type}( {inner} );"));
                }
                RhsStatement::Diagnose {
                    category,
                    message,
                    severity,
                    recommendation,
                } => {
                    let mut args = vec![expr_to_drl(category), expr_to_drl(message)];
                    if let Some(s) = severity {
                        args.push(expr_to_drl(s));
                    }
                    if let Some(r) = recommendation {
                        args.push(expr_to_drl(r));
                    }
                    out.push_str(&format!("diagnose({});", args.join(", ")));
                }
            }
            out.push('\n');
        }
        out.push_str("end\n\n");
    }
    Ok(out)
}

#[cfg(test)]
mod printer_tests {
    use super::*;

    /// Structural comparison ignoring action closures.
    fn assert_rules_equal(a: &[Rule], b: &[Rule]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.salience, y.salience);
            assert_eq!(x.patterns, y.patterns);
            match (&x.action, &y.action) {
                (Action::Interpreted(s1), Action::Interpreted(s2)) => assert_eq!(s1, s2),
                _ => panic!("expected interpreted actions"),
            }
        }
    }

    #[test]
    fn print_parse_roundtrip_on_complex_rule() {
        let src = r#"
rule "everything" salience -3
when
    f : A( x > 0.5, name == "weird \"quoted\"\n", tag contains "glb", v : value )
    not B( parent == v )
    C( flag == true, w : weight )
then
    print("got " + v + " and " + w);
    assert D( value : v, doubled : v + v );
    diagnose("cat", "msg " + v, 0.5, "fix it");
    retract(f);
end
"#;
        let parsed = parse(src).unwrap();
        let printed = to_drl(&parsed).unwrap();
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_rules_equal(&parsed, &reparsed);
    }

    #[test]
    fn shipped_style_rules_roundtrip() {
        // A rule shaped like the Figure 2 rule survives the roundtrip.
        let src = r#"
rule "Stalls per Cycle"
when
    MeanEventFact( metric == "(BACK_END_BUBBLE_ALL / CPU_CYCLES)",
                   higherLower == "higher", severity > 0.10,
                   e : eventName, v : eventValue )
then
    print("Event " + e + " has a higher than average stall / cycle rate");
    diagnose("stalls", "Event " + e + " stalls often", v);
end
"#;
        let parsed = parse(src).unwrap();
        let printed = to_drl(&parsed).unwrap();
        let reparsed = parse(&printed).unwrap();
        assert_rules_equal(&parsed, &reparsed);
    }

    #[test]
    fn native_rules_cannot_print() {
        let rule = crate::Rule::builder("n")
            .when(crate::Pattern::new("T"))
            .then(|_| {});
        assert!(to_drl(&[rule]).is_err());
    }
}
