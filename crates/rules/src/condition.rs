//! Rule left-hand sides: patterns, constraints and bindings.

use crate::fact::Fact;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Comparison operators usable in constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Comparator {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// Substring containment for strings (`contains`).
    Contains,
    /// String prefix test (`startsWith`).
    StartsWith,
}

impl Comparator {
    /// Applies the comparator. Cross-type comparisons are simply false —
    /// a fact with the wrong field type does not match, mirroring how a
    /// typed rule language would fail to bind.
    pub fn apply(&self, lhs: &Value, rhs: &Value) -> bool {
        use std::cmp::Ordering::*;
        match self {
            Comparator::Eq => lhs == rhs,
            Comparator::Ne => {
                // Same-type inequality only: Num(1) != Str("x") is not a
                // meaningful test and likely a rule bug; treat as no-match.
                std::mem::discriminant(lhs) == std::mem::discriminant(rhs) && lhs != rhs
            }
            Comparator::Lt => matches!(lhs.partial_cmp_same_type(rhs), Some(Less)),
            Comparator::Le => matches!(lhs.partial_cmp_same_type(rhs), Some(Less | Equal)),
            Comparator::Gt => matches!(lhs.partial_cmp_same_type(rhs), Some(Greater)),
            Comparator::Ge => matches!(lhs.partial_cmp_same_type(rhs), Some(Greater | Equal)),
            Comparator::Contains => match (lhs, rhs) {
                (Value::Str(a), Value::Str(b)) => a.contains(b.as_str()),
                _ => false,
            },
            Comparator::StartsWith => match (lhs, rhs) {
                (Value::Str(a), Value::Str(b)) => a.starts_with(b.as_str()),
                _ => false,
            },
        }
    }
}

/// Right-hand side of a constraint: a literal or a previously-bound
/// variable (enabling joins across patterns).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Operand {
    /// A literal value.
    Literal(Value),
    /// A variable bound by an earlier pattern (or earlier in this one).
    Binding(String),
}

/// One field constraint, `field <cmp> operand`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// Field of the candidate fact to test.
    pub field: String,
    /// Comparison operator.
    pub cmp: Comparator,
    /// Comparison operand.
    pub rhs: Operand,
}

/// A pattern over one fact type, with constraints and variable bindings.
///
/// `bindings` maps variable names to field names: when a fact matches,
/// each variable is bound to the fact's field value and becomes available
/// to later patterns (joins) and to the rule's action. The optional
/// `fact_binding` binds the matched fact itself, so actions can retract
/// it (`f : MeanEventFact(...)` … `retract(f)`).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Pattern {
    /// Fact type to match.
    pub fact_type: String,
    /// Field constraints, all of which must hold.
    pub constraints: Vec<Constraint>,
    /// `variable → field` bindings established on match.
    pub bindings: Vec<(String, String)>,
    /// Optional variable bound to the matched fact itself.
    pub fact_binding: Option<String>,
    /// Negated pattern (`not Type(...)`): the conjunction matches only
    /// when *no* fact satisfies this pattern under the current bindings.
    /// Negated patterns contribute no bindings and no matched fact.
    pub negated: bool,
}

impl Pattern {
    /// Creates an unconstrained pattern over a fact type.
    pub fn new(fact_type: impl Into<String>) -> Self {
        Pattern {
            fact_type: fact_type.into(),
            ..Default::default()
        }
    }

    /// Adds a literal constraint.
    pub fn constrain(mut self, field: &str, cmp: Comparator, value: impl Into<Value>) -> Self {
        self.constraints.push(Constraint {
            field: field.to_string(),
            cmp,
            rhs: Operand::Literal(value.into()),
        });
        self
    }

    /// Adds a constraint against a bound variable (a join).
    pub fn constrain_var(mut self, field: &str, cmp: Comparator, variable: &str) -> Self {
        self.constraints.push(Constraint {
            field: field.to_string(),
            cmp,
            rhs: Operand::Binding(variable.to_string()),
        });
        self
    }

    /// Binds `variable` to `field` of the matched fact.
    pub fn bind(mut self, variable: &str, field: &str) -> Self {
        self.bindings
            .push((variable.to_string(), field.to_string()));
        self
    }

    /// Binds the matched fact itself to `variable`.
    pub fn bind_fact(mut self, variable: &str) -> Self {
        self.fact_binding = Some(variable.to_string());
        self
    }

    /// Marks the pattern as negated (absence test).
    pub fn negate(mut self) -> Self {
        self.negated = true;
        self
    }

    /// Tests the environment-independent part of the pattern: the fact
    /// type and every constraint whose operand is a literal. This is the
    /// "alpha" test — it can be evaluated once per fact at assertion time
    /// and the result cached in an index, because no later variable
    /// binding can change it.
    pub fn passes_alpha(&self, fact: &Fact) -> bool {
        if fact.fact_type != self.fact_type {
            return false;
        }
        self.constraints.iter().all(|c| match &c.rhs {
            Operand::Literal(v) => fact.get(&c.field).is_some_and(|lhs| c.cmp.apply(lhs, v)),
            Operand::Binding(_) => true,
        })
    }

    /// Completes a match for a fact that already passed [`passes_alpha`]:
    /// checks the environment-dependent (join) constraints and extends
    /// the environment with this pattern's bindings.
    ///
    /// [`passes_alpha`]: Pattern::passes_alpha
    pub fn matches_given_alpha(
        &self,
        fact: &Fact,
        env: &BTreeMap<String, Value>,
    ) -> Option<BTreeMap<String, Value>> {
        for c in &self.constraints {
            if let Operand::Binding(var) = &c.rhs {
                let lhs = fact.get(&c.field)?;
                let rhs = env.get(var)?;
                if !c.cmp.apply(lhs, rhs) {
                    return None;
                }
            }
        }
        let mut out = env.clone();
        for (var, field) in &self.bindings {
            let v = fact.get(field)?.clone();
            // A variable already bound must agree (unification).
            if let Some(existing) = out.get(var) {
                if existing != &v {
                    return None;
                }
            }
            out.insert(var.clone(), v);
        }
        Some(out)
    }

    /// Tests whether `fact` matches under the given environment of
    /// already-bound variables. On success returns the extended
    /// environment including this pattern's bindings.
    pub fn matches(
        &self,
        fact: &Fact,
        env: &BTreeMap<String, Value>,
    ) -> Option<BTreeMap<String, Value>> {
        if !self.passes_alpha(fact) {
            return None;
        }
        self.matches_given_alpha(fact, env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> BTreeMap<String, Value> {
        BTreeMap::new()
    }

    #[test]
    fn comparators_on_numbers() {
        let one = Value::from(1.0);
        let two = Value::from(2.0);
        assert!(Comparator::Lt.apply(&one, &two));
        assert!(Comparator::Le.apply(&one, &one));
        assert!(Comparator::Gt.apply(&two, &one));
        assert!(Comparator::Ge.apply(&two, &two));
        assert!(Comparator::Eq.apply(&one, &one));
        assert!(Comparator::Ne.apply(&one, &two));
    }

    #[test]
    fn comparators_on_strings() {
        let a = Value::from("alpha");
        assert!(Comparator::Contains.apply(&a, &Value::from("lph")));
        assert!(Comparator::StartsWith.apply(&a, &Value::from("al")));
        assert!(!Comparator::StartsWith.apply(&a, &Value::from("ph")));
    }

    #[test]
    fn cross_type_comparisons_never_match() {
        let s = Value::from("1");
        let n = Value::from(1.0);
        assert!(!Comparator::Eq.apply(&s, &n));
        assert!(!Comparator::Ne.apply(&s, &n));
        assert!(!Comparator::Lt.apply(&s, &n));
        assert!(!Comparator::Contains.apply(&n, &s));
    }

    #[test]
    fn pattern_match_with_constraints_and_bindings() {
        let p = Pattern::new("MeanEventFact")
            .constrain("severity", Comparator::Gt, 0.1)
            .bind("e", "eventName");
        let f = Fact::new("MeanEventFact")
            .with("severity", 0.5)
            .with("eventName", "matxvec");
        let bound = p.matches(&f, &env()).unwrap();
        assert_eq!(bound.get("e"), Some(&Value::from("matxvec")));
    }

    #[test]
    fn pattern_rejects_wrong_type_or_failed_constraint() {
        let p = Pattern::new("A").constrain("x", Comparator::Gt, 1.0);
        let wrong_type = Fact::new("B").with("x", 5.0);
        assert!(p.matches(&wrong_type, &env()).is_none());
        let low = Fact::new("A").with("x", 0.5);
        assert!(p.matches(&low, &env()).is_none());
        let missing = Fact::new("A");
        assert!(p.matches(&missing, &env()).is_none());
    }

    #[test]
    fn join_constraint_uses_environment() {
        let p = Pattern::new("Child").constrain_var("parent", Comparator::Eq, "pname");
        let mut e = env();
        e.insert("pname".to_string(), Value::from("outer"));
        let ok = Fact::new("Child").with("parent", "outer");
        assert!(p.matches(&ok, &e).is_some());
        let no = Fact::new("Child").with("parent", "other");
        assert!(no.get("parent").is_some());
        assert!(p.matches(&no, &e).is_none());
        // Unbound join variable: no match (rather than panic).
        assert!(p.matches(&ok, &env()).is_none());
    }

    #[test]
    fn alpha_split_agrees_with_full_match() {
        // passes_alpha covers exactly the literal half of the pattern;
        // matches_given_alpha the join half. Their conjunction is matches.
        let p = Pattern::new("Child")
            .constrain("kind", Comparator::Eq, "inner")
            .constrain_var("parent", Comparator::Eq, "pname")
            .bind("n", "name");
        let mut e = env();
        e.insert("pname".to_string(), Value::from("outer"));
        let facts = [
            Fact::new("Child")
                .with("kind", "inner")
                .with("parent", "outer")
                .with("name", "x"),
            Fact::new("Child")
                .with("kind", "outer")
                .with("parent", "outer")
                .with("name", "x"),
            Fact::new("Child")
                .with("kind", "inner")
                .with("parent", "elsewhere")
                .with("name", "x"),
            Fact::new("Other").with("kind", "inner"),
        ];
        for f in &facts {
            let composed = if p.passes_alpha(f) {
                p.matches_given_alpha(f, &e)
            } else {
                None
            };
            assert_eq!(composed, p.matches(f, &e), "disagreement on {f}");
        }
        assert!(
            p.passes_alpha(&facts[2]),
            "join failure is not an alpha failure"
        );
    }

    #[test]
    fn unification_of_repeated_variable() {
        let p = Pattern::new("A").bind("v", "x");
        let mut e = env();
        e.insert("v".to_string(), Value::from(3.0));
        let same = Fact::new("A").with("x", 3.0);
        assert!(p.matches(&same, &e).is_some());
        let diff = Fact::new("A").with("x", 4.0);
        assert!(p.matches(&diff, &e).is_none());
    }
}
